"""Tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.traces.base import CuStream, Trace
from repro.traces.generators import WorkloadSpec, generate_trace
from repro.traces.workloads import WORKLOADS, workload_names, workload_trace


class TestContainers:
    def test_stream_length_validation(self):
        with pytest.raises(ValueError):
            CuStream(
                addrs=np.zeros(3, dtype=np.int64),
                is_store=np.zeros(2, dtype=bool),
                gaps=np.zeros(3, dtype=np.int64),
            )

    def test_instructions(self):
        stream = CuStream(
            addrs=np.zeros(4, dtype=np.int64),
            is_store=np.zeros(4, dtype=bool),
            gaps=np.array([1, 2, 3, 4], dtype=np.int64),
        )
        assert stream.instructions == 10 + 4

    def test_trace_totals(self):
        stream = CuStream(
            addrs=np.zeros(4, dtype=np.int64),
            is_store=np.zeros(4, dtype=bool),
            gaps=np.ones(4, dtype=np.int64),
        )
        trace = Trace("t", [stream, stream])
        assert trace.total_accesses == 8
        assert trace.instructions == 16


class TestSpecValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", 1024, sweep_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec("x", 1024, store_fraction=-0.1)

    def test_footprint_minimum(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", 32)

    def test_negative_gap(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", 1024, mean_gap=-1)


class TestGeneration:
    def spec(self, **kw):
        defaults = dict(
            footprint_bytes=64 * 1024, sweep_fraction=0.5, hot_fraction=0.1,
            hot_weight=0.5, store_fraction=0.2, mean_gap=5.0,
        )
        defaults.update(kw)
        return WorkloadSpec("test", **defaults)

    def test_shape(self, rng):
        trace = generate_trace(self.spec(), 1000, n_cus=4, rng=rng)
        assert len(trace.streams) == 4
        assert all(len(s) == 1000 for s in trace.streams)

    def test_deterministic(self):
        a = generate_trace(self.spec(), 500, rng=np.random.default_rng(1))
        b = generate_trace(self.spec(), 500, rng=np.random.default_rng(1))
        for sa, sb in zip(a.streams, b.streams):
            assert (sa.addrs == sb.addrs).all()

    def test_addresses_within_footprint(self, rng):
        spec = self.spec()
        trace = generate_trace(spec, 2000, rng=rng)
        for stream in trace.streams:
            assert (stream.addrs >= 0).all()
            assert (stream.addrs < spec.footprint_bytes).all()

    def test_line_aligned(self, rng):
        trace = generate_trace(self.spec(), 1000, rng=rng)
        for stream in trace.streams:
            assert (stream.addrs % 64 == 0).all()

    def test_store_fraction_respected(self, rng):
        trace = generate_trace(self.spec(store_fraction=0.3), 20000, n_cus=1, rng=rng)
        fraction = trace.streams[0].is_store.mean()
        assert 0.27 < fraction < 0.33

    def test_mean_gap_respected(self, rng):
        trace = generate_trace(self.spec(mean_gap=10.0), 20000, n_cus=1, rng=rng)
        assert 9.0 < trace.streams[0].gaps.mean() < 11.0

    def test_zero_gap(self, rng):
        trace = generate_trace(self.spec(mean_gap=0.0), 100, rng=rng)
        assert (trace.streams[0].gaps == 0).all()

    def test_pure_sweep_is_sequential(self, rng):
        trace = generate_trace(self.spec(sweep_fraction=1.0), 500, n_cus=1, rng=rng)
        diffs = np.diff(trace.streams[0].addrs)
        wrap = self.spec().footprint_bytes - 64
        assert all(d == 64 or d == -wrap for d in diffs)

    def test_cus_sweep_from_distinct_offsets(self, rng):
        trace = generate_trace(self.spec(sweep_fraction=1.0), 10, n_cus=4, rng=rng)
        starts = {int(s.addrs[0]) for s in trace.streams}
        assert len(starts) == 4

    def test_hot_set_concentration(self, rng):
        spec = self.spec(sweep_fraction=0.0, hot_fraction=0.05, hot_weight=0.9)
        trace = generate_trace(spec, 20000, n_cus=1, rng=rng)
        hot_boundary = int((spec.footprint_bytes // 64) * 0.05) * 64
        hot_hits = (trace.streams[0].addrs < hot_boundary).mean()
        assert hot_hits > 0.85

    def test_invalid_counts(self, rng):
        with pytest.raises(ValueError):
            generate_trace(self.spec(), 0, rng=rng)
        with pytest.raises(ValueError):
            generate_trace(self.spec(), 10, n_cus=0, rng=rng)


class TestNamedWorkloads:
    def test_ten_workloads(self):
        assert len(workload_names()) == 10
        assert "xsbench" in workload_names()
        assert "fft" in workload_names()

    def test_all_generate(self, rngs):
        for name in workload_names():
            trace = workload_trace(name, 100, rng=rngs.stream(name))
            assert trace.total_accesses == 800
            assert trace.name == name

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload_trace("nope", 10)

    def test_behaviour_classes(self):
        # The paper's buckets: memory-bound apps have low mean_gap,
        # compute-bound high; fft sits at the L2 capacity edge.
        assert WORKLOADS["xsbench"].mean_gap <= 4
        assert WORKLOADS["snap"].mean_gap <= 4
        assert WORKLOADS["nekbone"].mean_gap >= 15
        assert WORKLOADS["comd"].mean_gap >= 15
        l2 = 2 * 1024 * 1024
        assert 0.9 * l2 < WORKLOADS["fft"].footprint_bytes < l2
        assert WORKLOADS["snap"].footprint_bytes > 2 * l2
