"""Tests for trace persistence."""

import numpy as np
import pytest

from repro.traces import workload_trace
from repro.traces.io import load_trace, save_trace


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path, rngs):
        trace = workload_trace("nekbone", 500, rng=rngs.stream("t"))
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert len(loaded.streams) == len(trace.streams)
        for a, b in zip(trace.streams, loaded.streams):
            assert (a.addrs == b.addrs).all()
            assert (a.is_store == b.is_store).all()
            assert (a.gaps == b.gaps).all()

    def test_simulation_identical_after_reload(self, tmp_path, rngs):
        from repro.cache.hooks import UnprotectedScheme
        from repro.gpu import GpuConfig, GpuSimulator

        trace = workload_trace("nekbone", 400, rng=rngs.stream("t"))
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        config = GpuConfig()
        a = GpuSimulator(config, UnprotectedScheme()).run(trace)
        b = GpuSimulator(config, UnprotectedScheme()).run(loaded)
        assert a.cycles == b.cycles
        assert a.l2_stats.misses == b.l2_stats.misses

    def test_instructions_preserved(self, tmp_path, rngs):
        trace = workload_trace("fft", 300, rng=rngs.stream("t"))
        path = str(tmp_path / "t.npz")
        save_trace(trace, path)
        assert load_trace(path).instructions == trace.instructions

    def test_bad_archive_rejected(self, tmp_path):
        path = str(tmp_path / "bad.npz")
        np.savez_compressed(path, something=np.arange(3))
        with pytest.raises(ValueError):
            load_trace(path)
