"""Tests for the extended-Hamming SECDED code."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.base import DecodeStatus
from repro.ecc.secded import SecDedCode, secded_checkbits
from repro.utils.bitvec import random_bits


@pytest.fixture(scope="module")
def code():
    return SecDedCode(512)


class TestDimensions:
    def test_checkbit_formula(self):
        assert secded_checkbits(512) == 11
        assert secded_checkbits(64) == 8
        assert secded_checkbits(256) == 10
        assert secded_checkbits(1) == 3

    def test_paper_codeword(self, code):
        # Paper: "SECDED ECC requires 11 checkbits to protect 523 bits
        # of data (512 bits of data and 11 ECC checkbits)."
        assert code.k == 512
        assert code.n == 523
        assert code.checkbits == 11

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SecDedCode(0)

    def test_encode_length_check(self, code):
        with pytest.raises(ValueError):
            code.encode(np.zeros(100, dtype=np.uint8))

    def test_decode_length_check(self, code):
        with pytest.raises(ValueError):
            code.decode(np.zeros(100, dtype=np.uint8))


class TestCleanPath:
    def test_zero_data(self, code):
        word = code.encode(np.zeros(512, dtype=np.uint8))
        assert not word.any()
        result = code.decode(word)
        assert result.status is DecodeStatus.CLEAN
        assert result.syndrome_zero and result.global_parity_ok

    def test_systematic(self, code, rng):
        data = random_bits(rng, 512)
        word = code.encode(data)
        assert (word[:512] == data).all()

    def test_clean_round_trip(self, code, rng):
        data = random_bits(rng, 512)
        result = code.decode(code.encode(data))
        assert result.status is DecodeStatus.CLEAN
        assert (result.data == data).all()


class TestSingleError:
    @pytest.mark.parametrize("position", [0, 255, 511, 512, 521])
    def test_corrects_any_position(self, code, rng, position):
        data = random_bits(rng, 512)
        word = code.encode(data)
        word[position] ^= 1
        result = code.decode(word)
        assert result.status is DecodeStatus.CORRECTED
        assert result.corrected_positions == (position,)
        assert (result.data == data).all()

    def test_global_parity_bit_error(self, code, rng):
        data = random_bits(rng, 512)
        word = code.encode(data)
        word[code.n - 1] ^= 1
        result = code.decode(word)
        assert result.status is DecodeStatus.CORRECTED
        assert result.syndrome_zero
        assert not result.global_parity_ok
        assert (result.data == data).all()

    def test_single_error_signals(self, code, rng):
        # Table 2 relies on (syndrome non-zero, parity mismatch) for a
        # single-bit error.
        data = random_bits(rng, 512)
        word = code.encode(data)
        word[42] ^= 1
        result = code.decode(word)
        assert not result.syndrome_zero
        assert not result.global_parity_ok


class TestDoubleError:
    def test_detects_double(self, code, rng):
        data = random_bits(rng, 512)
        word = code.encode(data)
        word[[10, 200]] ^= 1
        result = code.decode(word)
        assert result.status is DecodeStatus.DETECTED
        assert not result.syndrome_zero
        assert result.global_parity_ok  # even error count

    def test_double_including_checkbit(self, code, rng):
        data = random_bits(rng, 512)
        word = code.encode(data)
        word[[100, 515]] ^= 1
        assert code.decode(word).status is DecodeStatus.DETECTED

    def test_double_including_global_parity(self, code, rng):
        data = random_bits(rng, 512)
        word = code.encode(data)
        word[[100, code.n - 1]] ^= 1
        # Syndrome sees one error, parity looks fine -> even count.
        result = code.decode(word)
        # This aliases to a single error at position 100's column with
        # parity ok: detected as a double (even) error.
        assert result.status in (DecodeStatus.DETECTED, DecodeStatus.CORRECTED)
        if result.status is DecodeStatus.CORRECTED:
            # The only acceptable correction is the true data bit.
            assert (result.data == data).all()

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100)
    def test_never_miscorrects_double_in_codeword(self, seed):
        # d=4: no 2-error pattern inside the Hamming-covered part may
        # be "corrected" into wrong data.
        rng = np.random.default_rng(seed)
        code = SecDedCode(64)
        data = random_bits(rng, 64)
        word = code.encode(data)
        positions = rng.choice(code.n - 1, size=2, replace=False)
        word[positions] ^= 1
        result = code.decode(word)
        assert result.status is DecodeStatus.DETECTED


class TestSyndromeOfErrorPositions:
    def test_matches_full_decode(self, code, rng):
        # Linearity: syndrome of (codeword + e) == syndrome of e.
        data = random_bits(rng, 512)
        word = code.encode(data)
        positions = [3, 77, 515]
        word2 = word.copy()
        word2[positions] ^= 1
        sparse = code.syndrome_of_error_positions(positions)
        assert (sparse == 0) == code.decode(word2).syndrome_zero

    def test_empty_is_zero(self, code):
        assert code.syndrome_of_error_positions([]) == 0

    def test_global_parity_position_contributes_nothing(self, code):
        assert code.syndrome_of_error_positions([code.n - 1]) == 0

    def test_out_of_range(self, code):
        with pytest.raises(IndexError):
            code.syndrome_of_error_positions([code.n])

    def test_pair_cancellation(self, code):
        # XOR of the same column twice cancels.
        assert code.syndrome_of_error_positions([5, 5]) == 0


class TestSmallCodes:
    @pytest.mark.parametrize("k", [8, 32, 64, 128])
    def test_exhaustive_single_error(self, k, rng):
        code = SecDedCode(k)
        data = random_bits(rng, k)
        word = code.encode(data)
        for position in range(code.n):
            corrupted = word.copy()
            corrupted[position] ^= 1
            result = code.decode(corrupted)
            assert result.status is DecodeStatus.CORRECTED, position
            assert (result.data == data).all(), position
