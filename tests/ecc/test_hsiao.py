"""Tests for the Hsiao (odd-weight-column) SECDED code."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.base import DecodeStatus
from repro.ecc.hsiao import HsiaoCode, hsiao_checkbits
from repro.ecc.secded import SecDedCode
from repro.utils.bitvec import random_bits


@pytest.fixture(scope="module")
def code():
    return HsiaoCode(512)


class TestDimensions:
    def test_checkbit_counts(self):
        assert hsiao_checkbits(512) == 11  # same budget as ext-Hamming
        assert hsiao_checkbits(64) == 8    # the classic Hsiao(72,64)
        assert hsiao_checkbits(256) == 10

    def test_matches_secded_budget(self):
        # Killi's area accounting is implementation-agnostic.
        assert HsiaoCode(512).checkbits == SecDedCode(512).checkbits

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            HsiaoCode(0)

    def test_columns_distinct_and_odd(self, code):
        values = [int(c) for c in code._codes]
        assert len(set(values)) == len(values)
        assert all(bin(v).count("1") % 2 == 1 for v in values)

    def test_low_weight_columns_preferred(self, code):
        # The first data columns should be weight 3 (fanout property).
        first = [int(c) for c in code._codes[:100]]
        assert all(bin(v).count("1") == 3 for v in first)


class TestDecoding:
    def test_clean(self, code, rng):
        data = random_bits(rng, 512)
        result = code.decode(code.encode(data))
        assert result.status is DecodeStatus.CLEAN
        assert (result.data == data).all()

    def test_systematic(self, code, rng):
        data = random_bits(rng, 512)
        assert (code.encode(data)[:512] == data).all()

    @pytest.mark.parametrize("position", [0, 256, 511, 512, 522])
    def test_single_error_corrected(self, code, rng, position):
        data = random_bits(rng, 512)
        word = code.encode(data)
        word[position] ^= 1
        result = code.decode(word)
        assert result.status is DecodeStatus.CORRECTED
        assert result.corrected_positions == (position,)
        assert (result.data == data).all()

    def test_single_error_signals(self, code, rng):
        data = random_bits(rng, 512)
        word = code.encode(data)
        word[7] ^= 1
        result = code.decode(word)
        assert not result.syndrome_zero
        assert not result.global_parity_ok  # odd syndrome weight

    def test_double_error_detected(self, code, rng):
        data = random_bits(rng, 512)
        word = code.encode(data)
        for _ in range(30):
            positions = rng.choice(code.n, size=2, replace=False)
            corrupted = word.copy()
            corrupted[positions] ^= 1
            result = code.decode(corrupted)
            assert result.status is DecodeStatus.DETECTED
            assert result.global_parity_ok  # even syndrome weight

    def test_never_miscorrects_doubles_exhaustive_small(self, rng):
        code = HsiaoCode(32)
        data = random_bits(rng, 32)
        word = code.encode(data)
        for i in range(code.n):
            for j in range(i + 1, code.n):
                corrupted = word.copy()
                corrupted[[i, j]] ^= 1
                assert code.decode(corrupted).status is DecodeStatus.DETECTED

    def test_sparse_syndrome_matches(self, code):
        positions = [5, 100, 515]
        word = np.zeros(code.n, dtype=np.uint8)
        word[positions] = 1
        dense = 0
        for c in code._codes[np.nonzero(word)[0]]:
            dense ^= int(c)
        assert code.syndrome_of_error_positions(positions) == dense

    def test_syndrome_position_bounds(self, code):
        with pytest.raises(IndexError):
            code.syndrome_of_error_positions([code.n])

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_triple_never_silently_clean(self, seed):
        # 3 errors: either detected or (rarely) miscorrected — but the
        # syndrome can never be zero (odd number of odd-weight columns
        # XOR to odd weight != 0).
        rng = np.random.default_rng(seed)
        code = HsiaoCode(64)
        data = random_bits(rng, 64)
        word = code.encode(data)
        positions = rng.choice(code.n, size=3, replace=False)
        word[positions] ^= 1
        result = code.decode(word)
        assert result.status is not DecodeStatus.CLEAN


class TestRegistry:
    def test_registered(self, rng):
        from repro.ecc.registry import checkbits_for, make_code

        assert checkbits_for("hsiao") == 11
        code = make_code("hsiao", 64)
        data = random_bits(rng, 64)
        assert (code.decode(code.encode(data)).data == data).all()
