"""Tests for the unextended BCH path and internal mappings."""

import pytest

from repro.ecc.base import DecodeStatus
from repro.ecc.bch import BchCode
from repro.utils.bitvec import random_bits


@pytest.fixture(scope="module")
def plain():
    return BchCode(k=64, t=2, extended=False)


class TestUnextended:
    def test_dimensions(self, plain):
        assert plain.checkbits == 2 * plain.field.m  # no parity bit
        assert plain.n == plain.k + plain.parity_bits

    def test_clean(self, plain, rng):
        data = random_bits(rng, 64)
        result = plain.decode(plain.encode(data))
        assert result.status is DecodeStatus.CLEAN
        assert result.global_parity_ok  # mirrors syndrome for plain BCH

    def test_corrects_up_to_t(self, plain, rng):
        data = random_bits(rng, 64)
        word = plain.encode(data)
        for n_errors in (1, 2):
            for _ in range(10):
                positions = rng.choice(plain.n, size=n_errors, replace=False)
                corrupted = word.copy()
                corrupted[positions] ^= 1
                result = plain.decode(corrupted)
                assert result.status is DecodeStatus.CORRECTED
                assert (result.data == data).all()

    def test_triples_never_silently_clean(self, plain, rng):
        # Without the extended parity, some triples may miscorrect
        # (d=5), but none may decode as CLEAN.
        data = random_bits(rng, 64)
        word = plain.encode(data)
        for _ in range(50):
            positions = rng.choice(plain.n, size=3, replace=False)
            corrupted = word.copy()
            corrupted[positions] ^= 1
            assert plain.decode(corrupted).status is not DecodeStatus.CLEAN


class TestDegreeMapping:
    def test_round_trip(self, plain):
        for position in range(plain.n):
            degree = plain._degree_of_position(position)
            assert plain._position_of_degree(degree) == position

    def test_data_occupies_high_degrees(self, plain):
        # Systematic encoding: data bit i is the coefficient of
        # x^(parity_bits + i).
        assert plain._degree_of_position(0) == plain.parity_bits
        assert plain._degree_of_position(plain.k - 1) == plain.parity_bits + plain.k - 1

    def test_parity_occupies_low_degrees(self, plain):
        assert plain._degree_of_position(plain.k) == 0


class TestMultiKernelStats:
    def test_stats_accumulate_across_kernels(self):
        from repro.cache.hooks import UnprotectedScheme
        from repro.gpu import GpuConfig, GpuSimulator
        from repro.traces import workload_trace
        from repro.utils.rng import RngFactory

        rngs = RngFactory(2)
        simulator = GpuSimulator(GpuConfig(), UnprotectedScheme())
        traces = [
            workload_trace("nekbone", 400, rng=rngs.stream(f"k{i}"))
            for i in range(2)
        ]
        first = simulator.run(traces[0])
        second = simulator.run(traces[1])
        # Per-kernel stats are independent snapshots, never aliases of
        # the live counters (documented in run_kernels).
        assert second.l2_stats is not first.l2_stats
        assert first.l2_stats.reads > 0
        # The cumulative view keeps growing across kernels and equals
        # the sum of the per-kernel deltas.
        assert (
            second.l2_stats_cumulative.reads
            == first.l2_stats.reads + second.l2_stats.reads
        )
        assert second.l2_stats_cumulative.reads > first.l2_stats_cumulative.reads
