"""Tests for Killi's segmented, interleaved parity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.parity import SegmentedParity
from repro.utils.bitvec import random_bits


@pytest.fixture
def parity16():
    return SegmentedParity(512, 16)


@pytest.fixture
def parity4():
    return SegmentedParity(512, 4)


class TestConstruction:
    def test_invalid_division(self):
        with pytest.raises(ValueError):
            SegmentedParity(100, 16)

    def test_segment_width(self, parity16, parity4):
        assert parity16.segment_width == 32
        assert parity4.segment_width == 128

    def test_interleaved_mapping(self, parity16):
        # Adjacent bits land in different segments.
        assert parity16.segment_of(0) == 0
        assert parity16.segment_of(1) == 1
        assert parity16.segment_of(16) == 0

    def test_contiguous_mapping(self):
        parity = SegmentedParity(512, 16, interleaved=False)
        assert parity.segment_of(0) == 0
        assert parity.segment_of(31) == 0
        assert parity.segment_of(32) == 1

    def test_segment_of_out_of_range(self, parity16):
        with pytest.raises(IndexError):
            parity16.segment_of(512)

    def test_segment_members_partition(self, parity16):
        all_members = np.concatenate(
            [parity16.segment_members(s) for s in range(16)]
        )
        assert sorted(all_members) == list(range(512))

    def test_segment_members_out_of_range(self, parity16):
        with pytest.raises(IndexError):
            parity16.segment_members(16)


class TestGenerateCheck:
    def test_zero_data_zero_parity(self, parity16):
        assert not parity16.generate(np.zeros(512, dtype=np.uint8)).any()

    def test_wrong_length_raises(self, parity16):
        with pytest.raises(ValueError):
            parity16.generate(np.zeros(100, dtype=np.uint8))

    def test_wrong_parity_length_raises(self, parity16):
        with pytest.raises(ValueError):
            parity16.mismatches(np.zeros(512, dtype=np.uint8), np.zeros(4, dtype=np.uint8))

    def test_clean_data_matches(self, parity16, rng):
        data = random_bits(rng, 512)
        assert parity16.mismatch_count(data, parity16.generate(data)) == 0

    def test_single_flip_one_mismatch(self, parity16, rng):
        data = random_bits(rng, 512)
        stored = parity16.generate(data)
        data[37] ^= 1
        mism = parity16.mismatches(data, stored)
        assert mism.sum() == 1
        assert mism[37 % 16]

    def test_parity_bit_flip_detected(self, parity16, rng):
        data = random_bits(rng, 512)
        stored = parity16.generate(data)
        stored[5] ^= 1  # the stored parity bit itself fails
        mism = parity16.mismatches(data, stored)
        assert mism.sum() == 1 and mism[5]

    def test_two_flips_same_segment_undetected(self, parity16, rng):
        # The fundamental parity weakness Killi compensates with ECC.
        data = random_bits(rng, 512)
        stored = parity16.generate(data)
        data[0] ^= 1
        data[16] ^= 1  # same segment (0) under interleaving
        assert parity16.mismatch_count(data, stored) == 0

    def test_two_flips_different_segments_detected(self, parity16, rng):
        data = random_bits(rng, 512)
        stored = parity16.generate(data)
        data[0] ^= 1
        data[1] ^= 1
        assert parity16.mismatch_count(data, stored) == 2

    def test_adjacent_burst_detected_when_interleaved(self, parity16, rng):
        # Multi-bit soft errors hit adjacent cells; interleaving puts
        # each in its own segment (paper Section 4.1).
        data = random_bits(rng, 512)
        stored = parity16.generate(data)
        for offset in range(4):
            data[100 + offset] ^= 1
        assert parity16.mismatch_count(data, stored) == 4

    def test_adjacent_burst_masked_without_interleaving(self, rng):
        parity = SegmentedParity(512, 16, interleaved=False)
        data = random_bits(rng, 512)
        stored = parity.generate(data)
        data[100] ^= 1
        data[101] ^= 1  # same contiguous segment: even count, masked
        assert parity.mismatch_count(data, stored) == 0


class TestProperties:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50)
    def test_mismatch_count_equals_odd_segments(self, seed):
        rng = np.random.default_rng(seed)
        parity = SegmentedParity(512, 16)
        data = random_bits(rng, 512)
        stored = parity.generate(data)
        n_flips = int(rng.integers(0, 10))
        positions = rng.choice(512, size=n_flips, replace=False)
        corrupted = data.copy()
        corrupted[positions] ^= 1
        segments = positions % 16
        expected = sum(
            1 for s in range(16) if np.count_nonzero(segments == s) % 2
        )
        assert parity.mismatch_count(corrupted, stored) == expected

    @given(st.integers(min_value=1, max_value=2**32 - 1))
    @settings(max_examples=30)
    def test_generate_linear_in_gf2(self, seed):
        # parity(a ^ b) == parity(a) ^ parity(b) — the linearity the
        # sparse simulator model relies on.
        rng = np.random.default_rng(seed)
        parity = SegmentedParity(512, 16)
        a = random_bits(rng, 512)
        b = random_bits(rng, 512)
        lhs = parity.generate(a ^ b)
        rhs = parity.generate(a) ^ parity.generate(b)
        assert (lhs == rhs).all()
