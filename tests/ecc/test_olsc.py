"""Tests for Orthogonal Latin Square codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.base import DecodeStatus
from repro.ecc.olsc import OlscCode, olsc_checkbits
from repro.utils.bitvec import random_bits


@pytest.fixture(scope="module")
def olsc11():
    return OlscCode(512, t=11)


class TestConstruction:
    def test_checkbits(self):
        # MS-ECC's configuration: t=11 over 512 data bits, m=23.
        assert olsc_checkbits(512, 11) == 2 * 11 * 23

    def test_default_square_side_prime(self):
        code = OlscCode(512, t=4)
        assert code.m == 23

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            OlscCode(512, t=0)

    def test_non_prime_m_rejected(self):
        with pytest.raises(ValueError):
            OlscCode(512, t=2, m=24)

    def test_m_too_small(self):
        with pytest.raises(ValueError):
            OlscCode(512, t=2, m=13)

    def test_too_many_groups(self):
        # 2t <= m + 1 orthogonal groups exist for prime m.
        with pytest.raises(ValueError):
            OlscCode(512, t=13, m=23)


class TestOrthogonality:
    def test_each_bit_in_2t_checks(self, olsc11):
        assert olsc11._checks_of.shape == (512, 22)

    def test_two_checks_share_at_most_one_bit(self):
        code = OlscCode(49, t=3, m=7)
        n_checks = code.n_groups * code.m
        for a in range(n_checks):
            for b in range(a + 1, n_checks):
                if a // code.m == b // code.m:
                    continue  # same group: disjoint by construction
                shared = set(map(int, code._members[a])) & set(
                    map(int, code._members[b])
                )
                assert len(shared) <= 1, (a, b)

    def test_same_group_checks_disjoint(self):
        code = OlscCode(49, t=2, m=7)
        for g in range(code.n_groups):
            seen = set()
            for s in range(code.m):
                members = set(map(int, code._members[g * code.m + s]))
                assert not (members & seen)
                seen |= members


class TestEncodeDecode:
    def test_zero(self, olsc11):
        word = olsc11.encode(np.zeros(512, dtype=np.uint8))
        assert not word.any()
        assert olsc11.decode(word).status is DecodeStatus.CLEAN

    def test_clean_round_trip(self, olsc11, rng):
        data = random_bits(rng, 512)
        result = olsc11.decode(olsc11.encode(data))
        assert result.status is DecodeStatus.CLEAN
        assert (result.data == data).all()

    @pytest.mark.parametrize("n_errors", [1, 2, 5, 8, 11])
    def test_corrects_up_to_t_data_errors(self, olsc11, rng, n_errors):
        data = random_bits(rng, 512)
        word = olsc11.encode(data)
        for _ in range(5):
            positions = rng.choice(512, size=n_errors, replace=False)
            corrupted = word.copy()
            corrupted[positions] ^= 1
            result = olsc11.decode(corrupted)
            assert result.status is DecodeStatus.CORRECTED
            assert (result.data == data).all()

    def test_corrects_mixed_data_and_checkbit_errors(self, olsc11, rng):
        data = random_bits(rng, 512)
        word = olsc11.encode(data)
        for _ in range(10):
            positions = rng.choice(olsc11.n, size=11, replace=False)
            corrupted = word.copy()
            corrupted[positions] ^= 1
            result = olsc11.decode(corrupted)
            assert (result.data == data).all()

    def test_checkbit_only_errors(self, olsc11, rng):
        data = random_bits(rng, 512)
        word = olsc11.encode(data)
        corrupted = word.copy()
        corrupted[[512, 600, 900]] ^= 1
        result = olsc11.decode(corrupted)
        assert (result.data == data).all()

    def test_small_code_exhaustive_singles(self, rng):
        code = OlscCode(25, t=2, m=5)
        data = random_bits(rng, 25)
        word = code.encode(data)
        for position in range(code.n):
            corrupted = word.copy()
            corrupted[position] ^= 1
            result = code.decode(corrupted)
            assert (result.data == data).all(), position

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_property_corrects_random_t_errors(self, seed):
        rng = np.random.default_rng(seed)
        code = OlscCode(49, t=3, m=7)
        data = random_bits(rng, 49)
        word = code.encode(data)
        n_errors = int(rng.integers(0, 4))
        positions = rng.choice(code.n, size=n_errors, replace=False)
        word[positions] ^= 1
        result = code.decode(word)
        assert (result.data == data).all()


class TestRegistry:
    def test_checkbits_lookup(self):
        from repro.ecc.registry import checkbits_for

        assert checkbits_for("secded") == 11
        assert checkbits_for("dected") == 21
        assert checkbits_for("tecqed") == 31
        assert checkbits_for("6ec7ed") == 61
        assert checkbits_for("olsc-t11") == 506

    def test_make_code_round_trip(self, rng):
        from repro.ecc.registry import make_code

        for name in ["secded", "dected"]:
            code = make_code(name, 64)
            data = random_bits(rng, 64)
            assert (code.decode(code.encode(data)).data == data).all()

    def test_unknown_code(self):
        from repro.ecc.registry import checkbits_for, make_code

        with pytest.raises(KeyError):
            make_code("nope")
        with pytest.raises(KeyError):
            checkbits_for("nope")

    def test_capabilities(self):
        from repro.ecc.registry import correction_capability, detection_capability

        assert correction_capability("secded") == 1
        assert detection_capability("secded") == 2
        assert correction_capability("dected") == 2
        assert detection_capability("dected") == 3
        assert correction_capability("olsc-t11") == 11
