"""Tests for the shortened, extended BCH codes (DECTED/TECQED/6EC7ED)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.base import DecodeStatus
from repro.ecc.bch import BchCode, bch_checkbits, make_6ec7ed, make_dected, make_tecqed
from repro.utils.bitvec import random_bits


@pytest.fixture(scope="module")
def dected():
    return make_dected(512)


@pytest.fixture(scope="module")
def tecqed():
    return make_tecqed(512)


@pytest.fixture(scope="module")
def sixec():
    return make_6ec7ed(512)


class TestDimensions:
    def test_paper_checkbit_counts(self):
        # Paper Section 5.2: "DECTED ECC for 64B data requires only 21
        # bits"; Table 4 uses TECQED and 6EC7ED.
        assert bch_checkbits(512, 2) == 21
        assert bch_checkbits(512, 3) == 31
        assert bch_checkbits(512, 6) == 61

    def test_unextended(self):
        assert bch_checkbits(512, 2, extended=False) == 20

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            BchCode(k=512, t=0)

    def test_field_too_small(self):
        with pytest.raises(ValueError):
            BchCode(k=512, t=2, m=5)

    def test_systematic(self, dected, rng):
        data = random_bits(rng, 512)
        assert (dected.encode(data)[:512] == data).all()


class TestCleanAndZero:
    @pytest.mark.parametrize("maker", [make_dected, make_tecqed, make_6ec7ed])
    def test_zero_codeword(self, maker):
        code = maker(512)
        word = code.encode(np.zeros(512, dtype=np.uint8))
        assert not word.any()
        assert code.decode(word).status is DecodeStatus.CLEAN

    @pytest.mark.parametrize("maker", [make_dected, make_tecqed, make_6ec7ed])
    def test_clean_round_trip(self, maker, rng):
        code = maker(512)
        data = random_bits(rng, 512)
        result = code.decode(code.encode(data))
        assert result.status is DecodeStatus.CLEAN
        assert (result.data == data).all()

    def test_codewords_closed_under_xor(self, dected, rng):
        # Linearity of the cyclic part + parity bit.
        a = random_bits(rng, 512)
        b = random_bits(rng, 512)
        word = dected.encode(a) ^ dected.encode(b)
        assert dected.decode(word).status is DecodeStatus.CLEAN


class TestCorrection:
    @pytest.mark.parametrize(
        "maker,t", [(make_dected, 2), (make_tecqed, 3), (make_6ec7ed, 6)]
    )
    def test_corrects_up_to_t(self, maker, t, rng):
        code = maker(512)
        data = random_bits(rng, 512)
        word = code.encode(data)
        for n_errors in range(1, t + 1):
            for _ in range(5):
                positions = rng.choice(code.n, size=n_errors, replace=False)
                corrupted = word.copy()
                corrupted[positions] ^= 1
                result = code.decode(corrupted)
                assert result.status is DecodeStatus.CORRECTED
                assert (result.data == data).all()
                assert sorted(result.corrected_positions) == sorted(positions)

    @pytest.mark.parametrize(
        "maker,t", [(make_dected, 2), (make_tecqed, 3), (make_6ec7ed, 6)]
    )
    def test_detects_t_plus_one(self, maker, t, rng):
        code = maker(512)
        data = random_bits(rng, 512)
        word = code.encode(data)
        for _ in range(20):
            positions = rng.choice(code.n, size=t + 1, replace=False)
            corrupted = word.copy()
            corrupted[positions] ^= 1
            assert code.decode(corrupted).status is DecodeStatus.DETECTED

    def test_extended_parity_bit_alone(self, dected, rng):
        data = random_bits(rng, 512)
        word = dected.encode(data)
        word[dected.n - 1] ^= 1
        result = dected.decode(word)
        assert result.status is DecodeStatus.CORRECTED
        assert result.corrected_positions == (dected.n - 1,)

    def test_error_in_bch_parity_region(self, dected, rng):
        data = random_bits(rng, 512)
        word = dected.encode(data)
        word[[512, 520]] ^= 1  # both in the BCH parity bits
        result = dected.decode(word)
        assert result.status is DecodeStatus.CORRECTED
        assert (result.data == data).all()

    def test_mixed_parity_and_data(self, dected, rng):
        data = random_bits(rng, 512)
        word = dected.encode(data)
        word[[100, dected.n - 1]] ^= 1  # 1 cyclic + extended parity
        result = dected.decode(word)
        assert result.status is DecodeStatus.CORRECTED
        assert (result.data == data).all()

    def test_t_cyclic_plus_parity_bit_detected(self, dected, rng):
        # t cyclic errors + the extended bit = t+1 total: only
        # detection is guaranteed, and miscorrection is forbidden.
        data = random_bits(rng, 512)
        word = dected.encode(data)
        for _ in range(10):
            positions = list(rng.choice(dected.n - 1, size=2, replace=False))
            corrupted = word.copy()
            corrupted[positions] ^= 1
            corrupted[dected.n - 1] ^= 1
            result = dected.decode(corrupted)
            if result.status is DecodeStatus.CORRECTED:
                assert (result.data == data).all()
            else:
                assert result.status is DecodeStatus.DETECTED


class TestSmallBch:
    def test_exhaustive_single_and_double_small(self, rng):
        code = BchCode(k=32, t=2, extended=True)
        data = random_bits(rng, 32)
        word = code.encode(data)
        for i in range(code.n):
            corrupted = word.copy()
            corrupted[i] ^= 1
            result = code.decode(corrupted)
            assert result.status is DecodeStatus.CORRECTED, i
            assert (result.data == data).all(), i
        for i in range(0, code.n, 3):
            for j in range(i + 1, code.n, 7):
                corrupted = word.copy()
                corrupted[[i, j]] ^= 1
                result = code.decode(corrupted)
                assert result.status is DecodeStatus.CORRECTED, (i, j)
                assert (result.data == data).all(), (i, j)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_random_triple_never_miscorrects(self, seed):
        rng = np.random.default_rng(seed)
        code = BchCode(k=64, t=2, extended=True)
        data = random_bits(rng, 64)
        word = code.encode(data)
        positions = rng.choice(code.n, size=3, replace=False)
        word[positions] ^= 1
        result = code.decode(word)
        assert result.status is DecodeStatus.DETECTED
