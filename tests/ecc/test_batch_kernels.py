"""Scalar-vs-batched equivalence for the packed classification kernels.

The batched SECDED / segmented-parity / line-signal kernels are pure
reimplementations of scalar reference paths that stay in the tree;
these tests pin the two together on golden patterns and on random
error matrices.
"""

import numpy as np
import pytest

from repro.core.layout import LineLayout
from repro.core.linestate import LineErrorModel
from repro.ecc.parity import SegmentedParity
from repro.ecc.secded import SecDedCode
from repro.faults.fault_map import FaultMap
from repro.kernels.classify import LineSignalKernel
from repro.utils.bitpack import pack_positions


@pytest.fixture(scope="module")
def secded():
    return SecDedCode(512)


@pytest.fixture(scope="module")
def kernel():
    return LineSignalKernel(LineLayout())


def _reference_model(interleaved: bool = True) -> LineErrorModel:
    """A LineErrorModel used purely for its scalar signals_for_positions."""
    fault_map = FaultMap.from_faults(n_lines=1, faults={})
    return LineErrorModel(
        fault_map,
        0.6,
        np.random.default_rng(0),
        interleaved_parity=interleaved,
    )


class TestSecDedBatch:
    def test_golden_pinned_syndromes(self, secded):
        # Column codes are the non-powers-of-two in increasing order:
        # position 0 -> 3, 1 -> 5, 2 -> 6; checkbit j -> 1 << j; the
        # global parity position (n - 1) contributes nothing.
        cases = [
            ([], 0),
            ([0], 3),
            ([1], 5),
            ([0, 1], 3 ^ 5),
            ([0, 1, 2], 3 ^ 5 ^ 6),
            ([512], 1),  # checkbit 0
            ([513], 2),  # checkbit 1
            ([522], 0),  # global parity: no column code
            ([0, 522], 3),
        ]
        packed = np.stack(
            [pack_positions(positions, secded.n) for positions, _ in cases]
        )
        syndromes = secded.syndromes_of_error_matrix(packed)
        for (positions, expected), got in zip(cases, syndromes):
            assert int(got) == expected, positions
            assert secded.syndrome_of_error_positions(positions) == expected

    def test_matches_scalar_on_random_matrices(self, secded, rng):
        rows = []
        expected = []
        for _ in range(200):
            k = int(rng.integers(0, 8))
            positions = rng.choice(secded.n, size=k, replace=False)
            rows.append(pack_positions(positions, secded.n))
            expected.append(secded.syndrome_of_error_positions(positions))
        got = secded.syndromes_of_error_matrix(np.stack(rows))
        assert got.tolist() == expected

    def test_parity_flips_match_weight_parity(self, secded, rng):
        rows = []
        weights = []
        for _ in range(100):
            k = int(rng.integers(0, 9))
            positions = rng.choice(secded.n, size=k, replace=False)
            rows.append(pack_positions(positions, secded.n))
            weights.append(k)
        flips = secded.parity_flips_of_error_matrix(np.stack(rows))
        assert flips.tolist() == [w % 2 == 1 for w in weights]

    def test_word_count_validated(self, secded):
        with pytest.raises(ValueError):
            secded.syndromes_of_error_matrix(np.zeros((2, 3), dtype=np.uint64))


class TestSegmentedParityBatch:
    @pytest.mark.parametrize("n_segments", [4, 16])
    @pytest.mark.parametrize("interleaved", [True, False])
    def test_generate_batch_matches_scalar(self, rng, n_segments, interleaved):
        parity = SegmentedParity(512, n_segments, interleaved=interleaved)
        data = (rng.random((32, 512)) < 0.1).astype(np.uint8)
        batch = parity.generate_batch(data)
        for i in range(32):
            assert np.array_equal(batch[i], parity.generate(data[i]))

    def test_mismatches_batch_matches_scalar(self, rng):
        parity = SegmentedParity(512, 16)
        data = (rng.random((24, 512)) < 0.05).astype(np.uint8)
        stored = (rng.random((24, 16)) < 0.5).astype(np.uint8)
        batch = parity.mismatches_batch(data, stored)
        counts = parity.mismatch_counts(data, stored)
        for i in range(24):
            assert np.array_equal(batch[i], parity.mismatches(data[i], stored[i]))
            assert counts[i] == parity.mismatch_count(data[i], stored[i])

    def test_shape_validation(self):
        parity = SegmentedParity(512, 16)
        with pytest.raises(ValueError):
            parity.generate_batch(np.zeros((2, 100), dtype=np.uint8))
        with pytest.raises(ValueError):
            parity.mismatches_batch(
                np.zeros((2, 512), dtype=np.uint8), np.zeros((2, 4), dtype=np.uint8)
            )


def _random_offset_sets(rng, total_bits, n, k_hi):
    sets = []
    for _ in range(n):
        k = int(rng.integers(0, k_hi))
        sets.append(sorted(int(o) for o in rng.choice(total_bits, size=k, replace=False)))
    return sets


class TestLineSignalKernel:
    @pytest.mark.parametrize("n_segments,use_ecc", [(16, True), (4, True), (4, False)])
    @pytest.mark.parametrize("interleaved", [True, False])
    def test_all_paths_match_scalar_reference(
        self, rng, n_segments, use_ecc, interleaved
    ):
        layout = LineLayout()
        kernel = LineSignalKernel(layout, interleaved=interleaved)
        reference = _reference_model(interleaved)
        offset_sets = _random_offset_sets(rng, layout.total_bits, 150, 9)

        k_max = max((len(s) for s in offset_sets), default=0) or 1
        offsets = np.zeros((len(offset_sets), k_max), dtype=np.int64)
        valid = np.zeros((len(offset_sets), k_max), dtype=bool)
        packed = []
        for i, positions in enumerate(offset_sets):
            offsets[i, : len(positions)] = positions
            valid[i, : len(positions)] = True
            packed.append(pack_positions(positions, layout.total_bits))
        packed = np.stack(packed)

        m_sp, m_sz, m_pok, m_derr = kernel.signals_matrix(
            packed, n_segments, use_ecc
        )
        o_sp, o_sz, o_pok, o_derr = kernel.signals_from_offsets(
            offsets, valid, n_segments, use_ecc
        )
        for i, positions in enumerate(offset_sets):
            want = reference.signals_for_positions(positions, n_segments, use_ecc)
            row = kernel.signals_row(packed[i], n_segments, use_ecc)
            for name, got in (
                ("matrix", (m_sp[i], m_sz[i], m_pok[i], m_derr[i])),
                ("offsets", (o_sp[i], o_sz[i], o_pok[i], o_derr[i])),
                ("row", row),
            ):
                assert (
                    int(got[0]),
                    bool(got[1]),
                    bool(got[2]),
                    int(got[3]),
                ) == (
                    want.sp_mismatches,
                    want.syndrome_zero,
                    want.global_parity_ok,
                    want.data_error_bits,
                ), (name, positions)

    def test_codeword_weights(self, kernel, rng):
        layout = LineLayout()
        for _ in range(50):
            k = int(rng.integers(0, 10))
            positions = rng.choice(layout.total_bits, size=k, replace=False)
            packed = pack_positions(positions, layout.total_bits)
            expected = sum(1 for o in positions if not layout.is_parity(int(o)))
            assert int(kernel.codeword_weights(packed)[0]) == expected
            offsets = positions[None, :].astype(np.int64)
            valid = np.ones_like(offsets, dtype=bool)
            if k:
                assert (
                    int(kernel.codeword_weights_from_offsets(offsets, valid)[0])
                    == expected
                )

    def test_signature_table_width_guard(self):
        layout = LineLayout()
        kernel = LineSignalKernel(layout)
        with pytest.raises(ValueError):
            kernel.signature_table(64)

    def test_mismatched_secded_rejected(self):
        with pytest.raises(ValueError):
            LineSignalKernel(LineLayout(), SecDedCode(64))
