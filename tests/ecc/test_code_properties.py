"""Cross-code property tests: invariants every code must satisfy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.base import DecodeStatus
from repro.ecc.bch import BchCode
from repro.ecc.olsc import OlscCode
from repro.ecc.registry import (
    CODE_REGISTRY,
    checkbits_for,
    correction_capability,
    make_code,
)
from repro.ecc.secded import SecDedCode
from repro.utils.bitvec import random_bits

SMALL_CODES = {
    "secded": lambda: SecDedCode(64),
    "dected": lambda: BchCode(k=64, t=2, extended=True),
    "olsc-t2": lambda: OlscCode(64, t=2, m=11),
}


@pytest.fixture(params=sorted(SMALL_CODES))
def code(request):
    return SMALL_CODES[request.param]()


class TestUniversalProperties:
    def test_systematic(self, code, rng):
        data = random_bits(rng, code.k)
        assert (code.encode(data)[: code.k] == data).all()

    def test_zero_maps_to_zero(self, code):
        assert not code.encode(np.zeros(code.k, dtype=np.uint8)).any()

    def test_linearity(self, code, rng):
        a = random_bits(rng, code.k)
        b = random_bits(rng, code.k)
        assert (code.encode(a ^ b) == (code.encode(a) ^ code.encode(b))).all()

    def test_clean_decode_is_identity(self, code, rng):
        data = random_bits(rng, code.k)
        result = code.decode(code.encode(data))
        assert result.status is DecodeStatus.CLEAN
        assert (result.data == data).all()

    def test_checkbits_attribute(self, code):
        assert code.checkbits == code.n - code.k

    def test_single_error_always_corrected(self, code, rng):
        data = random_bits(rng, code.k)
        word = code.encode(data)
        for _ in range(20):
            position = int(rng.integers(0, code.n))
            corrupted = word.copy()
            corrupted[position] ^= 1
            result = code.decode(corrupted)
            assert (result.data == data).all(), position


class TestMinimumDistanceSampling:
    """Sampled lower-bound check: no two random codewords are closer
    than the design distance implies."""

    @pytest.mark.parametrize("name,min_distance", [
        ("secded", 4),
        ("dected", 6),
    ])
    def test_sampled_distance(self, name, min_distance, rng):
        code = SMALL_CODES[name]()
        words = [code.encode(random_bits(rng, code.k)) for _ in range(60)]
        for i in range(len(words)):
            for j in range(i + 1, len(words)):
                weight = int(np.count_nonzero(words[i] ^ words[j]))
                if weight:
                    assert weight >= min_distance


class TestRegistryConsistency:
    @pytest.mark.parametrize("name", sorted(CODE_REGISTRY))
    def test_checkbits_match_construction(self, name):
        code = make_code(name, 512)
        assert code.checkbits == checkbits_for(name, 512)

    @pytest.mark.parametrize("name", ["secded", "dected", "tecqed"])
    def test_capability_honoured(self, name, rng):
        # Each registry code must actually correct its advertised t.
        t = correction_capability(name)
        code = make_code(name, 512)
        data = random_bits(rng, 512)
        word = code.encode(data)
        positions = rng.choice(code.n, size=t, replace=False)
        word[positions] ^= 1
        result = code.decode(word)
        assert (result.data == data).all()

    def test_registry_complete(self):
        assert {"secded", "dected", "tecqed", "6ec7ed", "olsc-t11"} <= set(
            CODE_REGISTRY
        )


class TestSyndromeLinearity:
    @given(st.lists(st.integers(min_value=0, max_value=522), min_size=0,
                    max_size=6, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_sparse_syndrome_matches_dense(self, positions):
        # The production fast path (syndrome of an error vector) must
        # equal the dense decode's view for any flip set.
        code = SecDedCode(512)
        word = np.zeros(code.n, dtype=np.uint8)
        word[positions] = 1
        dense = code._syndrome(word)
        sparse = code.syndrome_of_error_positions(positions)
        assert dense == sparse
