"""Tests for GF(2^m) arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.gf2m import DEFAULT_PRIMITIVE_POLYS, GF2m


@pytest.fixture(scope="module")
def gf8():
    return GF2m(3)


@pytest.fixture(scope="module")
def gf1024():
    return GF2m(10)


class TestConstruction:
    @pytest.mark.parametrize("m", sorted(DEFAULT_PRIMITIVE_POLYS))
    def test_default_polys_are_primitive(self, m):
        gf = GF2m(m)
        assert gf.size == 1 << m

    def test_unknown_degree_needs_poly(self):
        with pytest.raises(ValueError):
            GF2m(20)

    def test_non_primitive_poly_rejected(self):
        # x^3 + x^2 + x + 1 = (x+1)(x^2+1) is reducible.
        with pytest.raises(ValueError):
            GF2m(3, primitive_poly=0b1111)


class TestFieldAxioms:
    def test_mul_by_zero(self, gf8):
        assert gf8.mul(0, 5) == 0
        assert gf8.mul(5, 0) == 0

    def test_mul_identity(self, gf8):
        for a in range(1, 8):
            assert gf8.mul(a, 1) == a

    def test_exhaustive_associativity_gf8(self, gf8):
        for a in range(8):
            for b in range(8):
                for c in range(8):
                    assert gf8.mul(gf8.mul(a, b), c) == gf8.mul(a, gf8.mul(b, c))

    def test_exhaustive_commutativity_gf8(self, gf8):
        for a in range(8):
            for b in range(8):
                assert gf8.mul(a, b) == gf8.mul(b, a)

    def test_exhaustive_distributivity_gf8(self, gf8):
        for a in range(8):
            for b in range(8):
                for c in range(8):
                    assert gf8.mul(a, b ^ c) == gf8.mul(a, b) ^ gf8.mul(a, c)

    def test_inverse(self, gf1024):
        for a in [1, 2, 3, 100, 1023]:
            assert gf1024.mul(a, gf1024.inv(a)) == 1

    def test_inverse_of_zero_raises(self, gf1024):
        with pytest.raises(ZeroDivisionError):
            gf1024.inv(0)

    def test_div(self, gf1024):
        assert gf1024.div(gf1024.mul(7, 9), 9) == 7

    def test_div_by_zero(self, gf1024):
        with pytest.raises(ZeroDivisionError):
            gf1024.div(1, 0)

    @given(st.integers(min_value=1, max_value=1023), st.integers(min_value=1, max_value=1023))
    @settings(max_examples=100)
    def test_div_inverts_mul(self, a, b):
        gf = GF2m(10)
        assert gf.div(gf.mul(a, b), b) == a


class TestPowersAndLogs:
    def test_alpha_pow_cycle(self, gf1024):
        assert gf1024.alpha_pow(0) == 1
        assert gf1024.alpha_pow(gf1024.order) == 1
        assert gf1024.alpha_pow(-1) == gf1024.inv(gf1024.alpha_pow(1))

    def test_log_roundtrip(self, gf1024):
        for i in [0, 1, 17, 1000]:
            assert gf1024.log(gf1024.alpha_pow(i)) == i % gf1024.order

    def test_log_zero_raises(self, gf1024):
        with pytest.raises(ZeroDivisionError):
            gf1024.log(0)

    def test_pow(self, gf1024):
        a = gf1024.alpha_pow(5)
        assert gf1024.pow(a, 3) == gf1024.mul(gf1024.mul(a, a), a)

    def test_pow_zero_base(self, gf1024):
        assert gf1024.pow(0, 5) == 0
        assert gf1024.pow(0, 0) == 1
        with pytest.raises(ZeroDivisionError):
            gf1024.pow(0, -1)

    def test_all_nonzero_elements_generated(self, gf8):
        generated = {gf8.alpha_pow(i) for i in range(gf8.order)}
        assert generated == set(range(1, 8))


class TestPolyEval:
    def test_constant(self, gf8):
        assert gf8.poly_eval([5], 3) == 5

    def test_linear(self, gf8):
        # p(x) = x + 1 at alpha: alpha ^ 1 ... in GF: alpha XOR 1
        alpha = gf8.alpha_pow(1)
        assert gf8.poly_eval([1, 1], alpha) == (alpha ^ 1)

    def test_root(self, gf1024):
        # (x - a) has root a.
        a = gf1024.alpha_pow(13)
        assert gf1024.poly_eval([a, 1], a) == 0


class TestMinimalPolynomials:
    def test_coset_closure(self, gf1024):
        coset = gf1024.cyclotomic_coset(1)
        assert all((2 * s) % gf1024.order in coset for s in coset)

    def test_minimal_poly_of_alpha_is_primitive_poly(self, gf1024):
        poly = gf1024.minimal_polynomial(1)
        value = sum(c << i for i, c in enumerate(poly))
        assert value == gf1024.primitive_poly

    def test_minimal_poly_has_binary_coeffs(self, gf1024):
        for s in [1, 3, 5, 11]:
            assert set(gf1024.minimal_polynomial(s)) <= {0, 1}

    def test_minimal_poly_annihilates_coset(self, gf1024):
        for s in [1, 3, 5]:
            poly = gf1024.minimal_polynomial(s)
            for j in gf1024.cyclotomic_coset(s):
                assert gf1024.poly_eval(poly, gf1024.alpha_pow(j)) == 0

    def test_minimal_poly_degree_equals_coset_size(self, gf1024):
        for s in [1, 3, 33]:
            coset = gf1024.cyclotomic_coset(s)
            poly = gf1024.minimal_polynomial(s)
            assert len(poly) - 1 == len(coset)
