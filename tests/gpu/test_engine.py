"""Tests for the GPU hierarchy and simulation engine."""

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.hooks import UnprotectedScheme
from repro.gpu.config import GpuConfig
from repro.gpu.engine import GpuSimulator
from repro.gpu.hierarchy import SimpleL1
from repro.traces.base import CuStream, Trace


def small_config(n_cus: int = 2) -> GpuConfig:
    return GpuConfig(
        n_cus=n_cus,
        l2=CacheGeometry(size_bytes=64 * 1024, line_bytes=64, associativity=8),
    )


def make_trace(n_cus: int, addrs_per_cu, stores=None, gaps=None) -> Trace:
    streams = []
    for cu in range(n_cus):
        addrs = np.array(addrs_per_cu[cu], dtype=np.int64)
        n = len(addrs)
        streams.append(
            CuStream(
                addrs=addrs,
                is_store=np.array(stores[cu] if stores else [False] * n),
                gaps=np.array(gaps[cu] if gaps else [0] * n, dtype=np.int64),
            )
        )
    return Trace("directed", streams)


class TestSimpleL1:
    def test_read_allocate(self):
        l1 = SimpleL1(CacheGeometry(size_bytes=1024, line_bytes=64, associativity=2))
        assert not l1.read(0)
        assert l1.read(0)
        assert l1.stats.read_hits == 1

    def test_write_no_allocate(self):
        l1 = SimpleL1(CacheGeometry(size_bytes=1024, line_bytes=64, associativity=2))
        assert not l1.write(0)
        assert not l1.read(0)

    def test_lru_eviction(self):
        geo = CacheGeometry(size_bytes=256, line_bytes=64, associativity=2)
        l1 = SimpleL1(geo)  # 2 sets x 2 ways
        stride = geo.n_sets * 64
        l1.read(0)
        l1.read(stride)
        l1.read(2 * stride)  # evicts addr 0
        assert not l1.read(0)
        assert l1.stats.evictions >= 1


class TestEngine:
    def test_kernel_time_is_slowest_cu(self):
        config = small_config(2)
        # CU0 does 1 access, CU1 does 10 with big gaps.
        trace = make_trace(
            2,
            [[0], [64 * i for i in range(10)]],
            gaps=[[0], [100] * 10],
        )
        result = GpuSimulator(config, UnprotectedScheme()).run(trace)
        assert result.per_cu_cycles[1] > result.per_cu_cycles[0]
        assert result.cycles == result.per_cu_cycles[1]

    def test_instruction_count(self):
        config = small_config(1)
        trace = make_trace(1, [[0, 64]], gaps=[[3, 4]])
        result = GpuSimulator(config, UnprotectedScheme()).run(trace)
        assert result.instructions == 3 + 4 + 2

    def test_l1_filters_l2(self):
        config = small_config(1)
        trace = make_trace(1, [[0] * 10])
        sim = GpuSimulator(config, UnprotectedScheme())
        result = sim.run(trace)
        assert result.l2_stats.reads == 1  # only the cold miss reached L2
        assert result.l1_stats[0].read_hits == 9

    def test_stores_write_through_both_levels(self):
        config = small_config(1)
        trace = make_trace(1, [[0, 0]], stores=[[True, True]])
        sim = GpuSimulator(config, UnprotectedScheme())
        sim.run(trace)
        assert sim.l2.memory_writes == 2

    def test_mpki(self):
        config = small_config(1)
        trace = make_trace(1, [[64 * i for i in range(100)]], gaps=[[9] * 100])
        result = GpuSimulator(config, UnprotectedScheme()).run(trace)
        # 100 cold misses over 1000 instructions.
        assert result.l2_mpki == pytest.approx(100.0)

    def test_cu_count_mismatch_rejected(self):
        config = small_config(2)
        trace = make_trace(1, [[0]])
        with pytest.raises(ValueError):
            GpuSimulator(config, UnprotectedScheme()).run(trace)

    def test_shared_l2_across_cus(self):
        config = small_config(2)
        # CU0 warms a line; CU1 hits it in L2 (its own L1 misses).
        trace = make_trace(2, [[0, 0], [0, 0]])
        sim = GpuSimulator(config, UnprotectedScheme())
        result = sim.run(trace)
        assert result.l2_stats.read_misses == 1

    def test_latency_accounting(self):
        config = small_config(1)
        trace = make_trace(1, [[0, 0]], gaps=[[0, 0]])
        result = GpuSimulator(config, UnprotectedScheme()).run(trace)
        lat = config.l2_latencies
        l1_hit = config.l1_hit_latency
        expected = (l1_hit + lat.miss) + l1_hit  # cold L2 miss, then L1 hit
        assert result.cycles == expected

    def test_ipc(self):
        config = small_config(1)
        trace = make_trace(1, [[0]], gaps=[[0]])
        result = GpuSimulator(config, UnprotectedScheme()).run(trace)
        assert 0 < result.ipc <= 1


class TestMultiKernelIsolation:
    """Regression tests for per-kernel stats snapshots.

    run_kernels used to hand every KernelResult the *live* CacheStats
    object, so finishing kernel N silently rewrote kernel 0's metrics.
    """

    def kernels(self):
        # Kernel 0: all cold misses. Kernel 1: pure re-reads (L1 hits).
        return [
            make_trace(1, [[64 * i for i in range(50)]], gaps=[[19] * 50]),
            make_trace(1, [[0] * 50], gaps=[[19] * 50]),
        ]

    def test_kernel0_metrics_survive_kernel1(self):
        sim = GpuSimulator(small_config(1), UnprotectedScheme())
        results = sim.run_kernels(self.kernels())
        first = results[0]
        mpki_before = first.l2_mpki
        misses_before = first.l2_stats.misses

        # Re-running the same kernels on a fresh simulator, kernel 0
        # alone must report the same numbers it did above.
        fresh = GpuSimulator(small_config(1), UnprotectedScheme())
        alone = fresh.run(self.kernels()[0])
        assert first.l2_mpki == pytest.approx(alone.l2_mpki)
        assert first.l2_stats.misses == alone.l2_stats.misses
        # And they were not mutated in place by kernel 1.
        assert first.l2_mpki == pytest.approx(mpki_before)
        assert first.l2_stats.misses == misses_before

    def test_results_do_not_share_stats_objects(self):
        sim = GpuSimulator(small_config(1), UnprotectedScheme())
        first, second = sim.run_kernels(self.kernels())
        assert first.l2_stats is not second.l2_stats
        assert first.l1_stats[0] is not second.l1_stats[0]
        assert first.l2_stats is not sim.l2.stats

    def test_deltas_sum_to_cumulative(self):
        sim = GpuSimulator(small_config(1), UnprotectedScheme())
        first, second = sim.run_kernels(self.kernels())
        for field in ("reads", "writes", "read_hits", "read_misses",
                      "evictions"):
            assert (
                getattr(first.l2_stats, field)
                + getattr(second.l2_stats, field)
            ) == getattr(second.l2_stats_cumulative, field)
        # The last kernel's cumulative view matches the live cache.
        assert second.l2_stats_cumulative.as_dict() == sim.l2.stats.as_dict()

    def test_single_run_delta_equals_cumulative(self):
        # On a fresh simulator, one kernel's delta IS the cumulative —
        # this is what keeps single-kernel numbers bit-identical to
        # the pre-snapshot behaviour.
        sim = GpuSimulator(small_config(1), UnprotectedScheme())
        result = sim.run(self.kernels()[0])
        assert result.l2_stats.as_dict() == result.l2_stats_cumulative.as_dict()


class TestConfigDefaults:
    def test_table3_defaults(self):
        config = GpuConfig()
        assert config.n_cus == 8
        assert config.l2.size_bytes == 2 * 1024 * 1024
        assert config.l2.associativity == 16
        assert config.l2.banks == 16
        assert config.l1_size_bytes == 16 * 1024
        assert config.l2_latencies.tag == 2
        assert config.l2_latencies.data == 2
        assert config.l2_latencies.check == 1
        assert config.l1_geometry().size_bytes == 16 * 1024
