"""Tests for the optional bank-conflict timing model."""

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.hooks import UnprotectedScheme
from repro.gpu.config import GpuConfig
from repro.gpu.engine import GpuSimulator
from repro.traces.base import CuStream, Trace


def config(model_banks: bool, n_cus: int = 4) -> GpuConfig:
    return GpuConfig(
        n_cus=n_cus,
        l2=CacheGeometry(
            size_bytes=64 * 1024, line_bytes=64, associativity=8, banks=4
        ),
        model_bank_conflicts=model_banks,
        bank_conflict_penalty=2,
    )


def same_bank_trace(geo: CacheGeometry, n_cus: int, per_cu: int) -> Trace:
    # All CUs hammer bank 0 in lockstep, each with its own (always
    # missing) addresses so every CU reaches the L2 every round.
    stride = geo.banks * geo.line_bytes  # consecutive same-bank lines
    streams = []
    for cu in range(n_cus):
        addrs = (cu * 100_000 + np.arange(per_cu, dtype=np.int64)) * stride
        streams.append(CuStream(
            addrs=addrs,
            is_store=np.zeros(per_cu, dtype=bool),
            gaps=np.zeros(per_cu, dtype=np.int64),
        ))
    return Trace("same-bank", streams)


def spread_bank_trace(geo: CacheGeometry, n_cus: int, per_cu: int) -> Trace:
    # Each CU owns its own bank.
    streams = []
    for cu in range(n_cus):
        base = (cu % geo.banks) * geo.line_bytes
        addrs = base + np.arange(per_cu, dtype=np.int64) * geo.banks * geo.line_bytes
        streams.append(CuStream(
            addrs=addrs,
            is_store=np.zeros(per_cu, dtype=bool),
            gaps=np.zeros(per_cu, dtype=np.int64),
        ))
    return Trace("spread-bank", streams)


class TestBankModel:
    def test_off_by_default(self):
        assert not GpuConfig().model_bank_conflicts

    def test_same_bank_contention_costs_cycles(self):
        cfg_off = config(False)
        cfg_on = config(True)
        trace = same_bank_trace(cfg_on.l2, cfg_on.n_cus, 200)
        off = GpuSimulator(cfg_off, UnprotectedScheme()).run(trace)
        on = GpuSimulator(cfg_on, UnprotectedScheme()).run(trace)
        assert on.cycles > off.cycles
        # 4 CUs on one bank: the last CU in each round queues behind 3.
        assert on.cycles - off.cycles >= 3 * 2 * 100

    def test_spread_banks_no_penalty(self):
        cfg_on = config(True)
        trace = spread_bank_trace(cfg_on.l2, cfg_on.n_cus, 200)
        off = GpuSimulator(config(False), UnprotectedScheme()).run(trace)
        on = GpuSimulator(cfg_on, UnprotectedScheme()).run(trace)
        assert on.cycles == off.cycles

    def test_l1_hits_never_pay_bank_penalty(self):
        cfg_on = config(True, n_cus=1)
        # One CU re-reading one line: everything after the cold miss is
        # an L1 hit and must not touch the bank model.
        addrs = np.zeros(100, dtype=np.int64)
        trace = Trace("l1", [CuStream(
            addrs=addrs, is_store=np.zeros(100, dtype=bool),
            gaps=np.zeros(100, dtype=np.int64),
        )])
        on = GpuSimulator(cfg_on, UnprotectedScheme()).run(trace)
        off = GpuSimulator(config(False, n_cus=1), UnprotectedScheme()).run(trace)
        assert on.cycles == off.cycles

    def test_bank_delay_helper(self):
        usage: dict = {}
        assert GpuSimulator._bank_delay(usage, 0, 2) == 0
        assert GpuSimulator._bank_delay(usage, 0, 2) == 2
        assert GpuSimulator._bank_delay(usage, 0, 2) == 4
        assert GpuSimulator._bank_delay(usage, 1, 2) == 0


class TestSensitivity:
    def test_scaled_model(self):
        from repro.analysis.sensitivity import scaled_cell_model

        base = scaled_cell_model(1.0)
        scaled = scaled_cell_model(10.0)
        assert scaled.p_cell(0.625) == pytest.approx(10 * base.p_cell(0.625))
        with pytest.raises(ValueError):
            scaled_cell_model(0)

    def test_scaling_clipped(self):
        from repro.analysis.sensitivity import scaled_cell_model

        model = scaled_cell_model(1e6)
        assert model.p_cell(0.5) <= 0.5

    def test_sensitivity_run(self):
        from repro.analysis.sensitivity import pcell_sensitivity

        out = pcell_sensitivity(
            multipliers=(1.0, 10.0), ecc_ratios=(64,),
            workload="nekbone", accesses_per_cu=800,
        )
        assert out[10.0]["one_fault_lines"] > out[1.0]["one_fault_lines"]
        # Higher fault rates can only make Killi slower (or equal).
        assert out[10.0]["killi_1:64"] >= out[1.0]["killi_1:64"] - 0.002
        for row in out.values():
            assert row["killi_1:64"] >= 0.999
