"""Killi batching: cluster interpreter, per-set epochs, batch kernels.

The batched engine runs Killi cells through a cluster-exact shadow
interpreter (:mod:`repro.core.killi_replay`) instead of the per-access
loop.  These tests pin the pieces that make that sound:

- engine x substrate equivalence including the *scheme-side* state the
  generic matrix does not compare (DFH histogram, transition counts,
  SDC events, ECC-cache counters);
- a directed shared-RNG write hit that must abort the interpreter and
  replay through the real path, bit-identically;
- per-set epoch isolation (a DFH transition in one set must not evict
  memoized hits in another);
- the ECC cache's O(1) membership mirrors against the plain key lists;
- the precomputed Table 2 kernels against the reference dispatch;
- the batched fill-cleanliness predicate against its scalar form.
"""

import numpy as np
import pytest

from repro.core.dfh import (
    ACTION_CORRECT_AND_SEND,
    ACTION_ERROR_MISS,
    ACTION_SEND_CLEAN,
    Dfh,
    DfhAction,
    classify,
    classify_batch,
    classify_cached,
)
from repro.core.ecc_cache import EccCache
from repro.gpu.config import GpuConfig
from repro.gpu.engine import GpuSimulator
from repro.harness.runner import fault_map_for, make_scheme
from repro.traces import workload_trace
from repro.traces.base import CuStream, Trace
from repro.metrics import METRICS
from repro.utils.rng import RngFactory

ENGINES = ("scalar", "vectorized", "batched")
SUBSTRATES = ("object", "soa")


def build_sim(engine, substrate, scheme_name, seed, voltage=0.625):
    gpu_config = GpuConfig()
    fault_map = fault_map_for(gpu_config.l2.n_lines, seed)
    scheme = make_scheme(
        scheme_name, gpu_config, fault_map, voltage,
        RngFactory(seed).child(f"test/{scheme_name}"),
    )
    sim = GpuSimulator(gpu_config, scheme, engine=engine, substrate=substrate)
    return sim, scheme


def scheme_state_key(result, sim, scheme):
    """Everything the ISSUE pins: cycles, stats, and scheme state."""
    return (
        result.cycles,
        result.per_cu_cycles,
        result.l2_stats.as_dict(),
        sim.l2.memory_reads,
        sim.l2.memory_writes,
        scheme.sdc_events,
        scheme.hits_served,
        scheme.transitions,
        scheme.dfh_histogram(),
        scheme.disabled_fraction(),
        scheme.ecc.accesses,
        scheme.ecc.allocations,
        scheme.ecc.evictions,
        scheme.ecc.occupancy,
    )


class TestInterpreterEquivalence:
    """Engine x substrate sweep pinned on DFH/SDC/ECC scheme state.

    Runs through the differential executor (:mod:`repro.testing`),
    whose canonical snapshot carries everything the hand-rolled
    ``scheme_state_key`` sweep this replaced compared — DFH histogram,
    transition counts, SDC events, ECC-cache counters, shared-RNG
    stream position — plus full tag/recency state.
    """

    CASES = [
        ("xsbench", "killi_1:8", 21, 3000),
        ("fft", "killi_1:8", 5, 2500),
        ("comd", "killi_1:64", 7, 2500),
    ]

    @pytest.mark.parametrize("workload,scheme_name,seed,accesses", CASES)
    def test_scheme_state_bit_identical(
        self, workload, scheme_name, seed, accesses
    ):
        from repro.scenario.config import cell_scenario
        from repro.testing.differential import diff_scenario, run_scenario

        scenario = cell_scenario(
            workload, scheme_name, voltage=0.625, seed=seed,
            accesses_per_cu=accesses,
        )
        reference = run_scenario(scenario, "scalar", "object")
        histogram = reference.snapshot["scheme"]["dfh_histogram"]
        assert sum(histogram.values()) == GpuConfig().l2.n_lines
        divergence = diff_scenario(scenario)
        assert divergence is None, divergence.describe()

    def test_multi_kernel_dfh_carryover(self):
        """DFH training persists across kernels (paper footnote 6):
        the interpreter must resume from committed state, not reset."""

        def run(engine):
            sim, scheme = build_sim(engine, "soa", "killi_1:8", 31)
            rng = RngFactory(31)
            traces = [
                workload_trace(
                    "xsbench", 1200, n_cus=sim.config.n_cus,
                    rng=rng.stream(f"trace/k{i}"),
                )
                for i in range(3)
            ]
            results = sim.run_kernels(traces)
            return (
                [(r.cycles, r.per_cu_cycles, r.l2_stats.as_dict())
                 for r in results],
                scheme.transitions,
                scheme.dfh_histogram(),
                scheme.sdc_events,
            )

        reference = run("scalar")
        for engine in ENGINES[1:]:
            assert run(engine) == reference, engine


class TestDirectedRngAbort:
    """A write hit on a slot with active LV faults re-rolls masking
    with the shared RNG; the interpreter must abort there, commit its
    exact prefix, and hand the access to the real path."""

    def _find_active_slot(self, scheme):
        errors = scheme.errors
        assoc = scheme.geometry.associativity
        for slot in range(scheme.geometry.n_lines):
            if errors.slot_has_active(slot):
                return slot // assoc, slot % assoc
        pytest.fail("fault map has no active slot at this voltage")

    def _directed_trace(self, gpu_config, set_index, way):
        """Fill ways 0..way of ``set_index`` (warmup is uniform-priority,
        so distinct lines fill ascending ways), then store to the line
        that landed in ``way`` — a guaranteed write hit on the active
        slot — then keep a tail of other-set traffic behind the abort."""
        n_sets = gpu_config.l2.n_sets
        line_bytes = gpu_config.l2.line_bytes
        lines = [set_index + k * n_sets for k in range(way + 1)]
        addrs = [line * line_bytes for line in lines]
        stores = [False] * len(addrs)
        addrs.append(lines[-1] * line_bytes)
        stores.append(True)
        other = (set_index + 1) % n_sets
        for k in range(6):
            addrs.append((other + k * n_sets) * line_bytes)
            stores.append(k % 2 == 1)
        streams = [
            CuStream(
                addrs=np.array(addrs, dtype=np.int64),
                is_store=np.array(stores),
                gaps=np.zeros(len(addrs), dtype=np.int64),
            )
        ]
        for _ in range(gpu_config.n_cus - 1):
            streams.append(CuStream(
                addrs=np.array([], dtype=np.int64),
                is_store=np.array([], dtype=bool),
                gaps=np.array([], dtype=np.int64),
            ))
        return Trace("directed-abort", streams)

    def test_abort_is_taken_and_exact(self):
        seed = 21

        def run(engine, substrate):
            sim, scheme = build_sim(engine, substrate, "killi_1:8", seed)
            set_index, way = self._find_active_slot(scheme)
            trace = self._directed_trace(sim.config, set_index, way)
            result = sim.run(trace)
            return scheme_state_key(result, sim, scheme)

        reference = run("scalar", "object")
        METRICS.enable(propagate_env=False)
        try:
            METRICS.reset()
            for substrate in SUBSTRATES:
                assert run("batched", substrate) == reference, substrate
            snapshot = METRICS.snapshot()
            counters = snapshot.get("counters", snapshot)
            assert counters.get(
                "engine.batched.guard_aborts.KilliScheme", 0
            ) >= 2  # one abort per substrate run
        finally:
            METRICS.disable()
        for substrate in SUBSTRATES:
            assert run("vectorized", substrate) == reference, substrate


class TestPerSetEpochs:
    """A DFH transition invalidates memoized hits only in its own set."""

    def _memoized_cache(self):
        sim, scheme = build_sim("scalar", "soa", "killi_1:8", 21)
        l2 = sim.l2
        errors = scheme.errors
        assoc = scheme.geometry.associativity
        n_sets = scheme.geometry.n_sets
        clean_sets = [
            s for s in range(n_sets)
            if not any(errors.slot_has_active(s * assoc + w) for w in range(2))
        ]
        set_a, set_b = clean_sets[0], clean_sets[1]
        line_bytes = scheme.geometry.line_bytes
        addr_a, addr_b = set_a * line_bytes, set_b * line_bytes
        for addr in (addr_a, addr_b):
            l2.read(addr)  # miss + fill (INITIAL)
            l2.read(addr)  # dispatched hit: promote to b'00, memoize
        # From here on every read hit must come from the memo.
        def no_dispatch(set_index, way):
            raise AssertionError("memoized hit was re-dispatched")

        scheme.on_read_hit = no_dispatch
        return l2, scheme, set_a, addr_a, addr_b

    def test_transition_in_a_keeps_b_memoized(self):
        l2, scheme, set_a, addr_a, addr_b = self._memoized_cache()
        l2.read(addr_b)  # sanity: memo actually serves B
        # A real transition in set A (way 1 is still untouched INITIAL).
        scheme._set_dfh(set_a * scheme.geometry.associativity + 1,
                        int(Dfh.INITIAL), int(Dfh.STABLE_1))
        l2.read(addr_b)  # set B untouched: still memoized
        with pytest.raises(AssertionError, match="re-dispatched"):
            l2.read(addr_a)  # set A's epoch moved: must re-dispatch

    def test_global_epoch_still_invalidates_everything(self):
        l2, scheme, set_a, addr_a, addr_b = self._memoized_cache()
        l2.read(addr_b)
        l2.bump_epoch()
        with pytest.raises(AssertionError, match="re-dispatched"):
            l2.read(addr_b)

    def test_write_hit_clears_only_its_line(self):
        l2, scheme, set_a, addr_a, addr_b = self._memoized_cache()
        l2.write(addr_a)
        l2.read(addr_b)  # untouched line: still memoized
        with pytest.raises(AssertionError, match="re-dispatched"):
            l2.read(addr_a)


class TestEccCacheMirrors:
    """The O(1) membership mirrors against the authoritative key lists."""

    L2_SETS, L2_ASSOC = 32, 4

    def _random_ops(self, seed, n_ops=400):
        rng = np.random.default_rng(seed)
        mirrored = EccCache(16, 4, l2_shape=(self.L2_SETS, self.L2_ASSOC))
        plain = EccCache(16, 4)
        live = set()
        for _ in range(n_ops):
            op = rng.integers(0, 20)
            key = (int(rng.integers(0, self.L2_SETS)),
                   int(rng.integers(0, self.L2_ASSOC)))
            if op < 9:
                if key in live:
                    continue
                evicted = mirrored.insert(*key)
                assert plain.insert(*key) == evicted
                live.add(key)
                if evicted is not None:
                    live.discard(evicted)
            elif op < 14:
                assert mirrored.remove(*key) == plain.remove(*key)
                live.discard(key)
            elif op < 18:
                if key in live:
                    mirrored.touch(*key)
                    plain.touch(*key)
            else:
                mirrored.clear()
                plain.clear()
                live.clear()
        return mirrored, plain, live

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mirror_matches_key_lists(self, seed):
        mirrored, plain, live = self._random_ops(seed)
        assert mirrored.occupancy == plain.occupancy == len(live)
        for s in range(self.L2_SETS):
            assert mirrored.has_entries_for(s) == plain.has_entries_for(s)
            for w in range(self.L2_ASSOC):
                assert mirrored.contains(s, w) == plain.contains(s, w)
                assert mirrored.contains(s, w) == ((s, w) in live)
        assert mirrored._sets == plain._sets  # MRU order too

    def test_mirror_tracks_contention_eviction(self):
        ecc = EccCache(4, 4, l2_shape=(self.L2_SETS, self.L2_ASSOC))
        for i, l2_set in enumerate([0, 1, 2, 3]):
            ecc.insert(l2_set, i)
        evicted = ecc.insert(4, 0)  # single-set cache: LRU falls out
        assert evicted == (0, 0)
        assert not ecc.contains(0, 0)
        assert not ecc.has_entries_for(0)
        assert ecc.contains(4, 0)


SIGNAL_SPACE = [
    (dfh, sp, syn, gp)
    for dfh in (Dfh.STABLE_0, Dfh.INITIAL, Dfh.STABLE_1)
    for sp in (0, 1, 2, 3, 7)
    for syn in (False, True)
    for gp in (False, True)
]


class TestBatchKernels:
    """Precomputed Table 2 views against the reference dispatch."""

    def test_cached_matches_reference_everywhere(self):
        for dfh, sp, syn, gp in SIGNAL_SPACE:
            assert classify_cached(int(dfh), sp, syn, gp) == classify(
                dfh, sp, syn, gp
            )

    def test_cached_rejects_disabled(self):
        with pytest.raises(ValueError):
            classify_cached(3, 0, True, True)

    def test_batch_matches_reference_everywhere(self):
        dfhs = np.array([int(c[0]) for c in SIGNAL_SPACE], dtype=np.int8)
        sps = np.array([c[1] for c in SIGNAL_SPACE], dtype=np.int64)
        syns = np.array([c[2] for c in SIGNAL_SPACE])
        gps = np.array([c[3] for c in SIGNAL_SPACE])
        nxt, act, free = classify_batch(dfhs, sps, syns, gps)
        code = {
            DfhAction.SEND_CLEAN: ACTION_SEND_CLEAN,
            DfhAction.CORRECT_AND_SEND: ACTION_CORRECT_AND_SEND,
            DfhAction.ERROR_MISS: ACTION_ERROR_MISS,
        }
        for i, (dfh, sp, syn, gp) in enumerate(SIGNAL_SPACE):
            cls = classify(dfh, sp, syn, gp)
            assert nxt[i] == int(cls.next_dfh)
            assert act[i] == code[cls.action]
            assert free[i] == cls.free_ecc_entry

    def test_batch_rejects_disabled(self):
        with pytest.raises(ValueError):
            classify_batch(
                np.array([0, 3], dtype=np.int8),
                np.zeros(2, dtype=np.int64),
                np.ones(2, dtype=bool),
                np.ones(2, dtype=bool),
            )


class TestBatchedFillPredicate:
    """``fills_would_be_clean`` against the scalar ``fill_would_be_clean``."""

    def test_matches_scalar_over_fault_census(self):
        _, scheme = build_sim("scalar", "soa", "killi_1:8", 21)
        errors = scheme.errors
        n_lines = scheme.geometry.n_lines
        rng = np.random.default_rng(17)
        slots = rng.integers(0, n_lines, 512, dtype=np.int64)
        salts = rng.integers(0, 64, 512, dtype=np.int64)
        batched = errors.fills_would_be_clean(slots, salts)
        scalar = [
            errors.fill_would_be_clean(int(slot), int(salt))
            for slot, salt in zip(slots, salts)
        ]
        assert batched.tolist() == scalar
        # The census must actually contain both outcomes at 0.625V.
        assert not batched.all() and batched.any()
