"""Engine equivalence: scalar vs vectorized vs batched.

The acceptance contract for the fast paths: for every workload,
scheme, substrate and engine, all inner loops produce bit-identical
cycles, per-CU cycles and every CacheStats counter (L2 and all L1s).
Pinned here on a workload x scheme matrix, a seeded randomized fuzz
sweep, and directed edge cases (ragged streams, bank conflicts, empty
traces, disabled ways, guard aborts, 100%-fallback schemes,
write-back cells, multi-kernel runs).
"""

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.hooks import UnprotectedScheme
from repro.gpu.config import GpuConfig
from repro.gpu.engine import GpuSimulator
from repro.harness.runner import CellSpec, fault_map_for, make_scheme, run_cell
from repro.traces import workload_trace
from repro.traces.base import CuStream, Trace
from repro.metrics import METRICS
from repro.utils.rng import RngFactory

ENGINES = ("scalar", "vectorized", "batched")
SUBSTRATES = ("object", "soa")
WORKLOADS = ("fft", "xsbench", "nekbone")
SCHEMES = ("baseline", "killi_1:64", "dected")


def run_with(
    engine: str,
    workload: str,
    scheme_name: str,
    seed: int = 21,
    substrate: str = "soa",
    accesses: int = 700,
):
    gpu_config = GpuConfig()
    fault_map = fault_map_for(gpu_config.l2.n_lines, seed)
    trace = workload_trace(
        workload, accesses, n_cus=gpu_config.n_cus,
        rng=RngFactory(seed).stream(f"trace/{workload}"),
    )
    scheme = make_scheme(
        scheme_name, gpu_config, fault_map, 0.625,
        RngFactory(seed).child(f"{workload}/{scheme_name}"),
    )
    simulator = GpuSimulator(
        gpu_config, scheme, engine=engine, substrate=substrate
    )
    result = simulator.run(trace)
    return result, simulator


def result_key(result, simulator):
    return (
        result.cycles,
        result.per_cu_cycles,
        result.instructions,
        result.l2_stats.as_dict(),
        [s.as_dict() for s in result.l1_stats],
        simulator.l2.memory_reads,
        simulator.l2.memory_writes,
    )


def assert_identical(workload: str, scheme_name: str, **kwargs):
    reference = result_key(*run_with("scalar", workload, scheme_name, **kwargs))
    for engine in ENGINES[1:]:
        for substrate in SUBSTRATES:
            got = result_key(*run_with(
                engine, workload, scheme_name, substrate=substrate, **kwargs
            ))
            assert got == reference, (engine, substrate, workload, scheme_name)


class TestWorkloadSchemeMatrix:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_bit_identical(self, workload, scheme):
        assert_identical(workload, scheme)


class TestRandomizedSweep:
    """Seeded fuzz: random (workload, scheme, seed) cells, all engines,
    through the differential executor (:mod:`repro.testing`).

    Strictly stronger than the hand-rolled ``run_cell`` loop this
    replaced: the oracle diffs the full canonical state snapshot —
    tags, recency orders, DFH state, RNG stream position — not just
    the result dict.  The scheme sample covers the inert baseline, all
    three MBIST-oracle families (per-way CORRECTED replay, disabled
    ways, FLAIR's configuration-gated filtering) and two Killi ratios
    (guarded replay, DFH warmup fallback).
    """

    CASES = [
        ("xsbench", "baseline", 3),
        ("fft", "dected", 4),
        ("lulesh", "flair", 5),
        ("snap", "msecc", 6),
        ("comd", "killi_1:8", 7),
        ("minife", "killi_1:64", 8),
        ("hpgmg", "dected", 9),
        ("pennant", "killi_1:8", 10),
    ]

    @pytest.mark.parametrize("workload,scheme,seed", CASES)
    def test_fuzzed_cell(self, workload, scheme, seed):
        from repro.scenario.config import cell_scenario
        from repro.testing.differential import diff_scenario

        rng = np.random.default_rng(seed)
        accesses = int(rng.integers(300, 900))
        scenario = cell_scenario(
            workload, scheme, voltage=0.625, seed=seed,
            accesses_per_cu=accesses,
        )
        divergence = diff_scenario(scenario)
        assert divergence is None, divergence.describe()


def make_trace(addrs_per_cu, stores=None, gaps=None) -> Trace:
    streams = []
    for cu, addrs in enumerate(addrs_per_cu):
        n = len(addrs)
        streams.append(CuStream(
            addrs=np.array(addrs, dtype=np.int64),
            is_store=np.array(stores[cu] if stores else [False] * n),
            gaps=np.array(gaps[cu] if gaps else [0] * n, dtype=np.int64),
        ))
    return Trace("directed", streams)


def random_trace(rng, n_cus=3, footprint=256 * 1024):
    """Fuzzed directed trace: ragged lengths, mixed stores, gaps."""
    addrs, stores, gaps = [], [], []
    for _ in range(n_cus):
        n = int(rng.integers(0, 120))
        addrs.append((rng.integers(0, footprint // 64, n) * 64).tolist())
        stores.append((rng.random(n) < 0.3).tolist())
        gaps.append(rng.integers(0, 4, n).tolist())
    return make_trace(addrs, stores=stores, gaps=gaps)


def small_config(**kwargs) -> GpuConfig:
    return GpuConfig(
        n_cus=3,
        l2=CacheGeometry(size_bytes=64 * 1024, line_bytes=64,
                         associativity=8, banks=4),
        **kwargs,
    )


class TestDirectedEdgeCases:
    def run_all(self, config, trace, scheme_factory=UnprotectedScheme,
                prepare=None):
        results = []
        for engine in ENGINES:
            for substrate in SUBSTRATES:
                sim = GpuSimulator(config, scheme_factory(), engine=engine,
                                   substrate=substrate)
                if prepare is not None:
                    prepare(sim)
                r = sim.run(trace)
                results.append((r.cycles, r.per_cu_cycles,
                                r.l2_stats.as_dict()))
        return results

    def assert_all_equal(self, results):
        for got in results[1:]:
            assert got == results[0]
        return results[0]

    def test_ragged_stream_lengths(self):
        # CUs exhaust at different rounds; the tail interleave must match.
        trace = make_trace(
            [[64 * i for i in range(17)], [0], [64 * i for i in range(5)]],
            gaps=[[1] * 17, [7], [3] * 5],
        )
        self.assert_all_equal(self.run_all(small_config(), trace))

    def test_empty_streams(self):
        trace = make_trace([[], [], []])
        ref = self.assert_all_equal(self.run_all(small_config(), trace))
        assert ref[0] == 0

    def test_bank_conflicts(self):
        # All CUs hammer the same bank every round: queueing delays on.
        config = small_config(model_bank_conflicts=True)
        stride = config.l2.n_sets * 64  # same set (hence bank) each time
        trace = make_trace(
            [[stride * i for i in range(12)] for _ in range(3)],
        )
        self.assert_all_equal(self.run_all(config, trace))

    def test_stores_and_loads_mixed(self):
        trace = make_trace(
            [[0, 64, 0, 128], [64, 64, 192, 0], [0, 0, 0, 0]],
            stores=[[True, False, False, True],
                    [False, True, False, False],
                    [True, True, False, False]],
            gaps=[[2, 0, 5, 1], [0, 0, 0, 9], [1, 1, 1, 1]],
        )
        self.assert_all_equal(self.run_all(small_config(), trace))

    def test_fuzzed_directed_traces(self):
        for seed in range(6):
            rng = np.random.default_rng(100 + seed)
            trace = random_trace(rng)
            config = small_config(
                model_bank_conflicts=bool(seed % 2),
            )
            self.assert_all_equal(self.run_all(config, trace))

    def test_disabled_ways_still_batch(self):
        """Partially-disabled sets replay (disabled ways never fill)."""
        rng = np.random.default_rng(42)
        trace = random_trace(rng, footprint=32 * 1024)

        def disable_some(sim):
            for set_index in range(0, sim.l2.geometry.n_sets, 3):
                sim.l2.tags.disable(set_index, 0)
                sim.l2.tags.disable(set_index, 5)

        self.assert_all_equal(self.run_all(
            small_config(), trace, prepare=disable_some,
        ))

    def test_multi_kernel_state_carryover(self):
        rng = np.random.default_rng(77)
        traces = [random_trace(rng), random_trace(rng)]
        results = []
        for engine in ENGINES:
            for substrate in SUBSTRATES:
                sim = GpuSimulator(small_config(), UnprotectedScheme(),
                                   engine=engine, substrate=substrate)
                rs = sim.run_kernels(traces)
                results.append([
                    (r.cycles, r.per_cu_cycles, r.l2_stats.as_dict())
                    for r in rs
                ])
        for got in results[1:]:
            assert got == results[0]


class FallbackScheme(UnprotectedScheme):
    """Overrides a behavioural hook: every replay probe must refuse."""

    def __init__(self):
        super().__init__()
        self.fills = 0

    def on_fill(self, set_index: int, way: int) -> None:
        self.fills += 1


class AbortingScheme(UnprotectedScheme):
    """Spurious guard aborts: the guard may abort any time (the engine
    then falls back per-access, which is always exact), so an
    over-eager guard must never change results — only slow things
    down.  Way 0 is 'unsafe' and every third line 'unmaskable'."""

    def set_replay_profile(self, set_index: int):
        def fill_ok(way, line):
            return line % 3 != 1

        return ((False, 0, 0), None, (frozenset([0]), fill_ok))


class TestBatchedFallback:
    def _counters(self):
        snap = METRICS.snapshot()
        return snap.get("counters", snap)

    def run_batched_vs_scalar(self, scheme_factory, trace, config=None):
        config = config or small_config()
        outs = []
        for engine in ("scalar", "batched"):
            sim = GpuSimulator(config, scheme_factory(), engine=engine,
                               substrate="soa")
            r = sim.run(trace)
            outs.append((r.cycles, r.per_cu_cycles, r.l2_stats.as_dict()))
        assert outs[0] == outs[1]

    def test_hook_override_forces_full_fallback(self):
        """A scheme with any overridden hook batches nothing."""
        rng = np.random.default_rng(11)
        trace = random_trace(rng)
        METRICS.enable(propagate_env=False)
        try:
            METRICS.reset()
            self.run_batched_vs_scalar(FallbackScheme, trace)
            counters = self._counters()
            assert counters.get("engine.batched.accesses_batched", 0) == 0
            n = sum(len(s.addrs) for s in trace.streams)
            residue = counters.get("engine.batched.accesses_fallback", 0)
            assert 0 < residue <= n
        finally:
            METRICS.disable()

    def test_spurious_guard_aborts_are_exact(self):
        rng = np.random.default_rng(12)
        trace = random_trace(rng, footprint=32 * 1024)
        METRICS.enable(propagate_env=False)
        try:
            METRICS.reset()
            self.run_batched_vs_scalar(AbortingScheme, trace)
            counters = self._counters()
            # The guard aborts constantly but sets without unsafe events
            # still batch.
            assert counters.get("engine.batched.accesses_batched", 0) > 0
            assert counters.get("engine.batched.accesses_fallback", 0) > 0
        finally:
            METRICS.disable()

    def test_small_probe_interval(self, monkeypatch):
        """Aggressive re-probing changes scheduling, never results."""
        monkeypatch.setattr(GpuSimulator, "BATCH_PROBE_INTERVAL", 1)
        monkeypatch.setattr(GpuSimulator, "BATCH_PROBE_INTERVAL_MAX", 2)
        assert_identical("xsbench", "killi_1:64", accesses=400)

    def test_corrected_way_replay(self):
        """Oracle sets containing correctable faulty ways batch with
        per-way CORRECTED hits — and those hits actually occur."""
        result, _ = run_with("batched", "xsbench", "dected")
        assert result.l2_stats.as_dict()["corrected_reads"] > 0
        assert_identical("xsbench", "dected")

    def test_write_back_cells_fall_back(self):
        """The write-back L2 swaps the access protocol: the batched
        engine must take the exact per-access path wholesale."""
        for scheme in ("killi_1:8", "killi_1:64"):
            ref = None
            for engine in ENGINES:
                spec = CellSpec(
                    workload="fft", scheme=scheme, seed=13,
                    accesses_per_cu=400, write_back=True, engine=engine,
                    substrate="soa",
                )
                d = run_cell(spec).to_dict()
                d.pop("elapsed_s", None)
                d.pop("from_cache", None)
                if ref is None:
                    ref = d
                else:
                    assert d == ref, (scheme, engine)


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            GpuSimulator(small_config(), UnprotectedScheme(), engine="turbo")
        sim = GpuSimulator(small_config(), UnprotectedScheme())
        with pytest.raises(ValueError):
            sim.run(make_trace([[], [], []]), engine="turbo")

    def test_per_run_override(self):
        sim = GpuSimulator(small_config(), UnprotectedScheme(),
                           engine="vectorized")
        trace = make_trace([[0, 64], [128], [192]])
        result = sim.run(trace, engine="scalar")
        assert result.cycles > 0

    def test_registry_lists_all_engines(self):
        from repro.scenario.registries import ENGINE_REGISTRY

        names = ENGINE_REGISTRY.names()
        for engine in ENGINES:
            assert engine in names
