"""Scalar-vs-vectorized engine equivalence.

The acceptance contract for the fast path: for every workload and
scheme, both inner loops produce bit-identical cycles, per-CU cycles
and every CacheStats counter (L2 and all L1s).  Pinned here on three
workloads x two schemes, plus directed edge cases (ragged streams,
bank conflicts, empty traces).
"""

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.protection import UnprotectedScheme
from repro.gpu.config import GpuConfig
from repro.gpu.engine import GpuSimulator
from repro.harness.runner import fault_map_for, make_scheme
from repro.traces import workload_trace
from repro.traces.base import CuStream, Trace
from repro.utils.rng import RngFactory

WORKLOADS = ("fft", "xsbench", "nekbone")
SCHEMES = ("baseline", "killi_1:64")


def run_with(engine: str, workload: str, scheme_name: str, seed: int = 21):
    gpu_config = GpuConfig()
    fault_map = fault_map_for(gpu_config.l2.n_lines, seed)
    trace = workload_trace(
        workload, 700, n_cus=gpu_config.n_cus,
        rng=RngFactory(seed).stream(f"trace/{workload}"),
    )
    scheme = make_scheme(
        scheme_name, gpu_config, fault_map, 0.625,
        RngFactory(seed).child(f"{workload}/{scheme_name}"),
    )
    simulator = GpuSimulator(gpu_config, scheme, engine=engine)
    result = simulator.run(trace)
    return result, simulator


def assert_identical(workload: str, scheme_name: str, **kwargs):
    scalar, scalar_sim = run_with("scalar", workload, scheme_name, **kwargs)
    vector, vector_sim = run_with("vectorized", workload, scheme_name, **kwargs)
    assert scalar.cycles == vector.cycles
    assert scalar.per_cu_cycles == vector.per_cu_cycles
    assert scalar.instructions == vector.instructions
    assert scalar.l2_stats.as_dict() == vector.l2_stats.as_dict()
    for a, b in zip(scalar.l1_stats, vector.l1_stats):
        assert a.as_dict() == b.as_dict()
    assert scalar_sim.l2.memory_reads == vector_sim.l2.memory_reads
    assert scalar_sim.l2.memory_writes == vector_sim.l2.memory_writes


class TestWorkloadSchemeMatrix:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_bit_identical(self, workload, scheme):
        assert_identical(workload, scheme)


def make_trace(addrs_per_cu, stores=None, gaps=None) -> Trace:
    streams = []
    for cu, addrs in enumerate(addrs_per_cu):
        n = len(addrs)
        streams.append(CuStream(
            addrs=np.array(addrs, dtype=np.int64),
            is_store=np.array(stores[cu] if stores else [False] * n),
            gaps=np.array(gaps[cu] if gaps else [0] * n, dtype=np.int64),
        ))
    return Trace("directed", streams)


def small_config(**kwargs) -> GpuConfig:
    return GpuConfig(
        n_cus=3,
        l2=CacheGeometry(size_bytes=64 * 1024, line_bytes=64,
                         associativity=8, banks=4),
        **kwargs,
    )


class TestDirectedEdgeCases:
    def run_both(self, config, trace):
        results = []
        for engine in ("scalar", "vectorized"):
            sim = GpuSimulator(config, UnprotectedScheme(), engine=engine)
            r = sim.run(trace)
            results.append((r.cycles, r.per_cu_cycles, r.l2_stats.as_dict()))
        return results

    def test_ragged_stream_lengths(self):
        # CUs exhaust at different rounds; the tail interleave must match.
        trace = make_trace(
            [[64 * i for i in range(17)], [0], [64 * i for i in range(5)]],
            gaps=[[1] * 17, [7], [3] * 5],
        )
        scalar, vector = self.run_both(small_config(), trace)
        assert scalar == vector

    def test_empty_streams(self):
        trace = make_trace([[], [], []])
        scalar, vector = self.run_both(small_config(), trace)
        assert scalar == vector
        assert scalar[0] == 0

    def test_bank_conflicts(self):
        # All CUs hammer the same bank every round: queueing delays on.
        config = small_config(model_bank_conflicts=True)
        stride = config.l2.n_sets * 64  # same set (hence bank) each time
        trace = make_trace(
            [[stride * i for i in range(12)] for _ in range(3)],
        )
        scalar, vector = self.run_both(config, trace)
        assert scalar == vector

    def test_stores_and_loads_mixed(self):
        trace = make_trace(
            [[0, 64, 0, 128], [64, 64, 192, 0], [0, 0, 0, 0]],
            stores=[[True, False, False, True],
                    [False, True, False, False],
                    [True, True, False, False]],
            gaps=[[2, 0, 5, 1], [0, 0, 0, 9], [1, 1, 1, 1]],
        )
        scalar, vector = self.run_both(small_config(), trace)
        assert scalar == vector


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            GpuSimulator(small_config(), UnprotectedScheme(), engine="turbo")
        sim = GpuSimulator(small_config(), UnprotectedScheme())
        with pytest.raises(ValueError):
            sim.run(make_trace([[], [], []]), engine="turbo")

    def test_per_run_override(self):
        sim = GpuSimulator(small_config(), UnprotectedScheme(),
                           engine="vectorized")
        trace = make_trace([[0, 64], [128], [192]])
        result = sim.run(trace, engine="scalar")
        assert result.cycles > 0
