"""Dirty-writeback accounting across every engine x substrate combo.

The write-back L2's dirty-eviction memory traffic was historically
asserted only against the object substrate; these directed tests pin
the full accounting — stats, ``memory_reads`` and ``memory_writes`` —
for every engine tier on both substrates, including the fallback the
batched tier must take for the write-back protocol.
"""

import numpy as np

from repro.cache.core import WriteBackCache
from repro.cache.geometry import CacheGeometry
from repro.cache.hooks import UnprotectedScheme
from repro.gpu.config import GpuConfig
from repro.gpu.engine import GpuSimulator
from repro.traces.base import CuStream, Trace

ENGINES = ("scalar", "vectorized", "batched")
SUBSTRATES = ("object", "soa")


def small_config() -> GpuConfig:
    return GpuConfig(
        n_cus=3,
        l2=CacheGeometry(
            size_bytes=64 * 1024, line_bytes=64, associativity=8, banks=4
        ),
    )


def make_trace(addrs_per_cu, stores) -> Trace:
    streams = []
    for addrs, st in zip(addrs_per_cu, stores):
        streams.append(
            CuStream(
                addrs=np.array(addrs, dtype=np.int64),
                is_store=np.array(st),
                gaps=np.zeros(len(addrs), dtype=np.int64),
            )
        )
    return Trace("directed-wb", streams)


def writeback_sim(config, engine, substrate) -> GpuSimulator:
    scheme = UnprotectedScheme()
    sim = GpuSimulator(config, scheme, engine=engine, substrate=substrate)
    sim.l2 = WriteBackCache(
        config.l2, scheme, config.l2_latencies, substrate=sim.substrate
    )
    return sim


def run_all_combos(trace, config=None):
    config = config or small_config()
    results = {}
    for engine in ENGINES:
        for substrate in SUBSTRATES:
            sim = writeback_sim(config, engine, substrate)
            r = sim.run(trace)
            results[(engine, substrate)] = (
                r.cycles,
                r.per_cu_cycles,
                r.l2_stats.as_dict(),
                sim.l2.memory_reads,
                sim.l2.memory_writes,
            )
    return results


def assert_identical(results):
    reference = results[("scalar", "object")]
    for combo, got in results.items():
        assert got == reference, combo
    return reference


class TestDirtyWritebacks:
    def test_dirty_evictions_hit_memory_once_everywhere(self):
        config = small_config()
        stride = config.l2.n_sets * 64
        assoc = config.l2.associativity
        # One CU dirties a whole set, then its clean read misses evict
        # every dirty line (single stream: the eviction order is exact).
        addrs = [i * stride for i in range(2 * assoc)]
        stores = [True] * assoc + [False] * assoc
        trace = make_trace([addrs, [], []], [stores, [], []])
        ref = assert_identical(run_all_combos(trace, config))
        cycles, _, stats, memory_reads, memory_writes = ref
        assert stats["evictions"] == assoc
        assert memory_writes == assoc  # one write-back per dirty line
        # Every access missed: allocate fetches for stores too.
        assert memory_reads == 2 * assoc

    def test_clean_traffic_posts_nothing(self):
        config = small_config()
        stride = config.l2.n_sets * 64
        assoc = config.l2.associativity
        addrs = [i * stride for i in range(2 * assoc)]
        trace = make_trace([addrs, [], []], [[False] * len(addrs), [], []])
        ref = assert_identical(run_all_combos(trace, config))
        _, _, stats, _, memory_writes = ref
        assert stats["evictions"] == assoc
        assert memory_writes == 0

    def test_fuzzed_mixed_streams_identical(self):
        config = small_config()
        n_sets = config.l2.n_sets
        for seed in (31, 32, 33):
            rng = np.random.default_rng(seed)
            addrs, stores = [], []
            for _ in range(3):
                n = int(rng.integers(40, 160))
                # Confine lines to 4 sets so capacity evictions (and
                # hence dirty write-backs) actually happen.
                lines = rng.integers(0, 16, n) * n_sets + rng.integers(0, 4, n)
                addrs.append((lines * 64).tolist())
                stores.append((rng.random(n) < 0.5).tolist())
            trace = make_trace(addrs, stores)
            ref = assert_identical(run_all_combos(trace, config))
            memory_writes = ref[4]
            assert memory_writes > 0  # dirty evictions occurred

    def test_write_hits_do_not_touch_memory(self):
        config = small_config()
        # Repeated stores to one resident line: allocate once, then
        # in-place dirty hits only.
        trace = make_trace([[0] * 10, [], []], [[True] * 10, [], []])
        ref = assert_identical(run_all_combos(trace, config))
        _, _, stats, memory_reads, memory_writes = ref
        assert stats["write_hits"] == 9
        assert memory_reads == 1
        assert memory_writes == 0
