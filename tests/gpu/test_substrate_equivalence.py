"""Object-vs-SoA substrate equivalence at the system level.

The substrate contract: for every workload, scheme and engine, the
struct-of-arrays tag/LRU backing produces bit-identical cycles, per-CU
cycles, every CacheStats counter (L2 and all L1s) and — for Killi —
the final DFH state.  Pinned here across the scheme axis, the workload
axis, the engine x substrate product, kernel-to-kernel persistence and
disable/reset semantics, plus a golden Figure 4 slice where the object
substrate is the reference.
"""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.core import WriteThroughCache
from repro.gpu.config import GpuConfig
from repro.gpu.engine import GpuSimulator
from repro.harness.experiments import fig4_fig5_performance
from repro.harness.runner import fault_map_for, make_scheme, scheme_names
from repro.traces import workload_trace
from repro.traces.workloads import workload_names
from repro.utils.rng import RngFactory

WORKLOADS = ("fft", "xsbench", "nekbone")
SCHEMES = ("baseline", "killi_1:64")


def run_with(
    substrate: str,
    workload: str,
    scheme_name: str,
    seed: int = 21,
    engine: str = "vectorized",
    accesses: int = 700,
):
    gpu_config = GpuConfig()
    fault_map = fault_map_for(gpu_config.l2.n_lines, seed)
    trace = workload_trace(
        workload, accesses, n_cus=gpu_config.n_cus,
        rng=RngFactory(seed).stream(f"trace/{workload}"),
    )
    scheme = make_scheme(
        scheme_name, gpu_config, fault_map, 0.625,
        RngFactory(seed).child(f"{workload}/{scheme_name}"),
    )
    simulator = GpuSimulator(
        gpu_config, scheme, engine=engine, substrate=substrate
    )
    result = simulator.run(trace)
    return result, simulator


def fingerprint(result, simulator) -> dict:
    """Everything the substrate contract pins, as comparable values."""
    scheme = simulator.l2.scheme
    dfh = getattr(scheme, "dfh", None)
    return {
        "cycles": result.cycles,
        "per_cu_cycles": result.per_cu_cycles,
        "instructions": result.instructions,
        "l2": result.l2_stats.as_dict(),
        "l1": [s.as_dict() for s in result.l1_stats],
        "memory_reads": simulator.l2.memory_reads,
        "memory_writes": simulator.l2.memory_writes,
        "dfh": None if dfh is None else list(dfh),
    }


def assert_identical(workload: str, scheme_name: str, **kwargs):
    reference = fingerprint(*run_with("object", workload, scheme_name, **kwargs))
    candidate = fingerprint(*run_with("soa", workload, scheme_name, **kwargs))
    assert candidate == reference


def diff_substrates(workload, scheme, accesses, combos, reference):
    """Axis sweeps through the differential executor: one scenario,
    restricted combo list, full-state diff (strictly stronger than the
    hand-rolled ``fingerprint`` comparison these classes used to do)."""
    from repro.scenario.config import cell_scenario
    from repro.testing.differential import diff_scenario

    scenario = cell_scenario(
        workload, scheme, voltage=0.625, seed=21, accesses_per_cu=accesses
    )
    divergence = diff_scenario(scenario, combos=combos, reference=reference)
    assert divergence is None, divergence.describe()


class TestSchemeAxis:
    """Every scheme, one representative workload."""

    @pytest.mark.parametrize("scheme", scheme_names())
    def test_bit_identical(self, scheme):
        diff_substrates(
            "xsbench", scheme, 500,
            combos=[("vectorized", "soa")],
            reference=("vectorized", "object"),
        )


class TestWorkloadAxis:
    """Every workload, the scheme with the most DFH churn."""

    @pytest.mark.parametrize("workload", workload_names())
    def test_bit_identical(self, workload):
        diff_substrates(
            workload, "killi_1:64", 500,
            combos=[("vectorized", "soa")],
            reference=("vectorized", "object"),
        )


class TestEngineSubstrateProduct:
    """All four scalar/vectorized x substrate combinations agree."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_bit_identical(self, workload, scheme):
        combos = [
            (engine, substrate)
            for engine in ("scalar", "vectorized")
            for substrate in ("object", "soa")
        ]
        diff_substrates(
            workload, scheme, 700,
            combos=combos, reference=("scalar", "object"),
        )


class TestKernelPersistence:
    """DFH training and cache contents persist across kernels identically."""

    def run_kernels(self, substrate: str, seed: int = 21):
        gpu_config = GpuConfig()
        fault_map = fault_map_for(gpu_config.l2.n_lines, seed)
        scheme = make_scheme(
            "killi_1:64", gpu_config, fault_map, 0.625,
            RngFactory(seed).child("kernels/killi_1:64"),
        )
        simulator = GpuSimulator(gpu_config, scheme, substrate=substrate)
        traces = [
            workload_trace(
                workload, 400, n_cus=gpu_config.n_cus,
                rng=RngFactory(seed).stream(f"trace/{workload}"),
            )
            for workload in ("xsbench", "fft", "xsbench")
        ]
        return simulator.run_kernels(traces), simulator

    def test_kernel_sequence_bit_identical(self):
        object_results, object_sim = self.run_kernels("object")
        soa_results, soa_sim = self.run_kernels("soa")
        assert len(object_results) == len(soa_results) == 3
        for object_result, soa_result in zip(object_results, soa_results):
            assert fingerprint(soa_result, soa_sim) == fingerprint(
                object_result, object_sim
            )
        # The later kernels must have inherited trained state: the
        # repeat of xsbench sees a warm L2, unlike its first run.
        assert (
            soa_results[2].l2_stats.as_dict()
            != soa_results[0].l2_stats.as_dict()
        )


class TestDisableResetSemantics:
    """disable / reset / enable_all behave identically on both substrates."""

    GEO = CacheGeometry(size_bytes=8192, line_bytes=64, associativity=4)

    def stream(self):
        # Deterministic mix hitting every set several times.
        addrs = [
            (i * 3 % (2 * self.GEO.n_lines)) * self.GEO.line_bytes
            for i in range(400)
        ]
        return addrs

    def drive(self, substrate: str):
        cache = WriteThroughCache(self.GEO, substrate=substrate)
        cycles = 0
        for addr in self.stream():
            cycles += cache.read(addr)
        # Knock out one way in a few sets mid-run, keep going.
        for set_index in (0, 3, 7):
            cache.tags.disable(set_index, 1)
            cache.lru.demote(set_index, 1)
        for addr in self.stream():
            cycles += cache.read(addr)
        disabled_mid = cache.tags.count_disabled()
        valid_mid = cache.tags.count_valid()
        cache.reset()
        after_reset = (cache.tags.count_disabled(), cache.tags.count_valid())
        for addr in self.stream():
            cycles += cache.read(addr)
        return {
            "cycles": cycles,
            "disabled_mid": disabled_mid,
            "valid_mid": valid_mid,
            "after_reset": after_reset,
            "stats": cache.stats.as_dict(),
            "final_valid": cache.tags.count_valid(),
        }

    def test_bit_identical(self):
        object_run = self.drive("object")
        soa_run = self.drive("soa")
        assert soa_run == object_run
        assert object_run["disabled_mid"] == 3
        assert object_run["after_reset"] == (0, 0)


class TestGoldenFig4Slice:
    """A small Figure 4 slice where the object substrate is the golden."""

    def test_matrix_pinned_to_object(self):
        kwargs = dict(
            workloads=["xsbench", "fft"],
            schemes=["killi_1:8"],
            accesses_per_cu=400,
            seed=42,
        )
        golden = fig4_fig5_performance(substrate="object", **kwargs)
        candidate = fig4_fig5_performance(substrate="soa", **kwargs)
        assert candidate.points == golden.points
        # Sanity on the slice itself: both workloads, baseline added,
        # killi within a plausible slowdown band of the baseline.
        for workload in ("xsbench", "fft"):
            slowdown = candidate.normalized_time(workload, "killi_1:8")
            assert 0.9 <= slowdown <= 2.0
