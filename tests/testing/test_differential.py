"""The differential executor: the oracle itself."""

import pytest

from repro.scenario.config import GpuSection, cell_scenario
from repro.testing.differential import (
    COMBOS,
    PLANTS,
    REFERENCE,
    diff_scenario,
    last_context,
    run_scenario,
    snapshot_diff,
)

SMALL_GPU = GpuSection(
    n_cus=2, l2_size_bytes=64 * 1024, l2_associativity=8, l2_banks=1
)


def small_scenario(scheme="killi_1:8", **kw):
    kw.setdefault("accesses_per_cu", 120)
    kw.setdefault("voltage", 0.6)
    kw.setdefault("seed", 9)
    return cell_scenario("fft", scheme, gpu=SMALL_GPU, **kw)


class TestRunScenario:
    def test_deterministic(self):
        sc = small_scenario()
        a = run_scenario(sc, "scalar", "object")
        b = run_scenario(sc, "scalar", "object")
        assert a.digest == b.digest
        assert a.cycles == b.cycles
        assert a.per_cu_cycles == b.per_cu_cycles

    def test_snapshot_carries_observables(self):
        obs = run_scenario(small_scenario(), "vectorized", "soa")
        snap = obs.snapshot
        assert snap["cycles"] == obs.cycles
        assert snap["l2"]["stats"]["reads"] > 0
        assert snap["scheme"]["type"] == "KilliScheme"
        assert "dfh_histogram" in snap["scheme"]
        assert len(snap["l1s"]) == 2

    def test_sets_last_context(self):
        sc = small_scenario()
        run_scenario(sc, "scalar", "object")
        ctx = last_context()
        assert ctx is not None
        assert ctx["fingerprint"] == sc.fingerprint()
        assert ctx["engine"] == "scalar"
        assert "toml" in ctx


class TestDiffScenario:
    def test_combos_cover_product(self):
        assert len(COMBOS) == 6
        assert REFERENCE in COMBOS

    @pytest.mark.parametrize("scheme", ["baseline", "killi_1:8", "msecc"])
    def test_equivalence_holds(self, scheme):
        assert diff_scenario(small_scenario(scheme)) is None

    def test_write_back_equivalence_holds(self):
        assert diff_scenario(small_scenario(write_back=True)) is None

    @pytest.mark.parametrize("plant", sorted(PLANTS))
    def test_planted_fault_is_caught(self, plant):
        # lulesh is write-heavy: both plants (a disabled way and a
        # dropped write-hit hook) become observable within 120 accesses.
        scenario = cell_scenario(
            "lulesh", "killi_1:8", voltage=0.6, seed=9,
            accesses_per_cu=120, gpu=SMALL_GPU,
        )
        divergence = diff_scenario(scenario, plant=PLANTS[plant])
        assert divergence is not None
        text = divergence.describe()
        assert "diverges from scalar×object" in text

    def test_crash_is_a_divergence(self):
        def bomb(simulator):
            raise RuntimeError("planted crash")

        divergence = diff_scenario(small_scenario(), plant=bomb)
        assert divergence is not None
        assert "planted crash" in divergence.error
        assert "planted crash" in divergence.describe()


class TestSnapshotDiff:
    def test_scalar_leaf(self):
        assert snapshot_diff({"a": 1}, {"a": 2}) == ["/a: ref=1 got=2"]

    def test_missing_keys(self):
        paths = snapshot_diff({"a": 1}, {"b": 1})
        assert "/a: only in reference" in paths
        assert "/b: only in candidate" in paths

    def test_list_length_and_elements(self):
        assert snapshot_diff([1, 2], [1]) == [": length ref=2 got=1"]
        assert snapshot_diff([1, 2], [1, 3]) == ["[1]: ref=2 got=3"]

    def test_limit(self):
        a = {str(i): i for i in range(100)}
        b = {str(i): i + 1 for i in range(100)}
        assert len(snapshot_diff(a, b, limit=10)) == 10
