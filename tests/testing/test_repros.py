"""Replay every committed reproducer under armed invariants.

Each ``repros/repro_*.toml`` is a shrunk scenario that once diverged;
the fix landed with it, so replaying it through all six engine ×
substrate combinations must now agree — with
``REPRO_CHECK_INVARIANTS=1`` armed so the internal debug assertions
run too.  This file needs no editing when a reproducer lands: cases
are collected by glob.
"""

import glob
import os

import pytest

from repro.scenario.config import ScenarioConfig
from repro.testing.differential import diff_scenario
from repro.testing.invariants import INVARIANTS_ENV

REPRO_DIR = os.path.join(os.path.dirname(__file__), "repros")
REPRO_FILES = sorted(glob.glob(os.path.join(REPRO_DIR, "repro_*.toml")))


def _repro_id(path: str) -> str:
    return os.path.basename(path)[len("repro_"):-len(".toml")]


@pytest.mark.parametrize("path", REPRO_FILES, ids=_repro_id)
def test_committed_repro_stays_fixed(path, monkeypatch):
    monkeypatch.setenv(INVARIANTS_ENV, "1")
    with open(path, encoding="utf-8") as fh:
        scenario = ScenarioConfig.from_toml(fh.read(), source=path)
    scenario.validate()
    divergence = diff_scenario(scenario)
    assert divergence is None, divergence.describe()


def test_repro_directory_exists():
    # The glob above silently collects nothing if the directory moves;
    # fail loudly instead.
    assert os.path.isdir(REPRO_DIR)
    assert REPRO_FILES, "expected at least one committed reproducer"
