"""The scenario fuzzer: validity, determinism, bounds."""

import pytest

from repro.scenario.config import ScenarioConfig
from repro.testing.generator import ScenarioFuzzer


class TestDeterminism:
    def test_index_stable(self):
        a = ScenarioFuzzer(seed=7).scenario(13)
        b = ScenarioFuzzer(seed=7).scenario(13)
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_independent_of_history(self):
        # Example i must not depend on how many examples ran before it.
        fresh = ScenarioFuzzer(seed=3).scenario(9)
        warmed = ScenarioFuzzer(seed=3)
        list(warmed.generate(9))
        assert warmed.scenario(9) == fresh

    def test_seeds_differ(self):
        a = [s.fingerprint() for s in ScenarioFuzzer(seed=0).generate(8)]
        b = [s.fingerprint() for s in ScenarioFuzzer(seed=1).generate(8)]
        assert a != b

    def test_examples_vary(self):
        prints = {s.fingerprint() for s in ScenarioFuzzer(seed=0).generate(16)}
        assert len(prints) > 8


class TestValidity:
    def test_all_examples_valid(self):
        for scenario in ScenarioFuzzer(seed=11).generate(25):
            assert isinstance(scenario, ScenarioConfig)
            scenario.validate()
            scenario.gpu.to_gpu_config()

    def test_roundtrips_through_toml(self):
        for scenario in ScenarioFuzzer(seed=2).generate(5):
            assert ScenarioConfig.from_toml(scenario.to_toml()) == scenario


class TestBounds:
    def test_size_bound(self):
        fuzzer = ScenarioFuzzer(seed=5, max_accesses=64)
        for scenario in fuzzer.generate(20):
            assert 1 <= scenario.workload.accesses_per_cu <= 64

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            ScenarioFuzzer(max_accesses=0)

    def test_axis_restriction(self):
        fuzzer = ScenarioFuzzer(
            seed=1, workloads=["fft"], schemes=["baseline"]
        )
        for scenario in fuzzer.generate(10):
            assert scenario.workload.name == "fft"
            assert scenario.scheme.name == "baseline"

    def test_covers_schemes_and_workloads(self):
        scenarios = list(ScenarioFuzzer(seed=0).generate(40))
        assert len({s.scheme.name for s in scenarios}) >= 4
        assert len({s.workload.name for s in scenarios}) >= 4
        assert any(s.scheme.name.startswith("killi") for s in scenarios)
