"""The REPRO_CHECK_INVARIANTS debug-assertion layer."""

import pytest

from repro.cache.core import CacheModel
from repro.testing.invariants import (
    INVARIANTS_ENV,
    InvariantError,
    check_cache_invariants,
    check_set_invariants,
    invariants_enabled,
)


def exercised_cache(small_geometry, substrate=None) -> CacheModel:
    cache = CacheModel(small_geometry, substrate=substrate)
    for i in range(200):
        cache.read(i * 64 * 7)
        if i % 3 == 0:
            cache.write(i * 64 * 7)
    return cache


class TestEnvFlag:
    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no", "  0  "])
    def test_falsy(self, monkeypatch, value):
        monkeypatch.setenv(INVARIANTS_ENV, value)
        assert not invariants_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
    def test_truthy(self, monkeypatch, value):
        monkeypatch.setenv(INVARIANTS_ENV, value)
        assert invariants_enabled()

    def test_unset(self, monkeypatch):
        monkeypatch.delenv(INVARIANTS_ENV, raising=False)
        assert not invariants_enabled()

    def test_error_is_assertion(self):
        assert issubclass(InvariantError, AssertionError)


class TestChecksPass:
    @pytest.mark.parametrize("substrate", ["object", "soa"])
    def test_exercised_cache_is_clean(self, small_geometry, substrate):
        cache = exercised_cache(small_geometry, substrate)
        check_cache_invariants(cache)

    @pytest.mark.parametrize("substrate", ["object", "soa"])
    def test_fresh_cache_is_clean(self, small_geometry, substrate):
        check_cache_invariants(CacheModel(small_geometry, substrate=substrate))


class TestChecksCatchCorruption:
    def test_lru_permutation(self, small_geometry):
        cache = exercised_cache(small_geometry, "object")
        assert hasattr(cache.lru, "_order")
        order = cache.lru._order[0]
        order[0] = order[1]  # duplicate way: not a permutation
        with pytest.raises(InvariantError):
            check_set_invariants(cache, 0)

    def test_valid_counter_drift(self, small_geometry):
        cache = exercised_cache(small_geometry, "object")
        cache.tags.valid_in_set[0] += 1
        with pytest.raises(InvariantError):
            check_set_invariants(cache, 0)

    def test_soa_verify_catches_count_drift(self, small_geometry):
        cache = exercised_cache(small_geometry, "soa")
        cache.tags._n_valid += 1
        with pytest.raises(InvariantError):
            check_cache_invariants(cache)

    def test_soa_verify_catches_tag_aliasing(self, small_geometry):
        cache = exercised_cache(small_geometry, "soa")
        # Point an occupied slot's tag at a different line without
        # updating the lookup index.
        way = cache.tags.lookup(0)
        assert way is not None
        cache.tags.tag[0, way] += 1
        with pytest.raises(InvariantError):
            check_cache_invariants(cache)


class TestArming:
    def test_disarmed_by_default(self, monkeypatch, small_geometry):
        monkeypatch.delenv(INVARIANTS_ENV, raising=False)
        cache = CacheModel(small_geometry)
        # No instance-level wrapper: the hot path is untouched.
        assert "read" not in cache.__dict__
        assert "write" not in cache.__dict__

    def test_armed_read_checks(self, monkeypatch, small_geometry):
        monkeypatch.setenv(INVARIANTS_ENV, "1")
        cache = CacheModel(small_geometry, substrate="object")
        cache.read(0)  # clean: passes
        # Drift a counter the hit path never consults — only the
        # armed post-access check can notice.
        cache.tags.valid_in_set[0] += 1
        with pytest.raises(InvariantError):
            cache.read(0)

    def test_armed_full_run_is_clean(self, monkeypatch):
        # The whole simulator stack — batched Killi interpreter, SoA
        # substrate, L1 filter — under armed invariants, pinned against
        # the scalar reference.
        monkeypatch.setenv(INVARIANTS_ENV, "1")
        from repro.scenario.config import GpuSection, cell_scenario
        from repro.testing.differential import diff_scenario

        scenario = cell_scenario(
            "fft",
            "killi_1:8",
            voltage=0.6,
            seed=4,
            accesses_per_cu=100,
            gpu=GpuSection(
                n_cus=2, l2_size_bytes=64 * 1024,
                l2_associativity=8, l2_banks=1,
            ),
        )
        assert diff_scenario(scenario) is None
