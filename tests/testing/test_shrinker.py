"""The shrinker, and the planted-divergence acceptance path end to end."""

import os

import pytest

from repro.scenario.config import GpuSection, ScenarioConfig, cell_scenario
from repro.testing.differential import PLANTS, diff_scenario
from repro.testing.shrinker import shrink, total_accesses, write_reproducer


def base_scenario(**kw):
    kw.setdefault("accesses_per_cu", 250)
    kw.setdefault("voltage", 0.625)
    kw.setdefault("seed", 3)
    kw.setdefault(
        "gpu",
        GpuSection(n_cus=4, l2_size_bytes=64 * 1024, l2_associativity=8),
    )
    return cell_scenario("miniamr", kw.pop("scheme", "killi_1:8"), **kw)


class TestShrinkMechanics:
    def test_not_interesting_raises(self):
        with pytest.raises(ValueError):
            shrink(base_scenario(), lambda s: False)

    def test_pure_predicate_minimizes(self):
        # No simulation: the predicate only needs >= 5 accesses/CU.
        def interesting(s):
            return s.workload.accesses_per_cu >= 5

        shrunk = shrink(base_scenario(), interesting)
        assert shrunk.workload.accesses_per_cu == 5
        assert shrunk.gpu.n_cus == 1
        assert shrunk.scheme.name == "baseline"

    def test_result_always_interesting_and_valid(self):
        def interesting(s):
            return s.scheme.name.startswith("killi")

        shrunk = shrink(base_scenario(), interesting)
        assert interesting(shrunk)
        shrunk.validate()
        shrunk.gpu.to_gpu_config()

    def test_geometry_shrinks(self):
        shrunk = shrink(base_scenario(), lambda s: True)
        geo = shrunk.gpu.to_gpu_config().l2
        assert geo.n_sets >= 2
        assert shrunk.gpu.l2_size_bytes < 64 * 1024
        assert shrunk.gpu.l2_banks == 1


class TestPlantedAcceptance:
    def test_planted_divergence_shrinks_small(self, tmp_path):
        # The ISSUE acceptance criterion: a deliberately planted fault
        # must be caught and shrunk to a <= 20-access reproducer.
        plant = PLANTS["disable-way"]
        scenario = base_scenario()
        assert diff_scenario(scenario, plant=plant) is not None

        shrunk = shrink(
            scenario, lambda s: diff_scenario(s, plant=plant) is not None
        )
        assert total_accesses(shrunk) <= 20
        assert diff_scenario(shrunk, plant=plant) is not None

        path, pytest_line = write_reproducer(shrunk, str(tmp_path))
        assert os.path.exists(path)
        assert shrunk.fingerprint()[:12] in pytest_line
        replayed = ScenarioConfig.from_toml(open(path).read())
        assert replayed == shrunk


class TestWriteReproducer:
    def test_idempotent_naming(self, tmp_path):
        scenario = base_scenario()
        path1, _ = write_reproducer(scenario, str(tmp_path), note="first")
        path2, _ = write_reproducer(scenario, str(tmp_path), note="second")
        assert path1 == path2
        assert len(list(tmp_path.glob("repro_*.toml"))) == 1

    def test_note_in_header(self, tmp_path):
        path, _ = write_reproducer(
            base_scenario(), str(tmp_path), note="Found by: unit test"
        )
        text = open(path).read()
        assert "Found by: unit test" in text
        assert text.startswith("#")
