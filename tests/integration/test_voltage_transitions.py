"""Integration: voltage changes and DFH relearning (paper Section 2.4).

"When the voltage is changed, Killi resets its prior fault location
knowledge and relearns the failure distribution for the new voltage
without MBIST."
"""

import numpy as np
import pytest

from repro.cache import CacheGeometry, WriteThroughCache
from repro.core import Dfh, KilliConfig, KilliScheme
from repro.faults import CellFaultModel, FaultMap

GEO = CacheGeometry(size_bytes=64 * 1024, line_bytes=64, associativity=16)


@pytest.fixture
def system(rngs):
    anchors = ((0.5, 0.2), (0.6, 3e-2), (0.65, 3e-3), (0.7, 1e-5), (1.0, 1e-10))
    fault_map = FaultMap(
        n_lines=GEO.n_lines,
        cell_model=CellFaultModel(anchors=anchors),
        floor_voltage=0.6,
        rng=rngs.stream("faults"),
    )
    # Inverted training makes the learned population deterministic,
    # which lets the tests compare it against the true fault counts.
    scheme = KilliScheme(
        GEO, fault_map, 0.7,
        KilliConfig(ecc_ratio=16, inverted_write_training=True),
        rng=rngs.stream("mask"),
    )
    cache = WriteThroughCache(GEO, scheme)
    return cache, scheme, fault_map


def warm(cache, n: int = 30000, seed: int = 5):
    rng = np.random.default_rng(seed)
    for addr in (rng.integers(0, 128 * 1024, size=n) & ~63):
        cache.read(int(addr))


class TestVoltageTransitions:
    def test_lowering_voltage_disables_more_lines(self, system):
        cache, scheme, fault_map = system
        warm(cache)
        high_disabled = scheme.disabled_fraction()

        scheme.change_voltage(0.62)
        warm(cache)
        low_disabled = scheme.disabled_fraction()
        assert low_disabled > high_disabled

    def test_raising_voltage_reclaims_lines(self, system):
        cache, scheme, fault_map = system
        scheme.change_voltage(0.62)
        warm(cache)
        assert scheme.disabled_fraction() > 0

        scheme.change_voltage(0.7)
        assert cache.tags.count_disabled() == 0  # all reclaimed at reset
        warm(cache)
        assert scheme.disabled_fraction() < 0.01

    def test_learned_population_matches_true_faults(self, system):
        # With inverted training, a fully-touched cache learns the true
        # fault population: disabled lines == lines with >=2 faults.
        cache, scheme, fault_map = system
        scheme.change_voltage(0.62)
        warm(cache, n=60000)
        faulty_b00 = 0
        for line in range(GEO.n_lines):
            count = fault_map.fault_count(line, 0.62)
            data_count = fault_map.fault_count(line, 0.62, 0, 512)
            dfh = int(scheme.dfh[line])
            if dfh == int(Dfh.DISABLED):
                assert count >= 2, line
            elif dfh == int(Dfh.STABLE_1):
                # b'10 = "one SECDED-correctable fault".  A parity-bit
                # fault alongside a single codeword fault still
                # classifies (and is safely served) as b'10.
                assert count >= 1, line
                assert data_count <= 1, line
            elif dfh == int(Dfh.STABLE_0):
                # A masked single fault may ride the legitimate
                # b'10 -> b'00 Table 2 transition even under inverted
                # training (which only guards the b'01 path); it must
                # remain a rare residue.
                if count:
                    faulty_b00 += 1
                    assert count == 1, line
        assert faulty_b00 <= GEO.n_lines // 100

    def test_voltage_below_floor_rejected(self, system):
        _, scheme, _ = system
        with pytest.raises(ValueError):
            scheme.change_voltage(0.5)

    def test_relearn_is_from_scratch(self, system):
        cache, scheme, _ = system
        warm(cache, n=5000)
        scheme.change_voltage(0.65)
        assert all(v == int(Dfh.INITIAL) for v in scheme.dfh)
        assert scheme.ecc.occupancy == 0
        assert cache.tags.count_valid() == 0
