"""Integration: the ten workloads land in their intended behaviour
classes on the real GPU model, and experiments are deterministic."""

import pytest

from repro.harness.experiments import fig4_fig5_performance
from repro.traces import workload_names


@pytest.fixture(scope="module")
def baseline_matrix():
    return fig4_fig5_performance(
        schemes=["baseline"], accesses_per_cu=2500, seed=11
    )


class TestBehaviourClasses:
    def test_all_ten_run(self, baseline_matrix):
        assert sorted(baseline_matrix.workloads()) == sorted(workload_names())

    def test_memory_vs_compute_split(self, baseline_matrix):
        mpki = {
            w: baseline_matrix.mpki(w, "baseline")
            for w in baseline_matrix.workloads()
        }
        # The streamers are the top of the distribution ...
        assert mpki["snap"] > mpki["nekbone"] * 5
        assert mpki["hpgmg"] > mpki["comd"] * 5
        # ... and the small-working-set apps the bottom.
        bottom_two = sorted(mpki, key=mpki.get)[:3]
        assert "nekbone" in bottom_two
        assert "comd" in bottom_two

    def test_instructions_positive(self, baseline_matrix):
        for workload in baseline_matrix.workloads():
            point = baseline_matrix.points[workload]["baseline"]
            assert point.instructions > point.l2_misses


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = fig4_fig5_performance(
            workloads=["nekbone"], schemes=["killi_1:64"],
            accesses_per_cu=800, seed=3,
        )
        b = fig4_fig5_performance(
            workloads=["nekbone"], schemes=["killi_1:64"],
            accesses_per_cu=800, seed=3,
        )
        pa = a.points["nekbone"]["killi_1:64"]
        pb = b.points["nekbone"]["killi_1:64"]
        assert pa.cycles == pb.cycles
        assert pa.l2_misses == pb.l2_misses
        assert pa.error_induced_misses == pb.error_induced_misses

    def test_different_seed_different_faults(self):
        a = fig4_fig5_performance(
            workloads=["nekbone"], schemes=["killi_1:64"],
            accesses_per_cu=800, seed=3,
        )
        b = fig4_fig5_performance(
            workloads=["nekbone"], schemes=["killi_1:64"],
            accesses_per_cu=800, seed=4,
        )
        pa = a.points["nekbone"]["killi_1:64"]
        pb = b.points["nekbone"]["killi_1:64"]
        assert (pa.cycles, pa.l2_misses) != (pb.cycles, pb.l2_misses)
