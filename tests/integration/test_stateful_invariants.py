"""Stateful property test: system invariants under arbitrary op mixes.

Drives a Killi-protected cache with a random interleaving of reads,
writes, external invalidations, scrub sweeps and resets, checking the
structural invariants after every step:

1. ECC-entry invariant: an entry exists iff its line is valid and in
   DFH b'01 or b'10 (b'00 entries only exist in write-back mode).
2. Disabled consistency: tag-store disabled flag == DFH b'11.
3. Tag-index consistency: the lookup dict mirrors the line array.
4. LRU orders remain permutations of the ways.
5. Stats consistency: hits + misses == accesses, fills <= misses.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.cache.geometry import CacheGeometry
from repro.cache.core import WriteThroughCache
from repro.core.config import KilliConfig
from repro.core.dfh import Dfh
from repro.core.killi import KilliScheme
from repro.core.scrubber import Scrubber
from repro.faults.cell_model import CellFaultModel
from repro.faults.fault_map import FaultMap
from repro.faults.soft_errors import SoftErrorInjector
from repro.utils.rng import RngFactory

GEO = CacheGeometry(size_bytes=8 * 1024, line_bytes=64, associativity=4)
# 32 sets x 4 ways = 128 lines; a dense fault map and a hot soft-error
# injector so error paths fire constantly.


class KilliMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        rngs = RngFactory(77)
        anchors = ((0.5, 0.2), (0.625, 8e-3), (1.0, 1e-10))
        fault_map = FaultMap(
            n_lines=GEO.n_lines,
            cell_model=CellFaultModel(anchors=anchors),
            rng=rngs.stream("faults"),
        )
        self.scheme = KilliScheme(
            GEO, fault_map, 0.625, KilliConfig(ecc_ratio=8, ecc_assoc=4),
            rng=rngs.stream("mask"),
            soft_injector=SoftErrorInjector(0.05, rng=rngs.stream("soft")),
        )
        self.cache = WriteThroughCache(GEO, self.scheme)
        self.scrubber = Scrubber(self.scheme, lines_per_step=16)

    # -- operations -----------------------------------------------------

    @rule(addr=st.integers(min_value=0, max_value=32 * 1024 - 1))
    def read(self, addr):
        self.cache.read(addr & ~63)

    @rule(addr=st.integers(min_value=0, max_value=32 * 1024 - 1))
    def write(self, addr):
        self.cache.write(addr & ~63)

    @rule(set_index=st.integers(min_value=0, max_value=GEO.n_sets - 1),
          way=st.integers(min_value=0, max_value=GEO.associativity - 1))
    def invalidate(self, set_index, way):
        self.cache.invalidate_line(set_index, way)

    @rule()
    def scrub(self):
        self.scrubber.step()

    @rule()
    def reset(self):
        self.cache.reset()

    # -- invariants -----------------------------------------------------

    @invariant()
    def ecc_entry_invariant(self):
        for set_index in range(GEO.n_sets):
            for way in range(GEO.associativity):
                line = self.cache.tags.line(set_index, way)
                dfh = int(self.scheme.dfh[set_index * GEO.associativity + way])
                if self.scheme.ecc.contains(set_index, way):
                    assert line.valid
                    assert dfh in (int(Dfh.INITIAL), int(Dfh.STABLE_1))
                elif line.valid:
                    assert dfh != int(Dfh.DISABLED)
                    if dfh in (int(Dfh.INITIAL), int(Dfh.STABLE_1)):
                        raise AssertionError(
                            f"valid protected line ({set_index},{way}) "
                            f"in DFH {dfh} without an ECC entry"
                        )

    @invariant()
    def disabled_consistency(self):
        for set_index in range(GEO.n_sets):
            for way in range(GEO.associativity):
                line = self.cache.tags.line(set_index, way)
                dfh = int(self.scheme.dfh[set_index * GEO.associativity + way])
                if line.disabled:
                    assert dfh == int(Dfh.DISABLED)
                if dfh == int(Dfh.DISABLED):
                    assert line.disabled

    @invariant()
    def tag_index_consistency(self):
        tags = self.cache.tags
        if hasattr(tags, "_tag_index"):  # object substrate: per-set dicts
            for set_index in range(GEO.n_sets):
                index = tags._tag_index[set_index]
                valid = {
                    line.tag: way
                    for way, line in enumerate(tags.ways_of_set(set_index))
                    if line.valid
                }
                assert index == valid, set_index
        else:  # soa substrate: one line-number -> way dict
            valid = {}
            for set_index in range(GEO.n_sets):
                for way in range(GEO.associativity):
                    if tags.is_valid(set_index, way):
                        line_no = (
                            tags.tag_at(set_index, way) * GEO.n_sets + set_index
                        )
                        valid[line_no] = way
            assert tags._index == valid

    @invariant()
    def lru_is_permutation(self):
        for set_index in range(GEO.n_sets):
            order = self.cache.lru.recency_order(set_index)
            assert sorted(order) == list(range(GEO.associativity))

    @invariant()
    def stats_consistency(self):
        stats = self.cache.stats
        assert stats.read_hits + stats.read_misses == stats.reads
        assert stats.write_hits + stats.write_misses == stats.writes
        assert stats.fills <= stats.read_misses


TestKilliStateMachine = KilliMachine.TestCase
TestKilliStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
