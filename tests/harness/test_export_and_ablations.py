"""Tests for CSV export and the ablation runners."""

import csv
import io

from repro.harness.ablations import (
    ablate_eviction_training,
    ablate_inverted_write_training,
    ablate_priority_replacement,
)
from repro.harness.export import (
    matrix_to_csv,
    nested_table_to_csv,
    series_to_csv,
    write_csv,
)
from repro.harness.results import PerfPoint, PerformanceMatrix


def parse(text: str):
    return list(csv.reader(io.StringIO(text)))


class TestCsvExport:
    def test_series(self):
        data = {"voltage": [0.6, 0.625], "killi": [97.5, 100.0]}
        rows = parse(series_to_csv(data))
        assert rows[0] == ["voltage", "killi"]
        assert rows[1] == ["0.6", "97.5"]
        assert len(rows) == 3

    def test_nested_table(self):
        data = {"dected": {"1:256": 0.51, "1:16": 0.71}}
        rows = parse(nested_table_to_csv(data, row_label="code"))
        assert rows[0] == ["code", "1:256", "1:16"]
        assert rows[1][0] == "dected"

    def test_nested_table_missing_cells(self):
        data = {"a": {"x": 1}, "b": {"y": 2}}
        rows = parse(nested_table_to_csv(data))
        assert rows[0] == ["row", "x", "y"]
        assert rows[1] == ["a", "1", ""]
        assert rows[2] == ["b", "", "2"]

    def test_matrix(self):
        matrix = PerformanceMatrix()
        matrix.add(PerfPoint("wl", "baseline", cycles=100, instructions=1000,
                             l2_misses=10))
        matrix.add(PerfPoint("wl", "killi_1:64", cycles=110, instructions=1000,
                             l2_misses=12))
        rows = parse(matrix_to_csv(matrix))
        assert rows[0][0] == "workload"
        assert len(rows) == 3
        killi_row = next(r for r in rows[1:] if r[1] == "killi_1:64")
        assert killi_row[3] == "1.100000"

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), "a,b\n1,2\n")
        assert path.read_text() == "a,b\n1,2\n"


class TestAblationRunners:
    """Small runs of each ablation; the benchmarks run them at scale."""

    def test_eviction_training(self):
        out = ablate_eviction_training(workload="nekbone", accesses_per_cu=1200)
        assert set(out) == {"train_on_evict", "hits_only"}
        assert out["train_on_evict"]["trained_fraction"] >= out["hits_only"][
            "trained_fraction"
        ]

    def test_priority_replacement(self):
        out = ablate_priority_replacement(workload="nekbone", accesses_per_cu=1200)
        assert set(out) == {"priority", "plain_lru"}
        for summary in out.values():
            assert summary["cycles"] > 0
            assert "dfh" in summary

    def test_inverted_training(self):
        out = ablate_inverted_write_training(workload="nekbone", accesses_per_cu=1200)
        assert out["inverted"]["sdc_events"] <= out["plain"]["sdc_events"] + 1

    def test_sec55_structure(self):
        from repro.harness.experiments import sec55_lower_vmin

        out = sec55_lower_vmin(accesses_per_cu=600)
        assert out["killi_olsc_1:8"]["disabled_fraction"] < 0.01
        assert out["killi_secded_1:8"]["disabled_fraction"] > 0.01
        assert out["msecc"]["normalized_time"] < out["killi_olsc_1:8"]["normalized_time"]
