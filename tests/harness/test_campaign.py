"""Tests for the hardened campaign runner.

The robustness contract under test: worker faults (exceptions, hangs,
hard-killed processes) are isolated to their cell, retried attempts
and resumed campaigns produce results bit-identical to a clean
straight-through run, and permanent failures surface as a structured
:class:`CampaignError` *after* the rest of the campaign completed.

Faults are injected via the ``REPRO_INJECT_FAULTS`` environment
variable (see :mod:`repro.harness.faultinject`) so they fire inside
the runner's execution wrapper — including inside pool workers —
while ``run_cell`` itself stays pure.
"""

import pytest

from repro.harness.faultinject import INJECT_ENV, InjectedWorkerFault, maybe_inject
from repro.harness.runner import (
    CampaignError,
    CellSpec,
    _store_cached,
    run_cells,
)
from repro.metrics import METRICS

ACCESSES = 200


def specs_pair():
    return [
        CellSpec(workload="nekbone", scheme="baseline",
                 seed=11, accesses_per_cu=ACCESSES),
        CellSpec(workload="nekbone", scheme="killi_1:64",
                 seed=11, accesses_per_cu=ACCESSES),
    ]


def comparable(cell) -> dict:
    out = cell.to_dict()
    out.pop("elapsed_s")
    out.pop("from_cache")
    return out


@pytest.fixture
def inject(monkeypatch, tmp_path):
    """Arm fault injection; returns the state dir for counter asserts."""
    state = tmp_path / "inject-state"
    state.mkdir()

    def arm(times=1, mode="raise", match="", hang_s=None):
        parts = [f"times={times}", f"dir={state}", f"mode={mode}"]
        if match:
            parts.append(f"match={match}")
        if hang_s is not None:
            parts.append(f"hang_s={hang_s}")
        monkeypatch.setenv(INJECT_ENV, ",".join(parts))
        return state

    yield arm
    monkeypatch.delenv(INJECT_ENV, raising=False)


class TestFaultInjectionHook:
    def test_noop_when_unarmed(self, monkeypatch):
        monkeypatch.delenv(INJECT_ENV, raising=False)
        maybe_inject("deadbeef")  # must not raise or touch the filesystem

    def test_raises_then_succeeds(self, inject):
        state = inject(times=2)
        with pytest.raises(InjectedWorkerFault):
            maybe_inject("deadbeef")
        with pytest.raises(InjectedWorkerFault):
            maybe_inject("deadbeef")
        maybe_inject("deadbeef")  # third attempt is clean
        assert (state / "deadbeef.attempts").read_text() == "3"

    def test_match_by_label(self, inject):
        inject(times=1, match="baseline")
        maybe_inject("deadbeef", "nekbone/killi_1:64")  # no match, clean
        with pytest.raises(InjectedWorkerFault):
            maybe_inject("deadbeef", "nekbone/baseline")

    def test_bad_spec_rejected(self, monkeypatch):
        monkeypatch.setenv(INJECT_ENV, "times=1")  # dir= missing
        with pytest.raises(ValueError):
            maybe_inject("deadbeef")
        monkeypatch.setenv(INJECT_ENV, "times=1,dir=/tmp/x,mode=explode")
        with pytest.raises(ValueError):
            maybe_inject("deadbeef")


class TestRetryIsolation:
    def test_crash_injected_retry_bit_identical(self, inject, tmp_path):
        """Every cell's first attempt crashes; retries recover a result
        bit-identical to an uninjected run."""
        specs = specs_pair()
        reference = run_cells(specs)

        inject(times=1)
        retried = run_cells(specs, retries=2, backoff=0.0,
                            journal=str(tmp_path / "journal.jsonl"))
        assert [comparable(c) for c in retried] == [
            comparable(c) for c in reference
        ]

    def test_retries_exhausted_raises_after_campaign(self, inject):
        """A permanently failing cell raises CampaignError — but only
        after the healthy cell finished, and with partial results."""
        specs = specs_pair()
        inject(times=99, match="baseline")
        with pytest.raises(CampaignError) as excinfo:
            run_cells(specs, retries=1, backoff=0.0)
        error = excinfo.value
        assert len(error.failures) == 1
        failure = error.failures[0]
        assert failure.index == 0
        assert failure.attempts == 2  # 1 + retries
        assert failure.error_type == "InjectedWorkerFault"
        # The other cell completed despite its neighbour's crashes.
        assert error.results[0] is None
        assert error.results[1] is not None
        assert error.results[1].cycles > 0

    def test_strict_false_returns_partial_results(self, inject):
        specs = specs_pair()
        inject(times=99, match="baseline")
        results = run_cells(specs, retries=0, backoff=0.0, strict=False)
        assert results[0] is None
        assert results[1] is not None

    def test_zero_retries_fails_on_first_crash(self, inject):
        inject(times=1)
        with pytest.raises(CampaignError):
            run_cells(specs_pair()[:1], retries=0, backoff=0.0)


class TestPoolIsolation:
    def test_killed_worker_pool_rebuilt(self, inject, tmp_path):
        """mode=kill hard-exits the worker → BrokenProcessPool; the
        runner rebuilds the pool and retries, bit-identically."""
        specs = specs_pair()
        reference = run_cells(specs)

        inject(times=1, mode="kill")
        recovered = run_cells(specs, jobs=2, retries=2, backoff=0.0,
                              journal=str(tmp_path / "journal.jsonl"))
        assert [comparable(c) for c in recovered] == [
            comparable(c) for c in reference
        ]

    def test_pool_exception_isolated(self, inject):
        """A plain worker exception fails only its own cell."""
        specs = specs_pair()
        inject(times=99, match="baseline")
        with pytest.raises(CampaignError) as excinfo:
            run_cells(specs, jobs=2, retries=1, backoff=0.0)
        assert len(excinfo.value.failures) == 1
        assert excinfo.value.results[1] is not None


class TestTimeout:
    def test_hung_cell_times_out_and_retries(self, inject):
        specs = specs_pair()[:1]
        reference = run_cells(specs)

        inject(times=1, mode="hang", hang_s=30)
        recovered = run_cells(specs, retries=1, timeout=0.5, backoff=0.0)
        assert comparable(recovered[0]) == comparable(reference[0])

    def test_timeout_exhausted_reports_cell_timeout(self, inject):
        inject(times=99, mode="hang", hang_s=30)
        with pytest.raises(CampaignError) as excinfo:
            run_cells(specs_pair()[:1], retries=0, timeout=0.5)
        assert excinfo.value.failures[0].error_type == "CellTimeoutError"


class TestDedupe:
    def test_duplicate_specs_simulated_once(self, inject, tmp_path):
        """Identical fingerprints collapse to one execution, fanned out
        to every requesting index in order."""
        spec = specs_pair()[0]
        other = specs_pair()[1]
        specs = [spec, other, spec, spec]

        # times=0 → never fails, but each *execution* bumps a counter
        # file, giving us an exact execution count per fingerprint.
        state = inject(times=0)
        results = run_cells(specs, backoff=0.0)

        counters = sorted(p.name for p in state.iterdir())
        assert counters == sorted(
            f"{fp}.attempts" for fp in {spec.fingerprint(), other.fingerprint()}
        )
        assert (state / f"{spec.fingerprint()}.attempts").read_text() == "1"

        assert [c.fingerprint for c in results] == [
            s.fingerprint() for s in specs
        ]
        assert comparable(results[0]) == comparable(results[2])
        # Fan-out copies are distinct objects (mutating one result's
        # elapsed_s must not alias its duplicates).
        assert results[0] is not results[2]

    def test_dedupe_probes_cache_once(self, tmp_path):
        spec = specs_pair()[0]
        METRICS.enable(propagate_env=False)
        METRICS.reset()
        try:
            run_cells([spec, spec, spec], cache_dir=str(tmp_path))
            assert METRICS.counters.get("cache.miss", 0) == 1
            assert METRICS.counters.get("cache.stored", 0) == 1
        finally:
            METRICS.disable(propagate_env=False)
            METRICS.reset()


class TestValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            run_cells(specs_pair()[:1], jobs=0)

    def test_retries_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="retries"):
            run_cells(specs_pair()[:1], retries=-1)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="timeout"):
            run_cells(specs_pair()[:1], timeout=0)

    def test_resume_requires_cache_dir(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_text("")
        with pytest.raises(ValueError, match="cache_dir"):
            run_cells(specs_pair()[:1], resume=str(journal))


class TestCacheHardening:
    def test_corrupt_entry_quarantined(self, tmp_path):
        spec = specs_pair()[0]
        run_cells([spec], cache_dir=str(tmp_path))
        path = tmp_path / f"{spec.fingerprint()}.json"
        path.write_text("{not json")

        result, = run_cells([spec], cache_dir=str(tmp_path))
        assert not result.from_cache
        quarantined = tmp_path / f"{spec.fingerprint()}.json.corrupt"
        assert quarantined.read_text() == "{not json"
        # ... and the slot was repopulated with the recomputed result.
        again, = run_cells([spec], cache_dir=str(tmp_path))
        assert again.from_cache

    def test_schema_mismatch_quarantined(self, tmp_path):
        spec = specs_pair()[0]
        run_cells([spec], cache_dir=str(tmp_path))
        path = tmp_path / f"{spec.fingerprint()}.json"
        path.write_text('{"schema": -1, "result": {}}')
        result, = run_cells([spec], cache_dir=str(tmp_path))
        assert not result.from_cache
        assert (tmp_path / f"{spec.fingerprint()}.json.corrupt").exists()

    def test_store_failure_logged_not_raised(self, tmp_path):
        """An unserialisable result must not abort the campaign — and
        must not leak its temp file."""
        spec = specs_pair()[0]

        class Unserialisable:
            def to_dict(self):
                return {"bad": {1, 2, 3}}  # sets are not JSON

        stored = _store_cached(str(tmp_path), spec.to_scenario(),
                               Unserialisable(), fingerprint="feedface")
        assert stored is False
        assert list(tmp_path.glob("*.tmp")) == []
        assert not (tmp_path / "feedface.json").exists()

    def test_store_success_reports_true(self, tmp_path):
        spec = specs_pair()[0]
        result = run_cells([spec])[0]
        assert _store_cached(str(tmp_path), spec.to_scenario(), result) is True
        assert (tmp_path / f"{spec.fingerprint()}.json").exists()
        assert list(tmp_path.glob("*.tmp")) == []


class TestJournalPrefixResume:
    """Property: resume from *any* prefix-truncation of a journal.

    A crash can stop the journal mid-campaign — or mid-line.  Whatever
    prefix survives, resuming against the same cache must reproduce
    the straight-through results bit-identically: finished cells load
    from cache, everything after the cut is recomputed.
    """

    def specs(self):
        return [
            CellSpec(workload="nekbone", scheme="baseline",
                     seed=11, accesses_per_cu=ACCESSES),
            CellSpec(workload="nekbone", scheme="killi_1:64",
                     seed=11, accesses_per_cu=ACCESSES),
            CellSpec(workload="fft", scheme="killi_1:8",
                     seed=7, accesses_per_cu=ACCESSES),
        ]

    def test_every_line_prefix_is_resumable(self, tmp_path):
        cache = tmp_path / "cache"
        journal = tmp_path / "journal.jsonl"
        full = run_cells(self.specs(), cache_dir=str(cache),
                         journal=str(journal))
        reference = [comparable(c) for c in full]
        lines = journal.read_text().splitlines(keepends=True)
        assert len(lines) >= len(self.specs()) + 1
        for cut in range(len(lines) + 1):
            truncated = tmp_path / f"prefix_{cut}.jsonl"
            truncated.write_text("".join(lines[:cut]))
            resumed = run_cells(self.specs(), cache_dir=str(cache),
                                resume=str(truncated))
            got = [comparable(c) for c in resumed]
            assert got == reference, f"diverged resuming from {cut} lines"

    def test_mid_line_byte_truncation_is_resumable(self, tmp_path):
        cache = tmp_path / "cache"
        journal = tmp_path / "journal.jsonl"
        full = run_cells(self.specs(), cache_dir=str(cache),
                         journal=str(journal))
        reference = [comparable(c) for c in full]
        blob = journal.read_bytes()
        # Cut inside a record: the torn last line must be skipped, not
        # crash the resume or corrupt earlier entries.
        for cut in (len(blob) // 3, len(blob) // 2, len(blob) - 7):
            truncated = tmp_path / f"bytes_{cut}.jsonl"
            truncated.write_bytes(blob[:cut])
            resumed = run_cells(self.specs(), cache_dir=str(cache),
                                resume=str(truncated))
            got = [comparable(c) for c in resumed]
            assert got == reference, f"diverged resuming from {cut} bytes"
