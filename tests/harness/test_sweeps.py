"""Tests for the voltage-sweep runner."""

import pytest

from repro.harness.sweeps import voltage_sweep


class TestVoltageSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return voltage_sweep(
            voltages=(0.7, 0.65, 0.625),
            workload="nekbone",
            accesses_per_cu=1000,
        )

    def test_structure(self, sweep):
        assert set(sweep) == {0.7, 0.65, 0.625}
        for row in sweep.values():
            assert set(row) == {
                "normalized_time", "mpki", "disabled_fraction", "power_pct"
            }

    def test_overhead_grows_as_voltage_drops(self, sweep):
        assert sweep[0.7]["normalized_time"] <= sweep[0.625]["normalized_time"] + 1e-9

    def test_no_overhead_at_high_voltage(self, sweep):
        # Above the fault knee there is literally nothing to train on.
        assert sweep[0.7]["normalized_time"] < 1.001
        assert sweep[0.7]["disabled_fraction"] == 0.0

    def test_power_drops_with_voltage(self, sweep):
        assert sweep[0.625]["power_pct"] < sweep[0.65]["power_pct"] < sweep[0.7]["power_pct"]

    def test_below_floor_rejected(self):
        # The check fires up-front, names the floor, and lists every
        # offending voltage — not just the first.
        with pytest.raises(ValueError, match=r"floor") as excinfo:
            voltage_sweep(voltages=(0.7, 0.5, 0.55), workload="nekbone",
                          accesses_per_cu=200)
        assert "0.5" in str(excinfo.value)
        assert "0.55" in str(excinfo.value)

    def test_parallel_matches_serial(self):
        kwargs = dict(voltages=(0.7, 0.625), workload="nekbone",
                      accesses_per_cu=500)
        assert voltage_sweep(jobs=2, **kwargs) == voltage_sweep(**kwargs)
