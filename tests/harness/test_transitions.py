"""Tests for the power-transition experiment and multi-kernel runs."""

import pytest

from repro.harness.transitions import power_transition_experiment


class TestTransitionExperiment:
    @pytest.fixture(scope="class")
    def out(self):
        return power_transition_experiment(
            workload="nekbone", n_transitions=2, accesses_per_phase=800
        )

    def test_structure(self, out):
        assert out["killi"].strategy == "killi"
        assert out["flair"].strategy == "flair+mbist"
        assert out["reference_cycles"] > 0

    def test_killi_never_stalls(self, out):
        assert out["killi"].stall_cycles == 0
        assert out["killi"].total_cycles == out["killi"].execution_cycles

    def test_mbist_stall_accounting(self, out):
        expected = 2 * 32768 * out["mbist_cycles_per_line"]
        assert out["flair"].stall_cycles == expected
        assert out["flair"].total_cycles == (
            out["flair"].execution_cycles + expected
        )

    def test_killi_wins_with_transitions(self, out):
        assert out["killi"].total_cycles < out["flair"].total_cycles

    def test_zero_transitions_degenerate(self):
        out = power_transition_experiment(
            workload="nekbone", n_transitions=0, accesses_per_phase=800
        )
        assert out["flair"].stall_cycles == 0


class TestMultiKernel:
    def test_dfh_training_persists_across_kernels(self):
        # Footnote 6: training happens once per reset, not per kernel.
        from repro.core import KilliConfig, KilliScheme
        from repro.faults import FaultMap
        from repro.gpu import GpuConfig, GpuSimulator
        from repro.traces import workload_trace
        from repro.utils.rng import RngFactory

        rngs = RngFactory(5)
        config = GpuConfig()
        fault_map = FaultMap(n_lines=config.l2.n_lines, rng=rngs.stream("f"))
        scheme = KilliScheme(
            config.l2, fault_map, 0.625, KilliConfig(ecc_ratio=64),
            rng=rngs.stream("m"),
        )
        simulator = GpuSimulator(config, scheme)
        traces = [
            workload_trace("nekbone", 1500, rng=rngs.stream(f"t{i}"))
            for i in range(2)
        ]
        transitions_after = []
        for trace in traces:
            simulator.run(trace)
            transitions_after.append(
                sum(
                    count for (old, _), count in scheme.transitions.items()
                    if old == "INITIAL"
                )
            )
        first_kernel = transitions_after[0]
        second_kernel = transitions_after[1] - transitions_after[0]
        # Most classification work happened in kernel 1.
        assert second_kernel < first_kernel

    def test_run_kernels_returns_per_kernel_results(self):
        from repro.cache.hooks import UnprotectedScheme
        from repro.gpu import GpuConfig, GpuSimulator
        from repro.traces import workload_trace
        from repro.utils.rng import RngFactory

        rngs = RngFactory(5)
        config = GpuConfig()
        simulator = GpuSimulator(config, UnprotectedScheme())
        traces = [
            workload_trace("nekbone", 500, rng=rngs.stream(f"t{i}"))
            for i in range(3)
        ]
        results = simulator.run_kernels(traces)
        assert len(results) == 3
        assert all(r.cycles > 0 for r in results)
