"""Tests for the JSONL run journal and campaign resume.

The resume contract under test: a campaign resumed from a journal
recomputes only the cells the journal does not record as finished, and
its results are bit-identical to a straight-through run — because the
finished cells come back from the same fingerprint-keyed result cache.
"""

from repro.harness.journal import (
    SUCCESS_STATUSES,
    CellFailure,
    RunJournal,
    finished_fingerprints,
    read_journal,
)
from repro.harness.runner import CellSpec, run_cells

ACCESSES = 200


def spec(scheme: str) -> CellSpec:
    return CellSpec(workload="nekbone", scheme=scheme,
                    seed=11, accesses_per_cu=ACCESSES)


def comparable(cell) -> dict:
    out = cell.to_dict()
    out.pop("elapsed_s")
    out.pop("from_cache")
    return out


class TestRunJournal:
    def test_event_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.campaign_start(total=3, unique=2, jobs=2, retries=1,
                                   timeout=5.0, cache_dir=str(tmp_path))
            journal.attempt(index=0, fingerprint="aa", attempt=1,
                            error_type="RuntimeError", message="boom",
                            will_retry=True, elapsed_s=0.1)
            journal.cell(index=0, fingerprint="aa", status="retried",
                         attempts=2, elapsed_s=0.2, pid=123, cache="stored")
            journal.cell(index=1, fingerprint="bb", status="cached",
                         attempts=0, elapsed_s=0.0, cache="hit")
            journal.cell(index=2, fingerprint="aa", status="retried",
                         attempts=2, elapsed_s=0.2, dedup_of=0)
            journal.pool_broken("worker died")
            journal.campaign_end(completed=3, failed=0, elapsed_s=1.5)

        events = read_journal(path)
        assert [e["event"] for e in events] == [
            "start", "attempt", "cell", "cell", "cell", "pool_broken", "end",
        ]
        assert all("ts" in e for e in events)
        start = events[0]
        assert (start["total"], start["unique"], start["jobs"]) == (3, 2, 2)
        assert start["timeout_s"] == 5.0
        attempt = events[1]
        assert attempt["error"] == {"type": "RuntimeError", "message": "boom"}
        assert attempt["will_retry"] is True
        assert events[4]["dedup_of"] == 0
        assert events[6]["completed"] == 3

    def test_journal_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "run.jsonl"
        with RunJournal(path) as journal:
            journal.campaign_end(completed=0, failed=0, elapsed_s=0.0)
        assert path.exists()

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.cell(index=0, fingerprint="aa", status="ok",
                         attempts=1, elapsed_s=0.1)
        with open(path, "a") as handle:
            handle.write('{"event": "cell", "fingerpr')  # killed mid-write
        events = read_journal(path)
        assert len(events) == 1
        assert finished_fingerprints(path) == {"aa"}

    def test_finished_excludes_failures(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.cell(index=0, fingerprint="ok-fp", status="ok",
                         attempts=1, elapsed_s=0.1)
            journal.cell(index=1, fingerprint="retry-fp", status="retried",
                         attempts=2, elapsed_s=0.1)
            journal.cell(index=2, fingerprint="cache-fp", status="cached",
                         attempts=0, elapsed_s=0.0)
            journal.cell(index=3, fingerprint="bad-fp", status="failed",
                         attempts=3, elapsed_s=0.1,
                         error={"type": "RuntimeError", "message": "x"})
        assert finished_fingerprints(path) == {"ok-fp", "retry-fp", "cache-fp"}
        assert SUCCESS_STATUSES == {"ok", "retried", "cached"}

    def test_shared_journal_not_closed_by_runner(self, tmp_path):
        """Passing an open RunJournal lets several campaigns share one
        file; the runner must not close it."""
        journal = RunJournal(tmp_path / "shared.jsonl")
        run_cells([spec("baseline")], journal=journal)
        run_cells([spec("killi_1:64")], journal=journal)
        journal.close()
        events = read_journal(tmp_path / "shared.jsonl")
        assert [e["event"] for e in events] == [
            "start", "cell", "end", "start", "cell", "end",
        ]


class TestCellFailure:
    def test_str_and_dict(self):
        failure = CellFailure(index=3, fingerprint="abcdef0123456789",
                              attempts=2, error_type="RuntimeError",
                              message="boom")
        assert "cell 3" in str(failure)
        assert "abcdef012345" in str(failure)
        assert failure.to_dict()["attempts"] == 2


class TestResume:
    def test_resume_recomputes_only_unfinished(self, tmp_path):
        """Run cell A with cache+journal, then resume a two-cell
        campaign: A loads from cache, only B is computed — and the
        whole thing is bit-identical to a fresh straight-through run."""
        cache = tmp_path / "cache"
        journal = tmp_path / "run.jsonl"
        a, b = spec("baseline"), spec("killi_1:64")

        run_cells([a], cache_dir=str(cache), journal=str(journal))
        assert finished_fingerprints(journal) == {a.fingerprint()}

        resumed = run_cells([a, b], cache_dir=str(cache),
                            resume=str(journal))
        assert resumed[0].from_cache
        assert not resumed[1].from_cache

        fresh = run_cells([a, b])
        assert [comparable(c) for c in resumed] == [
            comparable(c) for c in fresh
        ]

    def test_resume_with_evicted_cache_recomputes(self, tmp_path):
        """A journal-finished cell whose cache entry is gone is simply
        recomputed — resume never trusts the journal alone."""
        cache = tmp_path / "cache"
        journal = tmp_path / "run.jsonl"
        a = spec("baseline")
        run_cells([a], cache_dir=str(cache), journal=str(journal))
        (cache / f"{a.fingerprint()}.json").unlink()

        resumed, = run_cells([a], cache_dir=str(cache), resume=str(journal))
        assert not resumed.from_cache
        assert comparable(resumed) == comparable(run_cells([a])[0])

    def test_resumed_cells_marked_in_new_journal(self, tmp_path):
        cache = tmp_path / "cache"
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        a = spec("baseline")
        run_cells([a], cache_dir=str(cache), journal=str(first))
        run_cells([a], cache_dir=str(cache), journal=str(second),
                  resume=str(first))

        events = read_journal(second)
        start = events[0]
        assert start["resumed_from"] == str(first)
        cell = next(e for e in events if e["event"] == "cell")
        assert cell["status"] == "cached"
        assert cell.get("resumed") is True


class TestJournalThroughRunner:
    def test_pool_run_journal_complete(self, tmp_path):
        path = tmp_path / "run.jsonl"
        specs = [spec("baseline"), spec("killi_1:64"), spec("baseline")]
        run_cells(specs, jobs=2, journal=str(path))

        events = read_journal(path)
        assert events[0]["event"] == "start"
        assert events[0]["total"] == 3
        assert events[0]["unique"] == 2
        cells = [e for e in events if e["event"] == "cell"]
        assert len(cells) == 3
        assert {c["index"] for c in cells} == {0, 1, 2}
        dedup = next(c for c in cells if c["index"] == 2)
        assert dedup["dedup_of"] == 0
        executed = [c for c in cells if "dedup_of" not in c]
        assert all(c["pid"] for c in executed)
        assert events[-1]["event"] == "end"
        assert events[-1]["failed"] == 0
