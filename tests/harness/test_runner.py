"""Tests for the parallel experiment runner.

The determinism contract under test: a cell's result depends only on
its spec — not on the process that ran it, the order it ran in, the
engine variant, or whether it came from the on-disk cache.
"""

import dataclasses
import json

import pytest

from repro.gpu import GpuConfig, GpuSimulator
from repro.harness.export import cells_to_csv
from repro.harness.runner import (
    CellSpec,
    CellResult,
    fault_map_for,
    make_scheme,
    run_cell,
    run_cells,
    trace_for,
)
from repro.utils.rng import RngFactory

ACCESSES = 400


def small_specs():
    return [
        CellSpec(workload=w, scheme=s, seed=11, accesses_per_cu=ACCESSES)
        for w in ("nekbone", "fft")
        for s in ("baseline", "killi_1:64")
    ]


def comparable(cell: CellResult) -> dict:
    """Result fields that must be invariant across execution modes."""
    out = cell.to_dict()
    out.pop("elapsed_s")
    out.pop("from_cache")
    return out


class TestRunCell:
    def test_matches_direct_simulation(self):
        """run_cell reproduces a hand-built serial simulation exactly."""
        spec = CellSpec(workload="nekbone", scheme="killi_1:64",
                        seed=11, accesses_per_cu=ACCESSES)
        cell = run_cell(spec)

        gpu_config = GpuConfig()
        rngs = RngFactory(11)
        fault_map = fault_map_for(gpu_config.l2.n_lines, 11)
        trace = trace_for("nekbone", ACCESSES, gpu_config.n_cus, 11)
        scheme = make_scheme(
            "killi_1:64", gpu_config, fault_map, spec.voltage,
            rngs.child("nekbone/killi_1:64"),
        )
        simulator = GpuSimulator(gpu_config, scheme)
        result = simulator.run(trace)

        assert cell.cycles == result.cycles
        assert cell.instructions == result.instructions
        assert cell.l2 == result.l2_stats.as_dict()
        assert cell.memory_reads == simulator.l2.memory_reads
        assert cell.fingerprint == spec.fingerprint()

    def test_engine_variants_identical(self):
        a = run_cell(CellSpec("fft", "killi_1:64", seed=4,
                              accesses_per_cu=ACCESSES, engine="scalar"))
        b = run_cell(CellSpec("fft", "killi_1:64", seed=4,
                              accesses_per_cu=ACCESSES, engine="vectorized"))
        assert comparable(a) == comparable(b)

    def test_strong_scheme_cell(self):
        cell = run_cell(CellSpec("nekbone", "killi+olsc-t11_1:8",
                                 voltage=0.6, seed=11, accesses_per_cu=ACCESSES))
        assert cell.cycles > 0
        assert cell.dfh is not None

    def test_scheme_config_overrides(self):
        plain = run_cell(CellSpec("nekbone", "killi_1:64", seed=11,
                                  accesses_per_cu=ACCESSES))
        overridden = run_cell(CellSpec(
            "nekbone", "killi_1:64", seed=11, accesses_per_cu=ACCESSES,
            scheme_config={"train_on_evict": False},
        ))
        # Different configuration, different fingerprint; same axes.
        assert plain.fingerprint != overridden.fingerprint
        assert overridden.cycles > 0

    def test_write_back_cell(self):
        cell = run_cell(CellSpec("nekbone", "killi_1:64", seed=11,
                                 accesses_per_cu=ACCESSES, write_back=True))
        assert cell.memory_writes > 0
        assert "due_on_dirty" in cell.l2 or cell.l2["writes"] >= 0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            run_cell(CellSpec("nekbone", "nope", accesses_per_cu=ACCESSES))

    def test_non_killi_rejects_killi_knobs(self):
        with pytest.raises(ValueError):
            run_cell(CellSpec("nekbone", "baseline", accesses_per_cu=ACCESSES,
                              scheme_config={"train_on_evict": False}))


class TestFingerprint:
    def test_stable_for_equal_specs(self):
        a = CellSpec("fft", "killi_1:64", seed=1)
        b = CellSpec("fft", "killi_1:64", seed=1)
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_every_axis(self):
        base = CellSpec("fft", "killi_1:64", voltage=0.625, seed=1,
                        accesses_per_cu=100)
        variants = [
            dataclasses.replace(base, workload="nekbone"),
            dataclasses.replace(base, scheme="killi_1:16"),
            dataclasses.replace(base, voltage=0.65),
            dataclasses.replace(base, seed=2),
            dataclasses.replace(base, accesses_per_cu=200),
            dataclasses.replace(base, write_back=True),
            CellSpec("fft", "killi_1:64", voltage=0.625, seed=1,
                     accesses_per_cu=100,
                     scheme_config={"train_on_evict": False}),
        ]
        prints = {v.fingerprint() for v in variants}
        assert len(prints) == len(variants)
        assert base.fingerprint() not in prints

    def test_engine_excluded(self):
        # Engines are pinned bit-equivalent, so cached results are shared.
        a = CellSpec("fft", "baseline", engine="scalar")
        b = CellSpec("fft", "baseline", engine="vectorized")
        assert a.fingerprint() == b.fingerprint()

    def test_scheme_config_dict_normalised(self):
        a = CellSpec("fft", "killi_1:64",
                     scheme_config={"a": 1, "train_on_evict": False})
        b = CellSpec("fft", "killi_1:64",
                     scheme_config={"train_on_evict": False, "a": 1})
        assert a.scheme_config == b.scheme_config
        assert a.fingerprint() == b.fingerprint()


class TestRunCells:
    def test_parallel_matches_serial(self):
        specs = small_specs()
        serial = run_cells(specs, jobs=1)
        parallel = run_cells(specs, jobs=2)
        assert [comparable(c) for c in serial] == [
            comparable(c) for c in parallel
        ]

    def test_order_preserved(self):
        specs = small_specs()
        results = run_cells(specs, jobs=2)
        assert [(c.workload, c.scheme) for c in results] == [
            (s.workload, s.scheme) for s in specs
        ]

    def test_progress_callback(self):
        specs = small_specs()
        seen = []
        run_cells(specs, jobs=1,
                  progress=lambda done, total, cell: seen.append((done, total)))
        assert seen == [(i + 1, len(specs)) for i in range(len(specs))]


class TestResultCache:
    def test_second_run_is_cached_and_identical(self, tmp_path):
        specs = small_specs()[:2]
        first = run_cells(specs, cache_dir=str(tmp_path))
        assert all(not c.from_cache for c in first)
        assert len(list(tmp_path.glob("*.json"))) == len(specs)

        second = run_cells(specs, cache_dir=str(tmp_path))
        assert all(c.from_cache for c in second)
        assert [comparable(c) for c in first] == [comparable(c) for c in second]

    def test_corrupt_entry_recomputed(self, tmp_path):
        spec = small_specs()[0]
        run_cells([spec], cache_dir=str(tmp_path))
        path = tmp_path / f"{spec.fingerprint()}.json"
        path.write_text("{not json")
        result, = run_cells([spec], cache_dir=str(tmp_path))
        assert not result.from_cache
        # The entry was rewritten and is loadable again.
        assert json.loads(path.read_text())["result"]["cycles"] == result.cycles

    def test_changed_spec_misses(self, tmp_path):
        spec = small_specs()[0]
        run_cells([spec], cache_dir=str(tmp_path))
        changed = dataclasses.replace(spec, seed=spec.seed + 1)
        result, = run_cells([changed], cache_dir=str(tmp_path))
        assert not result.from_cache

    def test_parallel_run_populates_cache(self, tmp_path):
        specs = small_specs()
        run_cells(specs, jobs=2, cache_dir=str(tmp_path))
        again = run_cells(specs, jobs=2, cache_dir=str(tmp_path))
        assert all(c.from_cache for c in again)


class TestCellResultProjections:
    def test_perf_point_projection(self):
        cell = run_cell(small_specs()[0])
        point = cell.to_perf_point()
        assert point.workload == cell.workload
        assert point.l2_misses == cell.l2_misses
        assert point.mpki == pytest.approx(cell.l2_mpki)

    def test_json_roundtrip(self):
        cell = run_cell(small_specs()[1])
        clone = CellResult.from_dict(json.loads(json.dumps(cell.to_dict())))
        assert comparable(clone) == comparable(cell)

    def test_cells_to_csv_complete(self):
        cells = run_cells(small_specs()[:2])
        csv_text = cells_to_csv(cells)
        header = csv_text.splitlines()[0]
        # Every L2 counter (incl. derived totals) appears as a column.
        for counter in ("l2_reads", "l2_misses", "l2_accesses", "l2_hits",
                        "l2_error_induced_misses"):
            assert counter in header
        assert len(csv_text.splitlines()) == 3


class TestExperimentsThroughRunner:
    def test_fig4_jobs_identical(self):
        from repro.harness.experiments import fig4_fig5_performance

        kwargs = dict(workloads=["nekbone"], schemes=["baseline", "killi_1:64"],
                      accesses_per_cu=ACCESSES, seed=9)
        serial = fig4_fig5_performance(**kwargs)
        parallel = fig4_fig5_performance(jobs=2, **kwargs)
        for workload in serial.workloads():
            for scheme, point in serial.points[workload].items():
                assert parallel.points[workload][scheme] == point

    def test_sec55_through_runner(self):
        from repro.harness.experiments import sec55_lower_vmin

        out = sec55_lower_vmin(accesses_per_cu=ACCESSES)
        assert set(out) >= {"baseline", "msecc", "killi_secded_1:8",
                            "killi_olsc_1:8"}
        assert out["killi_olsc_1:8"]["normalized_time"] > 0
