"""Tests for the experiment harness (small-scale runs of every
table/figure runner)."""

import pytest

from repro.harness.experiments import (
    EXPERIMENTS,
    fig1_cell_pfail,
    fig2_line_distribution,
    fig4_fig5_performance,
    fig6_coverage,
    make_scheme,
    run_experiment,
    scheme_names,
    table4_strong_ecc,
    table5_area,
    table6_power,
    table7_olsc,
)
from repro.harness.results import PerfPoint, PerformanceMatrix


class TestAnalyticRunners:
    def test_fig1_series(self):
        data = fig1_cell_pfail(voltages=[0.55, 0.6, 0.65])
        assert len(data["voltage"]) == 3
        key = "writeability@1GHz"
        assert key in data
        assert data[key][0] > data[key][2]  # decreasing with voltage
        assert "read_disturb@0.4GHz" in data

    def test_fig2_fractions(self):
        data = fig2_line_distribution(voltages=[0.6, 0.625, 0.65])
        for i in range(3):
            total = data["zero"][i] + data["one"][i] + data["two_plus"][i]
            assert total == pytest.approx(100.0)
        assert data["zero"][2] > data["zero"][0]

    def test_fig6_series(self):
        data = fig6_coverage(voltages=[0.575, 0.625])
        assert data["killi"][0] > data["secded"][0]
        assert data["killi"][1] == pytest.approx(100.0, abs=0.01)

    def test_table4(self):
        table = table4_strong_ecc()
        assert table["dected"]["1:256"] == pytest.approx(0.51, abs=0.01)

    def test_table5(self):
        table = table5_area()
        assert table["killi_1:256"]["percent"] < table["secded"]["percent"]

    def test_table6_without_matrix(self):
        table = table6_power()
        assert table["killi_1:256"] < table["flair"] < table["msecc"]

    def test_table7(self):
        table = table7_olsc()
        assert table["0.600"]["capacity_pct"] == pytest.approx(99.8, abs=0.3)
        assert table["0.575"]["capacity_pct"] == pytest.approx(69.6, abs=1.0)
        assert table["0.600"]["killi_vs_msecc"] < table["0.575"]["killi_vs_msecc"]

    def test_registry_dispatch(self):
        assert set(EXPERIMENTS) >= {
            "fig1", "fig2", "fig4", "fig5", "fig6",
            "table4", "table5", "table6", "table7",
        }
        data = run_experiment("fig2", voltages=[0.625])
        assert len(data["zero"]) == 1
        with pytest.raises(KeyError):
            run_experiment("nope")


class TestSchemeFactory:
    def test_names(self):
        names = scheme_names(ratios=(64,))
        assert names == ["baseline", "dected", "flair", "msecc", "killi_1:64"]

    def test_unknown_scheme(self):
        from repro.faults import FaultMap
        from repro.gpu import GpuConfig
        from repro.utils.rng import RngFactory

        config = GpuConfig()
        fault_map = FaultMap(n_lines=config.l2.n_lines)
        with pytest.raises(KeyError):
            make_scheme("nope", config, fault_map, 0.625, RngFactory(0))


class TestPerformanceMatrix:
    def make_matrix(self) -> PerformanceMatrix:
        matrix = PerformanceMatrix()
        matrix.add(PerfPoint("wl", "baseline", cycles=1000, instructions=10000,
                             l2_misses=50, memory_reads=100))
        matrix.add(PerfPoint("wl", "killi_1:64", cycles=1020, instructions=10000,
                             l2_misses=55, memory_reads=110))
        return matrix

    def test_normalized_time(self):
        matrix = self.make_matrix()
        assert matrix.normalized_time("wl", "killi_1:64") == pytest.approx(1.02)
        assert matrix.normalized_time("wl", "baseline") == 1.0

    def test_mpki(self):
        matrix = self.make_matrix()
        assert matrix.mpki("wl", "baseline") == pytest.approx(5.0)

    def test_extra_memory_frac(self):
        matrix = self.make_matrix()
        assert matrix.extra_memory_frac("wl", "killi_1:64") == pytest.approx(0.1)

    def test_tables_render(self):
        matrix = self.make_matrix()
        assert "Figure 4" in matrix.fig4_table()
        assert "Figure 5" in matrix.fig5_table()
        assert "killi_1:64" in matrix.fig4_table()


class TestSimulationMatrixSmall:
    """One tiny end-to-end Figure 4/5 run (kept small for CI speed)."""

    @pytest.fixture(scope="class")
    def matrix(self):
        return fig4_fig5_performance(
            workloads=["nekbone"],
            schemes=["baseline", "flair", "killi_1:64"],
            accesses_per_cu=1500,
            seed=3,
        )

    def test_all_cells_present(self, matrix):
        assert matrix.workloads() == ["nekbone"]
        assert set(matrix.schemes()) == {"baseline", "flair", "killi_1:64"}

    def test_baseline_normalizes_to_one(self, matrix):
        assert matrix.normalized_time("nekbone", "baseline") == 1.0

    def test_overheads_are_modest(self, matrix):
        # Both techniques must stay within a few percent of baseline
        # at 0.625 VDD (the paper's headline claim).
        assert matrix.normalized_time("nekbone", "flair") < 1.02
        assert matrix.normalized_time("nekbone", "killi_1:64") < 1.06

    def test_mpki_ordering(self, matrix):
        base = matrix.mpki("nekbone", "baseline")
        killi = matrix.mpki("nekbone", "killi_1:64")
        assert killi >= base

    def test_table6_accepts_matrix(self, matrix):
        table = table6_power(matrix)
        assert "killi_1:64" not in table or table["killi_1:64"] > 0
        assert table["flair"] > 0


class TestCli:
    def test_analytic_commands(self, capsys):
        from repro.harness.cli import main

        for command in ["table4", "table5", "table6", "table7", "fig1", "fig2", "fig6"]:
            assert main([command]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "Figure 6" in out

    def test_perf_command_quick(self, capsys):
        from repro.harness.cli import main

        code = main(["fig4", "--accesses", "400", "--workloads", "nekbone"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Figure 5" in out

    def test_sec55_command(self, capsys):
        from repro.harness.cli import main

        assert main(["sec55", "--accesses", "400"]) == 0
        assert "Section 5.5" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        from repro.harness.cli import main

        for name, filename in [("table4", "table4.csv"), ("fig2", "fig2.csv")]:
            assert main([name, "--csv", str(tmp_path)]) == 0
            assert (tmp_path / filename).exists()

    def test_csv_export_perf(self, tmp_path, capsys):
        from repro.harness.cli import main

        assert main([
            "fig4", "--accesses", "300", "--workloads", "nekbone",
            "--csv", str(tmp_path),
        ]) == 0
        content = (tmp_path / "fig4_fig5.csv").read_text()
        assert "nekbone" in content
        assert "normalized_time" in content
