"""Tests for the MBIST-pre-characterised baseline schemes."""

import pytest

from repro.baselines import DectedScheme, FlairScheme, MsEccScheme, SecDedLineScheme
from repro.baselines.oracle import OracleEccScheme
from repro.cache.geometry import CacheGeometry
from repro.cache.core import WriteThroughCache
from repro.faults.fault_map import FaultMap

GEO = CacheGeometry(size_bytes=16 * 1024, line_bytes=64, associativity=4)


def build(scheme_cls, faults: dict, **kwargs):
    fault_map = FaultMap.from_faults(GEO.n_lines, faults)
    scheme = scheme_cls(GEO, fault_map, 0.625, **kwargs)
    cache = WriteThroughCache(GEO, scheme)
    return cache, scheme


def addr_of(set_index: int, tag: int = 0) -> int:
    return (tag * GEO.n_sets + set_index) * GEO.line_bytes


class TestOracleDisabling:
    def test_flair_disables_two_faults(self):
        faults = {GEO.line_id(0, 0): [(1, 1), (2, 1)]}
        cache, scheme = build(FlairScheme, faults)
        assert cache.tags.line(0, 0).disabled
        assert scheme.disabled_fraction() == pytest.approx(1 / GEO.n_lines)

    def test_flair_keeps_single_fault(self):
        faults = {GEO.line_id(0, 0): [(1, 1)]}
        cache, _ = build(FlairScheme, faults)
        assert not cache.tags.line(0, 0).disabled

    def test_dected_keeps_two_disables_three(self):
        faults = {
            GEO.line_id(0, 0): [(1, 1), (2, 1)],
            GEO.line_id(0, 1): [(1, 1), (2, 1), (3, 1)],
        }
        cache, _ = build(DectedScheme, faults)
        assert not cache.tags.line(0, 0).disabled
        assert cache.tags.line(0, 1).disabled

    def test_msecc_keeps_eleven_disables_twelve(self):
        eleven = [(i, 1) for i in range(11)]
        twelve = [(i, 1) for i in range(12)]
        faults = {GEO.line_id(0, 0): eleven, GEO.line_id(0, 1): twelve}
        cache, _ = build(MsEccScheme, faults)
        assert not cache.tags.line(0, 0).disabled
        assert cache.tags.line(0, 1).disabled

    def test_checkbit_faults_counted_for_secded(self):
        # SECDED checkbits live in the same LV array: a data fault +
        # a checkbit fault exceeds the single-error budget.
        faults = {GEO.line_id(0, 0): [(1, 1), (530, 1)]}
        cache, _ = build(SecDedLineScheme, faults)
        assert cache.tags.line(0, 0).disabled

    def test_checkbit_faults_ignored_for_msecc(self):
        faults = {GEO.line_id(0, 0): [(530, 1), (531, 1)] + [(i, 1) for i in range(11)]}
        cache, _ = build(MsEccScheme, faults)
        assert not cache.tags.line(0, 0).disabled

    def test_invalid_correct_t(self):
        fault_map = FaultMap.from_faults(GEO.n_lines, {})
        with pytest.raises(ValueError):
            OracleEccScheme(GEO, fault_map, 0.625, correct_t=-1)


class TestOracleAccessPath:
    def test_faulty_line_always_corrected(self):
        faults = {GEO.line_id(0, 0): [(1, 1)]}
        cache, _ = build(FlairScheme, faults)
        cache.read(addr_of(0))  # priority: all equal, picks a way
        # Touch until we hit the faulty way.
        for tag in range(4):
            cache.read(addr_of(0, tag))
        corrected_before = cache.stats.corrected_reads
        for tag in range(4):
            cache.read(addr_of(0, tag))
        assert cache.stats.corrected_reads > corrected_before

    def test_fault_free_lines_clean(self):
        cache, _ = build(FlairScheme, {})
        cache.read(addr_of(0))
        assert cache.read(addr_of(0)) == cache.latencies.hit
        assert cache.stats.corrected_reads == 0

    def test_no_error_induced_misses(self):
        # MBIST pre-characterisation: enabled lines are always safe.
        faults = {GEO.line_id(0, 0): [(1, 1)]}
        cache, _ = build(DectedScheme, faults)
        for tag in range(12):
            cache.read(addr_of(0, tag))
        assert cache.stats.error_induced_misses == 0

    def test_reset_redisables(self):
        faults = {GEO.line_id(0, 0): [(1, 1), (2, 1)]}
        cache, _ = build(FlairScheme, faults)
        cache.reset()
        assert cache.tags.line(0, 0).disabled


class TestWholeSetDisabled:
    def test_bypass_when_set_dead(self):
        faults = {
            GEO.line_id(0, way): [(1, 1), (2, 1)] for way in range(4)
        }
        cache, _ = build(FlairScheme, faults)
        lat = cache.read(addr_of(0))
        assert lat == cache.latencies.miss
        assert cache.stats.bypasses == 1
        assert cache.read(addr_of(0)) == cache.latencies.miss  # never cached


class TestFlairTrainingPhase:
    def test_capacity_restricted_during_training(self):
        cache, scheme = build(
            FlairScheme, {}, model_training=True, training_accesses=100
        )
        assert scheme._usable_ways_during_training == 1  # (4-2)//2
        cache.read(addr_of(0, 0))
        cache.read(addr_of(0, 1))  # evicts: only way 0 usable
        assert cache.tags.lookup(addr_of(0, 0)) is None

    def test_full_capacity_after_training(self):
        cache, scheme = build(
            FlairScheme, {}, model_training=True, training_accesses=2
        )
        cache.read(addr_of(0, 0))
        cache.read(addr_of(0, 0))
        # Training over: all ways usable now.
        cache.read(addr_of(0, 1))
        assert cache.tags.lookup(addr_of(0, 0)) is not None
        assert cache.tags.lookup(addr_of(0, 1)) is not None

    def test_training_off_by_default(self):
        cache, scheme = build(FlairScheme, {})
        assert not scheme.model_training
        assert scheme.is_line_usable(0, 3)
