"""Tests for the functional per-line SECDED scheme."""

from repro.baselines.functional import FunctionalSecDedLineScheme
from repro.cache.geometry import CacheGeometry
from repro.cache.core import WriteThroughCache
from repro.faults.fault_map import FaultMap
from repro.utils.rng import RngFactory

GEO = CacheGeometry(size_bytes=16 * 1024, line_bytes=64, associativity=4)


def build(faults: dict):
    fault_map = FaultMap.from_faults(GEO.n_lines, faults)
    scheme = FunctionalSecDedLineScheme(
        GEO, fault_map, 0.625, rng=RngFactory(9).stream("mask")
    )
    cache = WriteThroughCache(GEO, scheme)
    return cache, scheme


def addr_of(set_index: int, tag: int = 0) -> int:
    return (tag * GEO.n_sets + set_index) * GEO.line_bytes


class TestBaseBehaviour:
    def test_mbist_disable_still_applies(self):
        faults = {GEO.line_id(0, 0): [(1, 1), (2, 1)]}
        cache, _ = build(faults)
        assert cache.tags.line(0, 0).disabled

    def test_clean_line_clean_reads(self):
        cache, scheme = build({})
        cache.read(addr_of(0))
        assert cache.read(addr_of(0)) == cache.latencies.hit
        assert scheme.sdc_events == 0

    def test_single_lv_fault_corrected(self):
        faults = {GEO.line_id(0, 0): [(100, 1)]}
        cache, scheme = build(faults)
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {100})
        cache.read(addr_of(0))
        assert cache.stats.corrected_reads == 1
        assert scheme.sdc_events == 0


class TestSoftErrorWeakness:
    def test_double_error_detected_and_refetched(self):
        cache, scheme = build({})
        cache.read(addr_of(0))
        line_id = GEO.line_id(0, cache.tags.lookup(addr_of(0)))
        scheme.errors.set_effective(line_id, {10, 20})
        cache.read(addr_of(0))
        assert scheme.due_events == 1
        assert cache.stats.error_induced_misses == 1

    def test_triple_error_miscorrects_as_sdc(self):
        # The Section 2.3 weakness: 1 LV fault + 2-bit soft error = 3
        # codeword errors.  With odd weight SECDED "corrects" a single
        # bit and serves corrupt data.
        cache, scheme = build({})
        cache.read(addr_of(0))
        line_id = GEO.line_id(0, cache.tags.lookup(addr_of(0)))
        scheme.errors.set_effective(line_id, {10, 20, 30})
        outcome_events = cache.read(addr_of(0))
        assert scheme.sdc_events == 1

    def test_killi_catches_the_same_pattern(self):
        # Contrast: Killi's 4-segment parity sees 3 mismatching
        # segments on the same error vector.
        from repro.core import KilliConfig, KilliScheme

        fault_map = FaultMap.from_faults(GEO.n_lines, {})
        scheme = KilliScheme(
            GEO, fault_map, 0.625, KilliConfig(ecc_ratio=16),
            rng=RngFactory(9).stream("m"),
        )
        cache = WriteThroughCache(GEO, scheme)
        cache.read(addr_of(0))
        cache.read(addr_of(0))  # classify b'00
        line_id = GEO.line_id(0, cache.tags.lookup(addr_of(0)))
        scheme.errors.set_effective(line_id, {10, 20, 30})
        cache.read(addr_of(0))
        assert scheme.sdc_events == 0
        assert cache.stats.error_induced_misses == 1

    def test_refetch_clears_transients(self):
        cache, scheme = build({})
        cache.read(addr_of(0))
        line_id = GEO.line_id(0, cache.tags.lookup(addr_of(0)))
        scheme.errors.set_effective(line_id, {10, 20})
        cache.read(addr_of(0))  # detected, refetched
        assert cache.read(addr_of(0)) == cache.latencies.hit


class TestCampaign:
    def test_small_campaign_ordering(self):
        from repro.harness.experiments import soft_error_campaign

        out = soft_error_campaign(
            rate_per_access=0.05, accesses=8000, cache_kib=64
        )
        assert out["killi"]["sdc"] <= out["flair"]["sdc"]
        assert out["killi"]["detected"] > 0
