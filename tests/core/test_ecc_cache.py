"""Tests for the ECC metadata cache."""

import pytest

from repro.core.ecc_cache import EccCache


@pytest.fixture
def ecc():
    return EccCache(n_entries=16, assoc=4)  # 4 sets x 4 ways


class TestConstruction:
    def test_shape(self, ecc):
        assert ecc.n_sets == 4

    def test_too_small(self):
        with pytest.raises(ValueError):
            EccCache(n_entries=2, assoc=4)

    def test_not_divisible(self):
        with pytest.raises(ValueError):
            EccCache(n_entries=10, assoc=4)

    def test_index_mapping(self, ecc):
        assert ecc.index_of(0) == 0
        assert ecc.index_of(4) == 0
        assert ecc.index_of(5) == 1


class TestInsertLookup:
    def test_insert_and_contains(self, ecc):
        assert ecc.insert(0, 3) is None
        assert ecc.contains(0, 3)
        assert not ecc.contains(0, 4)

    def test_duplicate_insert_raises(self, ecc):
        ecc.insert(0, 3)
        with pytest.raises(ValueError):
            ecc.insert(0, 3)

    def test_eviction_when_set_full(self, ecc):
        # L2 sets 0, 4, 8, 12 all map to ECC set 0.
        for i, l2_set in enumerate([0, 4, 8, 12]):
            assert ecc.insert(l2_set, i) is None
        evicted = ecc.insert(16, 5)
        assert evicted == (0, 0)  # LRU of ECC set 0
        assert not ecc.contains(0, 0)
        assert ecc.contains(16, 5)

    def test_disjoint_sets_no_contention(self, ecc):
        for l2_set in range(4):  # distinct ECC sets
            for way in range(4):
                assert ecc.insert(l2_set, way) is None
        assert ecc.occupancy == 16


class TestLruCoordination:
    def test_touch_protects_entry(self, ecc):
        for i, l2_set in enumerate([0, 4, 8, 12]):
            ecc.insert(l2_set, i)
        ecc.touch(0, 0)  # promote the oldest (paper Section 4.4)
        evicted = ecc.insert(16, 5)
        assert evicted == (4, 1)  # the second-oldest got evicted

    def test_touch_missing_raises(self, ecc):
        with pytest.raises(ValueError):
            ecc.touch(0, 0)


class TestRemoveClear:
    def test_remove(self, ecc):
        ecc.insert(0, 1)
        assert ecc.remove(0, 1)
        assert not ecc.contains(0, 1)

    def test_remove_missing_is_noop(self, ecc):
        assert not ecc.remove(0, 1)

    def test_remove_frees_slot(self, ecc):
        for i, l2_set in enumerate([0, 4, 8, 12]):
            ecc.insert(l2_set, i)
        ecc.remove(4, 1)
        assert ecc.insert(16, 5) is None  # no eviction needed

    def test_clear(self, ecc):
        ecc.insert(0, 1)
        ecc.insert(1, 2)
        ecc.clear()
        assert ecc.occupancy == 0

    def test_stats_counters(self, ecc):
        for i, l2_set in enumerate([0, 4, 8, 12, 16]):
            ecc.insert(l2_set, i)
        assert ecc.allocations == 5
        assert ecc.evictions == 1
