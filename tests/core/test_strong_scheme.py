"""Tests for Killi with stronger ECC-cache codes (Sections 5.2/5.5)."""

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.core import WriteThroughCache
from repro.core.config import KilliConfig
from repro.core.dfh import Dfh
from repro.core.strong import KilliStrongScheme
from repro.faults.fault_map import FaultMap
from repro.utils.rng import RngFactory

GEO = CacheGeometry(size_bytes=16 * 1024, line_bytes=64, associativity=4)


def build(faults: dict, code: str = "dected", ecc_ratio: int = 16):
    fault_map = FaultMap.from_faults(GEO.n_lines, faults)
    scheme = KilliStrongScheme(
        GEO, fault_map, 0.625, KilliConfig(ecc_ratio=ecc_ratio),
        rng=RngFactory(9).stream("mask"), code=code,
    )
    cache = WriteThroughCache(GEO, scheme)
    return cache, scheme


def addr_of(set_index: int, tag: int = 0) -> int:
    return (tag * GEO.n_sets + set_index) * GEO.line_bytes


class TestBudgets:
    def test_code_budgets(self):
        _, dected = build({}, "dected")
        assert dected.correct_t == 2
        _, olsc = build({}, "olsc-t11")
        assert olsc.correct_t == 11

    def test_two_faults_enabled_under_dected(self):
        # The whole point of Section 5.2: DECTED keeps 2-fault lines.
        faults = {GEO.line_id(0, 0): [(0, 1), (1, 1)]}
        cache, scheme = build(faults, "dected")
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {0, 1})
        cache.read(addr_of(0))
        assert scheme.dfh[GEO.line_id(0, 0)] == int(Dfh.STABLE_1)
        assert cache.stats.corrected_reads == 1

    def test_three_faults_disabled_under_dected(self):
        faults = {GEO.line_id(0, 0): [(0, 1), (1, 1), (2, 1)]}
        cache, scheme = build(faults, "dected")
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {0, 1, 2})
        cache.read(addr_of(0))
        assert scheme.dfh[GEO.line_id(0, 0)] == int(Dfh.DISABLED)
        assert cache.tags.line(0, 0).disabled

    def test_eleven_faults_enabled_under_olsc(self):
        positions = list(range(11))
        faults = {GEO.line_id(0, 0): [(p, 1) for p in positions]}
        cache, scheme = build(faults, "olsc-t11")
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), set(positions))
        cache.read(addr_of(0))
        assert scheme.dfh[GEO.line_id(0, 0)] == int(Dfh.STABLE_1)

    def test_twelve_faults_disabled_under_olsc(self):
        positions = list(range(12))
        faults = {GEO.line_id(0, 0): [(p, 1) for p in positions]}
        cache, scheme = build(faults, "olsc-t11")
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), set(positions))
        cache.read(addr_of(0))
        assert scheme.dfh[GEO.line_id(0, 0)] == int(Dfh.DISABLED)


class TestTrainingFlows:
    def test_clean_lines_classify_b00(self):
        cache, scheme = build({})
        cache.read(addr_of(0))
        cache.read(addr_of(0))
        way = cache.tags.lookup(addr_of(0))
        assert scheme.dfh[GEO.line_id(0, way)] == int(Dfh.STABLE_0)
        assert not scheme.ecc.contains(0, way)

    def test_eviction_training(self):
        faults = {GEO.line_id(0, 0): [(0, 1), (1, 1), (2, 1)]}
        cache, scheme = build(faults, "dected")
        cache.read(addr_of(0, 0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {0, 1, 2})
        for tag in range(1, 6):
            cache.read(addr_of(0, tag))
        assert cache.tags.line(0, 0).disabled

    def test_checkbit_faults_count_against_budget(self):
        faults = {GEO.line_id(0, 0): [(530, 1), (531, 1), (532, 1)]}
        cache, scheme = build(faults, "dected")
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {530, 531, 532})
        cache.read(addr_of(0))
        assert scheme.dfh[GEO.line_id(0, 0)] == int(Dfh.DISABLED)

    def test_parity_only_fault_keeps_protection(self):
        faults = {GEO.line_id(0, 0): [(512, 1)]}
        cache, scheme = build(faults, "dected")
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {512})
        cache.read(addr_of(0))
        assert scheme.dfh[GEO.line_id(0, 0)] == int(Dfh.STABLE_1)

    def test_b00_path_falls_back_to_base_killi(self):
        # After training, a b'00 line behaves exactly like base Killi:
        # an unmasked fault triggers a retrain miss.
        faults = {GEO.line_id(0, 0): [(100, 1)]}
        cache, scheme = build(faults, "dected")
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), set())
        cache.read(addr_of(0))  # masked: classify b'00
        assert scheme.dfh[GEO.line_id(0, 0)] == int(Dfh.STABLE_0)
        scheme.errors.set_effective(GEO.line_id(0, 0), {100})
        cache.read(addr_of(0))
        assert cache.stats.error_induced_misses == 1


class TestStochasticCapacity:
    def test_more_capacity_than_secded_killi_at_0600(self, rngs):
        # The Section 5.5 claim in miniature: at 0.600 VDD the OLSC
        # variant disables far fewer lines than the SECDED variant.
        from repro.core.killi import KilliScheme

        fault_map = FaultMap(n_lines=GEO.n_lines, rng=rngs.stream("f"))
        results = {}
        for label, maker in {
            "secded": lambda: KilliScheme(
                GEO, fault_map, 0.600, KilliConfig(ecc_ratio=4),
                rng=rngs.stream("m1"),
            ),
            "olsc": lambda: KilliStrongScheme(
                GEO, fault_map, 0.600, KilliConfig(ecc_ratio=4),
                rng=rngs.stream("m2"), code="olsc-t11",
            ),
        }.items():
            scheme = maker()
            cache = WriteThroughCache(GEO, scheme)
            rng = np.random.default_rng(3)
            for addr in (rng.integers(0, 32 * 1024, size=20000) & ~63):
                cache.read(int(addr))
            results[label] = scheme.disabled_fraction()
        assert results["olsc"] < results["secded"] / 5
