"""Cross-validation: sparse error-vector model vs bit-accurate data path.

The production simulator never materialises line contents; it relies
on the linearity of parity and SECDED to classify lines from sparse
error vectors alone.  These tests store real random data through real
faulty cells with the real encoders and check that both models produce
identical controller signals — the ground-truth check for the whole
simulation approach.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.datapath import BitAccurateDataPath
from repro.core.linestate import LineErrorModel
from repro.faults.cell_model import CellFaultModel
from repro.faults.fault_map import FaultMap
from repro.utils.bitvec import random_bits
from repro.utils.rng import RngFactory


def make_pair(seed: int, n_lines: int = 128, p: float = 5e-3):
    rngs = RngFactory(seed)
    anchors = ((0.5, min(0.4, p * 10)), (0.625, p), (1.0, 1e-10))
    fault_map = FaultMap(
        n_lines=n_lines,
        cell_model=CellFaultModel(anchors=anchors),
        rng=rngs.stream("faults"),
    )
    datapath = BitAccurateDataPath(fault_map, 0.625)
    sparse = LineErrorModel(fault_map, 0.625, rngs.stream("mask"))
    return fault_map, datapath, sparse


def signals_tuple(signals):
    return (signals.sp_mismatches, signals.syndrome_zero, signals.global_parity_ok)


class TestTrainingConfiguration:
    def test_all_lines_match(self):
        fault_map, datapath, sparse = make_pair(seed=1)
        rng = np.random.default_rng(7)
        for line in range(fault_map.n_lines):
            data = random_bits(rng, 512)
            datapath.write(line, data)
            sparse.set_effective(line, datapath.effective_error_positions(line))
            expected = datapath.read_signals(line, 16, True)
            actual = sparse.signals(line, 16, True)
            assert signals_tuple(expected) == signals_tuple(actual), line
            assert expected.data_error_bits == actual.data_error_bits

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_over_seeds(self, seed):
        fault_map, datapath, sparse = make_pair(seed=seed, n_lines=16, p=2e-2)
        rng = np.random.default_rng(seed)
        for line in range(16):
            data = random_bits(rng, 512)
            datapath.write(line, data)
            sparse.set_effective(line, datapath.effective_error_positions(line))
            expected = datapath.read_signals(line, 16, True)
            actual = sparse.signals(line, 16, True)
            assert signals_tuple(expected) == signals_tuple(actual)


class TestStableConfiguration:
    @pytest.mark.parametrize("with_ecc", [True, False])
    def test_stable_lines_match(self, with_ecc):
        fault_map, datapath, sparse = make_pair(seed=3, p=1e-2)
        rng = np.random.default_rng(11)
        for line in range(fault_map.n_lines):
            data = random_bits(rng, 512)
            datapath.write_stable(line, data, with_ecc=with_ecc)
            effective = datapath.effective_error_positions(line)
            if not with_ecc:
                # Without checkbits stored, checkbit-region faults are
                # invisible; mirror only observable offsets.
                effective = {
                    offset for offset in effective
                    if offset < 516 or offset >= 528 and with_ecc
                }
            sparse.set_effective(line, effective)
            expected = datapath.read_signals(line, 4, with_ecc)
            actual = sparse.signals(line, 4, with_ecc)
            assert signals_tuple(expected) == signals_tuple(actual), line


class TestCorrection:
    def test_single_fault_corrected_to_written_data(self):
        fault_map, datapath, sparse = make_pair(seed=5, p=1e-3)
        rng = np.random.default_rng(13)
        corrected_lines = 0
        for line in range(fault_map.n_lines):
            if fault_map.fault_count(line, 0.625) != 1:
                continue
            data = random_bits(rng, 512)
            datapath.write(line, data)
            effective = datapath.effective_error_positions(line)
            if len(effective) != 1 or not min(effective) < 512:
                continue  # masked or checkbit fault
            corrected = datapath.read_corrected(line)
            assert (corrected == data).all(), line
            corrected_lines += 1
        assert corrected_lines > 0

    def test_soft_error_burst_equivalence(self):
        # Adjacent soft-error bursts: same signals both ways.
        fault_map, datapath, sparse = make_pair(seed=9, p=1e-9)
        rng = np.random.default_rng(17)
        for start in [0, 100, 509]:
            line = start % fault_map.n_lines
            data = random_bits(rng, 512)
            datapath.write(line, data)
            stored = datapath._stored[line]
            stored[start : start + 3] ^= 1  # 3-bit burst in data
            sparse.set_effective(line, datapath.effective_error_positions(line))
            expected = datapath.read_signals(line, 16, True)
            actual = sparse.signals(line, 16, True)
            assert signals_tuple(expected) == signals_tuple(actual)
            assert expected.sp_mismatches == 3  # interleaving splits it


class TestRawAccess:
    def test_unwritten_line_raises(self):
        _, datapath, _ = make_pair(seed=2)
        with pytest.raises(KeyError):
            datapath.read_raw(0)

    def test_wrong_data_length(self):
        _, datapath, _ = make_pair(seed=2)
        with pytest.raises(ValueError):
            datapath.write(0, np.zeros(100, dtype=np.uint8))

    def test_fault_free_line_reads_back_exactly(self):
        fault_map, datapath, _ = make_pair(seed=2, p=1e-9)
        rng = np.random.default_rng(1)
        line = next(l for l in range(128) if not fault_map.has_faults(l))
        data = random_bits(rng, 512)
        datapath.write(line, data)
        assert datapath.effective_error_positions(line) == set()
        assert (datapath.read_raw(line)[:512] == data).all()
