"""Golden end-to-end Table 2 tests through the bit-accurate data path.

Independent of the sparse error-vector model: each test constructs a
physical stuck-at pattern and data value, stores it through the real
encoders (`BitAccurateDataPath`), derives the controller signals with
the real decoders, classifies with the Table 2 logic, and checks the
outcome the paper's row prescribes.
"""

import numpy as np

from repro.core.datapath import BitAccurateDataPath
from repro.core.dfh import Dfh, DfhAction, classify
from repro.faults.fault_map import FaultMap
from repro.utils.bitvec import random_bits


def datapath_for(faults: dict) -> BitAccurateDataPath:
    return BitAccurateDataPath(FaultMap.from_faults(8, faults), voltage=0.625)


def data_with(rng, forced: dict) -> np.ndarray:
    data = random_bits(rng, 512)
    for position, value in forced.items():
        data[position] = value
    return data


def classify_training(datapath: BitAccurateDataPath, line: int):
    signals = datapath.read_signals(line, 16, use_ecc=True)
    return classify(
        Dfh.INITIAL, signals.sp_mismatches, signals.syndrome_zero,
        signals.global_parity_ok,
    ), signals


class TestB01GoldenRows:
    def test_row_clean(self, rng):
        # "No Error. Most frequent scenario."
        datapath = datapath_for({})
        datapath.write(0, random_bits(rng, 512))
        cls, _ = classify_training(datapath, 0)
        assert cls.next_dfh is Dfh.STABLE_0
        assert cls.free_ecc_entry

    def test_row_single_lv_error(self, rng):
        # "1-bit LV error" -> correct using checkbits, b'10.
        datapath = datapath_for({0: [(100, 1)]})
        data = data_with(rng, {100: 0})  # unmasked
        datapath.write(0, data)
        cls, signals = classify_training(datapath, 0)
        assert signals.sp_mismatches == 1
        assert not signals.syndrome_zero and not signals.global_parity_ok
        assert cls.next_dfh is Dfh.STABLE_1
        assert cls.action is DfhAction.CORRECT_AND_SEND
        assert (datapath.read_corrected(0) == data).all()

    def test_row_multibit_across_segments(self, rng):
        # "Multi-bit error" -> disable.
        datapath = datapath_for({0: [(0, 1), (1, 1)]})
        datapath.write(0, data_with(rng, {0: 0, 1: 0}))
        cls, signals = classify_training(datapath, 0)
        assert signals.sp_mismatches == 2
        assert cls.next_dfh is Dfh.DISABLED
        assert cls.action is DfhAction.ERROR_MISS

    def test_row_even_errors_same_segment(self, rng):
        # "Even number of errors": parity blind (segment 0 twice),
        # SECDED syndrome non-zero with even parity -> disable.
        datapath = datapath_for({0: [(0, 1), (16, 1)]})
        datapath.write(0, data_with(rng, {0: 0, 16: 0}))
        cls, signals = classify_training(datapath, 0)
        assert signals.sp_mismatches == 0
        assert not signals.syndrome_zero and signals.global_parity_ok
        assert cls.next_dfh is Dfh.DISABLED

    def test_row_odd_multibit(self, rng):
        # Three errors spread over >= 2 segments -> double-cross parity.
        datapath = datapath_for({0: [(0, 1), (1, 1), (2, 1)]})
        datapath.write(0, data_with(rng, {0: 0, 1: 0, 2: 0}))
        cls, signals = classify_training(datapath, 0)
        assert signals.sp_mismatches == 3
        assert cls.next_dfh is Dfh.DISABLED

    def test_masked_fault_classifies_clean(self, rng):
        # §4.3: a masked fault is invisible at classification time.
        datapath = datapath_for({0: [(200, 1)]})
        datapath.write(0, data_with(rng, {200: 1}))  # masked
        cls, _ = classify_training(datapath, 0)
        assert cls.next_dfh is Dfh.STABLE_0


class TestB00GoldenRows:
    def test_unmask_after_training(self, rng):
        # Table 2 rows 2-3: errors discovered on a b'00 line.
        datapath = datapath_for({0: [(200, 1)]})
        data = data_with(rng, {200: 0})
        datapath.write_stable(0, data, with_ecc=False)
        signals = datapath.read_signals(0, 4, use_ecc=False)
        cls = classify(Dfh.STABLE_0, signals.sp_mismatches, True, True)
        assert cls.next_dfh is Dfh.INITIAL
        assert cls.action is DfhAction.ERROR_MISS

    def test_multibit_on_b00_disables(self, rng):
        datapath = datapath_for({0: [(0, 1), (1, 1)]})
        datapath.write_stable(0, data_with(rng, {0: 0, 1: 0}), with_ecc=False)
        signals = datapath.read_signals(0, 4, use_ecc=False)
        cls = classify(Dfh.STABLE_0, signals.sp_mismatches, True, True)
        assert cls.next_dfh is Dfh.DISABLED


class TestB10GoldenRows:
    def test_persistent_fault_keeps_correcting(self, rng):
        datapath = datapath_for({0: [(100, 1)]})
        data = data_with(rng, {100: 0})
        datapath.write_stable(0, data, with_ecc=True)
        signals = datapath.read_signals(0, 4, use_ecc=True)
        cls = classify(
            Dfh.STABLE_1, signals.sp_mismatches, signals.syndrome_zero,
            signals.global_parity_ok,
        )
        assert cls.next_dfh is Dfh.STABLE_1
        assert cls.action is DfhAction.CORRECT_AND_SEND
        assert (datapath.read_corrected(0) == data).all()

    def test_overwritten_transient_returns_to_b00(self, rng):
        # Row: "Non-LV transient error that was subsequently
        # overwritten" — all signals clean in b'10 -> b'00.
        datapath = datapath_for({0: [(100, 1)]})
        datapath.write_stable(0, data_with(rng, {100: 1}), with_ecc=True)
        signals = datapath.read_signals(0, 4, use_ecc=True)
        cls = classify(
            Dfh.STABLE_1, signals.sp_mismatches, signals.syndrome_zero,
            signals.global_parity_ok,
        )
        assert cls.next_dfh is Dfh.STABLE_0
        assert cls.free_ecc_entry

    def test_second_error_on_b10_disables(self, rng):
        # Row: "Error on line with existing 1-bit LV error."
        datapath = datapath_for({0: [(100, 1), (101, 1)]})
        datapath.write_stable(0, data_with(rng, {100: 0, 101: 0}), with_ecc=True)
        signals = datapath.read_signals(0, 4, use_ecc=True)
        cls = classify(
            Dfh.STABLE_1, signals.sp_mismatches, signals.syndrome_zero,
            signals.global_parity_ok,
        )
        assert cls.next_dfh is Dfh.DISABLED
        assert cls.action is DfhAction.ERROR_MISS
