"""Additional directed tests of KilliScheme details."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.core import WriteThroughCache
from repro.core.config import KilliConfig
from repro.core.dfh import Dfh
from repro.core.killi import KilliScheme
from repro.faults.fault_map import FaultMap
from repro.faults.soft_errors import SoftErrorInjector
from repro.utils.rng import RngFactory

GEO = CacheGeometry(size_bytes=16 * 1024, line_bytes=64, associativity=4)


def build(faults: dict, config: KilliConfig | None = None, injector=None):
    fault_map = FaultMap.from_faults(GEO.n_lines, faults)
    scheme = KilliScheme(
        GEO, fault_map, 0.625,
        config if config is not None else KilliConfig(ecc_ratio=16),
        rng=RngFactory(9).stream("mask"),
        soft_injector=injector,
    )
    cache = WriteThroughCache(GEO, scheme)
    return cache, scheme


def addr_of(set_index: int, tag: int = 0) -> int:
    return (tag * GEO.n_sets + set_index) * GEO.line_bytes


class TestConfigValidation:
    def test_bad_ratio(self):
        with pytest.raises(ValueError):
            KilliConfig(ecc_ratio=0)

    def test_bad_assoc(self):
        with pytest.raises(ValueError):
            KilliConfig(ecc_assoc=0)

    def test_segment_nesting(self):
        with pytest.raises(ValueError):
            KilliConfig(training_segments=10, stable_segments=4)

    def test_ecc_entries_floor(self):
        config = KilliConfig(ecc_ratio=100000, ecc_assoc=4)
        assert config.ecc_entries(1024) == 4  # at least one full set

    def test_default_matches_paper(self):
        config = KilliConfig()
        assert config.training_segments == 16
        assert config.stable_segments == 4
        assert config.ecc_assoc == 4


class TestWriteHitPaths:
    def test_write_hit_touches_entry(self):
        faults = {GEO.line_id(0, 0): [(100, 1)]}
        cache, scheme = build(faults)
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {100})
        cache.read(addr_of(0))  # b'10 with entry
        # Fill three aliasing entries so LRU position matters.
        assert scheme.ecc.contains(0, 0)
        cache.write(addr_of(0))  # touch via write
        assert scheme.ecc.contains(0, 0)

    def test_write_to_b00_line_no_entry(self):
        cache, scheme = build({})
        cache.read(addr_of(0))
        cache.read(addr_of(0))
        way = cache.tags.lookup(addr_of(0))
        cache.write(addr_of(0))
        assert not scheme.ecc.contains(0, way)

    def test_write_miss_changes_nothing(self):
        cache, scheme = build({})
        cache.write(addr_of(0))
        assert cache.tags.lookup(addr_of(0)) is None
        assert scheme.ecc.occupancy == 0


class TestAccounting:
    def test_hits_served_counts(self):
        cache, scheme = build({})
        cache.read(addr_of(0))
        cache.read(addr_of(0))
        cache.read(addr_of(0))
        assert scheme.hits_served == 2

    def test_transition_bookkeeping(self):
        cache, scheme = build({})
        cache.read(addr_of(0))
        cache.read(addr_of(0))
        assert scheme.transitions[("INITIAL", "STABLE_0")] == 1

    def test_corrections_bumped_in_stats(self):
        faults = {GEO.line_id(0, 0): [(100, 1)]}
        cache, scheme = build(faults)
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {100})
        cache.read(addr_of(0))
        assert cache.stats.extra.get("ecc_corrections") == 1

    def test_dfh_histogram_sums(self):
        cache, scheme = build({})
        for tag in range(6):
            cache.read(addr_of(0, tag))
        assert sum(scheme.dfh_histogram().values()) == GEO.n_lines


class TestSoftInjectorInteraction:
    def test_injector_fires_on_protected_states(self):
        injector = SoftErrorInjector(1.0, burst_pmf={1: 1.0},
                                     rng=RngFactory(5).stream("s"))
        cache, scheme = build({}, injector=injector)
        cache.read(addr_of(0))
        events_before = injector.events_injected
        cache.read(addr_of(0))
        assert injector.events_injected == events_before + 1

    def test_b01_line_with_soft_error_never_silently_wrong(self):
        injector = SoftErrorInjector(1.0, burst_pmf={1: 1.0},
                                     rng=RngFactory(5).stream("s"))
        cache, scheme = build({}, injector=injector)
        for tag in range(30):
            cache.read(addr_of(0, tag))
            cache.read(addr_of(0, tag))
        assert scheme.sdc_events == 0


class TestDisabledSetBehaviour:
    def test_partial_set_disable_keeps_working(self):
        faults = {
            GEO.line_id(0, way): [(0, 1), (1, 1)] for way in range(3)
        }
        cache, scheme = build(faults)
        # Disable three of four ways through training.
        for way in range(3):
            cache.read(addr_of(0, way))
        for way in range(3):
            scheme.errors.set_effective(GEO.line_id(0, way), {0, 1})
        # Touch each to classify (they may sit in any way; just sweep).
        for tag in range(8):
            cache.read(addr_of(0, tag))
        disabled = sum(
            1 for way in range(4) if cache.tags.line(0, way).disabled
        )
        assert disabled >= 1
        # The set still serves traffic through the remaining ways.
        cache.read(addr_of(0, 50))
        assert cache.stats.reads > 0

    def test_fill_priority_values(self):
        cache, scheme = build({})
        line_id = GEO.line_id(0, 0)
        scheme.dfh[line_id] = int(Dfh.INITIAL)
        assert scheme.fill_priority(0, 0) == 2
        scheme.dfh[line_id] = int(Dfh.STABLE_0)
        assert scheme.fill_priority(0, 0) == 1
        scheme.dfh[line_id] = int(Dfh.STABLE_1)
        assert scheme.fill_priority(0, 0) == 0
        scheme.dfh[line_id] = int(Dfh.DISABLED)
        assert scheme.fill_priority(0, 0) == 0


class TestKernelResultHelpers:
    def test_ipc_and_mpki(self):
        from repro.cache.stats import CacheStats
        from repro.gpu.engine import KernelResult

        stats = CacheStats()
        stats.reads = 10
        stats.read_misses = 4
        result = KernelResult(
            workload="w", cycles=100, instructions=1000, l2_stats=stats
        )
        assert result.ipc == 10.0
        assert result.l2_mpki == pytest.approx(4.0)

    def test_zero_cycles_ipc(self):
        from repro.cache.stats import CacheStats
        from repro.gpu.engine import KernelResult

        result = KernelResult(
            workload="w", cycles=0, instructions=0, l2_stats=CacheStats()
        )
        assert result.ipc == 0.0
