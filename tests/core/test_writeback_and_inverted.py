"""Tests for the write-back extension (5.6.1) and inverted-write
training (5.6.2)."""

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.core import WriteBackCache
from repro.cache.core import WriteThroughCache
from repro.core.config import KilliConfig
from repro.core.dfh import Dfh
from repro.core.killi import KilliScheme
from repro.core.writeback import KilliWriteBackScheme
from repro.faults.fault_map import FaultMap
from repro.utils.rng import RngFactory

GEO = CacheGeometry(size_bytes=16 * 1024, line_bytes=64, associativity=4)


def build_wb(faults: dict, config: KilliConfig | None = None):
    fault_map = FaultMap.from_faults(GEO.n_lines, faults)
    scheme = KilliWriteBackScheme(
        GEO, fault_map, 0.625,
        config if config is not None else KilliConfig(ecc_ratio=16),
        rng=RngFactory(9).stream("mask"),
    )
    return WriteBackCache(GEO, scheme), scheme


def addr_of(set_index: int, tag: int = 0) -> int:
    return (tag * GEO.n_sets + set_index) * GEO.line_bytes


class TestWriteBackProtocol:
    def test_write_allocates(self):
        cache, _ = build_wb({})
        cache.write(addr_of(0))
        assert cache.stats.write_misses == 1
        assert cache.tags.lookup(addr_of(0)) is not None
        assert cache.memory_writes == 0  # not written through

    def test_dirty_eviction_writes_back(self):
        cache, _ = build_wb({})
        cache.write(addr_of(0, 0))
        for tag in range(1, 6):
            cache.read(addr_of(0, tag))
        assert cache.memory_writes == 1

    def test_clean_eviction_silent(self):
        cache, _ = build_wb({})
        cache.read(addr_of(0, 0))
        for tag in range(1, 6):
            cache.read(addr_of(0, tag))
        assert cache.memory_writes == 0

    def test_write_hit_marks_dirty_once(self):
        cache, scheme = build_wb({})
        cache.write(addr_of(0))
        cache.write(addr_of(0))
        set_index = GEO.set_of(addr_of(0))
        way = cache.tags.lookup(addr_of(0))
        assert cache.tags.line(set_index, way).dirty

    def test_invalidation_of_dirty_line_writes_back(self):
        cache, _ = build_wb({})
        cache.write(addr_of(0))
        way = cache.tags.lookup(addr_of(0))
        cache.invalidate_line(GEO.set_of(addr_of(0)), way)
        assert cache.memory_writes == 1


class TestDirtyProtectionUpgrades:
    def test_dirty_b00_gets_secded(self):
        cache, scheme = build_wb({})
        cache.read(addr_of(0))
        cache.read(addr_of(0))  # classify b'00, entry freed
        way = cache.tags.lookup(addr_of(0))
        assert not scheme.ecc.contains(0, way)
        cache.write(addr_of(0))  # dirty: SECDED allocated on demand
        assert scheme.ecc.contains(0, way)
        assert cache.stats.extra.get("dirty_secded_allocations") == 1

    def test_dirty_b10_upgrade_counted(self):
        faults = {GEO.line_id(0, 0): [(100, 1)]}
        cache, scheme = build_wb(faults)
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {100})
        cache.read(addr_of(0))  # classify b'10
        cache.write(addr_of(0))
        assert cache.stats.extra.get("dirty_dected_upgrades") == 1

    def test_protected_dirty_b00_single_error_corrected(self):
        cache, scheme = build_wb({})
        cache.read(addr_of(0))
        cache.read(addr_of(0))
        cache.write(addr_of(0))  # dirty + SECDED
        line_id = GEO.line_id(0, cache.tags.lookup(addr_of(0)))
        scheme.errors.set_effective(line_id, {200})  # soft error
        cache.read(addr_of(0))
        assert cache.stats.corrected_reads == 1
        assert cache.stats.extra.get("due_on_dirty", 0) == 0

    def test_unprotected_due_is_counted(self):
        # A dirty b'00 line that somehow lost its entry and then takes
        # a detected multi-segment error loses data.
        cache, scheme = build_wb({})
        cache.read(addr_of(0))
        cache.read(addr_of(0))
        cache.write(addr_of(0))
        way = cache.tags.lookup(addr_of(0))
        scheme.ecc.remove(0, way)  # simulate entry loss
        line_id = GEO.line_id(0, way)
        scheme.errors.set_effective(line_id, {0, 1})
        cache.read(addr_of(0))
        assert cache.stats.extra.get("due_on_dirty") == 1


class TestInvertedWriteTraining:
    def masked_fault_setup(self, inverted: bool):
        config = KilliConfig(ecc_ratio=16, inverted_write_training=inverted)
        fault_map = FaultMap.from_faults(
            GEO.n_lines, {GEO.line_id(0, 0): [(0, 1), (16, 1)]}
        )
        scheme = KilliScheme(GEO, fault_map, 0.625, config,
                             rng=RngFactory(9).stream("m"))
        cache = WriteThroughCache(GEO, scheme)
        return cache, scheme

    def test_masked_same_segment_pair_caught(self):
        # Both faults in training segment 0 and *masked*: plain Killi
        # classifies b'00 (the 5.6.2 hazard); inverted training sees
        # them and disables the line.
        cache, scheme = self.masked_fault_setup(inverted=True)
        cache.read(addr_of(0))
        line_id = GEO.line_id(0, 0)
        scheme.errors.set_effective(line_id, set())  # fully masked
        cache.read(addr_of(0))
        assert scheme.dfh[line_id] == int(Dfh.DISABLED)

    def test_plain_killi_misses_masked_pair(self):
        cache, scheme = self.masked_fault_setup(inverted=False)
        cache.read(addr_of(0))
        line_id = GEO.line_id(0, 0)
        scheme.errors.set_effective(line_id, set())
        cache.read(addr_of(0))
        assert scheme.dfh[line_id] == int(Dfh.STABLE_0)

    def test_single_masked_fault_classified_b10(self):
        config = KilliConfig(ecc_ratio=16, inverted_write_training=True)
        fault_map = FaultMap.from_faults(
            GEO.n_lines, {GEO.line_id(0, 0): [(100, 1)]}
        )
        scheme = KilliScheme(GEO, fault_map, 0.625, config,
                             rng=RngFactory(9).stream("m"))
        cache = WriteThroughCache(GEO, scheme)
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), set())
        cache.read(addr_of(0))
        assert scheme.dfh[GEO.line_id(0, 0)] == int(Dfh.STABLE_1)

    def test_no_sdc_under_inverted_training(self):
        # Random traffic over a moderately faulty map: inverted
        # training should produce zero masked-fault SDCs.  (The fault
        # rate stays in a regime where 3-fault lines — whose signal
        # *aliasing* is the separate Section 5.3 coverage limit that
        # inverted writes cannot help with — are negligible.)
        config = KilliConfig(ecc_ratio=8, inverted_write_training=True)
        rngs = RngFactory(21)
        from repro.faults.cell_model import CellFaultModel

        anchors = ((0.5, 0.1), (0.625, 5e-4), (1.0, 1e-10))
        fault_map = FaultMap(
            n_lines=GEO.n_lines,
            cell_model=CellFaultModel(anchors=anchors),
            rng=rngs.stream("f"),
        )
        scheme = KilliScheme(GEO, fault_map, 0.625, config, rng=rngs.stream("m"))
        cache = WriteThroughCache(GEO, scheme)
        rng = np.random.default_rng(4)
        for addr in (rng.integers(0, 64 * 1024, size=20000) & ~63):
            if rng.random() < 0.3:
                cache.write(int(addr))
            else:
                cache.read(int(addr))
        assert scheme.sdc_events == 0
