"""Directed tests of the Killi protection scheme on a real cache."""

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.core import WriteThroughCache
from repro.core.config import KilliConfig
from repro.core.dfh import Dfh
from repro.core.killi import KilliScheme
from repro.faults.fault_map import FaultMap
from repro.faults.soft_errors import SoftErrorInjector
from repro.utils.rng import RngFactory


GEO = CacheGeometry(size_bytes=16 * 1024, line_bytes=64, associativity=4)
# 64 sets x 4 ways = 256 lines.


def build(faults: dict, config: KilliConfig | None = None, voltage: float = 0.625,
          injector: SoftErrorInjector | None = None):
    """Cache + Killi over an explicit fault map."""
    fault_map = FaultMap.from_faults(GEO.n_lines, faults)
    scheme = KilliScheme(
        GEO,
        fault_map,
        voltage,
        config if config is not None else KilliConfig(ecc_ratio=16),
        rng=RngFactory(9).stream("mask"),
        soft_injector=injector,
    )
    cache = WriteThroughCache(GEO, scheme)
    return cache, scheme


def addr_of(set_index: int, tag: int = 0) -> int:
    return (tag * GEO.n_sets + set_index) * GEO.line_bytes


class TestFaultFreeTraining:
    def test_first_hit_classifies_b00(self):
        cache, scheme = build({})
        cache.read(addr_of(0))
        line_id = GEO.line_id(0, cache.tags.lookup(addr_of(0)))
        assert scheme.dfh[line_id] == int(Dfh.INITIAL)
        cache.read(addr_of(0))  # first hit classifies
        assert scheme.dfh[line_id] == int(Dfh.STABLE_0)

    def test_ecc_entry_freed_on_classification(self):
        cache, scheme = build({})
        cache.read(addr_of(0))
        way = cache.tags.lookup(addr_of(0))
        assert scheme.ecc.contains(0, way)
        cache.read(addr_of(0))
        assert not scheme.ecc.contains(0, way)

    def test_b00_fill_skips_ecc_cache(self):
        cache, scheme = build({})
        # Classify every way of set 0 to b'00 so the refill must land
        # on a b'00 line.
        for tag in range(4):
            cache.read(addr_of(0, tag))
            cache.read(addr_of(0, tag))
        way = cache.tags.lookup(addr_of(0, 0))
        cache.invalidate_line(0, way)
        cache.read(addr_of(0, 9))  # refill of a classified line
        assert not scheme.ecc.contains(0, cache.tags.lookup(addr_of(0, 9)))

    def test_all_lines_eventually_stable(self):
        cache, scheme = build({})
        for tag in range(8):
            for set_index in range(GEO.n_sets):
                cache.read(addr_of(set_index, tag))
        histogram = scheme.dfh_histogram()
        assert histogram.get("INITIAL", 0) < GEO.n_lines // 10


class TestSingleFaultLine:
    def fault_on_way0_set0(self):
        # Stuck-at-1 on data bit 100 of line (set 0, way 0); writing
        # random data unmasks it ~half the time, but we force the
        # issue with set_effective below.
        return {GEO.line_id(0, 0): [(100, 1)]}

    def test_unmasked_single_fault_classifies_b10(self):
        cache, scheme = build(self.fault_on_way0_set0())
        cache.read(addr_of(0))  # fills way 0 (priority order)
        assert cache.tags.lookup(addr_of(0)) == 0
        line_id = GEO.line_id(0, 0)
        scheme.errors.set_effective(line_id, {100})  # force unmasked
        outcome = cache.read(addr_of(0))
        assert scheme.dfh[line_id] == int(Dfh.STABLE_1)
        assert cache.stats.corrected_reads == 1
        assert scheme.ecc.contains(0, 0)

    def test_b10_hits_keep_correcting(self):
        cache, scheme = build(self.fault_on_way0_set0())
        cache.read(addr_of(0))
        line_id = GEO.line_id(0, 0)
        scheme.errors.set_effective(line_id, {100})
        for _ in range(5):
            cache.read(addr_of(0))
        assert cache.stats.corrected_reads == 5
        assert scheme.sdc_events == 0

    def test_masked_fault_classifies_b00(self):
        cache, scheme = build(self.fault_on_way0_set0())
        cache.read(addr_of(0))
        line_id = GEO.line_id(0, 0)
        scheme.errors.set_effective(line_id, set())  # masked
        cache.read(addr_of(0))
        assert scheme.dfh[line_id] == int(Dfh.STABLE_0)

    def test_unmask_after_b00_retrains(self):
        # Paper Table 2 row: "1-bit error discovered after training;
        # initial classification incorrect".
        cache, scheme = build(self.fault_on_way0_set0())
        cache.read(addr_of(0))
        line_id = GEO.line_id(0, 0)
        scheme.errors.set_effective(line_id, set())
        cache.read(addr_of(0))  # -> b'00
        scheme.errors.set_effective(line_id, {100})  # write unmasked it
        cache.read(addr_of(0))
        assert cache.stats.error_induced_misses == 1
        assert scheme.dfh[line_id] == int(Dfh.INITIAL)
        # The refetch landed in the same (now b'01) line and the next
        # hit reclassifies it to b'10.
        scheme.errors.set_effective(line_id, {100})
        cache.read(addr_of(0))
        assert scheme.dfh[line_id] == int(Dfh.STABLE_1)


class TestMultiFaultLine:
    def test_two_segment_errors_disable(self):
        faults = {GEO.line_id(0, 0): [(0, 1), (1, 1)]}  # distinct segments
        cache, scheme = build(faults)
        cache.read(addr_of(0))
        line_id = GEO.line_id(0, 0)
        scheme.errors.set_effective(line_id, {0, 1})
        cache.read(addr_of(0))
        assert scheme.dfh[line_id] == int(Dfh.DISABLED)
        assert cache.tags.line(0, 0).disabled
        assert cache.stats.error_induced_misses == 1

    def test_same_segment_pair_caught_by_ecc(self):
        # Both faults in training segment 0 (positions 0 and 16):
        # parity is blind, but the SECDED syndrome is non-zero with
        # even parity -> disable (Table 2 row 6).
        faults = {GEO.line_id(0, 0): [(0, 1), (16, 1)]}
        cache, scheme = build(faults)
        cache.read(addr_of(0))
        line_id = GEO.line_id(0, 0)
        scheme.errors.set_effective(line_id, {0, 16})
        cache.read(addr_of(0))
        assert scheme.dfh[line_id] == int(Dfh.DISABLED)

    def test_disabled_line_never_reallocated(self):
        faults = {GEO.line_id(0, 0): [(0, 1), (1, 1)]}
        cache, scheme = build(faults)
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {0, 1})
        cache.read(addr_of(0))
        for tag in range(10):
            cache.read(addr_of(0, tag))
        assert not cache.tags.line(0, 0).valid
        assert cache.tags.line(0, 0).disabled

    def test_disabled_fraction(self):
        faults = {GEO.line_id(0, 0): [(0, 1), (1, 1)]}
        cache, scheme = build(faults)
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {0, 1})
        cache.read(addr_of(0))
        assert scheme.disabled_fraction() == pytest.approx(1 / GEO.n_lines)


class TestPriorityReplacement:
    def test_prefers_initial_over_stable0(self):
        cache, scheme = build({})
        # Classify line (0,0) to b'00, then invalidate it.
        cache.read(addr_of(0, 0))
        cache.read(addr_of(0, 0))
        way = cache.tags.lookup(addr_of(0, 0))
        cache.invalidate_line(0, way)
        # Next fill prefers a b'01 way over the invalid b'00 way.
        cache.read(addr_of(0, 1))
        new_way = cache.tags.lookup(addr_of(0, 1))
        assert scheme.dfh[GEO.line_id(0, new_way)] != int(Dfh.STABLE_0) or new_way != way

    def test_prefers_b00_over_b10(self):
        faults = {GEO.line_id(0, w): [(100, 1)] for w in range(4)}
        config = KilliConfig(ecc_ratio=16)
        cache, scheme = build(faults, config)
        # Train: way0..3 become b'10 (force unmasked), then invalidate all.
        for tag in range(4):
            cache.read(addr_of(0, tag))
        for way in range(4):
            scheme.errors.set_effective(GEO.line_id(0, way), {100})
        for tag in range(4):
            cache.read(addr_of(0, tag))
        # Make way 1 b'00 artificially.
        scheme.dfh[GEO.line_id(0, 1)] = int(Dfh.STABLE_0)
        for way in range(4):
            cache.invalidate_line(0, way)
        cache.read(addr_of(0, 9))
        assert cache.tags.lookup(addr_of(0, 9)) == 1

    def test_priority_disabled_by_config(self):
        config = KilliConfig(ecc_ratio=16, priority_replacement=False)
        cache, scheme = build({}, config)
        assert scheme.fill_priority(0, 0) == 0


class TestEvictionTraining:
    def test_evicted_b01_lines_classified(self):
        cache, scheme = build({})
        # Fill set 0 beyond capacity without ever hitting.
        for tag in range(8):
            cache.read(addr_of(0, tag))
        transitions = scheme.transitions.get(("INITIAL", "STABLE_0"), 0)
        assert transitions >= 4  # evictions trained the lines

    def test_eviction_training_disabled(self):
        config = KilliConfig(ecc_ratio=16, train_on_evict=False)
        cache, scheme = build({}, config)
        for tag in range(8):
            cache.read(addr_of(0, tag))
        assert scheme.transitions.get(("INITIAL", "STABLE_0"), 0) == 0

    def test_eviction_discovers_multibit_and_disables(self):
        faults = {GEO.line_id(0, 0): [(0, 1), (1, 1)]}
        cache, scheme = build(faults)
        cache.read(addr_of(0, 0))  # into way 0
        scheme.errors.set_effective(GEO.line_id(0, 0), {0, 1})
        # Force eviction by filling the set.
        for tag in range(1, 6):
            cache.read(addr_of(0, tag))
        assert cache.tags.line(0, 0).disabled


class TestEccCacheContention:
    def test_clean_lines_survive_ecc_eviction(self):
        # ECC cache with 4 entries; filling many b'01 lines evicts
        # entries, whose (fault-free) lines reclassify to b'00 and
        # stay valid.
        config = KilliConfig(ecc_ratio=64, ecc_assoc=4)  # 4 entries
        cache, scheme = build({}, config)
        for set_index in range(16):
            cache.read(addr_of(set_index))
        assert cache.stats.extra.get("ecc_evict_reclassified_clean", 0) > 0
        assert cache.stats.ecc_evict_invalidations == 0
        assert cache.tags.count_valid() == 16

    def test_faulty_lines_invalidated_on_ecc_eviction(self):
        config = KilliConfig(ecc_ratio=64, ecc_assoc=4)
        faulty_line = GEO.line_id(0, 0)
        cache, scheme = build({faulty_line: [(100, 1)]}, config)
        cache.read(addr_of(0))  # way 0, allocates ECC entry
        scheme.errors.set_effective(faulty_line, {100})
        cache.read(addr_of(0))  # classify b'10, entry kept
        # Now flood the ECC cache from aliasing sets (0, 16, 32, ...).
        for set_index in range(0, GEO.n_sets, scheme.ecc.n_sets):
            if set_index:
                cache.read(addr_of(set_index))
        assert cache.stats.ecc_evict_invalidations >= 1
        assert cache.tags.lookup(addr_of(0)) is None  # b'10 line dropped

    def test_entry_invariant(self):
        # Entry exists iff line valid and DFH in {b'01, b'10}.
        cache, scheme = build({GEO.line_id(0, 0): [(100, 1)]})
        rng = np.random.default_rng(0)
        for _ in range(2000):
            addr = int(rng.integers(0, 32 * 1024)) & ~63
            if rng.random() < 0.3:
                cache.write(addr)
            else:
                cache.read(addr)
        for set_index in range(GEO.n_sets):
            for way in range(GEO.associativity):
                line = cache.tags.line(set_index, way)
                has_entry = scheme.ecc.contains(set_index, way)
                dfh = int(scheme.dfh[GEO.line_id(set_index, way)])
                if has_entry:
                    assert line.valid
                    assert dfh in (int(Dfh.INITIAL), int(Dfh.STABLE_1))
                elif line.valid:
                    assert dfh in (int(Dfh.STABLE_0),)


class TestSoftErrorHandling:
    def test_soft_error_on_clean_line_detected(self):
        injector = SoftErrorInjector(1.0, burst_pmf={1: 1.0},
                                     rng=RngFactory(3).stream("soft"))
        cache, scheme = build({}, injector=injector)
        cache.read(addr_of(0))
        # Every hit injects a soft error somewhere in the 539 bits;
        # many land in the data region and must be detected, never
        # silently served.
        for tag in range(20):
            cache.read(addr_of(0, tag))
            cache.read(addr_of(0, tag))
        assert scheme.sdc_events == 0

    def test_adjacent_burst_detected(self):
        cache, scheme = build({})
        cache.read(addr_of(0))
        cache.read(addr_of(0))  # classify b'00
        line_id = GEO.line_id(0, cache.tags.lookup(addr_of(0)))
        scheme.errors.add_soft_error(line_id, [200, 201])  # adjacent pair
        cache.read(addr_of(0))
        # Interleaving put them in different segments: detected.
        assert cache.stats.error_induced_misses == 1


class TestReset:
    def test_reset_clears_everything(self):
        faults = {GEO.line_id(0, 0): [(0, 1), (1, 1)]}
        cache, scheme = build(faults)
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {0, 1})
        cache.read(addr_of(0))
        assert cache.tags.line(0, 0).disabled
        cache.reset()
        assert not cache.tags.line(0, 0).disabled
        assert all(v == int(Dfh.INITIAL) for v in scheme.dfh)
        assert scheme.ecc.occupancy == 0

    def test_relearns_after_reset(self):
        # Section 2.4: on a voltage change Killi relearns from scratch.
        faults = {GEO.line_id(0, 0): [(0, 1), (1, 1)]}
        cache, scheme = build(faults)
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {0, 1})
        cache.read(addr_of(0))
        cache.reset()
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {0, 1})
        cache.read(addr_of(0))
        assert cache.tags.line(0, 0).disabled
