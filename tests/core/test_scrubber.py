"""Tests for the soft-error scrubber (paper footnote 7)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.core import WriteThroughCache
from repro.core.config import KilliConfig
from repro.core.dfh import Dfh
from repro.core.killi import KilliScheme
from repro.core.scrubber import Scrubber
from repro.faults.fault_map import FaultMap
from repro.utils.rng import RngFactory

GEO = CacheGeometry(size_bytes=16 * 1024, line_bytes=64, associativity=4)


def build(faults: dict):
    fault_map = FaultMap.from_faults(GEO.n_lines, faults)
    scheme = KilliScheme(
        GEO, fault_map, 0.625, KilliConfig(ecc_ratio=16),
        rng=RngFactory(9).stream("mask"),
    )
    cache = WriteThroughCache(GEO, scheme)
    return cache, scheme


def addr_of(set_index: int, tag: int = 0) -> int:
    return (tag * GEO.n_sets + set_index) * GEO.line_bytes


def disable_via_soft_error(cache, scheme, set_index=0, way=0):
    """Disable a fault-free line with an injected 2-bit soft error."""
    cache.read(addr_of(set_index))
    line_id = GEO.line_id(set_index, way)
    cache.read(addr_of(set_index))  # classify b'00
    scheme.errors.add_soft_error(line_id, [0, 1])  # two segments
    cache.read(addr_of(set_index))  # detected -> disabled
    assert scheme.dfh[line_id] == int(Dfh.DISABLED)
    return line_id


class TestReclaiming:
    def test_soft_error_victim_reclaimed(self):
        cache, scheme = build({})
        line_id = disable_via_soft_error(cache, scheme)
        scrubber = Scrubber(scheme)
        reclaimed = scrubber.full_sweep()
        assert reclaimed == 1
        assert scheme.dfh[line_id] == int(Dfh.INITIAL)
        assert not cache.tags.line(0, 0).disabled
        # Drop the copy the error-miss refetched into another way, so
        # the next fill exercises the reclaimed (highest-priority) way.
        cache.invalidate_line(0, cache.tags.lookup(addr_of(0)))
        cache.read(addr_of(0))
        assert cache.tags.lookup(addr_of(0)) == 0  # b'01 priority wins
        cache.read(addr_of(0))
        assert scheme.dfh[line_id] == int(Dfh.STABLE_0)

    def test_persistent_multifault_line_redisabled(self):
        faults = {GEO.line_id(0, 0): [(0, 1), (1, 1)]}
        cache, scheme = build(faults)
        cache.read(addr_of(0))
        scheme.errors.set_effective(GEO.line_id(0, 0), {0, 1})
        cache.read(addr_of(0))
        assert cache.tags.line(0, 0).disabled

        Scrubber(scheme).full_sweep()
        assert not cache.tags.line(0, 0).disabled
        # ... but the next training pass re-disables it.
        cache.invalidate_line(0, cache.tags.lookup(addr_of(0)))
        cache.read(addr_of(0))
        assert cache.tags.lookup(addr_of(0)) == 0
        scheme.errors.set_effective(GEO.line_id(0, 0), {0, 1})
        cache.read(addr_of(0))
        assert cache.tags.line(0, 0).disabled

    def test_paced_walk(self):
        cache, scheme = build({})
        line_id = disable_via_soft_error(cache, scheme)
        scrubber = Scrubber(scheme, lines_per_step=16)
        # One step covers lines 0..15, which includes line 0.
        assert scrubber.step() == 1
        assert scrubber.reclaimed == 1
        assert scrubber.steps == 1

    def test_cursor_wraps(self):
        cache, scheme = build({})
        scrubber = Scrubber(scheme, lines_per_step=GEO.n_lines)
        scrubber.step()
        assert scrubber._cursor == 0

    def test_noop_on_healthy_cache(self):
        cache, scheme = build({})
        cache.read(addr_of(0))
        assert Scrubber(scheme).full_sweep() == 0

    def test_validation(self):
        _, scheme = build({})
        with pytest.raises(ValueError):
            Scrubber(scheme, lines_per_step=0)

    def test_unattached_scheme_rejected(self):
        fault_map = FaultMap.from_faults(GEO.n_lines, {})
        scheme = KilliScheme(GEO, fault_map, 0.625, KilliConfig(ecc_ratio=16))
        with pytest.raises(RuntimeError):
            Scrubber(scheme).step()
