"""Exhaustive tests of the DFH state machine against paper Table 2."""

import pytest

from repro.core.dfh import (
    Classification,
    Dfh,
    DfhAction,
    classify,
    classify_b00,
    classify_b01,
    classify_b10,
)


class TestB00:
    """DFH b'00: only 4-bit segmented parity is checked."""

    def test_clean(self):
        cls = classify_b00(0)
        assert cls == Classification(Dfh.STABLE_0, DfhAction.SEND_CLEAN)

    def test_single_mismatch_retrains(self):
        # Paper row: "1-bit error discovered after training; initial
        # classification incorrect" -> b'01, error-induced miss.
        cls = classify_b00(1)
        assert cls.next_dfh is Dfh.INITIAL
        assert cls.action is DfhAction.ERROR_MISS

    @pytest.mark.parametrize("mismatches", [2, 3, 4])
    def test_multi_mismatch_disables(self, mismatches):
        cls = classify_b00(mismatches)
        assert cls.next_dfh is Dfh.DISABLED
        assert cls.action is DfhAction.ERROR_MISS


class TestB01PaperRows:
    """The five b'01 rows printed in Table 2."""

    def test_all_clean_to_b00(self):
        cls = classify_b01(0, True, True)
        assert cls.next_dfh is Dfh.STABLE_0
        assert cls.action is DfhAction.SEND_CLEAN
        assert cls.free_ecc_entry  # "Invalidate entry in ECC cache"

    def test_single_lv_error_to_b10(self):
        cls = classify_b01(1, False, False)
        assert cls.next_dfh is Dfh.STABLE_1
        assert cls.action is DfhAction.CORRECT_AND_SEND
        assert not cls.free_ecc_entry  # checkbits still needed

    def test_multibit_syndrome_parityok(self):
        # Row: sp ok or 2+, syndrome non-zero, parity ok -> disable.
        for sp in (0, 2, 5):
            cls = classify_b01(sp, False, True)
            assert cls.next_dfh is Dfh.DISABLED
            assert cls.action is DfhAction.ERROR_MISS

    def test_even_multibit(self):
        # Row: sp 2+, any syndrome, parity ok -> disable.
        cls = classify_b01(2, True, True)
        assert cls.next_dfh is Dfh.DISABLED

    def test_odd_multibit(self):
        # Row: sp 2+, any syndrome, parity mismatch -> disable.
        for syndrome_zero in (True, False):
            cls = classify_b01(3, syndrome_zero, False)
            assert cls.next_dfh is Dfh.DISABLED


class TestB01OmittedCombinations:
    """Combinations Table 2 leaves out, resolved per the docstring."""

    def test_global_parity_bit_only(self):
        cls = classify_b01(0, True, False)
        assert cls.next_dfh is Dfh.STABLE_1
        assert cls.action is DfhAction.CORRECT_AND_SEND

    def test_checkbit_single_error(self):
        cls = classify_b01(0, False, False)
        assert cls.next_dfh is Dfh.STABLE_1

    def test_stuck_parity_bit(self):
        cls = classify_b01(1, True, True)
        assert cls.next_dfh is Dfh.STABLE_1
        assert cls.action is DfhAction.SEND_CLEAN

    def test_inconsistent_signals_disable(self):
        assert classify_b01(1, True, False).next_dfh is Dfh.DISABLED
        assert classify_b01(1, False, True).next_dfh is Dfh.DISABLED


class TestB10PaperRows:
    def test_all_clean_back_to_b00(self):
        # Row: "Non-LV transient error that was subsequently overwritten".
        cls = classify_b10(0, True, True)
        assert cls.next_dfh is Dfh.STABLE_0
        assert cls.free_ecc_entry

    def test_parity_error_with_clean_ecc_disables(self):
        # Row: sp x or xx, syndrome ok, parity ok -> disable
        # ("likely non-LV error + LV error").
        for sp in (1, 2):
            cls = classify_b10(sp, True, True)
            assert cls.next_dfh is Dfh.DISABLED
            assert cls.action is DfhAction.ERROR_MISS

    @pytest.mark.parametrize("sp", [0, 1, 2])
    def test_single_error_corrected_dont_care_parity(self, sp):
        # Row: "Don't Care" parity, syndrome x, global parity x -> correct.
        cls = classify_b10(sp, False, False)
        assert cls.next_dfh is Dfh.STABLE_1
        assert cls.action is DfhAction.CORRECT_AND_SEND

    def test_multi_mismatch_syndrome_nonzero_parity_ok(self):
        cls = classify_b10(2, False, True)
        assert cls.next_dfh is Dfh.DISABLED

    def test_multi_mismatch_syndrome_zero_parity_bad(self):
        cls = classify_b10(2, True, False)
        assert cls.next_dfh is Dfh.DISABLED


class TestB10OmittedCombinations:
    def test_global_parity_bit_only_corrected(self):
        cls = classify_b10(0, True, False)
        assert cls.next_dfh is Dfh.STABLE_1
        assert cls.action is DfhAction.CORRECT_AND_SEND

    def test_even_codeword_errors_disable(self):
        assert classify_b10(0, False, True).next_dfh is Dfh.DISABLED

    def test_inconsistent_disable(self):
        assert classify_b10(1, True, False).next_dfh is Dfh.DISABLED


class TestDispatchAndTotality:
    def test_disabled_lines_never_classified(self):
        # Table 2 last row: disabled lines are never accessed.
        with pytest.raises(ValueError):
            classify(Dfh.DISABLED, 0, True, True)

    def test_dispatch_matches_per_state(self):
        assert classify(Dfh.STABLE_0, 1, True, True) == classify_b00(1)
        assert classify(Dfh.INITIAL, 1, False, False) == classify_b01(1, False, False)
        assert classify(Dfh.STABLE_1, 0, True, True) == classify_b10(0, True, True)

    @pytest.mark.parametrize("dfh", [Dfh.STABLE_0, Dfh.INITIAL, Dfh.STABLE_1])
    @pytest.mark.parametrize("sp", [0, 1, 2, 3])
    @pytest.mark.parametrize("syndrome_zero", [True, False])
    @pytest.mark.parametrize("parity_ok", [True, False])
    def test_total_function(self, dfh, sp, syndrome_zero, parity_ok):
        # Every signal combination yields a valid classification.
        cls = classify(dfh, sp, syndrome_zero, parity_ok)
        assert isinstance(cls.next_dfh, Dfh)
        assert isinstance(cls.action, DfhAction)
        assert cls.next_dfh is not Dfh.INITIAL or cls.action is DfhAction.ERROR_MISS

    @pytest.mark.parametrize("sp", [0, 1, 2])
    @pytest.mark.parametrize("syndrome_zero", [True, False])
    @pytest.mark.parametrize("parity_ok", [True, False])
    def test_error_miss_iff_disable_or_retrain(self, sp, syndrome_zero, parity_ok):
        # An error-induced miss always changes state to b'01 or b'11;
        # conversely a served access never lands in those... except
        # staying out of b'01 (b'01 only entered via ERROR_MISS).
        for dfh in (Dfh.STABLE_0, Dfh.INITIAL, Dfh.STABLE_1):
            cls = classify(dfh, sp, syndrome_zero, parity_ok)
            if cls.action is DfhAction.ERROR_MISS:
                assert cls.next_dfh in (Dfh.INITIAL, Dfh.DISABLED)
            else:
                assert cls.next_dfh in (Dfh.STABLE_0, Dfh.STABLE_1)

    def test_values_match_paper_encoding(self):
        assert Dfh.STABLE_0 == 0b00
        assert Dfh.INITIAL == 0b01
        assert Dfh.STABLE_1 == 0b10
        assert Dfh.DISABLED == 0b11
