"""Tests for the sparse per-line error model."""

import pytest

from repro.core.layout import LineLayout
from repro.core.linestate import LineErrorModel
from repro.faults.cell_model import CellFaultModel
from repro.faults.fault_map import FaultMap


@pytest.fixture
def layout():
    return LineLayout()


@pytest.fixture
def dense_map(rngs):
    anchors = ((0.5, 0.2), (0.625, 3e-2), (1.0, 1e-9))
    return FaultMap(
        n_lines=256,
        cell_model=CellFaultModel(anchors=anchors),
        rng=rngs.stream("dense"),
    )


@pytest.fixture
def model(dense_map, rngs):
    return LineErrorModel(dense_map, 0.625, rngs.stream("mask"))


@pytest.fixture
def sparse_model(rngs):
    """Error model over a map where most lines are fault-free."""
    sparse = FaultMap(n_lines=256, floor_voltage=0.65, rng=rngs.stream("sp"))
    return LineErrorModel(sparse, 0.65, rngs.stream("mask2"))


class TestLayout:
    def test_paper_dimensions(self, layout):
        assert layout.total_bits == 539
        assert layout.parity_offset == 512
        assert layout.check_offset == 528
        assert layout.gparity_offset == 538
        assert layout.codeword_bits == 523

    def test_region_predicates(self, layout):
        assert layout.is_data(0) and layout.is_data(511)
        assert layout.is_parity(512) and layout.is_parity(527)
        assert layout.is_checkbit(528) and layout.is_checkbit(538)
        assert not layout.is_data(512)

    def test_parity_index(self, layout):
        assert layout.parity_index(512) == 0
        assert layout.parity_index(527) == 15
        with pytest.raises(ValueError):
            layout.parity_index(100)

    def test_codeword_positions(self, layout):
        assert layout.codeword_position(0) == 0
        assert layout.codeword_position(511) == 511
        assert layout.codeword_position(528) == 512
        assert layout.codeword_position(538) == 522
        assert layout.codeword_position(520) is None  # parity region


class TestMaskingDeterminism:
    def test_same_tag_same_vector(self, model):
        line = next(l for l in range(256) if model.fault_map.has_faults(l))
        model.on_fill(line, salt=77)
        first = model.error_positions(line)
        model.on_fill(line, salt=123)  # different data
        model.on_fill(line, salt=77)  # same data again
        assert model.error_positions(line) == first

    def test_different_tags_eventually_differ(self, model, dense_map):
        lines = [l for l in range(256) if dense_map.fault_count(l, 0.625) >= 3]
        assert lines, "dense map should have multi-fault lines"
        differs = False
        for line in lines:
            model.on_fill(line, salt=1)
            a = model.error_positions(line)
            model.on_fill(line, salt=2)
            if model.error_positions(line) != a:
                differs = True
                break
        assert differs

    def test_masking_is_fair(self, model, dense_map):
        # Across many (line, salt) pairs about half the faults unmask.
        total_faults = 0
        total_unmasked = 0
        for line in range(256):
            count = dense_map.fault_count(line, 0.625)
            if not count:
                continue
            for salt in range(8):
                model.on_fill(line, salt=salt)
                total_faults += count
                total_unmasked += len(model.error_positions(line))
        assert 0.4 < total_unmasked / total_faults < 0.6

    def test_fault_free_line_always_clean(self, sparse_model):
        model = sparse_model
        line = next(l for l in range(256) if not model.fault_map.has_faults(l))
        model.on_fill(line, salt=9)
        assert not model.is_dirty(line)
        signals = model.signals(line, 16, True)
        assert signals.sp_mismatches == 0
        assert signals.syndrome_zero and signals.global_parity_ok


class TestWriteHit:
    def test_write_clears_soft_errors(self, sparse_model):
        model = sparse_model
        line = next(l for l in range(256) if not model.fault_map.has_faults(l))
        model.add_soft_error(line, [5])
        assert model.is_dirty(line)
        model.on_write_hit(line)
        assert not model.is_dirty(line)

    def test_write_toggles_with_configured_probability(self, model, dense_map):
        line = max(range(256), key=lambda l: dense_map.fault_count(l, 0.625))
        count = dense_map.fault_count(line, 0.625)
        model.on_fill(line, salt=0)
        toggles = 0
        trials = 400
        previous = model.error_positions(line)
        for _ in range(trials):
            model.on_write_hit(line)
            current = model.error_positions(line)
            toggles += len(previous ^ current)
            previous = current
        rate = toggles / (trials * count)
        assert 0.05 < rate < 0.2  # mask_flip_probability = 0.1

    def test_effective_stays_subset_of_faults(self, model, dense_map):
        line = max(range(256), key=lambda l: dense_map.fault_count(l, 0.625))
        positions = set(map(int, dense_map.line_faults(line, 0.625)[0]))
        model.on_fill(line, salt=0)
        for _ in range(50):
            model.on_write_hit(line)
            assert model.error_positions(line) <= positions


class TestSoftErrors:
    def test_xor_semantics(self, model):
        line = 0
        model.set_effective(line, set())
        model.add_soft_error(line, [7])
        assert 7 in model.error_positions(line)
        model.add_soft_error(line, [7])
        assert 7 not in model.error_positions(line)

    def test_out_of_range(self, model):
        with pytest.raises(IndexError):
            model.add_soft_error(0, [539])
        with pytest.raises(IndexError):
            model.set_effective(0, [600])

    def test_clear(self, model):
        model.set_effective(3, {1, 2})
        model.clear(3)
        assert not model.is_dirty(3)

    def test_clear_all(self, model):
        model.set_effective(3, {1})
        model.set_effective(4, {2})
        model.clear_all()
        assert not model.is_dirty(3) and not model.is_dirty(4)


class TestSignals:
    def test_single_data_error(self, model):
        model.set_effective(0, {100})
        signals = model.signals(0, 16, True)
        assert signals.sp_mismatches == 1
        assert not signals.syndrome_zero
        assert not signals.global_parity_ok
        assert signals.data_error_bits == 1

    def test_two_errors_same_segment_16(self, model):
        # Positions 0 and 16 share training segment 0: parity blind,
        # ECC sees both.
        model.set_effective(0, {0, 16})
        signals = model.signals(0, 16, True)
        assert signals.sp_mismatches == 0
        assert not signals.syndrome_zero
        assert signals.global_parity_ok  # even count

    def test_two_errors_different_segments(self, model):
        model.set_effective(0, {0, 1})
        signals = model.signals(0, 16, True)
        assert signals.sp_mismatches == 2

    def test_parity_bit_fault_in_use(self, model):
        model.set_effective(0, {512})  # parity bit 0
        signals = model.signals(0, 16, True)
        assert signals.sp_mismatches == 1
        assert signals.syndrome_zero  # not part of the ECC codeword

    def test_parity_bit_fault_out_of_use(self, model):
        model.set_effective(0, {520})  # parity bit 8: unused with 4 segments
        signals = model.signals(0, 4, True)
        assert signals.sp_mismatches == 0

    def test_checkbit_fault_with_ecc(self, model):
        model.set_effective(0, {530})
        signals = model.signals(0, 4, True)
        assert signals.sp_mismatches == 0
        assert not signals.syndrome_zero
        assert not signals.global_parity_ok

    def test_checkbit_fault_without_ecc(self, model):
        model.set_effective(0, {530})
        signals = model.signals(0, 4, False)
        assert signals.syndrome_zero and signals.global_parity_ok

    def test_global_parity_bit_fault(self, model):
        model.set_effective(0, {538})
        signals = model.signals(0, 4, True)
        assert signals.syndrome_zero
        assert not signals.global_parity_ok

    def test_segment_mapping_stable_mode(self, model):
        # Positions 0 and 4 differ mod 16 but share segment 0 mod 4.
        model.set_effective(0, {0, 4})
        assert model.signals(0, 4, True).sp_mismatches == 0
        assert model.signals(0, 16, True).sp_mismatches == 2


class TestCorrectionSoundness:
    def test_single_error_sound(self, model):
        model.set_effective(0, {10})
        assert model.correction_is_sound(0)

    def test_clean_sound(self, model):
        model.clear(0)
        assert model.correction_is_sound(0)

    def test_multi_data_error_unsound(self, model):
        model.set_effective(0, {10, 20, 30})
        assert not model.correction_is_sound(0)

    def test_parity_only_errors_sound(self, model):
        model.set_effective(0, {513, 514})
        assert model.correction_is_sound(0)

    def test_has_data_errors(self, model):
        model.set_effective(0, {520})
        assert not model.has_data_errors(0)
        model.set_effective(0, {520, 5})
        assert model.has_data_errors(0)


class TestObservableFaults:
    def test_includes_masked(self, model, dense_map):
        line = max(range(256), key=lambda l: dense_map.fault_count(l, 0.625))
        positions = set(map(int, dense_map.line_faults(line, 0.625)[0]))
        model.on_fill(line, salt=0)
        observable = model.observable_fault_positions(line)
        assert positions <= observable

    def test_includes_soft_errors(self, sparse_model):
        model = sparse_model
        line = next(l for l in range(256) if not model.fault_map.has_faults(l))
        model.add_soft_error(line, [3])
        assert 3 in model.observable_fault_positions(line)


class TestPackedScalarEquivalence:
    """The packed tracker is pinned to the scalar signals_for_positions."""

    @pytest.mark.parametrize("n_segments,use_ecc", [(16, True), (4, True), (4, False)])
    def test_signals_match_scalar_reference(self, model, n_segments, use_ecc):
        for line in range(64):
            model.on_fill(line, salt=line)
            positions = sorted(model.error_positions(line))
            want = model.signals_for_positions(positions, n_segments, use_ecc)
            got = model.signals(line, n_segments, use_ecc)
            assert (
                got.sp_mismatches,
                got.syndrome_zero,
                got.global_parity_ok,
                got.data_error_bits,
            ) == (
                want.sp_mismatches,
                want.syndrome_zero,
                want.global_parity_ok,
                want.data_error_bits,
            ), line

    def test_observable_signals_match_scalar_reference(self, model):
        for line in range(64):
            model.on_fill(line, salt=3)
            positions = sorted(model.observable_fault_positions(line))
            want = model.signals_for_positions(positions, 16, True)
            got = model.observable_signals(line, 16)
            assert (got.sp_mismatches, got.syndrome_zero, got.global_parity_ok) == (
                want.sp_mismatches,
                want.syndrome_zero,
                want.global_parity_ok,
            ), line

    def test_has_observable_faults_consistent(self, model):
        for line in range(128):
            model.on_fill(line, salt=1)
            assert model.has_observable_faults(line) == bool(
                model.observable_fault_positions(line)
            )

    def test_signal_cache_invalidated_on_mutation(self, model):
        line = 0
        model.set_effective(line, {100})
        assert model.signals(line, 16, True).data_error_bits == 1
        model.add_soft_error(line, [101])
        assert model.signals(line, 16, True).data_error_bits == 2
        model.set_effective(line, {512})
        signals = model.signals(line, 16, True)
        assert signals.data_error_bits == 0
        assert signals.sp_mismatches == 1
        model.clear(line)
        assert model.signals(line, 16, True).sp_mismatches == 0

    def test_signal_cache_keyed_per_configuration(self, model):
        # Positions 0 and 4 alias mod 4 but not mod 16; both configs
        # must be served correctly from the same line's cache.
        model.set_effective(0, {0, 4})
        assert model.signals(0, 16, True).sp_mismatches == 2
        assert model.signals(0, 4, True).sp_mismatches == 0
        assert model.signals(0, 16, True).sp_mismatches == 2

    def test_error_positions_roundtrip_packed(self, model, dense_map):
        line = max(range(256), key=lambda l: dense_map.fault_count(l, 0.625))
        faults = set(map(int, dense_map.line_faults(line, 0.625)[0]))
        model.on_fill(line, salt=5)
        positions = model.error_positions(line)
        assert positions <= faults
        model.set_effective(line, positions)
        assert model.error_positions(line) == positions


class TestValidation:
    def test_narrow_fault_map_rejected(self, rngs):
        narrow = FaultMap(n_lines=8, line_bits=100, rng=rngs.stream("n"))
        with pytest.raises(ValueError):
            LineErrorModel(narrow, 0.625, rngs.stream("m"))

    def test_ecc_cache_at_nominal_voltage(self, dense_map, rngs):
        model = LineErrorModel(
            dense_map, 0.625, rngs.stream("m"), lv_faults_in_ecc_cache=False
        )
        for line in range(256):
            model.on_fill(line, salt=1)
            for position in model.error_positions(line):
                assert position < 516  # data + 4 resident parity bits
