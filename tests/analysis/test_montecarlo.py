"""Monte-Carlo validation of the coverage closed form."""

import numpy as np
import pytest

from repro.analysis.coverage import CoverageModel
from repro.analysis.montecarlo import CoverageSampler
from repro.faults.line_model import binom_cdf


@pytest.fixture(scope="module")
def sampler():
    return CoverageSampler()


@pytest.fixture(scope="module")
def model():
    return CoverageModel()


class TestAgreementWithClosedForm:
    @pytest.mark.parametrize("voltage", [0.6, 0.575])
    def test_within_factor_two_of_exact(self, sampler, model, voltage):
        estimate = sampler.estimate(
            voltage, samples=20000, rng=np.random.default_rng(7)
        )
        p = model.p_cell(voltage)
        p_ge2 = 1.0 - binom_cdf(539, 1, p)
        analytic = model.p_fail_killi(voltage, exact=True) / p_ge2
        assert estimate.failure_rate > 0
        assert 0.5 < estimate.failure_rate / analytic < 2.0

    def test_failure_needs_aliasing(self, sampler):
        # Directed: two faults in different training segments are
        # always caught.
        assert sampler._classify_ok(np.array([0, 1]))

    def test_same_segment_even_pair_missed_by_parity_caught_by_ecc(self, sampler):
        # Positions 0 and 16: segment parity blind, but SECDED sees
        # syndrome != 0 with even global parity -> caught.
        assert sampler._classify_ok(np.array([0, 16]))

    def test_three_fault_alias_missed(self, sampler):
        # Construct a pattern that aliases to a single-error signature:
        # two faults in one segment plus one in another such that the
        # signals look like one error.  Search a few combinations.
        missed = False
        for a in range(0, 64):
            offsets = np.array([a, a + 16, a + 32])  # all in one segment
            # sp = 1 (odd count in one segment), syndrome nonzero,
            # parity odd -> looks like a single error: missed.
            if not sampler._classify_ok(offsets):
                missed = True
                break
        assert missed

    def test_estimate_properties(self, sampler):
        estimate = sampler.estimate(0.6, samples=500, rng=np.random.default_rng(1))
        assert 0 <= estimate.failure_rate <= 1
        assert estimate.coverage == pytest.approx(1 - estimate.failure_rate)
        assert estimate.draws == 500
        assert 0 < estimate.patterns <= estimate.draws
        assert estimate.samples == estimate.patterns  # legacy alias

    def test_conditioned_counts_at_least_two(self, sampler):
        from repro.analysis.montecarlo import _sample_binomial_at_least_two

        rng = np.random.default_rng(0)
        counts = _sample_binomial_at_least_two(rng, 539, 1e-3, 1000)
        assert (counts >= 2).all()


class TestVectorizedAgainstScalar:
    """The batched sampler is pinned to the pre-refactor scalar loop."""

    @pytest.mark.parametrize("voltage,seed", [(0.6, 7), (0.575, 9)])
    def test_scalar_draws_bit_identical(self, sampler, voltage, seed):
        scalar = sampler.estimate_scalar(
            voltage, samples=2000, rng=np.random.default_rng(seed)
        )
        replay = sampler.estimate(
            voltage,
            samples=2000,
            rng=np.random.default_rng(seed),
            scalar_draws=True,
        )
        assert (replay.patterns, replay.misclassified, replay.draws) == (
            scalar.patterns,
            scalar.misclassified,
            scalar.draws,
        )

    def test_scalar_draws_bit_identical_across_chunks(self, sampler):
        # Chunking must not perturb the draw order.
        replay = sampler.estimate(
            0.6,
            samples=2000,
            rng=np.random.default_rng(7),
            scalar_draws=True,
            chunk=617,
        )
        scalar = sampler.estimate_scalar(
            0.6, samples=2000, rng=np.random.default_rng(7)
        )
        assert replay.misclassified == scalar.misclassified
        assert replay.patterns == scalar.patterns

    def test_default_sampler_statistically_identical(self, sampler):
        # The Floyd sampler draws the same conditional distribution, so
        # failure rates agree within Monte-Carlo noise.
        scalar = sampler.estimate_scalar(
            0.6, samples=8000, rng=np.random.default_rng(3)
        )
        vectorized = sampler.estimate(
            0.6, samples=8000, rng=np.random.default_rng(4)
        )
        assert vectorized.patterns > 0
        assert 0.7 < vectorized.failure_rate / scalar.failure_rate < 1.4

    def test_floyd_offsets_are_uniform_subsets(self, sampler):
        # Every row of the Floyd sampler is a valid subset (distinct,
        # in range), and single offsets are uniform over the line.
        rng = np.random.default_rng(11)
        counts = np.full(4000, 3)
        offsets, valid = sampler._sample_offsets(rng, counts)
        assert valid.all()
        total = sampler.layout.total_bits
        assert offsets.min() >= 0 and offsets.max() < total
        for row in offsets[:200]:
            assert len(set(row.tolist())) == 3
        histogram = np.bincount(offsets.ravel(), minlength=total)
        expected = offsets.size / total
        assert histogram.max() < 4 * expected
