"""Monte-Carlo validation of the coverage closed form."""

import numpy as np
import pytest

from repro.analysis.coverage import CoverageModel
from repro.analysis.montecarlo import CoverageSampler
from repro.faults.line_model import binom_cdf


@pytest.fixture(scope="module")
def sampler():
    return CoverageSampler()


@pytest.fixture(scope="module")
def model():
    return CoverageModel()


class TestAgreementWithClosedForm:
    @pytest.mark.parametrize("voltage", [0.6, 0.575])
    def test_within_factor_two_of_exact(self, sampler, model, voltage):
        estimate = sampler.estimate(
            voltage, samples=20000, rng=np.random.default_rng(7)
        )
        p = model.p_cell(voltage)
        p_ge2 = 1.0 - binom_cdf(539, 1, p)
        analytic = model.p_fail_killi(voltage, exact=True) / p_ge2
        assert estimate.failure_rate > 0
        assert 0.5 < estimate.failure_rate / analytic < 2.0

    def test_failure_needs_aliasing(self, sampler):
        # Directed: two faults in different training segments are
        # always caught.
        assert sampler._classify_ok(np.array([0, 1]))

    def test_same_segment_even_pair_missed_by_parity_caught_by_ecc(self, sampler):
        # Positions 0 and 16: segment parity blind, but SECDED sees
        # syndrome != 0 with even global parity -> caught.
        assert sampler._classify_ok(np.array([0, 16]))

    def test_three_fault_alias_missed(self, sampler):
        # Construct a pattern that aliases to a single-error signature:
        # two faults in one segment plus one in another such that the
        # signals look like one error.  Search a few combinations.
        missed = False
        for a in range(0, 64):
            offsets = np.array([a, a + 16, a + 32])  # all in one segment
            # sp = 1 (odd count in one segment), syndrome nonzero,
            # parity odd -> looks like a single error: missed.
            if not sampler._classify_ok(offsets):
                missed = True
                break
        assert missed

    def test_estimate_properties(self, sampler):
        estimate = sampler.estimate(0.6, samples=500, rng=np.random.default_rng(1))
        assert 0 <= estimate.failure_rate <= 1
        assert estimate.coverage == pytest.approx(1 - estimate.failure_rate)
        assert estimate.samples <= 500

    def test_conditioned_counts_at_least_two(self, sampler):
        from repro.analysis.montecarlo import _sample_binomial_at_least_two

        rng = np.random.default_rng(0)
        counts = _sample_binomial_at_least_two(rng, 539, 1e-3, 1000)
        assert (counts >= 2).all()
