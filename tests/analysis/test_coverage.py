"""Tests for the Section 5.3 coverage model (Figure 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.coverage import CoverageModel


@pytest.fixture(scope="module")
def model():
    return CoverageModel()


class TestKilliCoverage:
    def test_near_perfect_at_0625(self, model):
        # Paper: at the operating point every technique classifies
        # correctly; Killi is essentially perfect.
        assert model.killi_coverage(0.625) > 0.999999

    def test_killi_survives_low_voltage(self, model):
        # Figure 6: "only Killi and FLAIR ... provide near 100%
        # coverage" below 0.6 VDD.
        assert model.killi_coverage(0.575) > 0.98
        assert model.killi_coverage(0.55) > 0.98

    def test_high_coverage_across_range(self, model):
        # Killi's curve is not monotone (at extreme fault rates most
        # patterns have >= 2 odd segments and parity catches them) but
        # it stays near 100% across the whole Figure 6 voltage range —
        # the property the paper claims.
        for v in [0.525, 0.55, 0.575, 0.6, 0.625, 0.65]:
            assert model.killi_coverage(v) > 0.97

    def test_detection_coverages_monotone(self, model):
        # Pure detection-based techniques *are* monotone in voltage.
        voltages = [0.55, 0.575, 0.6, 0.625, 0.65]
        for series in (model.secded_coverage, model.dected_coverage,
                       model.msecc_coverage):
            values = [series(v) for v in voltages]
            assert all(values[i] <= values[i + 1] + 1e-12 for i in range(4))

    def test_product_structure(self, model):
        # P_fail(Killi) = P_fail(SECDED) * P_fail(parity): exactly the
        # paper's independence assumption.
        v = 0.58
        assert model.p_fail_killi(v) == pytest.approx(
            model.p_fail_secded(v) * model.p_fail_seg_parity_paper(v)
        )

    def test_paper_formula_close_to_exact(self, model):
        # The published binomial approximation should track the exact
        # multinomial within an order of magnitude in the region where
        # it matters.
        for v in [0.575, 0.6]:
            paper = model.p_fail_seg_parity_paper(v)
            exact = model.p_fail_seg_parity_exact(v)
            assert paper > 0 and exact > 0
            assert 0.1 < paper / exact < 10

    def test_exact_mode_available(self, model):
        assert 0 <= model.p_fail_killi(0.6, exact=True) <= 1


class TestComparisonTechniques:
    def test_figure6_ordering_at_0575(self, model):
        # At 0.575: SECDED << DECTED << MS-ECC < FLAIR/Killi.
        v = 0.575
        secded = model.secded_coverage(v)
        dected = model.dected_coverage(v)
        msecc = model.msecc_coverage(v)
        killi = model.killi_coverage(v)
        flair = model.flair_coverage(v)
        assert secded < dected < msecc
        assert msecc < killi
        assert secded < 0.05
        assert flair > 0.9

    def test_all_perfect_at_0625(self, model):
        # Paper: "Up to 0.6 VDD all techniques correctly classify"
        # (i.e. at and above 0.625 in our calibration).
        v = 0.625
        for coverage in (
            model.secded_coverage(v),
            model.dected_coverage(v),
            model.msecc_coverage(v),
            model.flair_coverage(v),
            model.killi_coverage(v),
        ):
            assert coverage > 0.999

    def test_msecc_collapses_below_0575(self, model):
        assert model.msecc_coverage(0.55) < 0.2

    def test_coverage_table_structure(self, model):
        table = model.coverage_table([0.6, 0.625])
        assert set(table) == {"voltage", "secded", "dected", "msecc", "flair", "killi"}
        assert len(table["killi"]) == 2

    @given(st.floats(min_value=0.52, max_value=0.7))
    @settings(max_examples=30)
    def test_probabilities_in_range(self, voltage):
        model = CoverageModel()
        for value in (
            model.p_fail_secded(voltage),
            model.p_fail_seg_parity_paper(voltage),
            model.p_fail_seg_parity_exact(voltage),
            model.killi_coverage(voltage),
        ):
            assert 0.0 <= value <= 1.0


class TestMaskedSdc:
    def test_paper_anchor(self, model):
        # Section 5.6.2: "We determined the probability of such a
        # scenario to be 0.003%."
        probability = model.masked_sdc_probability(0.625)
        assert probability == pytest.approx(3e-5, rel=0.25)

    def test_grows_at_lower_voltage(self, model):
        assert model.masked_sdc_probability(0.6) > model.masked_sdc_probability(0.625)

    def test_tiny_at_high_voltage(self, model):
        assert model.masked_sdc_probability(0.675) < 1e-12
