"""Tests for the normalized power model (paper Table 6)."""

import pytest

from repro.analysis.power import CODE_ENERGY, PowerModel


@pytest.fixture(scope="module")
def model():
    return PowerModel()


class TestTable6Calibration:
    PAPER = {
        "dected": 43.7,
        "msecc": 55.3,
        "flair": 42.6,
    }
    PAPER_KILLI = {256: 40.3, 128: 40.7, 64: 41.1, 32: 41.7, 16: 42.4}

    def test_existing_schemes_within_two_points(self, model):
        for scheme, expected in self.PAPER.items():
            assert model.scheme_power(scheme) == pytest.approx(expected, abs=2.0)

    def test_killi_within_one_point(self, model):
        for ratio, expected in self.PAPER_KILLI.items():
            assert model.scheme_power("killi", ecc_ratio=ratio) == pytest.approx(
                expected, abs=1.0
            )

    def test_killi_ordering_vs_others(self, model):
        # Table 6 ordering: Killi < FLAIR < DECTED < MS-ECC.
        killi = model.scheme_power("killi", ecc_ratio=256)
        flair = model.scheme_power("flair")
        dected = model.scheme_power("dected")
        msecc = model.scheme_power("msecc")
        assert killi < flair < dected < msecc

    def test_killi_grows_with_ecc_cache(self, model):
        values = [
            model.scheme_power("killi", ecc_ratio=r) for r in (256, 128, 64, 32, 16)
        ]
        assert all(values[i] < values[i + 1] for i in range(4))

    def test_headline_power_saving(self, model):
        # Paper abstract: "reduce the power consumption of the L2
        # cache by 59.3%" -> Killi at ~40.7% of baseline.
        killi = model.scheme_power("killi", ecc_ratio=128)
        assert 100.0 - killi == pytest.approx(59.3, abs=1.5)


class TestModelStructure:
    def test_voltage_scaling(self, model):
        assert model.normalized_power(1.0) == pytest.approx(100.0)
        assert model.normalized_power(0.625) < 45

    def test_storage_burden(self, model):
        base = model.normalized_power(0.625)
        loaded = model.normalized_power(0.625, storage_frac=0.4)
        assert loaded > base

    def test_code_energy_term(self, model):
        base = model.normalized_power(0.625)
        with_code = model.normalized_power(0.625, code_energy=CODE_ENERGY["olsc"])
        assert with_code > base

    def test_memory_traffic_term(self, model):
        base = model.normalized_power(0.625)
        busy = model.normalized_power(0.625, extra_memory_frac=0.1)
        assert busy - base == pytest.approx(0.8)

    def test_invalid_voltage(self, model):
        with pytest.raises(ValueError):
            model.normalized_power(0.0)

    def test_killi_requires_ratio(self, model):
        with pytest.raises(ValueError):
            model.scheme_power("killi")

    def test_code_energy_ordering(self):
        assert (
            CODE_ENERGY["parity4"]
            < CODE_ENERGY["secded"]
            < CODE_ENERGY["dected"]
            < CODE_ENERGY["olsc"]
        )
