"""Tests for the storage-area model (paper Tables 4, 5, 7)."""

import pytest

from repro.analysis.area import (
    AreaModel,
    killi_area_bits,
    killi_ecc_entry_bits,
    per_line_scheme_bits,
)
from repro.utils.units import bits_to_kib


@pytest.fixture(scope="module")
def area():
    return AreaModel()  # the paper's 2MB L2


class TestBuildingBlocks:
    def test_per_line_bits(self):
        assert per_line_scheme_bits("secded") == 12  # 11 + disable bit
        assert per_line_scheme_bits("dected") == 22
        assert per_line_scheme_bits("tecqed") == 32
        assert per_line_scheme_bits("6ec7ed") == 62

    def test_ecc_entry_is_41_bits(self):
        # Table 3: "ECC cache line size: 41 bits".
        assert killi_ecc_entry_bits("secded") == 41

    def test_dected_fits_free(self):
        # Section 5.2: DECTED's 21 bits fit in the 23-bit payload.
        assert killi_ecc_entry_bits("dected") == 41

    def test_stronger_codes_grow_entry(self):
        assert killi_ecc_entry_bits("tecqed") == 61
        assert killi_ecc_entry_bits("6ec7ed") == 91


class TestTable5:
    def test_killi_kb_match_paper(self, area):
        # Paper: "the Killi area overhead ranges from 24.6KB (1:256)
        # to 34.25KB (1:16)".
        assert bits_to_kib(killi_area_bits(32768, 256)) == pytest.approx(24.6, abs=0.1)
        assert bits_to_kib(killi_area_bits(32768, 16)) == pytest.approx(34.25, abs=0.01)

    def test_ratios_match_paper(self, area):
        paper = {256: 0.51, 128: 0.52, 64: 0.55, 32: 0.60, 16: 0.71}
        for ratio, expected in paper.items():
            assert area.ratio_vs_secded("killi", ratio) == pytest.approx(
                expected, abs=0.02
            )

    def test_dected_ratio(self, area):
        # Paper row: 1.9 (we compute 22/12 = 1.83).
        assert area.ratio_vs_secded("dected") == pytest.approx(1.9, abs=0.1)

    def test_percent_of_l2(self, area):
        assert area.percent_of_l2("secded") == pytest.approx(2.3, abs=0.1)
        assert area.percent_of_l2("dected") == pytest.approx(4.3, abs=0.1)
        assert area.percent_of_l2("msecc") == pytest.approx(38.6, abs=0.5)
        assert area.percent_of_l2("killi", 256) == pytest.approx(1.2, abs=0.05)
        assert area.percent_of_l2("killi", 16) == pytest.approx(1.67, abs=0.05)

    def test_flair_equals_secded(self, area):
        assert area.scheme_bits("flair") == area.scheme_bits("secded")

    def test_killi_requires_ratio(self, area):
        with pytest.raises(ValueError):
            area.scheme_bits("killi")

    def test_table5_structure(self, area):
        table = area.table5()
        assert table["secded"]["ratio"] == 1.0
        assert set(table) >= {"dected", "msecc", "secded", "killi_1:256", "killi_1:16"}


class TestTable4:
    PAPER = {
        "dected": {256: 0.51, 128: 0.53, 64: 0.55, 32: 0.61, 16: 0.71},
        "tecqed": {256: 0.52, 128: 0.54, 64: 0.58, 32: 0.66, 16: 0.82},
        "6ec7ed": {256: 0.53, 128: 0.56, 64: 0.62, 32: 0.74, 16: 0.97},
    }

    def test_every_cell_matches_paper(self, area):
        table = area.table4()
        for code, row in self.PAPER.items():
            for ratio, expected in row.items():
                assert table[code][f"1:{ratio}"] == pytest.approx(
                    expected, abs=0.015
                ), (code, ratio)

    def test_6ec7ed_at_1_16_still_below_secded(self, area):
        # The paper's headline: even 6EC7ED at the largest ECC cache
        # costs less than per-line SECDED.
        assert area.ratio_vs_secded("killi", 16, "6ec7ed") < 1.0


class TestTable7:
    def test_killi_much_smaller_at_0600(self, area):
        # Paper Table 7: 17% (text says 21%); shape: far below MS-ECC.
        value = area.table7_killi_vs_msecc(olsc_t=11, ecc_ratio=8)
        assert 0.1 < value < 0.25

    def test_killi_closer_at_0575(self, area):
        # Paper: 65% (text 72%).
        value = area.table7_killi_vs_msecc(olsc_t=11, ecc_ratio=2)
        assert 0.45 < value < 0.75

    def test_monotone_in_ratio(self, area):
        values = [
            area.table7_killi_vs_msecc(11, ratio) for ratio in (16, 8, 4, 2, 1)
        ]
        assert all(values[i] < values[i + 1] for i in range(4))


class TestScaling:
    def test_area_scales_with_cache_size(self):
        small = AreaModel(n_lines=16384)
        large = AreaModel(n_lines=32768)
        assert large.scheme_bits("killi", 64) == 2 * small.scheme_bits("killi", 64)

    def test_percent_independent_of_size(self):
        small = AreaModel(n_lines=16384)
        large = AreaModel(n_lines=32768)
        assert small.percent_of_l2("killi", 64) == pytest.approx(
            large.percent_of_l2("killi", 64)
        )
