"""Tests for the Vmin analyzer."""

import math

import pytest

from repro.analysis.vmin import VminAnalyzer


@pytest.fixture(scope="module")
def analyzer():
    return VminAnalyzer()


class TestVmin:
    def test_paper_headline(self, analyzer):
        # "V_min ... can be reduced to 62.5% of nominal VDD".
        assert analyzer.vmin("killi") == pytest.approx(0.62, abs=0.01)

    def test_ordering(self, analyzer):
        table = analyzer.table()
        # Stronger correction -> lower Vmin.
        assert table["msecc"] < table["dected"] < table["secded"] + 1e-9
        assert table["killi+olsc"] < table["killi"]

    def test_killi_matches_secded_capacity_limit(self, analyzer):
        # Both correct one error; the capacity target binds first.
        assert analyzer.vmin("killi") == pytest.approx(
            analyzer.vmin("secded"), abs=0.006
        )

    def test_meets_targets(self, analyzer):
        assert analyzer.meets_targets("killi", 0.7)
        assert not analyzer.meets_targets("killi", 0.55)
        with pytest.raises(KeyError):
            analyzer.meets_targets("nope", 0.7)

    def test_unreachable_targets(self):
        analyzer = VminAnalyzer(capacity_target=1.0 - 1e-18)
        assert math.isnan(analyzer.vmin("secded", lo=0.5, hi=0.55))

    def test_stricter_targets_raise_vmin(self):
        loose = VminAnalyzer(capacity_target=0.9)
        strict = VminAnalyzer(capacity_target=0.9999)
        assert strict.vmin("dected") >= loose.vmin("dected")


class TestInterleavingAblation:
    def test_interleaving_prevents_burst_sdcs(self):
        from repro.harness.ablations import ablate_parity_interleaving

        out = ablate_parity_interleaving(accesses=6000)
        assert out["interleaved"]["sdc_events"] * 10 < out["contiguous"]["sdc_events"]
        assert out["interleaved"]["detected"] > out["contiguous"]["detected"]
