"""Tests for persistent stuck-at fault maps."""

import numpy as np
import pytest

from repro.faults.cell_model import CellFaultModel
from repro.faults.fault_map import FaultMap
from repro.utils.rng import RngFactory


@pytest.fixture
def fmap(rngs):
    return FaultMap(n_lines=512, rng=rngs.stream("map"))


@pytest.fixture
def dense_map(rngs):
    anchors = ((0.5, 0.2), (0.625, 5e-2), (1.0, 1e-9))
    return FaultMap(
        n_lines=256,
        cell_model=CellFaultModel(anchors=anchors),
        rng=rngs.stream("dense"),
    )


class TestConstruction:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            FaultMap(n_lines=0)
        with pytest.raises(ValueError):
            FaultMap(n_lines=10, line_bits=0)

    def test_deterministic_given_stream(self):
        a = FaultMap(n_lines=128, rng=RngFactory(5).stream("m"))
        b = FaultMap(n_lines=128, rng=RngFactory(5).stream("m"))
        for line in range(128):
            pa, va = a.line_faults(line, 0.6)
            pb, vb = b.line_faults(line, 0.6)
            assert (pa == pb).all() and (va == vb).all()

    def test_different_streams_differ(self):
        a = FaultMap(n_lines=512, rng=RngFactory(5).stream("m1"))
        b = FaultMap(n_lines=512, rng=RngFactory(5).stream("m2"))
        differs = any(
            list(a.line_faults(i, 0.58)[0]) != list(b.line_faults(i, 0.58)[0])
            for i in range(512)
        )
        assert differs


class TestQueries:
    def test_line_out_of_range(self, fmap):
        with pytest.raises(IndexError):
            fmap.line_faults(512, 0.6)

    def test_voltage_below_floor(self, fmap):
        with pytest.raises(ValueError):
            fmap.line_faults(0, 0.5)

    def test_fault_count_window(self, dense_map):
        for line in range(64):
            total = dense_map.fault_count(line, 0.6)
            data = dense_map.fault_count(line, 0.6, 0, 512)
            meta = dense_map.fault_count(line, 0.6, 512, dense_map.line_bits)
            assert total == data + meta

    def test_has_faults_consistent(self, fmap):
        for line in range(512):
            has = fmap.has_faults(line)
            positions, _ = fmap.line_faults(line, fmap.floor_voltage)
            assert has == (len(positions) > 0)

    def test_is_fault_free(self, dense_map):
        for line in range(32):
            positions, _ = dense_map.line_faults(line, 0.6)
            assert dense_map.is_fault_free(line, 0.6) == (len(positions) == 0)


class TestMonotonicity:
    def test_fault_sets_shrink_with_voltage(self, dense_map):
        # The silicon property the paper leans on: faults at a higher
        # voltage are a subset of faults at any lower voltage.
        for line in range(256):
            low, _ = dense_map.line_faults(line, 0.58)
            high, _ = dense_map.line_faults(line, 0.68)
            assert set(map(int, high)) <= set(map(int, low))

    def test_counts_monotonic(self, dense_map):
        voltages = [0.58, 0.62, 0.66, 0.70]
        for line in range(128):
            counts = [dense_map.fault_count(line, v) for v in voltages]
            assert all(counts[i] >= counts[i + 1] for i in range(3))


class TestApply:
    def test_fault_free_line_returns_same_object(self, rngs):
        sparse = FaultMap(n_lines=512, floor_voltage=0.65, rng=rngs.stream("sparse"))
        line = next(l for l in range(512) if not sparse.has_faults(l))
        bits = np.zeros(512, dtype=np.uint8)
        assert sparse.apply(line, 0.65, bits) is bits

    def test_stuck_values_imposed(self, dense_map):
        line = next(l for l in range(256) if dense_map.fault_count(l, 0.6) > 0)
        positions, values = dense_map.line_faults(line, 0.6)
        zeros = dense_map.apply(line, 0.6, np.zeros(dense_map.line_bits, dtype=np.uint8))
        ones = dense_map.apply(line, 0.6, np.ones(dense_map.line_bits, dtype=np.uint8))
        for pos, val in zip(positions, values):
            assert zeros[pos] == val
            assert ones[pos] == val

    def test_apply_with_offset_window(self, dense_map):
        line = next(
            l for l in range(256)
            if dense_map.fault_count(l, 0.6, 512, dense_map.line_bits) > 0
        )
        window = np.zeros(dense_map.line_bits - 512, dtype=np.uint8)
        out = dense_map.apply(line, 0.6, window, offset=512)
        positions, values = dense_map.line_faults(line, 0.6)
        in_window = positions >= 512
        for pos, val in zip(positions[in_window], values[in_window]):
            assert out[pos - 512] == val

    def test_masked_faults_invisible(self, dense_map):
        # Writing the stuck value yields a read-back identical to the
        # written data: the masked-fault phenomenon of Section 5.6.2.
        line = next(l for l in range(256) if dense_map.fault_count(l, 0.6) > 0)
        positions, values = dense_map.line_faults(line, 0.6)
        data = np.zeros(dense_map.line_bits, dtype=np.uint8)
        data[positions] = values  # write exactly the stuck values
        out = dense_map.apply(line, 0.6, data)
        assert (out == data).all()


class TestHistogram:
    def test_histogram_totals(self, fmap):
        hist = fmap.fault_count_histogram(0.625)
        assert sum(hist.values()) == fmap.n_lines

    def test_histogram_shifts_with_voltage(self, dense_map):
        low = dense_map.fault_count_histogram(0.58)
        high = dense_map.fault_count_histogram(0.70)
        assert high.get(0, 0) >= low.get(0, 0)

    def test_histogram_matches_counts(self, dense_map):
        hist = dense_map.fault_count_histogram(0.6)
        recomputed: dict = {}
        for line in range(dense_map.n_lines):
            count = dense_map.fault_count(line, 0.6)
            recomputed[count] = recomputed.get(count, 0) + 1
        assert hist == recomputed


class TestSoftErrors:
    def test_rate_zero_never_fires(self, rng):
        from repro.faults.soft_errors import SoftErrorInjector

        injector = SoftErrorInjector(0.0, rng=rng)
        assert all(injector.sample_event(512) is None for _ in range(100))

    def test_rate_one_always_fires(self, rng):
        from repro.faults.soft_errors import SoftErrorInjector

        injector = SoftErrorInjector(1.0, rng=rng)
        for _ in range(50):
            positions = injector.sample_event(512)
            assert positions is not None
            assert len(positions) >= 1
        assert injector.events_injected == 50

    def test_burst_adjacency(self, rng):
        from repro.faults.soft_errors import SoftErrorInjector

        injector = SoftErrorInjector(1.0, burst_pmf={4: 1.0}, rng=rng)
        for _ in range(20):
            positions = injector.sample_event(512)
            diffs = np.diff(positions)
            assert (diffs == 1).all()
            assert len(positions) <= 4  # clipped at the line end

    def test_bad_pmf(self, rng):
        from repro.faults.soft_errors import SoftErrorInjector

        with pytest.raises(ValueError):
            SoftErrorInjector(0.1, burst_pmf={1: 0.5}, rng=rng)
        with pytest.raises(ValueError):
            SoftErrorInjector(0.1, burst_pmf={0: 1.0}, rng=rng)
        with pytest.raises(ValueError):
            SoftErrorInjector(1.5, rng=rng)

    def test_maybe_flip_mutates_in_place(self, rng):
        from repro.faults.soft_errors import SoftErrorInjector

        injector = SoftErrorInjector(1.0, burst_pmf={1: 1.0}, rng=rng)
        bits = np.zeros(64, dtype=np.uint8)
        injector.maybe_flip(bits)
        assert bits.sum() == 1

    def test_deterministic_inject(self):
        from repro.faults.soft_errors import SoftErrorInjector

        bits = np.zeros(16, dtype=np.uint8)
        out = SoftErrorInjector.inject(bits, [2, 5])
        assert out[2] == 1 and out[5] == 1
        assert not bits.any()  # original untouched
