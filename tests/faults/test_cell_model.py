"""Tests for the Pcell(V, f) model (Figure 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.cell_model import DEFAULT_ANCHORS, CellFaultModel, FaultMechanism


@pytest.fixture(scope="module")
def model():
    return CellFaultModel()


class TestCalibration:
    def test_anchor_values_reproduced(self, model):
        for voltage, probability in DEFAULT_ANCHORS:
            assert model.p_cell(voltage) == pytest.approx(probability, rel=1e-9)

    def test_exponential_region_below_0675(self, model):
        # The paper: below 0.675 VDD probabilities rise exponentially.
        assert model.p_cell(0.600) / model.p_cell(0.625) > 10
        assert model.p_cell(0.575) / model.p_cell(0.600) > 2

    def test_negligible_at_nominal(self, model):
        assert model.p_cell(1.0) < 1e-9


class TestMonotonicity:
    @given(st.floats(min_value=0.5, max_value=0.99))
    @settings(max_examples=100)
    def test_monotonic_in_voltage(self, voltage):
        model = CellFaultModel()
        assert model.p_cell(voltage) > model.p_cell(voltage + 0.01)

    @given(st.floats(min_value=0.5, max_value=1.0), st.floats(min_value=0.4, max_value=0.99))
    @settings(max_examples=100)
    def test_monotonic_in_frequency(self, voltage, freq):
        # Paper: failures occur "always for ... all frequencies higher".
        model = CellFaultModel()
        assert model.p_cell(voltage, freq) <= model.p_cell(voltage, 1.0)

    def test_extrapolation_below_anchor_range(self, model):
        assert model.p_cell(0.45) > model.p_cell(0.50)
        assert model.p_cell(0.45) <= 0.5  # clamped to a probability

    def test_extrapolation_above_anchor_range(self, model):
        assert model.p_cell(1.1) < model.p_cell(1.0)


class TestMechanisms:
    def test_combined_is_union(self, model):
        v = 0.6
        pw = model.p_cell(v, mechanism=FaultMechanism.WRITEABILITY)
        pr = model.p_cell(v, mechanism=FaultMechanism.READ_DISTURB)
        pc = model.p_cell(v, mechanism=FaultMechanism.COMBINED)
        assert pc == pytest.approx(1 - (1 - pw) * (1 - pr), rel=1e-9)

    def test_read_disturb_below_writeability(self, model):
        # Figure 1: the two curves are parallel with read-disturb lower.
        for v in [0.55, 0.6, 0.625]:
            pw = model.p_cell(v, mechanism=FaultMechanism.WRITEABILITY)
            pr = model.p_cell(v, mechanism=FaultMechanism.READ_DISTURB)
            assert pr < pw

    def test_curve_shape(self, model):
        voltages = [0.5, 0.55, 0.6, 0.65, 0.7]
        curve = model.curve(voltages)
        assert all(curve[i] > curve[i + 1] for i in range(len(curve) - 1))


class TestValidation:
    def test_bad_voltage(self, model):
        with pytest.raises(ValueError):
            model.p_cell(0)

    def test_bad_frequency(self, model):
        with pytest.raises(ValueError):
            model.p_cell(0.6, freq_ghz=0)

    def test_too_few_anchors(self):
        with pytest.raises(ValueError):
            CellFaultModel(anchors=((0.6, 1e-3),))

    def test_non_monotonic_anchors_rejected(self):
        with pytest.raises(ValueError):
            CellFaultModel(anchors=((0.5, 1e-3), (0.6, 1e-2)))

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ValueError):
            CellFaultModel(anchors=((0.5, 1.5), (0.6, 1e-2)))
