"""Tests for per-line fault statistics (Figure 2 / Table 7 anchors)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.cell_model import CellFaultModel
from repro.faults.line_model import LineFaultModel, binom_cdf, binom_pmf


@pytest.fixture(scope="module")
def lines512():
    return LineFaultModel(CellFaultModel(), line_bits=512)


@pytest.fixture(scope="module")
def lines523():
    return LineFaultModel(CellFaultModel(), line_bits=523)


class TestBinomial:
    def test_pmf_sums_to_one(self):
        total = sum(binom_pmf(20, k, 0.3) for k in range(21))
        assert total == pytest.approx(1.0)

    def test_pmf_edge_cases(self):
        assert binom_pmf(10, 0, 0.0) == 1.0
        assert binom_pmf(10, 10, 1.0) == 1.0
        assert binom_pmf(10, 11, 0.5) == 0.0
        assert binom_pmf(10, -1, 0.5) == 0.0

    def test_pmf_tiny_p_stable(self):
        # log-space evaluation must not underflow to garbage.
        value = binom_pmf(523, 2, 1e-8)
        expected = math.comb(523, 2) * 1e-16
        assert value == pytest.approx(expected, rel=1e-3)

    def test_cdf_complete(self):
        assert binom_cdf(10, 10, 0.7) == pytest.approx(1.0)

    @given(
        st.integers(min_value=1, max_value=100),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50)
    def test_cdf_monotone_in_k(self, n, p):
        values = [binom_cdf(n, k, p) for k in range(n + 1)]
        assert all(values[i] <= values[i + 1] + 1e-12 for i in range(n))


class TestPaperAnchors:
    def test_0625_majority_fault_free(self, lines512):
        # Paper: ">95% of rows have fewer than two failures" at
        # 0.625xVDD / 1GHz (we calibrate to ~99.9%, see faults docs).
        fractions = lines512.fractions(0.625)
        assert fractions["zero"] + fractions["one"] > 0.95
        assert fractions["zero"] > 0.9

    def test_table7_0600_capacity(self, lines523):
        # Table 7: 99.8% of lines usable with 11-bit correction at 0.6.
        assert lines523.p_at_most(0.600, 11) == pytest.approx(0.998, abs=2e-3)

    def test_table7_0575_capacity(self, lines523):
        # Table 7: 69.6% usable at 0.575.
        assert lines523.p_at_most(0.575, 11) == pytest.approx(0.696, abs=1e-2)

    def test_two_plus_grows_as_voltage_drops(self, lines512):
        two_plus = [
            lines512.fractions(v)["two_plus"] for v in (0.65, 0.625, 0.6, 0.575)
        ]
        assert all(two_plus[i] < two_plus[i + 1] for i in range(3))

    def test_fractions_sum_to_one(self, lines512):
        for v in (0.575, 0.6, 0.625, 0.7):
            fractions = lines512.fractions(v)
            assert sum(fractions.values()) == pytest.approx(1.0)


class TestDisabledFraction:
    def test_matches_tail(self, lines512):
        v = 0.6
        assert lines512.expected_disabled_fraction(v, 1) == pytest.approx(
            1.0 - lines512.p_at_most(v, 1)
        )

    def test_stronger_correction_disables_less(self, lines512):
        v = 0.585
        fractions = [
            lines512.expected_disabled_fraction(v, t) for t in (1, 2, 3, 11)
        ]
        assert all(fractions[i] > fractions[i + 1] for i in range(3))
