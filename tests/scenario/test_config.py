"""ScenarioConfig schema, serialisation and fingerprint stability."""

import hashlib
import json
from dataclasses import asdict

import pytest

from repro.harness.runner import CellSpec
from repro.scenario.config import (
    SCHEMA_VERSION,
    EngineSection,
    GpuSection,
    ScenarioConfig,
    as_scenario,
    cell_scenario,
)


class TestFingerprintStability:
    def test_scheme_config_insertion_order_is_canonicalised(self):
        a = cell_scenario(
            "fft", "killi_1:64",
            scheme_config={"priority_replacement": False, "dfh_bits": 2},
        )
        b = cell_scenario(
            "fft", "killi_1:64",
            scheme_config={"dfh_bits": 2, "priority_replacement": False},
        )
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_toml_round_trip_hashes_identically(self):
        original = cell_scenario(
            "fft", "killi_1:64",
            voltage=0.65, seed=7, accesses_per_cu=1234,
            scheme_config={"train_on_evict": False},
        )
        round_tripped = ScenarioConfig.from_toml(original.to_toml())
        assert round_tripped == original
        assert round_tripped.fingerprint() == original.fingerprint()

    def test_json_round_trip_hashes_identically(self):
        original = cell_scenario("xsbench", "msecc", voltage=0.65)
        round_tripped = ScenarioConfig.from_json(original.to_json())
        assert round_tripped.fingerprint() == original.fingerprint()

    def test_cell_spec_shim_hashes_identically(self):
        spec = CellSpec(
            "fft", "killi_1:64",
            voltage=0.65, seed=7, accesses_per_cu=1234,
            scheme_config={"priority_replacement": False, "dfh_bits": 2},
        )
        scenario = cell_scenario(
            "fft", "killi_1:64",
            voltage=0.65, seed=7, accesses_per_cu=1234,
            scheme_config={"dfh_bits": 2, "priority_replacement": False},
        )
        assert spec.fingerprint() == scenario.fingerprint()
        assert spec.to_scenario() == scenario
        assert as_scenario(spec) == scenario
        assert scenario.to_cell_spec() == spec

    def test_byte_compatible_with_legacy_cellspec_payload(self):
        """The exact payload the pre-scenario CellSpec hashed."""
        spec = CellSpec(
            "nekbone", "killi_1:32",
            voltage=0.6, seed=3, accesses_per_cu=500,
            scheme_config={"dfh_bits": 3}, write_back=False,
        )
        payload = asdict(spec)
        del payload["engine"]
        del payload["substrate"]
        payload["schema"] = 1
        legacy = hashlib.sha256(
            json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        ).hexdigest()
        assert spec.fingerprint() == legacy
        assert spec.to_scenario().fingerprint() == legacy

    def test_engine_and_substrate_do_not_change_the_fingerprint(self):
        base = cell_scenario("fft", "baseline")
        for engine in ("vectorized", "scalar"):
            for substrate in (None, "object", "soa"):
                variant = base.replace(
                    engine=EngineSection(engine=engine, substrate=substrate)
                )
                assert variant.fingerprint() == base.fingerprint()

    def test_non_default_gpu_changes_the_fingerprint(self):
        base = cell_scenario("fft", "baseline")
        small = base.replace(gpu=GpuSection(l2_size_bytes=256 * 1024))
        assert small.fingerprint() != base.fingerprint()
        # ... and only the overridden knob enters the payload.
        assert small.canonical_payload()["gpu"] == {"l2_size_bytes": 256 * 1024}
        assert "gpu" not in base.canonical_payload()


class TestSchema:
    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown section"):
            ScenarioConfig.from_dict({"typo": {}})

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            ScenarioConfig.from_dict({"fault": {"voltage": 0.6, "sed": 1}})

    def test_newer_schema_version_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            ScenarioConfig.from_dict({"schema_version": SCHEMA_VERSION + 1})

    def test_validate_resolves_every_axis(self):
        cell_scenario("fft", "killi_1:64").validate()
        with pytest.raises(KeyError, match="unknown scheme"):
            cell_scenario("fft", "nope").validate()
        with pytest.raises(KeyError, match="unknown workload"):
            cell_scenario("nope", "baseline").validate()
        with pytest.raises(ValueError, match="accesses_per_cu"):
            cell_scenario("fft", "baseline", accesses_per_cu=0).validate()
        with pytest.raises(ValueError, match="voltage"):
            cell_scenario("fft", "baseline", voltage=2.0).validate()

    def test_scheme_options_validated_against_factory(self):
        with pytest.raises(ValueError, match="only apply to Killi"):
            cell_scenario(
                "fft", "baseline", scheme_config={"dfh_bits": 2}
            ).validate()
        with pytest.raises(ValueError, match="override"):
            cell_scenario(
                "fft", "killi_1:64", scheme_config={"not_a_field": 1}
            ).validate()

    def test_non_default_gpu_not_expressible_as_cell_spec(self):
        scenario = cell_scenario("fft", "baseline").replace(
            gpu=GpuSection(n_cus=4)
        )
        with pytest.raises(ValueError, match="non-default"):
            scenario.to_cell_spec()

    def test_gpu_section_materialises_gpu_config(self):
        gpu = GpuSection(n_cus=4, l2_size_bytes=512 * 1024).to_gpu_config()
        assert gpu.n_cus == 4
        assert gpu.l2.size_bytes == 512 * 1024
