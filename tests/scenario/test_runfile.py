"""Scenario files: loading, expansion, equivalence with the legacy path."""

import json
import os

import pytest

from repro.harness.cli import main as cli_main
from repro.harness.runner import CellSpec, run_cell, run_cells
from repro.scenario.config import ScenarioConfig
from repro.scenario.runfile import (
    Scenario,
    ScenarioMatrix,
    load_scenario,
    run_scenario,
    scenario_fingerprint,
)

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "examples",
    "scenarios",
)


def example_files():
    return sorted(
        os.path.join(EXAMPLES, name)
        for name in os.listdir(EXAMPLES)
        if name.endswith((".toml", ".json"))
    )


class TestCommittedExamples:
    def test_examples_exist(self):
        assert len(example_files()) >= 4

    @pytest.mark.parametrize(
        "path", example_files(), ids=[os.path.basename(p) for p in example_files()]
    )
    def test_example_validates_and_round_trips(self, path):
        scenario = load_scenario(path)
        cells = scenario.validate()
        assert cells
        # to_dict -> from_dict is the identity on the expansion.
        reloaded = Scenario.from_dict(
            json.loads(json.dumps(scenario.to_dict())), source=path
        )
        assert reloaded.fingerprint() == scenario.fingerprint()


class TestExpansion:
    def test_cross_product_is_workload_major(self):
        scenario = Scenario(
            name="x",
            matrix=ScenarioMatrix(
                workloads=("a", "b"), schemes=("s1", "s2"), seeds=(1, 2)
            ),
        )
        cells = scenario.expand()
        assert len(cells) == 8
        order = [
            (c.workload.name, c.scheme.name, c.fault.seed) for c in cells[:3]
        ]
        assert order == [("a", "s1", 1), ("a", "s1", 2), ("a", "s2", 1)]

    def test_empty_axes_use_the_base_value(self):
        scenario = Scenario(name="x")
        (cell,) = scenario.expand()
        assert cell == scenario.base

    def test_fingerprint_is_axis_order_independent(self):
        forward = Scenario(
            name="x", matrix=ScenarioMatrix(workloads=("a", "b"))
        )
        backward = Scenario(
            name="x", matrix=ScenarioMatrix(workloads=("b", "a"))
        )
        assert forward.fingerprint() == backward.fingerprint()
        assert scenario_fingerprint(forward.expand()) == scenario_fingerprint(
            backward.expand()
        )

    def test_unknown_matrix_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            Scenario.from_dict(
                {"name": "x", "matrix": {"voltage": [0.6]}}, source="t"
            )

    def test_name_required(self):
        with pytest.raises(ValueError, match="name"):
            Scenario.from_dict({}, source="t")


class TestEquivalence:
    """A scenario run must be bit-identical to the legacy CellSpec run."""

    def test_ci_smoke_scenario_matches_legacy_cells(self):
        scenario = load_scenario(os.path.join(EXAMPLES, "ci_smoke.toml"))
        via_scenario = run_cells(scenario.validate())
        via_legacy = run_cells(
            [
                CellSpec(
                    workload=cell.workload.name,
                    scheme=cell.scheme.name,
                    voltage=cell.fault.voltage,
                    seed=cell.fault.seed,
                    accesses_per_cu=cell.workload.accesses_per_cu,
                )
                for cell in scenario.expand()
            ]
        )
        for a, b in zip(via_scenario, via_legacy):
            assert a.cycles == b.cycles
            assert a.instructions == b.instructions
            assert a.l2 == b.l2
            assert a.memory_reads == b.memory_reads
            assert a.memory_writes == b.memory_writes
            assert a.disabled_fraction == b.disabled_fraction
            assert a.dfh == b.dfh
            assert a.fingerprint == b.fingerprint

    def test_run_cell_accepts_both_spec_types(self):
        spec = CellSpec("nekbone", "killi_1:64", accesses_per_cu=300)
        a = run_cell(spec)
        b = run_cell(spec.to_scenario())
        assert (a.cycles, a.l2, a.dfh) == (b.cycles, b.l2, b.dfh)

    def test_result_cache_shared_between_paths(self, tmp_path):
        spec = CellSpec("nekbone", "baseline", accesses_per_cu=300)
        first = run_cells([spec], cache_dir=str(tmp_path))
        second = run_cells([spec.to_scenario()], cache_dir=str(tmp_path))
        assert not first[0].from_cache
        assert second[0].from_cache
        assert second[0].cycles == first[0].cycles


class TestRunScenario:
    def test_summary_shape_and_fingerprints(self):
        scenario = Scenario(
            name="tiny",
            base=ScenarioConfig(
                workload={"name": "nekbone", "accesses_per_cu": 300}
            ),
            matrix=ScenarioMatrix(schemes=("baseline",)),
        )
        summary = run_scenario(scenario)
        assert summary["scenario"] == "tiny"
        assert summary["fingerprint"] == scenario.fingerprint()
        (cell,) = summary["cells"]
        assert cell["scheme"] == "baseline"
        assert cell["fingerprint"] == scenario.expand()[0].fingerprint()


class TestCli:
    def test_scenario_validate_and_list(self, capsys):
        assert cli_main(["scenario", "validate"] + example_files()) == 0
        out = capsys.readouterr().out
        assert "FAIL" not in out
        assert cli_main(["scenario", "list", "--dir", EXAMPLES]) == 0
        out = capsys.readouterr().out
        assert "ci-smoke" in out
        assert "killi+olsc-t11_1:8" in out  # strong variants are listed

    def test_scenario_validate_reports_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('schema_version = 1\nname = "bad"\n\n[scheme]\nname = "nope"\n')
        assert cli_main(["scenario", "validate", str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_scenario_run_writes_json(self, tmp_path, capsys):
        out_json = tmp_path / "result.json"
        code = cli_main([
            "scenario", "run",
            os.path.join(EXAMPLES, "ci_smoke.toml"),
            "--no-progress", "--json", str(out_json),
        ])
        assert code == 0
        payload = json.loads(out_json.read_text())
        assert payload["scenario"] == "ci-smoke"
        assert len(payload["cells"]) == 2
        assert "ci-smoke" in capsys.readouterr().out

    def test_schemes_flag_accepts_strong_variants(self, capsys):
        code = cli_main([
            "fig4", "--accesses", "300", "--workloads", "nekbone",
            "--schemes", "killi+olsc-t11_1:8",
        ])
        assert code == 0
        assert "killi+olsc-t11_1:8" in capsys.readouterr().out

    def test_schemes_flag_rejects_unknown_scheme(self):
        with pytest.raises(KeyError, match="nope"):
            cli_main([
                "fig4", "--accesses", "300", "--workloads", "nekbone",
                "--schemes", "nope",
            ])
