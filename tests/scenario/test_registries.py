"""Plugin registries: resolution, name grammar, extension points."""

import pytest

from repro.baselines import DectedScheme, FlairScheme, MsEccScheme
from repro.cache.hooks import UnprotectedScheme
from repro.cache.soa import SoaTagStore, resolve_substrate
from repro.core import KilliScheme
from repro.core.strong import KilliStrongScheme
from repro.faults import FaultMap
from repro.gpu import GpuConfig, GpuSimulator
from repro.harness.runner import make_scheme, scheme_names
from repro.scenario.registries import (
    ENGINE_REGISTRY,
    SCHEME_REGISTRY,
    SUBSTRATE_REGISTRY,
    WORKLOAD_REGISTRY,
    SchemeFactory,
)
from repro.scenario.registry import Registry
from repro.scenario.schemes import resolve_scheme
from repro.utils.rng import RngFactory


class TestSchemeRegistry:
    def test_every_legacy_name_resolves_to_the_same_class(self):
        expected = {
            "baseline": (UnprotectedScheme, {}),
            "dected": (DectedScheme, {}),
            "flair": (FlairScheme, {}),
            "msecc": (MsEccScheme, {}),
            "killi_1:256": (KilliScheme, {"ecc_ratio": 256, "code": None}),
            "killi_1:128": (KilliScheme, {"ecc_ratio": 128, "code": None}),
            "killi_1:64": (KilliScheme, {"ecc_ratio": 64, "code": None}),
            "killi_1:32": (KilliScheme, {"ecc_ratio": 32, "code": None}),
            "killi_1:16": (KilliScheme, {"ecc_ratio": 16, "code": None}),
        }
        assert scheme_names() == list(expected)
        for name, (cls, params) in expected.items():
            factory = resolve_scheme(name)
            assert factory.scheme_class is cls, name
            assert factory.params == params, name

    def test_strong_code_variants_enumerate_and_resolve(self):
        names = SCHEME_REGISTRY.names()
        assert "killi+olsc-t11_1:8" in names
        assert "killi+dected_1:2" in names
        factory = resolve_scheme("killi+olsc-t11_1:8")
        assert factory.scheme_class is KilliStrongScheme
        assert factory.params == {"ecc_ratio": 8, "code": "olsc-t11"}
        # Non-enumerated in-family instances still resolve.
        assert resolve_scheme("killi_1:512").params["ecc_ratio"] == 512

    def test_scheme_names_can_append_strong_codes(self):
        names = scheme_names(ratios=(64,), strong_codes=("olsc-t11",))
        assert names[-1] == "killi+olsc-t11_1:8"
        for name in names:
            resolve_scheme(name)

    @pytest.mark.parametrize(
        "bad",
        [
            "killi_1:abc",      # non-integer ratio: was a bare ValueError
            "killi+olsc_1:xx",  # unknown code AND bad ratio
            "killi_1:",
            "killi+bogus_1:8",  # unknown strong code
            "killix",
            "nope",
        ],
    )
    def test_malformed_names_raise_keyerror_naming_the_scheme(self, bad):
        with pytest.raises(KeyError) as excinfo:
            resolve_scheme(bad)
        assert bad in str(excinfo.value)

    def test_make_scheme_matches_direct_construction(self):
        gpu_config = GpuConfig()
        rngs = RngFactory(1).child("fft/killi_1:64")
        fault_map = FaultMap(
            n_lines=gpu_config.l2.n_lines, rng=RngFactory(1).stream("fault-map")
        )
        built = make_scheme("killi_1:64", gpu_config, fault_map, 0.625, rngs)
        assert isinstance(built, KilliScheme)
        assert built.config.ecc_ratio == 64
        assert isinstance(
            make_scheme("baseline", gpu_config, fault_map, 0.625, rngs),
            UnprotectedScheme,
        )

    def test_third_party_scheme_registers_without_harness_changes(self):
        class NullScheme(UnprotectedScheme):
            pass

        factory = SchemeFactory(
            "thirdparty-null",
            kind="baseline",
            scheme_class=NullScheme,
            builder=lambda factory, ctx: NullScheme(),
        )
        SCHEME_REGISTRY.register("thirdparty-null", factory)
        try:
            assert resolve_scheme("thirdparty-null") is factory
            assert "thirdparty-null" in SCHEME_REGISTRY.names()
            gpu_config = GpuConfig()
            fault_map = FaultMap(
                n_lines=gpu_config.l2.n_lines,
                rng=RngFactory(1).stream("fault-map"),
            )
            built = make_scheme(
                "thirdparty-null", gpu_config, fault_map, 0.625, RngFactory(1)
            )
            assert isinstance(built, NullScheme)
        finally:
            SCHEME_REGISTRY.unregister("thirdparty-null")
        with pytest.raises(KeyError):
            resolve_scheme("thirdparty-null")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            SCHEME_REGISTRY.register(
                "baseline", resolve_scheme("baseline")
            )


class TestOtherRegistries:
    def test_workloads_registered_in_display_order(self):
        from repro.traces import workload_names

        assert WORKLOAD_REGISTRY.names() == workload_names()
        assert WORKLOAD_REGISTRY.names()[:2] == ["xsbench", "fft"]

    def test_unknown_workload_keyerror_message_preserved(self):
        from repro.traces import workload_trace

        with pytest.raises(KeyError, match="unknown workload 'nope'"):
            workload_trace("nope", 100)

    def test_engines_registered_and_unknown_engine_raises_valueerror(self):
        assert ENGINE_REGISTRY.names() == ["vectorized", "scalar", "batched"]
        with pytest.raises(ValueError, match="unknown engine 'nope'"):
            GpuSimulator(engine="nope")

    def test_substrates_registered_and_construct(self):
        assert SUBSTRATE_REGISTRY.names() == ["object", "soa"]
        geometry = GpuConfig().l1_geometry()
        spec = SUBSTRATE_REGISTRY.resolve("soa")
        assert isinstance(spec.tag_store(geometry), SoaTagStore)
        obj = SUBSTRATE_REGISTRY.resolve("object")
        tags = obj.tag_store(geometry)
        assert tags.geometry is geometry
        with pytest.raises(ValueError, match="unknown substrate"):
            resolve_substrate("nope")


class TestRegistryMechanics:
    def test_exact_entries_and_families_and_errors(self):
        registry = Registry("widget")
        registry.register("a", 1)
        registry.register_family(
            lambda name: (len(name) if name.startswith("w:") else None),
            enumerate=lambda: ["w:x"],
            label="w-family",
        )
        assert registry.resolve("a") == 1
        assert registry.resolve("w:abc") == 5
        assert registry.names() == ["a", "w:x"]
        assert "a" in registry and "w:zz" in registry and "zz" not in registry
        with pytest.raises(KeyError, match="unknown widget 'zz'"):
            registry.resolve("zz")

    def test_decorator_registration(self):
        registry = Registry("thing")

        @registry.register("t")
        def entry():
            return "hi"

        assert registry.resolve("t") is entry

    def test_lazy_loader_runs_once_and_allows_reentrant_registration(self):
        calls = []

        def loader():
            calls.append(1)
            registry.register("late", 42)

        registry = Registry("lazy", loader=loader)
        assert registry.resolve("late") == 42
        assert registry.names() == ["late"]
        assert calls == [1]
