"""Shared fixtures for the Killi reproduction test suite."""

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.faults.cell_model import CellFaultModel
from repro.faults.fault_map import FaultMap
from repro.utils.rng import RngFactory


@pytest.fixture
def rngs() -> RngFactory:
    """Deterministic named RNG streams for a test."""
    return RngFactory(seed=1234)


@pytest.fixture
def rng(rngs) -> np.random.Generator:
    """One plain generator."""
    return rngs.stream("test")


@pytest.fixture
def small_geometry() -> CacheGeometry:
    """A 64KB, 16-way cache: 1024 lines, 64 sets — fast to simulate."""
    return CacheGeometry(size_bytes=64 * 1024, line_bytes=64, associativity=16)


@pytest.fixture
def small_fault_map(small_geometry, rngs) -> FaultMap:
    """Fault map over the small geometry at the default calibration."""
    return FaultMap(
        n_lines=small_geometry.n_lines,
        rng=rngs.stream("fault-map"),
    )


@pytest.fixture
def dense_fault_map(small_geometry, rngs) -> FaultMap:
    """A fault map with artificially high fault rates (for exercising
    error paths without huge caches)."""
    anchors = ((0.5, 0.3), (0.625, 2e-2), (0.7, 1e-4), (1.0, 1e-9))
    model = CellFaultModel(anchors=anchors)
    return FaultMap(
        n_lines=small_geometry.n_lines,
        cell_model=model,
        rng=rngs.stream("dense-fault-map"),
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Append the last differential scenario to failure reports.

    Any test that drove the oracle (directly or through a fuzz sweep)
    gets its failing scenario's fingerprint, seed and regeneration
    hint attached — no per-test bookkeeping required.  Guarded on the
    module already being imported so the vast majority of tests pay
    nothing.
    """
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    import sys

    differential = sys.modules.get("repro.testing.differential")
    if differential is None:
        return
    context = differential.last_context()
    if context is None:
        return
    report.sections.append((
        "last differential scenario",
        (
            f"fingerprint: {context['fingerprint']}\n"
            f"workload={context['workload']} scheme={context['scheme']} "
            f"seed={context['seed']} "
            f"engine={context['engine']} substrate={context['substrate']}\n"
            f"regenerate: save the TOML below and run\n"
            f"  repro scenario run <file>.toml\n\n"
            f"{context['toml']}"
        ),
    ))
