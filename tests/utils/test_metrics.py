"""Tests for the telemetry counters/timers facade."""

import os

import pytest

from repro.metrics import METRICS, TELEMETRY_ENV, Metrics


@pytest.fixture
def metrics(monkeypatch):
    """A fresh, enabled Metrics instance; env var left untouched."""
    monkeypatch.delenv(TELEMETRY_ENV, raising=False)
    m = Metrics(enabled=True)
    return m


class TestDisabled:
    def test_disabled_records_nothing(self):
        m = Metrics(enabled=False)
        m.incr("a")
        m.observe("t", 0.5)
        with m.timer("t2"):
            pass
        assert m.counters == {}
        assert m.timers == {}

    def test_disabled_timer_is_shared_noop(self):
        m = Metrics(enabled=False)
        assert m.timer("a") is m.timer("b")

    def test_env_var_enables_at_construction(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        assert Metrics().enabled
        monkeypatch.setenv(TELEMETRY_ENV, "0")
        assert not Metrics().enabled
        monkeypatch.delenv(TELEMETRY_ENV)
        assert not Metrics().enabled


class TestRecording:
    def test_counters(self, metrics):
        metrics.incr("cells")
        metrics.incr("cells", 2)
        assert metrics.counters["cells"] == 3

    def test_observe_aggregates_count_total_max(self, metrics):
        metrics.observe("phase", 0.2)
        metrics.observe("phase", 0.5)
        metrics.observe("phase", 0.1)
        count, total, worst = metrics.timers["phase"]
        assert count == 3
        assert total == pytest.approx(0.8)
        assert worst == pytest.approx(0.5)

    def test_timer_context_manager(self, metrics):
        with metrics.timer("phase"):
            pass
        count, total, worst = metrics.timers["phase"]
        assert count == 1
        assert total >= 0.0
        assert worst == total


class TestLifecycle:
    def test_enable_propagates_env(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        m = Metrics(enabled=False)
        m.enable()
        assert os.environ[TELEMETRY_ENV] == "1"
        m.disable()
        assert TELEMETRY_ENV not in os.environ

    def test_enable_without_env(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        m = Metrics(enabled=False)
        m.enable(propagate_env=False)
        assert m.enabled
        assert TELEMETRY_ENV not in os.environ

    def test_reset(self, metrics):
        metrics.incr("a")
        metrics.observe("t", 1.0)
        metrics.reset()
        assert metrics.counters == {}
        assert metrics.timers == {}


class TestAggregation:
    def test_snapshot_shape(self, metrics):
        metrics.incr("a", 2)
        metrics.observe("t", 0.25)
        snap = metrics.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["timers"]["t"] == {
            "count": 1, "total_s": 0.25, "max_s": 0.25,
        }

    def test_drain_returns_delta_and_resets(self, metrics):
        metrics.incr("a")
        delta = metrics.drain()
        assert delta["counters"] == {"a": 1}
        assert metrics.counters == {}
        assert metrics.drain() == {"counters": {}, "timers": {}}

    def test_merge_combines_worker_deltas(self, metrics):
        metrics.incr("a", 1)
        metrics.observe("t", 0.2)
        metrics.merge({
            "counters": {"a": 2, "b": 5},
            "timers": {"t": {"count": 2, "total_s": 0.3, "max_s": 0.25}},
        })
        assert metrics.counters == {"a": 3, "b": 5}
        count, total, worst = metrics.timers["t"]
        assert count == 3
        assert total == pytest.approx(0.5)
        assert worst == pytest.approx(0.25)

    def test_merge_ignores_enabled_flag(self):
        # Late-arriving worker deltas land even if the parent was
        # disabled in between (drain/merge is the aggregation path).
        m = Metrics(enabled=False)
        m.merge({"counters": {"a": 1}, "timers": {}})
        assert m.counters == {"a": 1}


class TestPresentation:
    def test_summary_table_lists_everything(self, metrics):
        metrics.incr("campaign.cells_ok", 4)
        metrics.observe("cell.simulate", 1.25)
        table = metrics.summary_table()
        assert "campaign.cells_ok" in table
        assert "cell.simulate" in table
        assert "metric" in table

    def test_summary_table_empty(self, metrics):
        assert "(no events recorded)" in metrics.summary_table()


class TestProcessWideInstance:
    def test_singleton_exists_disabled_by_default(self):
        assert isinstance(METRICS, Metrics)
