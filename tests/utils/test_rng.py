"""Tests for deterministic named RNG streams."""

import pytest

from repro.utils.rng import RngFactory


class TestRngFactory:
    def test_same_name_same_stream(self):
        a = RngFactory(7).stream("x").integers(0, 1000, 10)
        b = RngFactory(7).stream("x").integers(0, 1000, 10)
        assert (a == b).all()

    def test_different_names_differ(self):
        a = RngFactory(7).stream("x").integers(0, 1000, 10)
        b = RngFactory(7).stream("y").integers(0, 1000, 10)
        assert (a != b).any()

    def test_different_seeds_differ(self):
        a = RngFactory(7).stream("x").integers(0, 1000, 10)
        b = RngFactory(8).stream("x").integers(0, 1000, 10)
        assert (a != b).any()

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(-1)

    def test_child_namespacing(self):
        root = RngFactory(7)
        child = root.child("ns")
        a = child.stream("x").integers(0, 1000, 10)
        b = root.stream("x").integers(0, 1000, 10)
        assert (a != b).any()

    def test_child_deterministic(self):
        a = RngFactory(7).child("ns").stream("x").integers(0, 1000, 10)
        b = RngFactory(7).child("ns").stream("x").integers(0, 1000, 10)
        assert (a == b).all()

    def test_nested_children(self):
        a = RngFactory(7).child("a").child("b").stream("x").integers(0, 100, 5)
        b = RngFactory(7).child("a").child("b").stream("x").integers(0, 100, 5)
        assert (a == b).all()

    def test_golden_values(self):
        # Pinned draws: the parallel runner's determinism contract
        # rests on streams being pure functions of (seed, name), so a
        # change here silently invalidates every cached result.
        assert RngFactory(7).stream("x").integers(0, 1_000_000, 6).tolist() == [
            813564, 186752, 153424, 571768, 662137, 853517,
        ]
        assert RngFactory(7).child("ns").stream("x").integers(
            0, 1_000_000, 4
        ).tolist() == [215507, 660641, 270246, 265977]

    def test_cross_process_stability(self):
        """A worker process derives the exact same stream draws.

        This is what lets run_cells fan cells out to a process pool
        without shipping RNG state: each worker rebuilds its streams
        from (seed, name) alone.
        """
        import subprocess
        import sys

        code = (
            "from repro.utils.rng import RngFactory\n"
            "draws = RngFactory(7).child('fft/killi_1:64')"
            ".stream('killi-mask/64').integers(0, 1_000_000, 8)\n"
            "print(','.join(map(str, draws.tolist())))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=__file__.rsplit("/tests/", 1)[0],
        )
        remote = [int(v) for v in proc.stdout.strip().split(",")]
        local = (
            RngFactory(7).child("fft/killi_1:64")
            .stream("killi-mask/64").integers(0, 1_000_000, 8).tolist()
        )
        assert remote == local


class TestUnits:
    def test_bits_to_kib(self):
        from repro.utils.units import bits_to_kib

        assert bits_to_kib(8 * 1024) == 1.0

    def test_format_small(self):
        from repro.utils.units import format_size_bits

        assert format_size_bits(41) == "41b"

    def test_format_large(self):
        from repro.utils.units import format_size_bits

        assert format_size_bits(8 * 1024 * 24) == "24.00KiB"


class TestTables:
    def test_basic_render(self):
        from repro.utils.tables import format_table

        out = format_table(["a", "b"], [[1, 2], [3, 4]], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_arity_mismatch_raises(self):
        from repro.utils.tables import format_table

        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        from repro.utils.tables import format_table

        out = format_table(["x"], [[0.123456789]])
        assert "0.1235" in out

    def test_series(self):
        from repro.utils.tables import format_series

        out = format_series("y", [1, 2], [10, 20])
        assert "10" in out and "20" in out
