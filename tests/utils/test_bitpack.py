"""Tests for the packed-bit (uint64 word) set representation."""

import numpy as np
import pytest

from repro.utils.bitpack import (
    mask_from_bool,
    n_words,
    pack_bit_matrix,
    pack_positions,
    pack_positions_matrix,
    popcount64,
    unpack_positions,
)


class TestWords:
    def test_n_words(self):
        assert n_words(0) == 0
        assert n_words(1) == 1
        assert n_words(64) == 1
        assert n_words(65) == 2
        assert n_words(539) == 9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            n_words(-1)


class TestPackRoundtrip:
    def test_empty(self):
        row = pack_positions([], 539)
        assert row.shape == (9,)
        assert not row.any()
        assert len(unpack_positions(row)) == 0

    def test_roundtrip_random(self, rng):
        for _ in range(20):
            k = int(rng.integers(0, 40))
            positions = np.sort(rng.choice(539, size=k, replace=False))
            row = pack_positions(positions, 539)
            assert np.array_equal(unpack_positions(row), positions)

    def test_word_boundaries(self):
        positions = [0, 63, 64, 127, 128, 538]
        row = pack_positions(positions, 539)
        assert unpack_positions(row).tolist() == positions

    def test_duplicates_are_idempotent(self):
        row = pack_positions([5, 5, 5], 64)
        assert unpack_positions(row).tolist() == [5]

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            pack_positions([539], 539)
        with pytest.raises(IndexError):
            pack_positions([-1], 539)


class TestPopcount:
    def test_against_python_bitcount(self, rng):
        words = rng.integers(0, 2**63, size=50, dtype=np.uint64)
        expected = [bin(int(w)).count("1") for w in words]
        assert popcount64(words).tolist() == expected

    def test_matrix_shape_preserved(self, rng):
        words = rng.integers(0, 2**63, size=(4, 9), dtype=np.uint64)
        assert popcount64(words).shape == (4, 9)


class TestMatrixPacking:
    def test_pack_positions_matrix_matches_per_row(self, rng):
        n, k_max, bits = 32, 12, 539
        offsets = rng.integers(0, bits, size=(n, k_max))
        counts = rng.integers(0, k_max + 1, size=n)
        valid = np.arange(k_max)[None, :] < counts[:, None]
        packed = pack_positions_matrix(offsets, valid, bits)
        for i in range(n):
            row = pack_positions(np.unique(offsets[i, valid[i]]), bits)
            assert np.array_equal(packed[i], row)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pack_positions_matrix(
                np.zeros((2, 3)), np.zeros((3, 2), dtype=bool), 64
            )

    def test_pack_bit_matrix_matches_positions(self, rng):
        bits = (rng.random((16, 539)) < 0.05).astype(np.uint8)
        packed = pack_bit_matrix(bits)
        for i in range(16):
            expected = pack_positions(np.nonzero(bits[i])[0], 539)
            assert np.array_equal(packed[i], expected)

    def test_mask_from_bool(self):
        member = np.zeros(130, dtype=bool)
        member[[0, 64, 129]] = True
        assert unpack_positions(mask_from_bool(member)).tolist() == [0, 64, 129]
