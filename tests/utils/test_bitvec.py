"""Unit and property tests for repro.utils.bitvec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import bitvec


class TestConstructors:
    def test_zeros(self):
        z = bitvec.zeros(10)
        assert len(z) == 10
        assert z.dtype == np.uint8
        assert not z.any()

    def test_ones(self):
        o = bitvec.ones(7)
        assert o.sum() == 7

    def test_random_bits_deterministic(self):
        a = bitvec.random_bits(np.random.default_rng(3), 100)
        b = bitvec.random_bits(np.random.default_rng(3), 100)
        assert (a == b).all()

    def test_random_bits_values(self):
        bits = bitvec.random_bits(np.random.default_rng(0), 1000)
        assert set(np.unique(bits)) <= {0, 1}


class TestIntConversion:
    def test_round_trip_simple(self):
        bits = bitvec.bits_from_int(0b1011, 8)
        assert list(bits[:4]) == [1, 1, 0, 1]
        assert bitvec.bits_to_int(bits) == 0b1011

    def test_zero(self):
        assert bitvec.bits_to_int(bitvec.bits_from_int(0, 4)) == 0

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            bitvec.bits_from_int(16, 4)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bitvec.bits_from_int(-1, 4)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_round_trip_property(self, value):
        assert bitvec.bits_to_int(bitvec.bits_from_int(value, 64)) == value


class TestBytesConversion:
    def test_round_trip(self):
        data = bytes(range(64))
        assert bitvec.bits_to_bytes(bitvec.bits_from_bytes(data)) == data

    def test_bit_order_lsb_first(self):
        bits = bitvec.bits_from_bytes(b"\x01")
        assert bits[0] == 1
        assert not bits[1:].any()

    def test_non_multiple_of_8_raises(self):
        with pytest.raises(ValueError):
            bitvec.bits_to_bytes(bitvec.zeros(7))

    @given(st.binary(min_size=0, max_size=128))
    def test_round_trip_property(self, data):
        assert bitvec.bits_to_bytes(bitvec.bits_from_bytes(data)) == data


class TestPopcountParity:
    def test_popcount(self):
        assert bitvec.popcount(bitvec.bits_from_int(0b10110, 8)) == 3

    def test_parity_even(self):
        assert bitvec.parity(bitvec.bits_from_int(0b11, 4)) == 0

    def test_parity_odd(self):
        assert bitvec.parity(bitvec.bits_from_int(0b111, 4)) == 1

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_parity_matches_popcount(self, value):
        bits = bitvec.bits_from_int(value, 32)
        assert bitvec.parity(bits) == bitvec.popcount(bits) % 2


class TestFlipBits:
    def test_flip(self):
        bits = bitvec.zeros(8)
        flipped = bitvec.flip_bits(bits, [1, 3])
        assert flipped[1] == 1 and flipped[3] == 1
        assert bitvec.popcount(flipped) == 2

    def test_flip_is_involution(self):
        bits = bitvec.random_bits(np.random.default_rng(1), 32)
        twice = bitvec.flip_bits(bitvec.flip_bits(bits, [5, 9]), [5, 9])
        assert (twice == bits).all()

    def test_flip_does_not_mutate(self):
        bits = bitvec.zeros(8)
        bitvec.flip_bits(bits, [0])
        assert not bits.any()
