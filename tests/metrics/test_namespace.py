"""Tests for the unified repro.metrics namespace.

Covers the deprecation shims left at the old module paths and the
derived-metric helpers the bench harness uses.
"""

import importlib
import sys

import pytest

from repro.metrics import METRICS, Metrics, geomean, speedup


class TestDeprecationShims:
    @pytest.mark.parametrize(
        "shim", ["repro.utils.metrics", "repro.harness.metrics"]
    )
    def test_shim_warns_and_reexports(self, shim):
        # Force a re-import so the module-level warning fires even if
        # another test already pulled the shim in.
        sys.modules.pop(shim, None)
        with pytest.warns(DeprecationWarning, match="repro.metrics"):
            module = importlib.import_module(shim)
        assert module.METRICS is METRICS
        assert module.Metrics is Metrics

    def test_single_process_wide_sink(self):
        from repro.metrics.telemetry import METRICS as telemetry_metrics

        assert telemetry_metrics is METRICS


class TestGeomean:
    def test_matches_hand_computation(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([-2.0])


class TestSpeedup:
    def test_ratio_of_paired_times(self):
        assert speedup([4.0, 9.0], [2.0, 3.0]) == pytest.approx(
            geomean([2.0, 3.0])
        )

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            speedup([1.0, 2.0], [1.0])
