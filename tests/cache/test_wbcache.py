"""Unit tests for the write-back cache (independent of Killi)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.hooks import AccessOutcome, ProtectionScheme, UnprotectedScheme
from repro.cache.core import WriteBackCache


@pytest.fixture
def geo():
    return CacheGeometry(size_bytes=4 * 1024, line_bytes=64, associativity=4)


@pytest.fixture
def cache(geo):
    return WriteBackCache(geo, UnprotectedScheme())


class TestWriteAllocate:
    def test_write_miss_allocates(self, cache):
        cache.write(0x100)
        assert cache.tags.lookup(0x100) is not None
        assert cache.stats.write_misses == 1
        assert cache.memory_reads == 1  # line fetch
        assert cache.memory_writes == 0  # not written through

    def test_write_hit_no_memory_traffic(self, cache):
        cache.write(0x100)
        reads_before = cache.memory_reads
        cache.write(0x100)
        assert cache.stats.write_hits == 1
        assert cache.memory_reads == reads_before
        assert cache.memory_writes == 0

    def test_read_after_write_hits(self, cache):
        cache.write(0x100)
        assert cache.read(0x100) == cache.latencies.hit


class TestDirtyTracking:
    def test_write_marks_dirty(self, cache, geo):
        cache.write(0x100)
        way = cache.tags.lookup(0x100)
        assert cache.tags.line(geo.set_of(0x100), way).dirty

    def test_read_does_not_mark_dirty(self, cache, geo):
        cache.read(0x100)
        way = cache.tags.lookup(0x100)
        assert not cache.tags.line(geo.set_of(0x100), way).dirty

    def test_on_dirty_hook_fires_once(self, geo):
        events = []

        class Hook(ProtectionScheme):
            def on_dirty(self, set_index, way):
                events.append((set_index, way))

        cache = WriteBackCache(geo, Hook())
        cache.write(0x100)
        cache.write(0x100)
        assert len(events) == 1

    def test_dirty_eviction_writes_back(self, cache, geo):
        stride = geo.n_sets * geo.line_bytes
        cache.write(0)
        for i in range(1, 5):
            cache.read(i * stride)
        assert cache.memory_writes == 1

    def test_clean_eviction_no_writeback(self, cache, geo):
        stride = geo.n_sets * geo.line_bytes
        for i in range(5):
            cache.read(i * stride)
        assert cache.memory_writes == 0

    def test_refill_clears_dirty(self, cache, geo):
        stride = geo.n_sets * geo.line_bytes
        cache.write(0)
        way = cache.tags.lookup(0)
        for i in range(1, 5):
            cache.read(i * stride)
        # The way that held the dirty line was refilled clean.
        for w in range(4):
            assert not cache.tags.line(geo.set_of(0), w).dirty or (
                cache.tags.line(geo.set_of(0), w).valid
            )


class TestDueOnDirty:
    class FailOnce(ProtectionScheme):
        def __init__(self, outcome):
            super().__init__()
            self.outcome = outcome
            self.armed = False

        def on_read_hit(self, set_index, way):
            if self.armed:
                self.armed = False
                return self.outcome
            return AccessOutcome.CLEAN

    def test_uncorrectable_on_dirty_counts_due(self, geo):
        scheme = self.FailOnce(AccessOutcome.RETRAIN_MISS)
        cache = WriteBackCache(geo, scheme)
        cache.write(0x100)
        scheme.armed = True
        cache.read(0x100)
        assert cache.stats.extra.get("due_on_dirty") == 1
        assert cache.stats.error_induced_misses == 1

    def test_corrected_on_dirty_is_fine(self, geo):
        scheme = self.FailOnce(AccessOutcome.CORRECTED)
        cache = WriteBackCache(geo, scheme)
        cache.write(0x100)
        scheme.armed = True
        cache.read(0x100)
        assert cache.stats.extra.get("due_on_dirty", 0) == 0
        assert cache.stats.corrected_reads == 1

    def test_uncorrectable_on_clean_not_due(self, geo):
        scheme = self.FailOnce(AccessOutcome.RETRAIN_MISS)
        cache = WriteBackCache(geo, scheme)
        cache.read(0x100)
        scheme.armed = True
        cache.read(0x100)
        assert cache.stats.extra.get("due_on_dirty", 0) == 0
        assert cache.stats.error_induced_misses == 1

    def test_disable_on_dirty(self, geo):
        scheme = self.FailOnce(AccessOutcome.DISABLE_MISS)
        cache = WriteBackCache(geo, scheme)
        cache.write(0x100)
        scheme.armed = True
        cache.read(0x100)
        way_states = cache.tags.ways_of_set(geo.set_of(0x100))
        assert any(line.disabled for line in way_states)


class TestBypass:
    def test_write_bypass_when_set_dead(self, cache, geo):
        set_index = geo.set_of(0x100)
        for way in range(4):
            cache.tags.disable(set_index, way)
        cache.write(0x100)
        assert cache.stats.bypasses == 1
        assert cache.memory_writes == 1  # store had to go to memory
