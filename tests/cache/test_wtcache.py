"""Tests for the write-through protected cache."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.hooks import AccessOutcome, ProtectionScheme, UnprotectedScheme
from repro.cache.core import CacheLatencies, WriteThroughCache


@pytest.fixture
def geo():
    return CacheGeometry(size_bytes=4 * 1024, line_bytes=64, associativity=4)


@pytest.fixture
def cache(geo):
    return WriteThroughCache(geo, UnprotectedScheme())


class ScriptedScheme(ProtectionScheme):
    """Returns a scripted sequence of outcomes on read hits."""

    def __init__(self, outcomes):
        super().__init__()
        self.outcomes = list(outcomes)
        self.events = []

    def on_read_hit(self, set_index, way):
        self.events.append(("hit", set_index, way))
        if self.outcomes:
            return self.outcomes.pop(0)
        return AccessOutcome.CLEAN

    def on_fill(self, set_index, way):
        self.events.append(("fill", set_index, way))

    def on_evict(self, set_index, way):
        self.events.append(("evict", set_index, way))

    def on_write_hit(self, set_index, way):
        self.events.append(("write", set_index, way))


class TestBasicProtocol:
    def test_read_miss_then_hit(self, cache):
        lat_miss = cache.read(0x100)
        lat_hit = cache.read(0x100)
        assert cache.stats.read_misses == 1
        assert cache.stats.read_hits == 1
        assert lat_miss == cache.latencies.miss
        assert lat_hit == cache.latencies.hit

    def test_write_through_no_allocate(self, cache):
        cache.write(0x100)
        assert cache.stats.write_misses == 1
        assert cache.memory_writes == 1
        assert cache.read(0x100) == cache.latencies.miss  # not allocated

    def test_write_hit_updates(self, cache):
        cache.read(0x100)
        cache.write(0x100)
        assert cache.stats.write_hits == 1
        assert cache.memory_writes == 1  # still written through

    def test_lru_eviction(self, cache, geo):
        stride = geo.n_sets * geo.line_bytes  # same set each time
        for i in range(4):
            cache.read(i * stride)
        cache.read(4 * stride)  # evicts addr 0
        assert cache.stats.evictions == 1
        assert cache.read(0) == cache.latencies.miss

    def test_lru_touch_protects_mru(self, cache, geo):
        stride = geo.n_sets * geo.line_bytes
        for i in range(4):
            cache.read(i * stride)
        cache.read(0)  # make way-0 line MRU
        cache.read(4 * stride)  # evicts line 1, not line 0
        assert cache.read(0) == cache.latencies.hit

    def test_memory_traffic_counters(self, cache):
        cache.read(0)
        cache.read(0)
        cache.write(64)
        assert cache.memory_reads == 1
        assert cache.memory_writes == 1


class TestLatencies:
    def test_table3_defaults(self):
        lat = CacheLatencies()
        assert lat.tag == 2 and lat.data == 2 and lat.check == 1
        assert lat.hit == 5

    def test_corrected_hit_costs_extra(self, geo):
        scheme = ScriptedScheme([AccessOutcome.CORRECTED])
        cache = WriteThroughCache(geo, scheme)
        cache.read(0)
        lat = cache.read(0)
        assert lat == cache.latencies.hit + cache.latencies.correction
        assert cache.stats.corrected_reads == 1


class TestErrorOutcomes:
    def test_retrain_miss_invalidates_and_refetches(self, geo):
        scheme = ScriptedScheme([AccessOutcome.RETRAIN_MISS])
        cache = WriteThroughCache(geo, scheme)
        cache.read(0)
        lat = cache.read(0)
        assert lat == cache.latencies.hit + cache.latencies.miss
        assert cache.stats.error_induced_misses == 1
        # The line was refetched: next read hits cleanly.
        assert cache.read(0) == cache.latencies.hit

    def test_disable_miss_disables_way(self, geo):
        scheme = ScriptedScheme([AccessOutcome.DISABLE_MISS])
        cache = WriteThroughCache(geo, scheme)
        cache.read(0)
        way_before = cache.tags.lookup(0)
        cache.read(0)
        set_index = geo.set_of(0)
        assert cache.tags.line(set_index, way_before).disabled
        assert cache.stats.error_induced_misses == 1

    def test_all_ways_disabled_bypasses(self, geo):
        cache = WriteThroughCache(geo, UnprotectedScheme())
        for way in range(4):
            cache.tags.disable(geo.set_of(0), way)
        lat = cache.read(0)
        assert lat == cache.latencies.miss
        assert cache.stats.bypasses == 1
        assert cache.stats.fills == 0


class TestVictimPriority:
    def test_priority_prefers_high(self, geo):
        class PriorityScheme(ProtectionScheme):
            def fill_priority(self, set_index, way):
                return way  # higher way = higher priority

        cache = WriteThroughCache(geo, PriorityScheme())
        cache.read(0)
        # All ways invalid initially: the fill went to way 3.
        assert cache.tags.lookup(0) == 3


class TestInvalidateLine:
    def test_external_invalidation(self, cache, geo):
        cache.read(0)
        way = cache.tags.lookup(0)
        cache.invalidate_line(geo.set_of(0), way, reason="ecc_evict")
        assert cache.stats.ecc_evict_invalidations == 1
        assert cache.tags.lookup(0) is None

    def test_invalid_line_noop(self, cache):
        cache.invalidate_line(0, 0)
        assert cache.stats.invalidations == 0


class TestReset:
    def test_reset_flushes_and_reenables(self, cache, geo):
        cache.read(0)
        cache.tags.disable(geo.set_of(0x40), 2)
        cache.reset()
        assert cache.tags.count_valid() == 0
        assert cache.tags.count_disabled() == 0

    def test_scheme_on_reset_called(self, geo):
        calls = []

        class ResetScheme(ProtectionScheme):
            def on_reset(self):
                calls.append(True)

        cache = WriteThroughCache(geo, ResetScheme())
        cache.reset()
        assert calls == [True]


class TestStats:
    def test_mpki(self, cache):
        cache.read(0)
        cache.read(64)
        assert cache.stats.mpki(1000) == 2.0
        # Unified zero/negative-denominator contract: no work -> 0.0
        # (same as miss_rate with no reads and ipc with no cycles).
        assert cache.stats.mpki(0) == 0.0
        assert cache.stats.mpki(-5) == 0.0

    def test_as_dict_includes_extra(self, cache):
        cache.stats.bump("custom", 3)
        assert cache.stats.as_dict()["custom"] == 3

    def test_miss_rate(self, cache):
        cache.read(0)
        cache.read(0)
        assert cache.stats.miss_rate == 0.5
