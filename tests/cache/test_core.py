"""The unified transaction layer: policies, transactions, presets.

The scalar access semantics live in exactly one place
(:class:`repro.cache.core.CacheModel`); these tests pin the strategy
objects that parameterize it, the formal transaction entry point, the
``semantics_batchable`` precondition the bulk tiers consult, and the
compatibility shims left at the old module paths.
"""

import numpy as np
import pytest

from repro.cache.core import (
    LRU_FILL,
    NO_WRITE_ALLOCATE,
    WRITE_ALLOCATE,
    WRITE_BACK,
    WRITE_THROUGH,
    AccessTransaction,
    CacheLatencies,
    CacheModel,
    WriteBackCache,
    WriteThroughCache,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.hooks import UnprotectedScheme

SUBSTRATES = ("object", "soa")


def small_geometry() -> CacheGeometry:
    return CacheGeometry(
        size_bytes=16 * 1024, line_bytes=64, associativity=4, banks=2
    )


def random_stream(seed: int, n: int = 600, footprint: int = 64 * 1024):
    rng = np.random.default_rng(seed)
    addrs = (rng.integers(0, footprint // 64, n) * 64).tolist()
    stores = (rng.random(n) < 0.35).tolist()
    return list(zip(addrs, stores))


def drive(cache, stream):
    return [
        cache.write(addr) if store else cache.read(addr)
        for addr, store in stream
    ]


def state_key(cache):
    return (
        cache.stats.as_dict(),
        cache.memory_reads,
        cache.memory_writes,
    )


class TestPolicies:
    def test_preset_flags(self):
        assert not WRITE_THROUGH.write_back
        assert WRITE_BACK.write_back
        assert not NO_WRITE_ALLOCATE.write_allocate
        assert NO_WRITE_ALLOCATE.prefer_invalid
        assert WRITE_ALLOCATE.write_allocate
        assert not LRU_FILL.write_allocate
        assert not LRU_FILL.prefer_invalid

    def test_default_model_is_the_paper_l2(self):
        cache = CacheModel(small_geometry())
        assert cache.write_policy is WRITE_THROUGH
        assert cache.allocation_policy is NO_WRITE_ALLOCATE

    def test_presets_are_the_same_class(self):
        wt = WriteThroughCache(small_geometry())
        wb = WriteBackCache(small_geometry())
        assert isinstance(wt, CacheModel)
        assert isinstance(wb, WriteThroughCache)
        assert wt.write_policy is WRITE_THROUGH
        assert wb.write_policy is WRITE_BACK
        assert wb.allocation_policy is WRITE_ALLOCATE

    def test_write_hit_latency_by_policy(self):
        lat = CacheLatencies()
        wt = WriteThroughCache(small_geometry())
        wb = WriteBackCache(small_geometry())
        addr = 0
        wt.read(addr)
        wb.read(addr)
        assert wt.write(addr) == lat.tag  # posted through
        assert wb.write(addr) == lat.tag + lat.data  # lands in place


class TestSemanticsBatchable:
    def test_write_through_preset_is_batchable(self):
        assert WriteThroughCache(small_geometry()).semantics_batchable

    def test_write_back_preset_is_not(self):
        assert not WriteBackCache(small_geometry()).semantics_batchable

    def test_lru_fill_policy_is_not(self):
        cache = CacheModel(small_geometry(), allocation_policy=LRU_FILL)
        assert not cache.semantics_batchable

    def test_protocol_override_opts_out(self):
        class Tweaked(WriteThroughCache):
            def read(self, addr):
                return super().read(addr)

        assert not Tweaked(small_geometry()).semantics_batchable

    def test_non_protocol_override_stays_batchable(self):
        class Annotated(WriteThroughCache):
            def label(self):
                return "still the same semantics"

        assert Annotated(small_geometry()).semantics_batchable

    def test_unbatchable_cache_refuses_set_replay(self):
        wb = WriteBackCache(small_geometry())
        assert wb.set_replay_info(0) is None
        assert wb.set_replay_profile(0) is None


class TestExecute:
    @pytest.mark.parametrize("preset", [WriteThroughCache, WriteBackCache])
    def test_execute_matches_read_write(self, preset):
        direct, formal = preset(small_geometry()), preset(small_geometry())
        stream = random_stream(5)
        lat_direct = drive(direct, stream)
        lat_formal = [
            formal.execute(
                AccessTransaction.store(a) if s else AccessTransaction.load(a)
            )
            for a, s in stream
        ]
        assert lat_direct == lat_formal
        assert state_key(direct) == state_key(formal)

    def test_transaction_constructors(self):
        assert not AccessTransaction.load(64).is_store
        assert AccessTransaction.store(64).is_store
        assert AccessTransaction(64).is_store is False


class TestSubstrateParity:
    """The object substrate is the pinned reference: both substrates
    must produce identical latencies, stats and memory traffic for the
    same stream, under both write policies."""

    @pytest.mark.parametrize("preset", [WriteThroughCache, WriteBackCache])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_bit_identical_streams(self, preset, seed):
        stream = random_stream(seed, footprint=32 * 1024)
        caches = [
            preset(small_geometry(), UnprotectedScheme(), substrate=s)
            for s in SUBSTRATES
        ]
        latencies = [drive(cache, stream) for cache in caches]
        assert latencies[0] == latencies[1]
        assert state_key(caches[0]) == state_key(caches[1])


class TestDirtyEvictionAccounting:
    """Write-back dirty lines must be written to memory exactly once,
    when evicted — on either substrate."""

    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_dirty_eviction_writes_back(self, substrate):
        geometry = small_geometry()
        cache = WriteBackCache(geometry, substrate=substrate)
        assoc, stride = geometry.associativity, geometry.n_sets * 64
        # Fill set 0 with dirty lines (write-allocate misses)...
        for i in range(assoc):
            cache.write(i * stride)
        assert cache.memory_reads == assoc  # allocate fetches
        assert cache.memory_writes == 0  # nothing posted, nothing evicted
        # ...then evict them all with clean read misses.
        for i in range(assoc, 2 * assoc):
            cache.read(i * stride)
        assert cache.stats.evictions == assoc
        assert cache.memory_writes == assoc  # one write-back per dirty line

    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_clean_eviction_writes_nothing(self, substrate):
        geometry = small_geometry()
        cache = WriteBackCache(geometry, substrate=substrate)
        assoc, stride = geometry.associativity, geometry.n_sets * 64
        for i in range(2 * assoc):
            cache.read(i * stride)
        assert cache.stats.evictions == assoc
        assert cache.memory_writes == 0

    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_invalidate_line_flushes_dirty(self, substrate):
        cache = WriteBackCache(small_geometry(), substrate=substrate)
        cache.write(0)
        way = cache.tags.lookup(0)
        before = cache.memory_writes
        cache.invalidate_line(0, way)
        assert cache.memory_writes == before + 1

    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_rewrite_does_not_double_count_dirty(self, substrate):
        cache = WriteBackCache(small_geometry(), substrate=substrate)
        for _ in range(5):
            cache.write(0)  # stays dirty; on_dirty fires once
        stride = cache.geometry.n_sets * 64
        for i in range(1, cache.geometry.associativity + 1):
            cache.read(i * stride)
        assert cache.memory_writes == 1


class TestCompatibilityShims:
    def test_old_module_paths_resolve(self):
        from repro.cache.protection import (
            ProtectionScheme as shim_scheme,
        )
        from repro.cache.setassoc import SetAssocCache as shim_store
        from repro.cache.wbcache import WriteBackCache as shim_wb
        from repro.cache.wtcache import WriteThroughCache as shim_wt

        from repro.cache.hooks import ProtectionScheme
        from repro.cache.object_store import SetAssocCache

        assert shim_wt is WriteThroughCache
        assert shim_wb is WriteBackCache
        assert shim_scheme is ProtectionScheme
        assert shim_store is SetAssocCache
