"""Tests for cache geometry / address mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry


@pytest.fixture(scope="module")
def l2():
    """The paper's Table 3 L2."""
    return CacheGeometry(
        size_bytes=2 * 1024 * 1024, line_bytes=64, associativity=16, banks=16
    )


class TestPaperL2:
    def test_dimensions(self, l2):
        assert l2.n_lines == 32768
        assert l2.n_sets == 2048
        assert l2.line_bits == 512

    def test_bank_count(self, l2):
        banks = {l2.bank_of(addr) for addr in range(0, 1 << 20, 64)}
        assert banks == set(range(16))


class TestValidation:
    def test_non_pow2_line(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1024, line_bytes=48)

    def test_bad_division(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1000, line_bytes=64, associativity=16)

    def test_non_pow2_sets(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=3 * 64 * 16, line_bytes=64, associativity=16)

    def test_too_many_banks(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=64 * 16 * 2, line_bytes=64,
                          associativity=16, banks=4)


class TestMapping:
    def test_line_address_strips_offset(self, l2):
        assert l2.line_address(0x12345) == 0x12345 & ~63

    def test_same_line_same_set(self, l2):
        assert l2.set_of(0x1000) == l2.set_of(0x103F)

    def test_consecutive_lines_consecutive_sets(self, l2):
        assert l2.set_of(64) == (l2.set_of(0) + 1) % l2.n_sets

    def test_tag_set_round_trip(self, l2):
        for addr in [0, 64, 0x1FFFC0, 0xABCDE0 & ~63]:
            reconstructed = l2.addr_of(l2.tag_of(addr), l2.set_of(addr))
            assert reconstructed == l2.line_address(addr)

    @given(st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=100)
    def test_round_trip_property(self, addr):
        geo = CacheGeometry(size_bytes=64 * 1024, line_bytes=64, associativity=4)
        assert geo.addr_of(geo.tag_of(addr), geo.set_of(addr)) == geo.line_address(addr)

    def test_line_id_bijection(self, l2):
        seen = set()
        for set_index in [0, 5, 2047]:
            for way in range(16):
                line_id = l2.line_id(set_index, way)
                assert line_id not in seen
                seen.add(line_id)

    def test_line_id_bounds(self, l2):
        with pytest.raises(IndexError):
            l2.line_id(2048, 0)
        with pytest.raises(IndexError):
            l2.line_id(0, 16)
