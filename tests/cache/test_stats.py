"""Tests for CacheStats: snapshots, deltas and the unified
zero-denominator contract."""

import pytest

from repro.cache.stats import CacheStats, _COUNTER_FIELDS


class TestCopy:
    def test_copy_is_independent(self):
        stats = CacheStats(reads=10, read_hits=7, read_misses=3)
        stats.bump("dfh_train", 2)
        snap = stats.copy()

        stats.reads += 5
        stats.bump("dfh_train")
        assert snap.reads == 10
        assert snap.extra == {"dfh_train": 2}
        assert snap.extra is not stats.extra

    def test_copy_covers_every_counter(self):
        stats = CacheStats(**{name: i + 1 for i, name in enumerate(_COUNTER_FIELDS)})
        snap = stats.copy()
        for name in _COUNTER_FIELDS:
            assert getattr(snap, name) == getattr(stats, name)


class TestDelta:
    def test_counterwise_difference(self):
        before = CacheStats(reads=10, writes=4, read_misses=2)
        after = CacheStats(reads=25, writes=9, read_misses=6)
        diff = after.delta(before)
        assert diff.reads == 15
        assert diff.writes == 5
        assert diff.read_misses == 4
        assert diff.evictions == 0

    def test_extra_counters_diffed(self):
        before = CacheStats()
        before.bump("dfh_train", 3)
        after = CacheStats()
        after.bump("dfh_train", 8)
        after.bump("dfh_demote", 1)
        diff = after.delta(before)
        assert diff.extra == {"dfh_train": 5, "dfh_demote": 1}

    def test_delta_plus_earlier_roundtrips(self):
        before = CacheStats(reads=3, fills=2)
        after = CacheStats(reads=11, fills=2, evictions=4)
        diff = after.delta(before)
        for name in _COUNTER_FIELDS:
            assert getattr(before, name) + getattr(diff, name) == getattr(
                after, name
            )


class TestZeroDenominators:
    """mpki, miss_rate and KernelResult.ipc all agree: an empty
    denominator means "no work" and reads as 0.0, never an exception."""

    def test_mpki_zero_instructions(self):
        assert CacheStats(read_misses=5).mpki(0) == 0.0

    def test_mpki_negative_instructions(self):
        assert CacheStats(read_misses=5).mpki(-100) == 0.0

    def test_mpki_normal(self):
        assert CacheStats(read_misses=5).mpki(1000) == pytest.approx(5.0)

    def test_miss_rate_no_reads(self):
        assert CacheStats().miss_rate == 0.0

    def test_ipc_no_cycles(self):
        from repro.gpu.engine import KernelResult

        result = KernelResult(
            workload="empty", cycles=0, instructions=0,
            l2_stats=CacheStats(),
        )
        assert result.ipc == 0.0


class TestAsDict:
    def test_includes_every_counter_and_derived_totals(self):
        stats = CacheStats(reads=7, writes=3, read_hits=5, write_hits=3,
                           read_misses=2)
        out = stats.as_dict()
        for name in _COUNTER_FIELDS:
            assert name in out
        assert out["accesses"] == 10
        assert out["hits"] == 8
        assert out["misses"] == 2

    def test_extra_counters_included(self):
        stats = CacheStats()
        stats.bump("due_on_dirty", 4)
        assert stats.as_dict()["due_on_dirty"] == 4
