"""Struct-of-arrays substrate vs the object reference.

Drives both tag-store implementations through the same randomized
operation sequences and checks every observable after every step, and
does the same for the two LRU states.  This is the unit-level half of
the substrate contract; the system-level half (whole simulations
bit-identical) lives in ``tests/gpu/test_substrate_equivalence.py``.
"""

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import LruState
from repro.cache.object_store import SetAssocCache
from repro.cache.soa import (
    SUBSTRATES,
    SoaLruState,
    SoaTagStore,
    default_substrate,
    resolve_substrate,
)

GEO = CacheGeometry(size_bytes=4096, line_bytes=64, associativity=4)
# 16 sets x 4 ways; address pool spans 4x the cache so sets see
# evictions, re-fills and tag aliasing.
ADDR_POOL = [line * GEO.line_bytes for line in range(4 * GEO.n_lines)]


def assert_stores_equal(ref: SetAssocCache, soa: SoaTagStore):
    """Every observable of the two tag stores matches."""
    assert soa.count_valid() == ref.count_valid()
    assert soa.count_disabled() == ref.count_disabled()
    assert soa.valid_in_set == ref.valid_in_set
    assert soa.disabled_in_set == ref.disabled_in_set
    for set_index in range(GEO.n_sets):
        assert soa.enabled_ways(set_index) == ref.enabled_ways(set_index)
        assert soa.first_invalid(set_index) == ref.first_invalid(set_index)
        all_ways = list(range(GEO.associativity))
        assert soa.invalid_among(set_index, all_ways) == ref.invalid_among(
            set_index, all_ways
        )
        for way in range(GEO.associativity):
            assert soa.is_valid(set_index, way) == ref.is_valid(set_index, way)
            assert soa.is_disabled(set_index, way) == ref.is_disabled(
                set_index, way
            )
            assert soa.is_dirty(set_index, way) == ref.is_dirty(set_index, way)
            if ref.is_valid(set_index, way):
                assert soa.tag_at(set_index, way) == ref.tag_at(set_index, way)
            view, line = soa.line(set_index, way), ref.line(set_index, way)
            assert (view.valid, view.disabled, view.dirty) == (
                line.valid,
                line.disabled,
                line.dirty,
            )
    for addr in ADDR_POOL:
        assert soa.lookup(addr) == ref.lookup(addr)


class TestTagStoreEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_op_sequence(self, seed):
        rng = np.random.default_rng(seed)
        ref = SetAssocCache(GEO)
        soa = SoaTagStore(GEO)
        for step in range(600):
            op = rng.choice(
                ["insert", "insert", "insert", "invalidate", "disable",
                 "enable", "dirty", "enable_all"],
                p=[0.3, 0.15, 0.15, 0.15, 0.1, 0.1, 0.04, 0.01],
            )
            set_index = int(rng.integers(GEO.n_sets))
            way = int(rng.integers(GEO.associativity))
            if op == "insert":
                addr = ADDR_POOL[int(rng.integers(len(ADDR_POOL)))]
                # The access protocol only fills on a miss, into an
                # enabled way — mirror that precondition.
                if ref.lookup(addr) is not None:
                    continue
                set_index = GEO.set_of(addr)
                if ref.is_disabled(set_index, way):
                    with pytest.raises(ValueError):
                        ref.insert(addr, way)
                    with pytest.raises(ValueError):
                        soa.insert(addr, way)
                    continue
                ref.insert(addr, way)
                soa.insert(addr, way)
            elif op == "invalidate":
                ref.invalidate(set_index, way)
                soa.invalidate(set_index, way)
            elif op == "disable":
                ref.disable(set_index, way)
                soa.disable(set_index, way)
            elif op == "enable":
                ref.enable(set_index, way)
                soa.enable(set_index, way)
            elif op == "dirty":
                # Only resident lines are ever dirtied (write-back
                # cache marks after a hit or fill).
                if not ref.is_valid(set_index, way):
                    continue
                value = bool(rng.integers(2))
                ref.set_dirty(set_index, way, value)
                soa.set_dirty(set_index, way, value)
            else:
                ref.enable_all()
                soa.enable_all()
            if step % 20 == 0:
                assert_stores_equal(ref, soa)
        assert_stores_equal(ref, soa)

    def test_insert_over_valid_replaces_index(self):
        # Same set, different tags: the displaced tag must stop hitting.
        soa = SoaTagStore(GEO)
        a, b = 0, GEO.n_sets * GEO.line_bytes  # both map to set 0
        soa.insert(a, way=1)
        assert soa.lookup(a) == 1
        soa.insert(b, way=1)
        assert soa.lookup(a) is None
        assert soa.lookup(b) == 1
        assert soa.count_valid() == 1

    def test_disable_invalidates_and_blocks_fill(self):
        soa = SoaTagStore(GEO)
        soa.insert(0, way=2)
        soa.disable(0, 2)
        assert soa.lookup(0) is None
        assert not soa.is_valid(0, 2)
        assert soa.count_disabled() == 1
        with pytest.raises(ValueError):
            soa.insert(0, 2)
        soa.enable_all()
        assert soa.count_disabled() == 0
        soa.insert(0, 2)
        assert soa.lookup(0) == 2


class TestLineView:
    def test_flag_writes_maintain_counters(self):
        soa = SoaTagStore(GEO)
        view = soa.line(3, 1)
        assert not view.disabled and not view.dirty
        view.disabled = True
        assert soa.count_disabled() == 1
        assert soa.disabled_in_set[3] == 1
        view.disabled = True  # idempotent
        assert soa.count_disabled() == 1
        view.disabled = False
        assert soa.count_disabled() == 0
        view.dirty = True
        assert soa.is_dirty(3, 1)

    def test_ways_of_set_tracks_store(self):
        soa = SoaTagStore(GEO)
        soa.insert(5 * GEO.line_bytes, way=0)  # set 5
        views = soa.ways_of_set(5)
        assert [v.valid for v in views] == [True, False, False, False]
        assert views[0].tag == GEO.tag_of(5 * GEO.line_bytes)


class TestLruEquivalence:
    @pytest.mark.parametrize("seed", [3, 4])
    def test_randomized_touch_demote(self, seed):
        rng = np.random.default_rng(seed)
        n_sets, assoc = 8, 4
        ref = LruState(n_sets, assoc)
        soa = SoaLruState(n_sets, assoc)
        for _ in range(500):
            set_index = int(rng.integers(n_sets))
            way = int(rng.integers(assoc))
            if rng.random() < 0.7:
                ref.touch(set_index, way)
                soa.touch(set_index, way)
            else:
                ref.demote(set_index, way)
                soa.demote(set_index, way)
            assert soa.recency_order(set_index) == ref.recency_order(set_index)
            assert soa.lru_way(set_index) == ref.lru_way(set_index)
            n_eligible = int(rng.integers(1, assoc + 1))
            eligible = sorted(
                rng.choice(assoc, size=n_eligible, replace=False).tolist()
            )
            assert soa.lru_choice(set_index, eligible) == ref.lru_choice(
                set_index, eligible
            )

    def test_initial_order_matches_reference(self):
        ref, soa = LruState(3, 4), SoaLruState(3, 4)
        for set_index in range(3):
            assert soa.recency_order(set_index) == ref.recency_order(set_index)
            assert soa.lru_way(set_index) == ref.lru_way(set_index) == 3

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            SoaLruState(0, 4)
        with pytest.raises(ValueError):
            SoaLruState(4, 0)


class TestSubstrateSelection:
    def test_resolve_explicit(self):
        assert resolve_substrate("object") == "object"
        assert resolve_substrate("soa") == "soa"
        with pytest.raises(ValueError):
            resolve_substrate("aos")

    def test_default_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUBSTRATE", raising=False)
        assert default_substrate() == "soa"
        for name in SUBSTRATES:
            monkeypatch.setenv("REPRO_SUBSTRATE", name)
            assert default_substrate() == name
            assert resolve_substrate(None) == name
        monkeypatch.setenv("REPRO_SUBSTRATE", "bogus")
        with pytest.raises(ValueError):
            default_substrate()
