"""Tests for the tag store and LRU state."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import LruState
from repro.cache.object_store import SetAssocCache


@pytest.fixture
def geo():
    return CacheGeometry(size_bytes=4 * 1024, line_bytes=64, associativity=4)


@pytest.fixture
def tags(geo):
    return SetAssocCache(geo)


class TestLookupInsert:
    def test_miss_on_empty(self, tags):
        assert tags.lookup(0) is None

    def test_hit_after_insert(self, tags):
        tags.insert(0x100, way=2)
        assert tags.lookup(0x100) == 2
        assert tags.lookup(0x100 + 63) == 2  # same line

    def test_different_set_misses(self, tags, geo):
        tags.insert(0, way=0)
        assert tags.lookup(geo.line_bytes) is None

    def test_same_set_different_tag_misses(self, tags, geo):
        tags.insert(0, way=0)
        other = geo.n_sets * geo.line_bytes  # same set, next tag
        assert tags.lookup(other) is None

    def test_insert_replaces_previous_tag(self, tags, geo):
        tags.insert(0, way=0)
        other = geo.n_sets * geo.line_bytes
        tags.insert(other, way=0)
        assert tags.lookup(other) == 0
        assert tags.lookup(0) is None

    def test_insert_into_disabled_raises(self, tags):
        tags.disable(0, 1)
        with pytest.raises(ValueError):
            tags.insert(0, way=1)


class TestInvalidateDisable:
    def test_invalidate(self, tags):
        tags.insert(0x40, way=1)
        set_index = tags.geometry.set_of(0x40)
        tags.invalidate(set_index, 1)
        assert tags.lookup(0x40) is None
        assert not tags.line(set_index, 1).valid

    def test_disable_clears_and_blocks(self, tags):
        tags.insert(0x40, way=1)
        set_index = tags.geometry.set_of(0x40)
        tags.disable(set_index, 1)
        assert tags.lookup(0x40) is None
        assert tags.line(set_index, 1).disabled

    def test_enable_all(self, tags):
        tags.disable(0, 0)
        tags.disable(3, 2)
        assert tags.count_disabled() == 2
        tags.enable_all()
        assert tags.count_disabled() == 0

    def test_counts(self, tags):
        tags.insert(0, way=0)
        tags.insert(64, way=1)
        assert tags.count_valid() == 2

    def test_dirty_cleared_on_insert(self, tags):
        tags.insert(0, way=0)
        set_index = tags.geometry.set_of(0)
        tags.line(set_index, 0).dirty = True
        tags.invalidate(set_index, 0)
        tags.insert(0, way=0)
        assert not tags.line(set_index, 0).dirty


class TestLru:
    def test_initial_order(self):
        lru = LruState(2, 4)
        assert lru.recency_order(0) == (0, 1, 2, 3)

    def test_touch_moves_to_front(self):
        lru = LruState(1, 4)
        lru.touch(0, 2)
        assert lru.recency_order(0) == (2, 0, 1, 3)

    def test_demote_moves_to_back(self):
        lru = LruState(1, 4)
        lru.demote(0, 0)
        assert lru.recency_order(0) == (1, 2, 3, 0)

    def test_lru_choice_respects_eligibility(self):
        lru = LruState(1, 4)
        lru.touch(0, 3)  # order: 3,0,1,2
        assert lru.lru_choice(0, {0, 3}) == 0
        assert lru.lru_choice(0, {3}) == 3
        assert lru.lru_choice(0, set()) is None

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            LruState(0, 4)
        with pytest.raises(ValueError):
            LruState(4, 0)

    def test_sets_independent(self):
        lru = LruState(2, 4)
        lru.touch(0, 3)
        assert lru.recency_order(1) == (0, 1, 2, 3)
