#!/usr/bin/env python
"""Power-state transitions: the cost of MBIST, quantified.

The paper's opening argument: every MBIST-based LV scheme must re-test
the whole array at each voltage transition, extending boot time and
delaying power-state changes; Killi transitions instantly and learns
on the fly.  This example runs a workload across several LV
transitions under both strategies and, as a bonus, sweeps Killi's
operating voltage to show the overhead/power trade-off curve.

Run:  python examples/power_transitions.py
"""

from repro.harness.sweeps import voltage_sweep
from repro.harness.transitions import power_transition_experiment
from repro.utils.tables import format_table


def main() -> None:
    out = power_transition_experiment(
        workload="lulesh", n_transitions=4, accesses_per_phase=4000
    )
    print(f"Workload: {out['workload']}, {out['n_transitions']} LV transitions, "
          f"MBIST cost {out['mbist_cycles_per_line']} cycles/line\n")
    rows = []
    for key in ("killi", "flair"):
        result = out[key]
        rows.append([
            result.strategy,
            result.execution_cycles,
            result.stall_cycles,
            result.total_cycles,
        ])
    print(format_table(
        ["strategy", "execution cycles", "MBIST stalls", "total"],
        rows,
    ))
    saved = 1 - out["killi"].total_cycles / out["flair"].total_cycles
    print(f"\nKilli finishes the same work {saved:.1%} sooner — and the gap "
          f"grows linearly\nwith transition frequency, since its transitions "
          f"are free.\n")

    print("Killi operating-voltage sweep (1:64 ECC cache, lulesh):\n")
    sweep = voltage_sweep()
    rows = [
        [f"{v:.3f}",
         f"{row['normalized_time']:.4f}",
         f"{row['disabled_fraction']:.3%}",
         f"{row['power_pct']:.1f}%"]
        for v, row in sweep.items()
    ]
    print(format_table(
        ["VDD", "normalized time", "disabled lines", "L2 power (of nominal)"],
        rows,
    ))


if __name__ == "__main__":
    main()
