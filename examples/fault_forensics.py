#!/usr/bin/env python
"""Fault forensics: watch Killi classify a line, bit by bit.

Uses the bit-accurate data path (real 512-bit contents, real SECDED
encoder/decoder, real segmented parity) to walk through the scenarios
of the paper's Table 2 and Section 5.6.2:

1. a clean line training to DFH b'00;
2. a single stuck-at fault being discovered and corrected (b'10);
3. a multi-bit fault disabling a line (b'11);
4. a *masked* fault slipping through classification and being caught
   only after a later write unmasks it — and how the inverted-write
   mitigation closes that hole.

Run:  python examples/fault_forensics.py
"""

import numpy as np

from repro.core import BitAccurateDataPath, Dfh, classify
from repro.faults import FaultMap
from repro.utils.bitvec import random_bits


def classify_line(datapath: BitAccurateDataPath, line: int, dfh: Dfh):
    n_segments = 16 if dfh is Dfh.INITIAL else 4
    signals = datapath.read_signals(line, n_segments, use_ecc=dfh is not Dfh.STABLE_0)
    cls = classify(dfh, signals.sp_mismatches, signals.syndrome_zero,
                   signals.global_parity_ok)
    print(f"   signals: parity mismatches={signals.sp_mismatches}, "
          f"syndrome zero={signals.syndrome_zero}, "
          f"global parity ok={signals.global_parity_ok}")
    print(f"   -> next DFH: {cls.next_dfh.name}, action: {cls.action.value}")
    return cls


def main() -> None:
    rng = np.random.default_rng(7)

    # A hand-crafted fault map: line 0 clean; line 1 has one stuck-at-1
    # cell; line 2 has two faults in different segments; line 3 has a
    # stuck-at-0 cell (maskable by writing a 0 there).
    faults = {
        1: [(100, 1)],
        2: [(0, 1), (1, 1)],
        3: [(200, 0)],
    }
    fault_map = FaultMap.from_faults(n_lines=4, faults=faults)
    datapath = BitAccurateDataPath(fault_map, voltage=0.625)

    print("1) Clean line: first touch classifies b'01 -> b'00")
    data = random_bits(rng, 512)
    datapath.write(0, data)
    classify_line(datapath, 0, Dfh.INITIAL)

    print("\n2) One stuck-at-1 cell at bit 100 (write a 0 there to expose it)")
    data = random_bits(rng, 512)
    data[100] = 0  # guarantee the fault is unmasked
    datapath.write(1, data)
    cls = classify_line(datapath, 1, Dfh.INITIAL)
    corrected = datapath.read_corrected(1)
    print(f"   SECDED-corrected data matches what was written: "
          f"{bool((corrected == data).all())}")

    print("\n3) Two faults in different parity segments -> disable")
    data = random_bits(rng, 512)
    data[0] = 0
    data[1] = 0
    datapath.write(2, data)
    classify_line(datapath, 2, Dfh.INITIAL)

    print("\n4) Masked fault: stuck-at-0 cell written with a 0")
    data = random_bits(rng, 512)
    data[200] = 0  # masked: the cell already holds the written value
    datapath.write(3, data)
    cls = classify_line(datapath, 3, Dfh.INITIAL)
    print("   ... the line trains to b'00 even though the cell is broken.")

    print("\n   A later write stores a 1 there and the fault unmasks:")
    data2 = data.copy()
    data2[200] = 1
    datapath.write_stable(3, data2, with_ecc=False)  # b'00 line: 4b parity only
    signals = datapath.read_signals(3, 4, use_ecc=False)
    cls = classify(Dfh.STABLE_0, signals.sp_mismatches, True, True)
    print(f"   b'00 read: parity mismatches={signals.sp_mismatches} "
          f"-> {cls.next_dfh.name} ({cls.action.value})")
    print("   Killi recovers by refetching and re-entering training.")

    print("\n   With inverted-write training (Section 5.6.2) the original+"
          "inverted\n   read pair exposes the stuck cell immediately: a stuck "
          "cell always\n   disagrees with exactly one polarity, so no fault "
          "can stay masked.")


if __name__ == "__main__":
    main()
