#!/usr/bin/env python
"""GPU workload comparison: the Figure 4/5 experiment in miniature.

Runs three representative workloads (the capacity-sensitive FFT, the
memory-bound XSBench, and the compute-bound Nekbone) through the 8-CU
GPU model under the fault-free baseline, FLAIR and two Killi
configurations, and prints normalized execution time and L2 MPKI.

Run:  python examples/gpu_workloads.py            (a couple of minutes)
      python examples/gpu_workloads.py --quick    (seconds, noisier)
"""

import sys

from repro.harness.experiments import fig4_fig5_performance, table6_power


def main() -> None:
    accesses = 4000 if "--quick" in sys.argv else 25000
    matrix = fig4_fig5_performance(
        workloads=["fft", "xsbench", "nekbone"],
        schemes=["baseline", "flair", "msecc", "killi_1:256", "killi_1:16"],
        accesses_per_cu=accesses,
        seed=42,
    )
    print(matrix.fig4_table())
    print()
    print(matrix.fig5_table())

    print("\nWhere Killi's overhead comes from:")
    for workload in matrix.workloads():
        point = matrix.points[workload]["killi_1:256"]
        print(
            f"  {workload:8s} 1:256 -> error-induced misses: "
            f"{point.error_induced_misses:5d}, ECC-contention invalidations: "
            f"{point.ecc_evict_invalidations:5d}"
        )

    print("\nNormalized L2 power (Table 6 model, with measured traffic):")
    for scheme, value in table6_power(matrix).items():
        print(f"  {scheme:12s}: {value:.1f}% of nominal-VDD baseline")


if __name__ == "__main__":
    main()
