#!/usr/bin/env python
"""Voltage sweep: how low can each protection scheme go?

Sweeps the normalized supply voltage and reports, per scheme, the
usable L2 capacity (lines within the correction budget) and the
classification coverage — the two quantities that together set Vmin.
Reproduces the reasoning behind the paper's Figures 2 and 6 and
Table 7 in one view.

Run:  python examples/voltage_sweep.py
"""

from repro.analysis.coverage import CoverageModel
from repro.faults import CellFaultModel, LineFaultModel
from repro.utils.tables import format_table


def main() -> None:
    voltages = [0.700, 0.675, 0.650, 0.625, 0.600, 0.575, 0.550]
    lines = LineFaultModel(CellFaultModel(), line_bits=523)
    coverage = CoverageModel()

    print("Usable L2 capacity (fraction of lines within the correction budget):\n")
    rows = []
    for v in voltages:
        rows.append([
            f"{v:.3f}",
            f"{lines.p_at_most(v, 1):7.2%}",   # SECDED / FLAIR / Killi
            f"{lines.p_at_most(v, 2):7.2%}",   # DECTED
            f"{lines.p_at_most(v, 11):7.2%}",  # MS-ECC / Killi+OLSC
        ])
    print(format_table(
        ["VDD", "correct-1 (Killi/FLAIR)", "correct-2 (DECTED)", "correct-11 (OLSC)"],
        rows,
    ))

    print("\nClassification coverage without MBIST (Figure 6):\n")
    rows = []
    for v in voltages:
        rows.append([
            f"{v:.3f}",
            f"{coverage.secded_coverage(v):8.2%}",
            f"{coverage.dected_coverage(v):8.2%}",
            f"{coverage.msecc_coverage(v):8.2%}",
            f"{coverage.flair_coverage(v):8.2%}",
            f"{coverage.killi_coverage(v):8.4%}",
        ])
    print(format_table(["VDD", "SECDED", "DECTED", "MS-ECC", "FLAIR", "Killi"], rows))

    print(
        "\nReading: at 0.625xVDD (the paper's operating point) everything "
        "works;\nbelow 0.6 only Killi's parity+SECDED combination still "
        "classifies lines\ncorrectly, which is what lets it adopt stronger "
        "ECC (Table 7) and push Vmin."
    )


if __name__ == "__main__":
    main()
