#!/usr/bin/env python
"""Quickstart: a Killi-protected low-voltage cache in ~40 lines.

Builds the paper's 2MB GPU L2 protected by Killi at 0.625xVDD, runs a
random traffic mix, and shows the runtime fault classification at
work: DFH state population, ECC-cache occupancy, error-induced misses
and corrected reads — all without any MBIST pre-characterisation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cache import CacheGeometry, WriteThroughCache
from repro.core import KilliConfig, KilliScheme
from repro.faults import FaultMap
from repro.utils import RngFactory


def main() -> None:
    rngs = RngFactory(seed=2026)

    # The paper's Table 3 L2: 2MB, 16-way, 64B lines.
    geometry = CacheGeometry(
        size_bytes=2 * 1024 * 1024, line_bytes=64, associativity=16, banks=16
    )

    # Persistent LV fault map: sampled from the 14nm-calibrated model.
    fault_map = FaultMap(n_lines=geometry.n_lines, rng=rngs.stream("faults"))

    # Killi with a 1:64 ECC cache (512 entries for 32768 lines).
    scheme = KilliScheme(
        geometry,
        fault_map,
        voltage=0.625,
        config=KilliConfig(ecc_ratio=64),
        rng=rngs.stream("masking"),
    )
    cache = WriteThroughCache(geometry, scheme)

    # Random traffic over a 3MB working set, 20% stores.
    rng = np.random.default_rng(7)
    addresses = rng.integers(0, 3 * 1024 * 1024, size=200_000) & ~63
    stores = rng.random(200_000) < 0.2
    for addr, is_store in zip(addresses, stores):
        if is_store:
            cache.write(int(addr))
        else:
            cache.read(int(addr))

    stats = cache.stats
    print("=== Killi quickstart ===")
    print(f"accesses:              {stats.accesses}")
    print(f"hit rate:              {stats.hits / stats.accesses:.1%}")
    print(f"corrected reads:       {stats.corrected_reads}")
    print(f"error-induced misses:  {stats.error_induced_misses}")
    print(f"ECC-evict invalidations: {stats.ecc_evict_invalidations}")
    print(f"silent corruptions:    {scheme.sdc_events}")
    print()
    print("DFH classification (learned at runtime, no MBIST):")
    for state, count in sorted(scheme.dfh_histogram().items()):
        print(f"  {state:9s}: {count:6d} lines")
    print(f"ECC cache occupancy:   {scheme.ecc.occupancy}/{scheme.ecc.n_entries}")
    print(f"disabled capacity:     {scheme.disabled_fraction():.3%}")


if __name__ == "__main__":
    main()
