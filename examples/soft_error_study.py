#!/usr/bin/env python
"""Soft-error study: why decoupled detection matters (paper §2.3).

FLAIR's steady state protects every line with SECDED alone.  SECDED
corrects 1 error and detects 2 — but a line that already carries one
LV fault only needs a 2-bit soft-error burst to reach 3 errors, where
SECDED silently miscorrects.  Killi's interleaved segmented parity is
an *independent* detector: adjacent burst bits land in different
segments and the line is refetched instead.

This script injects identical soft-error traffic into both schemes at
a sweep of (exaggerated) rates and prints the resulting silent-data-
corruption and detection counts.

Run:  python examples/soft_error_study.py
"""

from repro.harness.experiments import soft_error_campaign
from repro.utils.tables import format_table


def main() -> None:
    rows = []
    for rate in (0.005, 0.02, 0.05):
        out = soft_error_campaign(rate_per_access=rate, accesses=40_000)
        rows.append([
            f"{rate:g}",
            out["killi"]["sdc"],
            out["killi"]["detected"],
            out["flair"]["sdc"],
            out["flair"]["detected"],
        ])
    print(format_table(
        ["events/access", "Killi SDC", "Killi detected",
         "SECDED-only SDC", "SECDED-only detected"],
        rows,
        title="Soft-error injection campaign (write-through 256KB cache @0.625 VDD)",
    ))
    print(
        "\nKilli converts multi-bit transients into detected refetches;\n"
        "per-line SECDED lets a measurable fraction through as silent\n"
        "corruptions — the paper's core argument against reusing the\n"
        "correction code as the only detector."
    )


if __name__ == "__main__":
    main()
