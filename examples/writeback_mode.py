#!/usr/bin/env python
"""Killi in write-back mode (paper Section 5.6.1).

In write-through mode a detected-uncorrectable read error is cheap —
refetch from memory.  In write-back mode dirty data exists only in the
cache, so Killi upgrades the protection of dirty lines: SECDED for
dirty b'00 lines, DECTED (stored in the freed parity bits, area-free)
for dirty b'10 lines.  This example runs the same traffic through both
modes and compares memory traffic, ECC-cache pressure, and data-loss
events.

Run:  python examples/writeback_mode.py
"""

import numpy as np

from repro.cache import CacheGeometry, WriteBackCache, WriteThroughCache
from repro.core import KilliConfig, KilliScheme, KilliWriteBackScheme
from repro.faults import FaultMap
from repro.utils import RngFactory


def run(mode: str):
    rngs = RngFactory(31)
    geometry = CacheGeometry(size_bytes=512 * 1024, line_bytes=64, associativity=16)
    fault_map = FaultMap(n_lines=geometry.n_lines, rng=rngs.stream("faults"))
    config = KilliConfig(ecc_ratio=32)
    if mode == "write-through":
        scheme = KilliScheme(geometry, fault_map, 0.625, config,
                             rng=rngs.stream("mask"))
        cache = WriteThroughCache(geometry, scheme)
    else:
        scheme = KilliWriteBackScheme(geometry, fault_map, 0.625, config,
                                      rng=rngs.stream("mask"))
        cache = WriteBackCache(geometry, scheme)

    rng = np.random.default_rng(5)
    addrs = rng.integers(0, 768 * 1024, size=150_000) & ~63
    stores = rng.random(150_000) < 0.35
    for addr, is_store in zip(addrs, stores):
        if is_store:
            cache.write(int(addr))
        else:
            cache.read(int(addr))
    return cache, scheme


def main() -> None:
    print(f"{'':24s}{'write-through':>16s}{'write-back':>16s}")
    results = {mode: run(mode) for mode in ("write-through", "write-back")}

    def row(label, getter):
        values = [getter(*results[m]) for m in ("write-through", "write-back")]
        print(f"{label:24s}{values[0]:>16}{values[1]:>16}")

    row("memory writes", lambda c, s: c.memory_writes)
    row("memory reads", lambda c, s: c.memory_reads)
    row("hit rate %", lambda c, s: round(100 * c.stats.hits / c.stats.accesses, 1))
    row("corrected reads", lambda c, s: c.stats.corrected_reads)
    row("ECC-evict invalidations", lambda c, s: c.stats.ecc_evict_invalidations)
    row("dirty SECDED allocs", lambda c, s: c.stats.extra.get("dirty_secded_allocations", 0))
    row("dirty DECTED upgrades", lambda c, s: c.stats.extra.get("dirty_dected_upgrades", 0))
    row("data-loss events (DUE)", lambda c, s: c.stats.extra.get("due_on_dirty", 0))

    print(
        "\nWrite-back slashes memory write traffic but pays for it with\n"
        "ECC-cache contention (every dirty b'00 line now needs an entry) —\n"
        "exactly the trade-off the paper predicts in Section 5.6.1."
    )


if __name__ == "__main__":
    main()
