"""Figure 5: L2 misses per kilo-instruction.

Paper shape encoded below:

- the workloads split into compute-bound (low MPKI) and memory-bound
  (high MPKI) groups, with the named memory-bound streamers on top;
- MS-ECC achieves the miss rate closest to the fault-free baseline
  (highest effective capacity);
- Killi's MPKI exceeds the baseline's and decreases with ECC-cache
  size; FFT and XSBench show the largest 1:256 vs 1:16 gap.
"""

from repro.harness.experiments import fig4_fig5_performance


def test_fig5_matrix(benchmark, perf_matrix):
    matrix = perf_matrix

    benchmark.pedantic(
        lambda: fig4_fig5_performance(
            workloads=["snap"], schemes=["baseline"],
            accesses_per_cu=1000, seed=9,
        ),
        rounds=1, iterations=1,
    )

    workloads = matrix.workloads()

    # Behaviour classes: the streaming workloads are memory-bound.
    base_mpki = {w: matrix.mpki(w, "baseline") for w in workloads}
    for streamer in ("snap", "hpgmg", "xsbench"):
        assert base_mpki[streamer] > 50, (streamer, base_mpki[streamer])
    for compute in ("nekbone", "comd", "lulesh"):
        assert base_mpki[compute] < 50, (compute, base_mpki[compute])

    # MS-ECC tracks the baseline most closely among LV schemes.
    for workload in workloads:
        msecc_delta = matrix.mpki(workload, "msecc") - base_mpki[workload]
        killi_delta = matrix.mpki(workload, "killi_1:256") - base_mpki[workload]
        assert msecc_delta <= killi_delta + 1e-9, workload

    # Killi MPKI >= baseline, and shrinks with larger ECC caches on
    # the capacity-sensitive outliers.
    for workload in workloads:
        assert matrix.mpki(workload, "killi_1:256") >= base_mpki[workload] - 1e-9

    gaps = {
        w: matrix.mpki(w, "killi_1:256") - matrix.mpki(w, "killi_1:16")
        for w in workloads
    }
    sensitive = sorted(gaps, key=gaps.get, reverse=True)[:4]
    assert "fft" in sensitive or "xsbench" in sensitive

    print("\nFigure 5 (L2 MPKI):")
    print(matrix.fig5_table())
    print("\n1:256 - 1:16 MPKI gaps:", {k: round(v, 2) for k, v in gaps.items()})
