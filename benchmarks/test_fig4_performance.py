"""Figure 4: GPU kernel execution time normalized to the fault-free
baseline at nominal VDD.

The paper's shape, which these assertions encode:

- DECTED / FLAIR / MS-ECC with MBIST pre-characterisation run within a
  fraction of a percent of the baseline at 0.625 VDD (almost no lines
  disabled);
- Killi pays a small runtime-training overhead that *shrinks* as the
  ECC cache grows: worst at 1:256, near-baseline at 1:16;
- 8 of 10 workloads stay within ~1%; FFT and XSBench are the outliers
  (paper: up to 5% and 2.4% at 1:256).
"""

import numpy as np

from repro.harness.experiments import fig4_fig5_performance


def test_fig4_matrix(benchmark, perf_matrix):
    matrix = perf_matrix

    def representative_cell():
        # Re-run one small cell so the benchmark measures simulation
        # throughput without re-running the whole session matrix.
        return fig4_fig5_performance(
            workloads=["nekbone"], schemes=["killi_1:64"],
            accesses_per_cu=1000, seed=7,
        )

    benchmark.pedantic(representative_cell, rounds=1, iterations=1)

    workloads = matrix.workloads()
    assert len(workloads) == 10

    # Pre-characterised baselines: within 0.5% of fault-free.
    for workload in workloads:
        for scheme in ("dected", "flair", "msecc"):
            assert matrix.normalized_time(workload, scheme) < 1.005, (workload, scheme)

    # Killi: bounded overhead everywhere, 1:16 never worse than 1:256
    # by more than noise, and every config within the paper's envelope.
    worst_256 = {}
    for workload in workloads:
        t256 = matrix.normalized_time(workload, "killi_1:256")
        t16 = matrix.normalized_time(workload, "killi_1:16")
        worst_256[workload] = t256
        assert t256 < 1.08, (workload, t256)
        assert t16 < 1.05, (workload, t16)
        assert t16 <= t256 + 0.01, (workload, t256, t16)

    # The ECC-cache sweep is monotone on average.
    def mean_norm(scheme):
        return np.mean([matrix.normalized_time(w, scheme) for w in workloads])

    sweep = [mean_norm(f"killi_1:{r}") for r in (256, 128, 64, 32, 16)]
    assert sweep[-1] <= sweep[0] + 1e-6

    print("\nFigure 4 (normalized execution time):")
    print(matrix.fig4_table())
