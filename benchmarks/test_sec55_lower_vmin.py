"""Section 5.5: Killi with OLSC codes below the SECDED Vmin.

At 0.600xVDD ~92% of lines carry 2+ faults, so SECDED-based Killi
collapses; Killi with an OLSC-t11 ECC cache retains MS-ECC-class line
capacity (99.85% of lines within the correction budget) at a fraction
of MS-ECC's storage (Table 7).

Reproduction note (recorded in EXPERIMENTS.md): the *area* side of
Table 7 reproduces, but its implied performance parity does not — at
0.600xVDD nearly every line needs checkbits concurrently, so a 1:8 ECC
cache thrashes.  The assertions below encode what our model actually
shows: OLSC-Killi keeps nearly all capacity and lands far closer to
MS-ECC than SECDED-Killi does.
"""

import os

from repro.harness.experiments import sec55_lower_vmin


def _accesses() -> int:
    return int(os.environ.get("KILLI_BENCH_ACCESSES", "6000"))


def test_sec55(benchmark):
    out = benchmark.pedantic(
        sec55_lower_vmin,
        kwargs=dict(accesses_per_cu=min(_accesses(), 8000)),
        rounds=1, iterations=1,
    )

    secded = out["killi_secded_1:8"]
    olsc = out["killi_olsc_1:8"]
    msecc = out["msecc"]

    # Capacity: OLSC keeps ~all lines; SECDED loses a large fraction.
    assert olsc["disabled_fraction"] < 0.01
    assert secded["disabled_fraction"] > 0.1
    # MS-ECC with dedicated storage is the performance reference.
    assert msecc["normalized_time"] < 1.05
    # OLSC-Killi sits strictly between MS-ECC and SECDED-Killi.
    assert msecc["normalized_time"] < olsc["normalized_time"] < secded["normalized_time"]
    assert olsc["mpki"] < secded["mpki"]

    print("\nSection 5.5 at 0.600 VDD:")
    for key in ("msecc", "killi_olsc_1:8", "killi_secded_1:8"):
        row = out[key]
        print(f"  {key:18s}: time={row['normalized_time']:.3f} "
              f"mpki={row['mpki']:.1f} disabled={row['disabled_fraction']:.2%}")
