"""Figure 1: SRAM cell failure probability vs normalized voltage.

Regenerates both mechanism curves at 0.4 and 1.0 GHz and checks the
paper's qualitative anchors: exponential growth below 0.675 VDD,
read-disturb below writeability, monotonicity in frequency.
"""

from repro.harness.experiments import fig1_cell_pfail


def test_fig1_series(benchmark):
    data = benchmark.pedantic(fig1_cell_pfail, rounds=3, iterations=1)

    voltages = data["voltage"]
    write_1ghz = data["writeability@1GHz"]
    read_1ghz = data["read_disturb@1GHz"]
    write_04 = data["writeability@0.4GHz"]

    # Monotone decreasing in voltage.
    assert all(write_1ghz[i] > write_1ghz[i + 1] for i in range(len(voltages) - 1))
    # Read-disturb sits below writeability (Figure 1 layout).
    assert all(r < w for r, w in zip(read_1ghz, write_1ghz))
    # Lower frequency -> fewer failures, at every voltage.
    assert all(lo < hi for lo, hi in zip(write_04, write_1ghz))
    # Exponential knee: >= 2 decades between 0.6 and 0.65.
    p = dict(zip(voltages, write_1ghz))
    assert p[0.6] / p[0.65] > 100

    print("\nFigure 1 (writeability @1GHz):")
    for v, value in zip(voltages, write_1ghz):
        print(f"  {v:.3f} VDD: {value:.3e}")
