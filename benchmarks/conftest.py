"""Shared fixtures for the benchmark harness.

Every paper table/figure has one benchmark module.  The Figure 4/5
simulation matrix (10 workloads x 9 schemes) is expensive, so it is
run once per session and shared; its size is controlled by
``KILLI_BENCH_ACCESSES`` (accesses per CU, default 6000 — the paper's
trends are visible at this scale; raise it for tighter numbers, e.g.
``KILLI_BENCH_ACCESSES=50000``).
"""

import os

import pytest

from repro.harness.experiments import fig4_fig5_performance


def bench_accesses() -> int:
    return int(os.environ.get("KILLI_BENCH_ACCESSES", "6000"))


@pytest.fixture(scope="session")
def perf_matrix():
    """The full Figure 4/5 simulation matrix."""
    return fig4_fig5_performance(accesses_per_cu=bench_accesses(), seed=42)
