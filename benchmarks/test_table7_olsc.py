"""Table 7: Killi with OLSC codes vs MS-ECC at 0.6 / 0.575 VDD.

Paper shape: for the same capacity/reliability target, Killi's ECC
cache (1:8 at 0.6, 1:2 at 0.575) needs a small fraction of MS-ECC's
area, with the gap narrowing as more lines need protection.
"""

import pytest

from repro.harness.experiments import table7_olsc


def test_table7(benchmark):
    table = benchmark.pedantic(table7_olsc, rounds=5, iterations=1)

    # Capacity targets (from the line fault model) match Table 7.
    assert table["0.600"]["capacity_pct"] == pytest.approx(99.8, abs=0.3)
    assert table["0.575"]["capacity_pct"] == pytest.approx(69.6, abs=1.0)

    # Area ratios: paper table shows 17% and 65% (its text says 21% /
    # 72%); we assert the band and the ordering.
    at_0600 = table["0.600"]["killi_vs_msecc"]
    at_0575 = table["0.575"]["killi_vs_msecc"]
    assert 0.10 < at_0600 < 0.25
    assert 0.45 < at_0575 < 0.75
    assert at_0600 < at_0575

    print("\nTable 7:")
    for voltage, row in table.items():
        print(
            f"  {voltage} VDD: capacity={row['capacity_pct']:.1f}%  "
            f"killi/msecc area={100 * row['killi_vs_msecc']:.0f}%"
        )


def test_olsc_code_actually_corrects_eleven(benchmark):
    # The Table 7 configuration is backed by a real OLSC decoder.
    import numpy as np

    from repro.ecc.olsc import OlscCode
    from repro.utils.bitvec import random_bits

    code = OlscCode(512, t=11)
    rng = np.random.default_rng(0)
    data = random_bits(rng, 512)
    word = code.encode(data)
    positions = rng.choice(code.n, size=11, replace=False)
    word[positions] ^= 1
    result = benchmark.pedantic(code.decode, args=(word,), rounds=3, iterations=1)
    assert (result.data == data).all()
