#!/usr/bin/env python
"""Microbenchmark harness for the batched classification kernels.

Times the hot paths that PR 2 vectorized, each against the scalar
reference implementation that stays in the tree:

- ``sampler``   — Monte-Carlo coverage sampler throughput
  (:meth:`CoverageSampler.estimate` vs ``estimate_scalar``);
- ``linestate`` — per-access line-signal latency (packed
  ``LineSignalKernel.signals_row`` and the memoized
  ``LineErrorModel.signals`` vs scalar ``signals_for_positions``);
- ``hierarchy`` — per-access latency of the protected L2 on each tag
  substrate (object reference vs struct-of-arrays fast path);
- ``cache_core`` — the unified transaction layer
  (:meth:`CacheModel.execute`) on both write policies and both tag
  substrates, cross-checked identical;
- ``l2_replay`` — the set-partitioned batched replay kernel
  (:func:`repro.cache.soa.replay_clean_set` +
  :meth:`CacheModel.commit_set_replays`) vs the per-access
  ``read``/``write`` loop on the same stream, checked bit-identical;
- ``fig6``      — Figure 6 coverage sweep end-to-end wall clock;
- ``fig4``      — a Figure 4 scheme-panel slice end-to-end on all
  three engines (scalar, vectorized, batched) and both substrates,
  checked bit-identical per cell.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_bench.py --quick
    PYTHONPATH=src python benchmarks/perf/run_bench.py --full --output BENCH_PR3.json

``--fail-if-slower`` exits non-zero when any fast path is slower than
its reference, or when a benchmark regressed against the newest
committed ``BENCH_PR*.json`` at the repo root — the CI perf-smoke
gate.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis.montecarlo import CoverageSampler
from repro.cache.geometry import CacheGeometry
from repro.cache.soa import export_set_state, replay_clean_set
from repro.cache.core import (
    AccessTransaction,
    WriteBackCache,
    WriteThroughCache,
)
from repro.core.dfh import (
    ACTION_CORRECT_AND_SEND,
    ACTION_ERROR_MISS,
    ACTION_SEND_CLEAN,
    Dfh,
    DfhAction,
    classify,
    classify_batch,
    classify_cached,
)
from repro.core.linestate import LineErrorModel
from repro.faults.cell_model import CellFaultModel
from repro.faults.fault_map import FaultMap
from repro.gpu.config import GpuConfig
from repro.harness.experiments import fig6_coverage
from repro.metrics import METRICS
from repro.harness.runner import LV_VOLTAGE, CellSpec, run_cell, trace_for
from repro.scenario.config import cell_scenario
from repro.scenario.runfile import scenario_fingerprint
from repro.testing.invariants import INVARIANTS_ENV

REPO_ROOT = Path(__file__).resolve().parents[2]

_QUICK = {
    "sampler_samples": 5_000,
    "linestate_accesses": 2_000,
    "hierarchy_accesses": 20_000,
    "cache_core_accesses": 20_000,
    "l2_replay_accesses": 20_000,
    "killi_classify_ops": 20_000,
    "fuzz_overhead_accesses": 20_000,
    "fig6": False,
    # 6k accesses/CU: past the warmup-dominated regime (cold Killi
    # caches are nearly all misses, which batch no better than the
    # per-access loop), so the killi batched-vs-vectorized gate holds
    # with real margin even on noisy runners.
    "fig4_accesses": 6_000,
    "fig4_reps": 2,
}
_FULL = {
    "sampler_samples": 100_000,
    "linestate_accesses": 20_000,
    "hierarchy_accesses": 200_000,
    "cache_core_accesses": 200_000,
    "l2_replay_accesses": 200_000,
    "killi_classify_ops": 200_000,
    "fuzz_overhead_accesses": 200_000,
    "fig6": True,
    "fig4_accesses": 30_000,
    "fig4_reps": 2,
}

#: The Figure 4 panel benched end-to-end: both paper outliers x the
#: full scheme family (inert baseline, the three MBIST oracles with
#: per-way CORRECTED replay, and Killi with guarded replay).
_FIG4_WORKLOADS = ("xsbench", "fft")
_FIG4_SCHEMES = ("baseline", "dected", "flair", "msecc", "killi_1:8")


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def bench_sampler(samples: int) -> dict:
    """Coverage-sampler throughput, scalar vs vectorized, same seed."""
    sampler = CoverageSampler()
    # Scalar reference is ~60x slower per pattern; cap its sample count
    # so the harness stays snappy, then compare per-pattern rates.
    scalar_samples = min(samples, 20_000)
    scalar_s, scalar = _timed(
        sampler.estimate_scalar, 0.6, scalar_samples, np.random.default_rng(7)
    )
    vector_s, vector = _timed(
        sampler.estimate, 0.6, samples, np.random.default_rng(7)
    )
    replay_s, replay = _timed(
        sampler.estimate,
        0.6,
        scalar_samples,
        np.random.default_rng(7),
        scalar_draws=True,
    )
    assert (replay.patterns, replay.misclassified) == (
        scalar.patterns,
        scalar.misclassified,
    ), "compat mode diverged from the scalar reference"
    scalar_rate = scalar.draws / scalar_s
    vector_rate = vector.draws / vector_s
    return {
        "samples": samples,
        "scalar_samples": scalar_samples,
        "scalar_seconds": round(scalar_s, 4),
        "vectorized_seconds": round(vector_s, 4),
        "scalar_draws_per_sec": round(scalar_rate),
        "vectorized_draws_per_sec": round(vector_rate),
        "replay_seconds": round(replay_s, 4),
        "replay_bit_identical": True,
        "speedup": round(vector_rate / scalar_rate, 2),
        "failure_rate": vector.failure_rate,
    }


def bench_linestate(accesses: int) -> dict:
    """Per-access signal latency over a dense fault population."""
    anchors = ((0.5, 0.2), (0.625, 3e-2), (1.0, 1e-9))
    fault_map = FaultMap(
        n_lines=512,
        cell_model=CellFaultModel(anchors=anchors),
        rng=np.random.default_rng(13),
    )
    model = LineErrorModel(fault_map, 0.625, np.random.default_rng(14))
    lines = [line for line in range(512) if fault_map.has_faults(line)]
    for line in lines:
        model.on_fill(line, salt=line)
    position_sets = [sorted(model.error_positions(line)) for line in lines]
    packed_rows = [model._rows[line] for line in lines]

    n = accesses

    def run_scalar():
        for i in range(n):
            model.signals_for_positions(position_sets[i % len(lines)], 16, True)

    def run_packed_row():
        kernel = model.kernel
        for i in range(n):
            kernel.signals_row(packed_rows[i % len(lines)], 16, True)

    def run_memoized():
        for i in range(n):
            model.signals(lines[i % len(lines)], 16, True)

    scalar_s, _ = _timed(run_scalar)
    packed_s, _ = _timed(run_packed_row)
    model._signal_cache.clear()
    memo_s, _ = _timed(run_memoized)
    return {
        "accesses": n,
        "faulty_lines": len(lines),
        "scalar_us_per_access": round(scalar_s / n * 1e6, 2),
        "packed_row_us_per_access": round(packed_s / n * 1e6, 2),
        "memoized_us_per_access": round(memo_s / n * 1e6, 2),
        "speedup_packed": round(scalar_s / packed_s, 2),
        "speedup_memoized": round(scalar_s / memo_s, 2),
    }


def bench_hierarchy(accesses: int) -> dict:
    """Per-access latency of the protected L2 on each tag substrate.

    Replays one deterministic read/write stream (80% loads, working
    set ~4x the cache) through two caches that differ only in their
    ``substrate``, and cross-checks that both ended with the same
    counters — the bench doubles as an equivalence smoke test.
    """
    config = GpuConfig()
    rng = np.random.default_rng(23)
    n_lines = config.l2.n_sets * config.l2.associativity
    addrs = (
        rng.integers(0, 4 * n_lines, size=accesses) * config.l2.line_bytes
    ).tolist()
    stores = (rng.random(accesses) < 0.2).tolist()

    def run(substrate: str):
        cache = WriteThroughCache(
            config.l2, latencies=config.l2_latencies, substrate=substrate
        )
        cycles = 0
        start = time.perf_counter()
        for addr, store in zip(addrs, stores):
            cycles += cache.write(addr) if store else cache.read(addr)
        return time.perf_counter() - start, cache, cycles

    object_s, object_cache, object_cycles = run("object")
    soa_s, soa_cache, soa_cycles = run("soa")
    assert (soa_cycles, soa_cache.stats) == (object_cycles, object_cache.stats), (
        "substrates diverged on the hierarchy stream"
    )
    return {
        "accesses": accesses,
        "object_ns_per_access": round(object_s / accesses * 1e9, 1),
        "soa_ns_per_access": round(soa_s / accesses * 1e9, 1),
        "speedup_soa": round(object_s / soa_s, 2),
        "substrates_bit_identical": True,
    }


def bench_cache_core(accesses: int) -> dict:
    """The unified transaction layer, across policies and substrates.

    Replays one deterministic mixed stream (20% stores, working set
    ~4x the cache) through ``CacheModel.execute`` on the two shipped
    L2 policy presets (write-through / no-write-allocate and
    write-back / write-allocate) on both tag substrates, asserting
    that each preset's two substrates finish with identical cycles,
    counters and memory traffic.  Times the object reference against
    the SoA fast path (best of three, each rep on a cold cache —
    single-shot timing at quick-mode sizes is allocator-warmup noise)
    for the write-through preset (the paper's L2), so the transaction
    layer itself is held to the same --fail-if-slower gate as every
    other fast path.
    """
    config = GpuConfig()
    geometry = config.l2
    rng = np.random.default_rng(53)
    n_lines = geometry.n_sets * geometry.associativity
    addrs = (
        rng.integers(0, 4 * n_lines, size=accesses) * geometry.line_bytes
    ).tolist()
    stores = (rng.random(accesses) < 0.2).tolist()
    txns = [
        AccessTransaction(addr, is_store=store)
        for addr, store in zip(addrs, stores)
    ]

    def run(preset, substrate: str, reps: int = 3):
        best = None
        for _ in range(reps):
            cache = preset(
                geometry, latencies=config.l2_latencies, substrate=substrate
            )
            cycles = 0
            start = time.perf_counter()
            execute = cache.execute
            for txn in txns:
                cycles += execute(txn)
            seconds = time.perf_counter() - start
            best = seconds if best is None else min(best, seconds)
        return best, cache, cycles

    timings = {}
    for preset in (WriteThroughCache, WriteBackCache):
        object_s, object_cache, object_cycles = run(preset, "object")
        soa_s, soa_cache, soa_cycles = run(preset, "soa")
        assert (
            soa_cycles,
            soa_cache.stats,
            soa_cache.memory_reads,
            soa_cache.memory_writes,
        ) == (
            object_cycles,
            object_cache.stats,
            object_cache.memory_reads,
            object_cache.memory_writes,
        ), f"substrates diverged on the {preset.__name__} stream"
        timings[preset] = (object_s, soa_s)

    wt_object_s, wt_soa_s = timings[WriteThroughCache]
    wb_object_s, wb_soa_s = timings[WriteBackCache]
    return {
        "accesses": accesses,
        "object_ns_per_access": round(wt_object_s / accesses * 1e9, 1),
        "soa_ns_per_access": round(wt_soa_s / accesses * 1e9, 1),
        "writeback_soa_ns_per_access": round(wb_soa_s / accesses * 1e9, 1),
        "speedup_soa": round(wt_object_s / wt_soa_s, 2),
        "speedup_soa_writeback": round(wb_object_s / wb_soa_s, 2),
        "substrates_bit_identical": True,
    }


def bench_l2_replay(accesses: int) -> dict:
    """The batched set-replay kernel vs the per-access L2 loop.

    Same deterministic stream (20% stores, working set ~2x the cache)
    through two identical unprotected SoA caches: one access at a time
    via ``read``/``write``, and set-partitioned through
    ``set_replay_profile`` -> ``replay_clean_set`` ->
    ``commit_set_replays`` — the exact sequence the batched engine
    runs per kernel.  Final stats
    and total cycles are cross-checked, so the bench doubles as an
    equivalence smoke test of the kernel itself.

    Uses an eighth-size L2 (256 sets) so per-set batch lengths match
    the regime the engine actually batches in (a whole kernel's
    residue at once), rather than drowning the kernel in per-set call
    overhead at quick-mode sizes.
    """
    config = GpuConfig()
    geometry = CacheGeometry(
        size_bytes=config.l2.size_bytes // 8,
        line_bytes=config.l2.line_bytes,
        associativity=config.l2.associativity,
        banks=config.l2.banks,
    )
    rng = np.random.default_rng(31)
    n_lines = geometry.n_sets * geometry.associativity
    lines = rng.integers(0, 2 * n_lines, size=accesses)
    stores = rng.random(accesses) < 0.2
    addrs = (lines * geometry.line_bytes).tolist()
    stores_list = stores.tolist()
    lines_list = lines.tolist()

    def make_cache():
        return WriteThroughCache(
            geometry, latencies=config.l2_latencies, substrate="soa"
        )

    cache = make_cache()
    start = time.perf_counter()
    cycles = 0
    for addr, store in zip(addrs, stores_list):
        cycles += cache.write(addr) if store else cache.read(addr)
    scalar_s = time.perf_counter() - start

    batched = make_cache()
    start = time.perf_counter()
    set_idx = lines % geometry.n_sets
    order = np.argsort(set_idx, kind="stable")
    uniq, starts = np.unique(set_idx[order], return_index=True)
    bounds = np.append(starts[1:], accesses)
    pending = []
    bulk_hits: dict = {}
    rh_total = wh_total = ev_total = n_writes = 0
    miss_total = 0
    for s, a, b in zip(uniq.tolist(), starts.tolist(), bounds.tolist()):
        info, corrected_ways, guard = batched.set_replay_profile(s)
        way_lines, seed, free_ways = export_set_state(
            batched.tags, batched.lru, s
        )
        resident, touch_order, rh, wh, ev, misses, _ = replay_clean_set(
            seed, free_ways, order[a:b].tolist(), lines_list, stores_list,
            corrected_ways, guard,
        )
        pending.append((s, way_lines, resident, touch_order))
        if rh:
            bulk_hits[info] = bulk_hits.get(info, 0) + rh
        rh_total += rh
        wh_total += wh
        ev_total += ev
        miss_total += len(misses)
        n_writes += b - a - (rh + len(misses))
    batched.commit_set_replays(
        pending,
        (rh_total + miss_total, rh_total, n_writes, wh_total, ev_total),
        miss_total,
        bulk_hits,
    )
    batched_cycles = (
        rh_total * batched._lat_hit
        + miss_total * batched._lat_miss
        + n_writes * batched._lat_tag
    )
    batched_s = time.perf_counter() - start

    assert (batched_cycles, batched.stats) == (cycles, cache.stats), (
        "batched replay diverged from the per-access loop"
    )
    return {
        "accesses": accesses,
        "per_access_ns": round(scalar_s / accesses * 1e9, 1),
        "batched_ns_per_access": round(batched_s / accesses * 1e9, 1),
        "speedup_batched": round(scalar_s / batched_s, 2),
        "replay_bit_identical": True,
    }


def bench_killi_classify(ops: int) -> dict:
    """Table 2 classification dispatch: reference vs cached vs batch.

    A seeded stream of ``ops`` (DFH state, signal triple) rows spanning
    every accessible cell of Table 2, classified three ways: the
    reference per-row dispatch (``classify``, with enum identity
    checks and a fresh ``Classification`` per call), the interned
    table lookup (``classify_cached`` — the per-access engines' hit
    path), and the flat-array window kernel (``classify_batch`` — the
    form the batched engine's cluster interpreter leans on).  Every
    distinct cell in the stream is cross-checked against the reference
    encoding, so the bench doubles as an agreement test of the lookup
    tables.
    """
    rng = np.random.default_rng(43)
    dfh = rng.integers(0, 3, size=ops).astype(np.int8)
    sp = rng.integers(0, 4, size=ops)  # exercises the >=2 clamp
    syn = rng.random(ops) < 0.5
    gp = rng.random(ops) < 0.5
    rows = list(zip(dfh.tolist(), sp.tolist(), syn.tolist(), gp.tolist()))

    def run_reference():
        for d, s, y, g in rows:
            classify(Dfh(d), s, y, g)

    def run_cached():
        for d, s, y, g in rows:
            classify_cached(d, s, y, g)

    reference_s, _ = _timed(run_reference)
    cached_s, _ = _timed(run_cached)
    batch_s, _ = _timed(lambda: classify_batch(dfh, sp, syn, gp))

    action_code = {
        DfhAction.SEND_CLEAN: ACTION_SEND_CLEAN,
        DfhAction.CORRECT_AND_SEND: ACTION_CORRECT_AND_SEND,
        DfhAction.ERROR_MISS: ACTION_ERROR_MISS,
    }
    combos = sorted(set(rows))
    c_nxt, c_act, c_free = classify_batch(
        np.array([c[0] for c in combos], dtype=np.int8),
        np.array([c[1] for c in combos]),
        np.array([c[2] for c in combos]),
        np.array([c[3] for c in combos]),
    )
    for i, (d, s, y, g) in enumerate(combos):
        cls = classify(Dfh(d), s, y, g)
        assert (int(c_nxt[i]), int(c_act[i]), bool(c_free[i])) == (
            int(cls.next_dfh), action_code[cls.action], cls.free_ecc_entry
        ), "classify_batch diverged from the reference dispatch"
        assert classify_cached(d, s, y, g) == cls, (
            "classify_cached diverged from the reference dispatch"
        )

    return {
        "ops": ops,
        "reference_ns_per_op": round(reference_s / ops * 1e9, 1),
        "cached_ns_per_op": round(cached_s / ops * 1e9, 1),
        "batch_ns_per_op": round(batch_s / ops * 1e9, 2),
        "speedup_cached": round(reference_s / cached_s, 2),
        "speedup_batch": round(reference_s / batch_s, 1),
        "kernels_bit_identical": True,
    }


def bench_fig6() -> dict:
    seconds, data = _timed(fig6_coverage)
    return {
        "seconds": round(seconds, 3),
        "voltages": len(data["voltage"]),
        "killi_min_pct": round(min(data["killi"]), 3),
    }


def _fig4_cell(workload, scheme, accesses, engine, substrate):
    """One timed fig4 cell; returns (result dict sans timing, seconds)."""
    spec = CellSpec(
        workload=workload, scheme=scheme, voltage=LV_VOLTAGE, seed=42,
        accesses_per_cu=accesses, engine=engine, substrate=substrate,
    )
    start = time.perf_counter()
    result = run_cell(spec)
    seconds = time.perf_counter() - start
    payload = result.to_dict()
    payload.pop("elapsed_s", None)
    payload.pop("from_cache", None)
    return payload, seconds


def bench_fig4(accesses: int, reps: int = 1) -> dict:
    """End-to-end Figure 4 scheme panel on all three engines.

    Every cell of the (xsbench, fft) x (baseline, dected, flair,
    msecc, killi_1:8) panel runs on scalar, vectorized and batched —
    timed on the SoA substrate (best of ``reps``) and cross-checked
    bit-identical on *both* substrates.  ``seconds`` is the batched
    engine's panel total (the headline number tracked across BENCH
    files).  ``speedup_vectorized`` — the acceptance headline — is the
    batched-vs-scalar speedup as the **geometric mean of per-cell
    ratios** (each cell weighted equally, the standard cross-benchmark
    mean); the total-seconds ratio ``speedup_batched_aggregate`` rides
    along for transparency.

    Killi cells batch through the cluster interpreter (simulated
    against copy-on-write shadows per ECC-contention cluster, committed
    in bulk), so batched must now beat vectorized on *every* Killi
    cell; ``killi_batched_vs_vectorized_min`` and
    ``killi_speedup_batched_min`` record the worst cell and are gated
    by ``--fail-if-slower``.  ``batched_telemetry`` captures the
    engine's guard-abort/fallback counters accumulated over the panel.
    """
    workloads = list(_FIG4_WORKLOADS)
    schemes = list(_FIG4_SCHEMES)
    # Warm the trace memo so the first-timed engine does not pay trace
    # generation on behalf of all of them.
    for workload in workloads:
        trace_for(workload, accesses, GpuConfig().n_cus, 42)
    snap = METRICS.snapshot()
    counters_before = dict(snap.get("counters", snap) or {})
    totals = {"scalar": 0.0, "vectorized": 0.0, "batched": 0.0}
    ratios = []
    per_cell = []
    for workload in workloads:
        for scheme in schemes:
            results = {}
            times = {}
            for engine in ("scalar", "vectorized", "batched"):
                payload, seconds = _fig4_cell(
                    workload, scheme, accesses, engine, "soa"
                )
                for _ in range(reps - 1):
                    seconds = min(
                        seconds,
                        _fig4_cell(workload, scheme, accesses, engine, "soa")[1],
                    )
                results[(engine, "soa")] = payload
                times[engine] = seconds
                totals[engine] += seconds
                results[(engine, "object")] = _fig4_cell(
                    workload, scheme, accesses, engine, "object"
                )[0]
            reference = results[("scalar", "soa")]
            for key, payload in results.items():
                assert payload == reference, (
                    f"engines diverged on {workload}/{scheme}: {key}"
                )
            ratio = times["scalar"] / times["batched"]
            ratios.append(ratio)
            per_cell.append({
                "workload": workload,
                "scheme": scheme,
                "scalar_s": round(times["scalar"], 3),
                "vectorized_s": round(times["vectorized"], 3),
                "batched_s": round(times["batched"], 3),
                "speedup_batched": round(ratio, 2),
                "speedup_vs_vectorized": round(
                    times["vectorized"] / times["batched"], 2
                ),
            })
    geomean = float(np.exp(np.mean(np.log(ratios))))
    killi_cells = [c for c in per_cell if c["scheme"].startswith("killi")]
    snap = METRICS.snapshot()
    counters_after = snap.get("counters", snap) or {}
    batched_telemetry = {
        key: counters_after[key] - counters_before.get(key, 0)
        for key in sorted(counters_after)
        if key.startswith("engine.batched.")
    }
    # Fingerprint of the exact cell set simulated above; ties this
    # BENCH entry to a reproducible unit of work, independent of
    # engine/substrate.
    cells = [
        cell_scenario(
            workload,
            scheme,
            voltage=LV_VOLTAGE,
            seed=42,
            accesses_per_cu=accesses,
        )
        for workload in workloads
        for scheme in schemes
    ]
    return {
        "seconds": round(totals["batched"], 2),
        "scalar_seconds": round(totals["scalar"], 2),
        "vectorized_seconds": round(totals["vectorized"], 2),
        "speedup_vectorized": round(geomean, 2),
        "speedup_batched_aggregate": round(
            totals["scalar"] / totals["batched"], 2
        ),
        "killi_speedup_batched_min": round(
            min(c["speedup_batched"] for c in killi_cells), 2
        ) if killi_cells else None,
        "killi_batched_vs_vectorized_min": round(
            min(c["speedup_vs_vectorized"] for c in killi_cells), 2
        ) if killi_cells else None,
        "batched_telemetry": batched_telemetry,
        "engines_bit_identical": True,
        "engines": ["scalar", "vectorized", "batched"],
        "substrates": ["soa", "object"],
        "workloads": len(workloads),
        "schemes": len(schemes),
        "accesses_per_cu": accesses,
        "per_cell": per_cell,
        "scenario_fingerprint": scenario_fingerprint(cells),
    }


def bench_fuzz_overhead(accesses: int) -> dict:
    """The armed-invariant layer must be free when the flag is off.

    ``REPRO_CHECK_INVARIANTS`` arms per-access structural checks by
    shadowing the bound ``read``/``write`` methods per instance (see
    docs/testing.md); with the flag off the hot path must carry zero
    extra cost.  Three interleaved measurements of one deterministic
    mixed stream on the SoA substrate:

    - *control* — the pristine class-level methods fetched past the
      instance dict: what a build without the invariant machinery
      would execute;
    - *disarmed* — the normal bound-method path with the flag off
      (every production run);
    - *armed* — flag on, wrappers installed.  Capped sample: the
      checks are O(assoc) per access and deliberately not
      performance-gated; the timing is recorded for scale only.

    Asserts the disarmed instance carries no wrapper attributes and
    reports disarmed-vs-control overhead, which ``--fail-if-slower``
    gates below 2% (the ISSUE's no-op bound).
    """
    config = GpuConfig()
    geometry = config.l2
    rng = np.random.default_rng(911)
    n_lines = geometry.n_sets * geometry.associativity
    addrs = (
        rng.integers(0, 4 * n_lines, size=accesses) * geometry.line_bytes
    ).tolist()
    stores = (rng.random(accesses) < 0.2).tolist()
    armed_n = min(accesses, 50_000)

    def build(armed: bool):
        saved = os.environ.pop(INVARIANTS_ENV, None)
        if armed:
            os.environ[INVARIANTS_ENV] = "1"
        try:
            return WriteThroughCache(
                geometry, latencies=config.l2_latencies, substrate="soa"
            )
        finally:
            os.environ.pop(INVARIANTS_ENV, None)
            if saved is not None:
                os.environ[INVARIANTS_ENV] = saved

    stream = list(zip(addrs, stores))

    def run(read, write, lo: int, hi: int) -> float:
        start = time.perf_counter()
        for addr, store in stream[lo:hi]:
            if store:
                write(addr)
            else:
                read(addr)
        return time.perf_counter() - start

    def keep_min(best, seconds):
        return seconds if best is None else min(best, seconds)

    # Both variants drive ONE disarmed cache — control through the
    # pristine class-level bound methods, disarmed through normal
    # attribute resolution — alternating chunk-by-chunk over the
    # stream, with the chunk assignment flipped every rep.  Separate
    # whole-stream loops (or even twin cache instances) pick up
    # several percent of systematic skew from clock drift, CPU-cache
    # warmth and allocation order, which would swamp a 2% gate; the
    # single-cache alternation cancels all three.  Each chunk index
    # is driven by BOTH variants across the reps (the parity flip),
    # so the overhead pairs them exactly: per chunk index, each
    # variant's best-of-reps time (best absorbs GC pauses and
    # scheduler stalls), then the median ratio over all chunk
    # indices — a statistic robust enough for a 2% gate on a noisy
    # shared runner, where a single back-to-back loop pair wanders
    # by +/-5%.  The reported per-access rates are best-of-reps.
    chunk = max(1, accesses // 200)
    control_ns = disarmed_ns = armed_ns = None
    chunk_times = {}
    for rep in range(6):
        cache = build(armed=False)
        assert (
            "read" not in cache.__dict__ and "write" not in cache.__dict__
        ), "disarmed cache has invariant wrappers installed"
        cls = type(cache)
        control_read = cls.read.__get__(cache)
        control_write = cls.write.__get__(cache)
        disarmed_read = cache.read
        disarmed_write = cache.write
        control_total = disarmed_total = 0.0
        control_n = disarmed_n = 0
        for index, lo in enumerate(range(0, accesses, chunk)):
            hi = min(lo + chunk, accesses)
            cell = chunk_times.setdefault(index, {})
            if (index + rep) % 2:
                seconds = run(disarmed_read, disarmed_write, lo, hi)
                disarmed_total += seconds
                disarmed_n += hi - lo
                cell["disarmed"] = keep_min(cell.get("disarmed"), seconds)
            else:
                seconds = run(control_read, control_write, lo, hi)
                control_total += seconds
                control_n += hi - lo
                cell["control"] = keep_min(cell.get("control"), seconds)
        control_ns = keep_min(control_ns, control_total / control_n * 1e9)
        disarmed_ns = keep_min(disarmed_ns, disarmed_total / disarmed_n * 1e9)
        armed_cache = build(armed=True)
        assert (
            "read" in armed_cache.__dict__ and "write" in armed_cache.__dict__
        ), "REPRO_CHECK_INVARIANTS=1 did not arm the wrappers"
        armed_ns = keep_min(
            armed_ns,
            run(armed_cache.read, armed_cache.write, 0, armed_n)
            / armed_n
            * 1e9,
        )
    ratios = sorted(
        cell["disarmed"] / cell["control"]
        for cell in chunk_times.values()
        if "disarmed" in cell and "control" in cell
    )
    mid = len(ratios) // 2
    median_ratio = (
        ratios[mid]
        if len(ratios) % 2
        else (ratios[mid - 1] + ratios[mid]) / 2
    )
    return {
        "accesses": accesses,
        "control_ns_per_access": round(control_ns, 1),
        "disarmed_ns_per_access": round(disarmed_ns, 1),
        "armed_ns_per_access": round(armed_ns, 1),
        "disarmed_overhead_pct": round((median_ratio - 1.0) * 100, 2),
        "armed_slowdown_x": round(armed_ns / control_ns, 2),
        "disarmed_wrappers_absent": True,
    }


_BASELINE_HEADLINE_KEYS = {
    # Per benchmark: the fast-path timing fields compared against the
    # newest committed BENCH file (lower is better).  Scalar-reference
    # timings are deliberately excluded — a slow reference is not a
    # regression.
    "sampler": ("vectorized_seconds",),
    "linestate": ("memoized_us_per_access",),
    "hierarchy": ("soa_ns_per_access",),
    "cache_core": ("soa_ns_per_access",),
    "l2_replay": ("batched_ns_per_access",),
    "killi_classify": ("cached_ns_per_op", "batch_ns_per_op"),
    "fuzz_overhead": ("disarmed_ns_per_access",),
    "fig6": ("seconds",),
    "fig4_slice": ("seconds",),
}


def newest_committed_bench(root: Path = REPO_ROOT) -> Path | None:
    """The highest-numbered ``BENCH_PR<n>.json`` at the repo root."""
    benches = {}
    for path in root.glob("BENCH_PR*.json"):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if match:
            benches[int(match.group(1))] = path
    return benches[max(benches)] if benches else None


def compare_to_baseline(results: dict, baseline: dict, tolerance: float) -> list:
    """Headline timings that regressed past ``tolerance`` x baseline."""
    regressions = []
    for name, keys in _BASELINE_HEADLINE_KEYS.items():
        current = results["benchmarks"].get(name)
        reference = baseline.get("benchmarks", {}).get(name)
        if current is None or reference is None:
            continue
        sizes_match = all(
            current[size_key] == reference[size_key]
            for size_key in (
                "samples",
                "accesses",
                "accesses_per_cu",
                "ops",
                "workloads",
                "schemes",
                "engines",
            )
            if size_key in current and size_key in reference
        )
        if not sizes_match:
            # Quick-mode runs use smaller sizes than the committed
            # full-mode baseline; per-access timings don't transfer.
            continue
        for key in keys:
            if key not in current or key not in reference:
                continue
            if current[key] > reference[key] * tolerance:
                regressions.append(
                    f"{name}.{key} {current[key]} > "
                    f"{tolerance:g}x baseline {reference[key]}"
                )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", help="small sizes, skip end-to-end figures"
    )
    mode.add_argument(
        "--full", action="store_true", help="full sizes incl. fig6 + fig4 slice"
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="write results JSON here"
    )
    parser.add_argument(
        "--fail-if-slower",
        action="store_true",
        help="exit 1 if any fast path is slower than its reference or "
        "regressed vs the newest committed BENCH_PR*.json",
    )
    parser.add_argument(
        "--slower-tolerance",
        type=float,
        default=1.25,
        help="regression factor vs the committed baseline tolerated "
        "before --fail-if-slower trips (absorbs runner timing noise)",
    )
    args = parser.parse_args(argv)
    sizes = _FULL if args.full else _QUICK

    # Telemetry rides along with every bench run: the counters/timers
    # land in the output JSON so a BENCH file also documents cache
    # behaviour and per-engine phase timings.  Guarded observations add
    # a handful of perf_counter calls per kernel — far below the
    # --fail-if-slower tolerance.
    METRICS.enable(propagate_env=False)

    results = {
        "mode": "full" if args.full else "quick",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "benchmarks": {},
    }
    print(f"perf bench ({results['mode']} mode)")

    results["benchmarks"]["sampler"] = sampler = bench_sampler(
        sizes["sampler_samples"]
    )
    print(
        f"  sampler:   {sampler['vectorized_draws_per_sec']:>9,} draws/s vectorized "
        f"vs {sampler['scalar_draws_per_sec']:>7,} scalar  "
        f"({sampler['speedup']:.1f}x)"
    )

    results["benchmarks"]["linestate"] = linestate = bench_linestate(
        sizes["linestate_accesses"]
    )
    print(
        f"  linestate: {linestate['packed_row_us_per_access']:6.2f} us/access packed "
        f"vs {linestate['scalar_us_per_access']:6.2f} scalar  "
        f"({linestate['speedup_packed']:.1f}x, memoized "
        f"{linestate['speedup_memoized']:.1f}x)"
    )

    results["benchmarks"]["hierarchy"] = hierarchy = bench_hierarchy(
        sizes["hierarchy_accesses"]
    )
    print(
        f"  hierarchy: {hierarchy['soa_ns_per_access']:6.1f} ns/access soa "
        f"vs {hierarchy['object_ns_per_access']:6.1f} object  "
        f"({hierarchy['speedup_soa']:.1f}x)"
    )

    results["benchmarks"]["cache_core"] = cache_core = bench_cache_core(
        sizes["cache_core_accesses"]
    )
    print(
        f"  cache_core:{cache_core['soa_ns_per_access']:6.1f} ns/access soa "
        f"vs {cache_core['object_ns_per_access']:6.1f} object  "
        f"({cache_core['speedup_soa']:.1f}x, write-back "
        f"{cache_core['speedup_soa_writeback']:.1f}x)"
    )

    results["benchmarks"]["l2_replay"] = l2_replay = bench_l2_replay(
        sizes["l2_replay_accesses"]
    )
    print(
        f"  l2_replay: {l2_replay['batched_ns_per_access']:6.1f} ns/access batched "
        f"vs {l2_replay['per_access_ns']:6.1f} per-access  "
        f"({l2_replay['speedup_batched']:.1f}x)"
    )

    results["benchmarks"]["killi_classify"] = killi_cls = bench_killi_classify(
        sizes["killi_classify_ops"]
    )
    print(
        f"  killi_cls: {killi_cls['batch_ns_per_op']:6.1f} ns/op batch "
        f"vs {killi_cls['reference_ns_per_op']:6.1f} reference  "
        f"(batch {killi_cls['speedup_batch']:.0f}x, cached "
        f"{killi_cls['speedup_cached']:.1f}x)"
    )

    results["benchmarks"]["fuzz_overhead"] = fuzz_ov = bench_fuzz_overhead(
        sizes["fuzz_overhead_accesses"]
    )
    print(
        f"  fuzz_ovh:  {fuzz_ov['disarmed_ns_per_access']:6.1f} ns/access disarmed "
        f"vs {fuzz_ov['control_ns_per_access']:6.1f} control  "
        f"({fuzz_ov['disarmed_overhead_pct']:+.2f}%, armed "
        f"{fuzz_ov['armed_slowdown_x']:.1f}x)"
    )

    if sizes["fig6"]:
        results["benchmarks"]["fig6"] = fig6 = bench_fig6()
        print(f"  fig6:      {fig6['seconds']:.3f}s end-to-end")
    if sizes["fig4_accesses"]:
        results["benchmarks"]["fig4_slice"] = fig4 = bench_fig4(
            sizes["fig4_accesses"], reps=sizes["fig4_reps"]
        )
        print(
            f"  fig4:      {fig4['seconds']:.2f}s batched "
            f"(scalar {fig4['scalar_seconds']:.2f}s, geomean "
            f"{fig4['speedup_vectorized']:.1f}x, aggregate "
            f"{fig4['speedup_batched_aggregate']:.1f}x, killi vs "
            f"vectorized min {fig4['killi_batched_vs_vectorized_min']}x) "
            f"for {fig4['workloads']}x{fig4['schemes']} cells at "
            f"{fig4['accesses_per_cu']} accesses/CU"
        )

    results["telemetry"] = METRICS.snapshot()

    if args.output:
        args.output.write_text(json.dumps(results, indent=2) + "\n")
        print(f"  wrote {args.output}")

    if args.fail_if_slower:
        slower = []
        if sampler["speedup"] < 1.0:
            slower.append(f"sampler ({sampler['speedup']}x)")
        if linestate["speedup_packed"] < 1.0:
            slower.append(f"linestate ({linestate['speedup_packed']}x)")
        if hierarchy["speedup_soa"] < 1.0:
            slower.append(f"hierarchy ({hierarchy['speedup_soa']}x)")
        if cache_core["speedup_soa"] < 1.0:
            slower.append(f"cache_core ({cache_core['speedup_soa']}x)")
        if l2_replay["speedup_batched"] < 1.0:
            slower.append(f"l2_replay ({l2_replay['speedup_batched']}x)")
        if killi_cls["speedup_cached"] < 1.0:
            slower.append(f"killi_classify cached ({killi_cls['speedup_cached']}x)")
        if killi_cls["speedup_batch"] < 1.0:
            slower.append(f"killi_classify batch ({killi_cls['speedup_batch']}x)")
        if fuzz_ov["disarmed_overhead_pct"] >= 2.0:
            slower.append(
                "invariant layer not a no-op when disarmed "
                f"({fuzz_ov['disarmed_overhead_pct']:+.2f}%)"
            )
        fig4 = results["benchmarks"].get("fig4_slice")
        if fig4 is not None and fig4["speedup_vectorized"] < 1.0:
            slower.append(f"fig4_slice ({fig4['speedup_vectorized']}x)")
        if fig4 is not None and (
            fig4["killi_batched_vs_vectorized_min"] or 1.0
        ) < 1.0:
            slower.append(
                "fig4 killi cell batched slower than vectorized "
                f"({fig4['killi_batched_vs_vectorized_min']}x)"
            )
        if slower:
            print(f"FAIL: fast path slower than reference: {', '.join(slower)}")
            return 1
        baseline_path = newest_committed_bench()
        if baseline_path is not None:
            baseline = json.loads(baseline_path.read_text())
            regressions = compare_to_baseline(
                results, baseline, args.slower_tolerance
            )
            if regressions:
                print(
                    f"FAIL: regressed vs {baseline_path.name}: "
                    + "; ".join(regressions)
                )
                return 1
            print(f"  no regressions vs {baseline_path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
