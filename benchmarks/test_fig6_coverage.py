"""Figure 6: % of lines whose LV fault population is classified
correctly, per technique, across voltage.

Paper shape: all techniques ~100% at/above 0.625 VDD; below that
SECDED, then DECTED, then MS-ECC collapse; only Killi and FLAIR stay
near 100% across the range.  Includes the Section 5.6.2 masked-SDC
probability (paper: 0.003% of lines at 0.625 VDD).
"""

import pytest

from repro.analysis.coverage import CoverageModel
from repro.harness.experiments import fig6_coverage


def test_fig6_series(benchmark):
    data = benchmark.pedantic(fig6_coverage, rounds=3, iterations=1)

    at = {v: i for i, v in enumerate(data["voltage"])}
    i625 = at[0.625]
    for technique in ("secded", "dected", "msecc", "flair", "killi"):
        assert data[technique][i625] > 99.9, technique

    i575 = at[0.575]
    assert data["secded"][i575] < 5.0
    assert data["dected"][i575] < 10.0
    assert data["msecc"][i575] > data["dected"][i575]
    assert data["killi"][i575] > 98.0
    assert data["flair"][i575] > 90.0

    # Only Killi (and FLAIR) stay near 100% across the whole range.
    assert min(data["killi"]) > 97.0

    print("\nFigure 6 (% correctly classified):")
    for i, v in enumerate(data["voltage"]):
        print(
            f"  {v:.4f}: secded={data['secded'][i]:7.3f} dected={data['dected'][i]:7.3f} "
            f"msecc={data['msecc'][i]:7.3f} flair={data['flair'][i]:7.3f} "
            f"killi={data['killi'][i]:7.3f}"
        )


def test_masked_sdc_probability_anchor(benchmark):
    # Section 5.6.2: "for 99.997% of lines ... Killi will protect
    # against such type of fault scenarios".
    model = CoverageModel()
    probability = benchmark.pedantic(
        model.masked_sdc_probability, args=(0.625,), rounds=3, iterations=1
    )
    assert probability == pytest.approx(3e-5, rel=0.3)
    print(f"\nmasked-fault SDC probability @0.625 VDD: {probability:.2e} (paper: 3e-5)")
