"""Table 4: Killi storage with DECTED / TECQED / 6EC7ED in the ECC
cache, normalized to per-line SECDED.

The reproduction matches the paper cell-for-cell (see EXPERIMENTS.md).
"""

import pytest

from repro.harness.experiments import table4_strong_ecc

PAPER_TABLE4 = {
    "dected": {"1:256": 0.51, "1:128": 0.53, "1:64": 0.55, "1:32": 0.61, "1:16": 0.71},
    "tecqed": {"1:256": 0.52, "1:128": 0.54, "1:64": 0.58, "1:32": 0.66, "1:16": 0.82},
    "6ec7ed": {"1:256": 0.53, "1:128": 0.56, "1:64": 0.62, "1:32": 0.74, "1:16": 0.97},
}


def test_table4(benchmark):
    table = benchmark.pedantic(table4_strong_ecc, rounds=5, iterations=1)
    for code, row in PAPER_TABLE4.items():
        for ratio, expected in row.items():
            assert table[code][ratio] == pytest.approx(expected, abs=0.015), (code, ratio)

    # DECTED upgrades are free (reuse of the freed parity bits).
    assert table["dected"] == pytest.approx(
        {k: v for k, v in table["dected"].items()}
    )
    print("\nTable 4 (ours vs paper):")
    for code, row in table.items():
        cells = "  ".join(
            f"{r}={v:.2f}({PAPER_TABLE4[code][r]:.2f})" for r, v in row.items()
        )
        print(f"  {code}: {cells}")
