"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not from the paper's evaluation — these quantify the mechanisms the
paper asserts qualitatively: priority replacement, eviction-time
training, inverted-write training, and the write-back extension.
"""

import os

from repro.harness.ablations import (
    ablate_ecc_ratio,
    ablate_eviction_training,
    ablate_inverted_write_training,
    ablate_priority_replacement,
    ablate_writeback,
)


def _accesses() -> int:
    return int(os.environ.get("KILLI_BENCH_ACCESSES", "6000"))


def test_ablation_eviction_training(benchmark):
    out = benchmark.pedantic(
        ablate_eviction_training,
        kwargs=dict(accesses_per_cu=_accesses()),
        rounds=1, iterations=1,
    )
    # Section 4.4's point: eviction training accelerates DFH warmup.
    assert out["train_on_evict"]["trained_fraction"] >= out["hits_only"]["trained_fraction"]
    print("\neviction-training ablation:")
    for label, summary in out.items():
        print(f"  {label}: trained={summary['trained_fraction']:.3f} "
              f"mpki={summary['mpki']:.2f} errmiss={summary['error_induced_misses']}")


def test_ablation_priority_replacement(benchmark):
    out = benchmark.pedantic(
        ablate_priority_replacement,
        kwargs=dict(accesses_per_cu=_accesses()),
        rounds=1, iterations=1,
    )
    # Both configurations must be functional; the priority policy
    # should not cost misses overall.
    assert out["priority"]["mpki"] <= out["plain_lru"]["mpki"] * 1.10
    print("\npriority-replacement ablation:")
    for label, summary in out.items():
        print(f"  {label}: mpki={summary['mpki']:.2f} "
              f"eccinv={summary['ecc_evict_invalidations']} sdc={summary['sdc_events']}")


def test_ablation_inverted_training(benchmark):
    out = benchmark.pedantic(
        ablate_inverted_write_training,
        kwargs=dict(accesses_per_cu=_accesses()),
        rounds=1, iterations=1,
    )
    # The mitigation never *adds* SDCs; typically it removes them.
    assert out["inverted"]["sdc_events"] <= out["plain"]["sdc_events"]
    print("\ninverted-write-training ablation:")
    for label, summary in out.items():
        print(f"  {label}: sdc={summary['sdc_events']} mpki={summary['mpki']:.2f}")


def test_ablation_ecc_ratio(benchmark):
    out = benchmark.pedantic(
        ablate_ecc_ratio,
        kwargs=dict(accesses_per_cu=_accesses()),
        rounds=1, iterations=1,
    )
    # Larger ECC cache -> fewer contention invalidations.
    assert (
        out["1:16"]["ecc_evict_invalidations"]
        <= out["1:256"]["ecc_evict_invalidations"]
    )
    print("\necc-ratio ablation (fft):")
    for label, summary in out.items():
        print(f"  {label}: mpki={summary['mpki']:.2f} "
              f"eccinv={summary['ecc_evict_invalidations']}")


def test_ablation_parity_interleaving(benchmark):
    from repro.harness.ablations import ablate_parity_interleaving

    out = benchmark.pedantic(
        ablate_parity_interleaving,
        kwargs=dict(accesses=_accesses() * 3),
        rounds=1, iterations=1,
    )
    # Section 4.1's justification: without interleaving, adjacent
    # 2-bit bursts hide inside one segment and become SDCs.
    assert out["interleaved"]["sdc_events"] * 10 < out["contiguous"]["sdc_events"]
    print("\nparity-interleaving ablation (2-bit adjacent bursts):")
    for label, summary in out.items():
        print(f"  {label}: SDC={summary['sdc_events']} detected={summary['detected']}")


def test_vmin_table(benchmark):
    from repro.analysis.vmin import VminAnalyzer

    table = benchmark.pedantic(
        lambda: VminAnalyzer().table(), rounds=1, iterations=1
    )
    # Paper headline: Killi operates at 62.5% of nominal VDD.
    assert abs(table["killi"] - 0.62) < 0.011
    assert table["msecc"] < table["killi"]
    print("\nVmin per scheme (99% capacity + 99% coverage targets):")
    for scheme, vmin in table.items():
        print(f"  {scheme:12s}: {vmin:.3f} x VDD")


def test_ablation_writeback(benchmark):
    out = benchmark.pedantic(
        ablate_writeback,
        kwargs=dict(accesses_per_cu=_accesses()),
        rounds=1, iterations=1,
    )
    # Write-back slashes memory write traffic (that is its point) at
    # the cost of extra ECC-cache pressure for dirty lines.
    assert out["write_back"]["memory_writes"] < out["write_through"]["memory_writes"]
    print("\nwrite-back ablation (lulesh):")
    for label, summary in out.items():
        print(f"  {label}: memwr={summary['memory_writes']} mpki={summary['mpki']:.2f} "
              f"due={summary.get('due_on_dirty', 0)}")
