"""Table 5: storage area across protection schemes.

Checks the paper's headline: Killi cuts the error-protection area by
~50% vs per-line SECDED, while DECTED doubles it and MS-ECC explodes.
"""

import pytest

from repro.analysis.area import killi_area_bits
from repro.harness.experiments import table5_area
from repro.utils.units import bits_to_kib

PAPER_RATIOS = {
    "dected": 1.9,
    "secded": 1.0,
    "killi_1:256": 0.51,
    "killi_1:128": 0.52,
    "killi_1:64": 0.55,
    "killi_1:32": 0.60,
    "killi_1:16": 0.71,
}

PAPER_PERCENTS = {
    "dected": 4.3,
    "msecc": 38.6,
    "secded": 2.3,
    "killi_1:256": 1.2,
    "killi_1:128": 1.23,
    "killi_1:64": 1.29,
    "killi_1:32": 1.42,
    "killi_1:16": 1.67,
}


def test_table5(benchmark):
    table = benchmark.pedantic(table5_area, rounds=5, iterations=1)
    for scheme, expected in PAPER_RATIOS.items():
        assert table[scheme]["ratio"] == pytest.approx(expected, abs=0.08), scheme
    for scheme, expected in PAPER_PERCENTS.items():
        assert table[scheme]["percent"] == pytest.approx(expected, abs=0.2), scheme

    # Headline: "Killi reduces the error protection area overhead by
    # 50% compared to SECDED ECC".
    assert table["killi_1:256"]["ratio"] == pytest.approx(0.51, abs=0.01)

    print("\nTable 5 (ours vs paper):")
    for scheme, row in table.items():
        paper_r = PAPER_RATIOS.get(scheme, float("nan"))
        print(f"  {scheme}: ratio={row['ratio']:.2f} ({paper_r})  %L2={row['percent']:.2f}")


def test_killi_absolute_kb(benchmark):
    # Paper: "the Killi area overhead ranges from 24.6KB (1:256) to
    # 34.25KB (1:16)" for the 2MB L2.
    small = benchmark.pedantic(
        killi_area_bits, args=(32768, 256), rounds=3, iterations=1
    )
    assert bits_to_kib(small) == pytest.approx(24.6, abs=0.1)
    assert bits_to_kib(killi_area_bits(32768, 16)) == pytest.approx(34.25, abs=0.01)


def test_ecc_entry_is_table3s_41_bits(benchmark):
    from repro.analysis.area import killi_ecc_entry_bits

    entry_bits = benchmark.pedantic(
        killi_ecc_entry_bits, args=("secded",), rounds=3, iterations=1
    )
    assert entry_bits == 41
