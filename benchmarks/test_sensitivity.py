"""Calibration sensitivity: is the reproduction's shape robust?

The 0.625xVDD Pcell had to be inferred (see EXPERIMENTS.md, Figure 2
notes).  This bench scales the calibration across 1.5 orders of
magnitude and checks that the qualitative conclusions survive: Killi's
penalty grows with the fault rate but stays bounded, and the 1:16
configuration never does worse than 1:256.
"""

import os

from repro.analysis.sensitivity import pcell_sensitivity


def _accesses() -> int:
    return int(os.environ.get("KILLI_BENCH_ACCESSES", "6000"))


def test_pcell_sensitivity(benchmark):
    out = benchmark.pedantic(
        pcell_sensitivity,
        kwargs=dict(
            multipliers=(0.3, 1.0, 3.0, 10.0),
            ecc_ratios=(256, 16),
            workload="fft",
            accesses_per_cu=min(_accesses(), 8000),
        ),
        rounds=1, iterations=1,
    )

    multipliers = sorted(out)
    # Fault populations scale as expected.
    one_fault = [out[m]["one_fault_lines"] for m in multipliers]
    assert all(one_fault[i] <= one_fault[i + 1] for i in range(len(one_fault) - 1))

    for multiplier in multipliers:
        row = out[multiplier]
        # Shape robustness: bounded overhead, 1:16 <= 1:256 (+noise).
        assert row["killi_1:256"] < 1.2, multiplier
        assert row["killi_1:16"] <= row["killi_1:256"] + 0.01, multiplier

    print("\nPcell calibration sensitivity (fft):")
    for multiplier in multipliers:
        row = out[multiplier]
        print(f"  x{multiplier:<5g} p={row['p_cell']:.1e} "
              f"1-fault={row['one_fault_lines']:.2%} "
              f"multi={row['multi_fault_lines']:.3%} "
              f"killi 1:256={row['killi_1:256']:.4f} 1:16={row['killi_1:16']:.4f}")
