"""Figure 2: % of 64B lines with 0 / 1 / 2+ faults vs voltage.

Checks the paper's anchors: majority of lines fault-free in the
voltage range of interest; >95% of lines with fewer than two faults at
0.625 VDD; the 2+ fraction exploding at lower voltages.  Also
cross-validates the analytic curve against an actual sampled fault map
(the empirical Figure 2).
"""

import pytest

from repro.faults import FaultMap
from repro.harness.experiments import fig2_line_distribution
from repro.utils.rng import RngFactory


def test_fig2_analytic(benchmark):
    data = benchmark.pedantic(fig2_line_distribution, rounds=3, iterations=1)
    by_voltage = {
        v: (z, o, t)
        for v, z, o, t in zip(
            data["voltage"], data["zero"], data["one"], data["two_plus"]
        )
    }
    zero, one, two_plus = by_voltage[0.625]
    assert zero + one > 95.0  # the paper's ">95% fewer than two"
    assert zero > 90.0
    # Lower voltages: the 2+ population explodes (paper: "increases
    # drastically").
    assert by_voltage[0.575][2] > 50.0
    print("\nFigure 2 at 0.625 VDD: zero=%.2f%% one=%.2f%% two+=%.3f%%" % (zero, one, two_plus))


def test_fig2_empirical_matches_analytic(benchmark):
    # Sample a full-size fault map and compare the measured line
    # distribution with the binomial model.
    fault_map = benchmark.pedantic(
        lambda: FaultMap(n_lines=32768, rng=RngFactory(42).stream("fig2")),
        rounds=1, iterations=1,
    )
    histogram = fault_map.fault_count_histogram(0.625, 0, 512)
    n = fault_map.n_lines
    measured_zero = 100.0 * histogram.get(0, 0) / n
    measured_one = 100.0 * histogram.get(1, 0) / n

    data = fig2_line_distribution(voltages=[0.625])
    assert measured_zero == pytest.approx(data["zero"][0], abs=0.5)
    assert measured_one == pytest.approx(data["one"][0], abs=0.5)
