"""Power-state transitions: Killi's no-MBIST advantage, quantified.

The paper's introduction: MBIST at every LV transition "extends boot
time or delays power state transitions".  This bench runs the same
multi-phase workload under Killi (transition = DFH reset, execution
continues) and an MBIST-based scheme (transition = full-array test
stall + cold restart) and compares total cycles.
"""

import os

from repro.harness.transitions import power_transition_experiment


def _accesses() -> int:
    return int(os.environ.get("KILLI_BENCH_ACCESSES", "6000")) // 2


def test_power_transitions(benchmark):
    out = benchmark.pedantic(
        power_transition_experiment,
        kwargs=dict(n_transitions=4, accesses_per_phase=_accesses()),
        rounds=1, iterations=1,
    )
    killi = out["killi"]
    flair = out["flair"]

    # Killi never stalls; the MBIST strategy pays n_transitions full
    # array tests.
    assert killi.stall_cycles == 0
    assert flair.stall_cycles == out["n_transitions"] * 32768 * out[
        "mbist_cycles_per_line"
    ]
    # Net: Killi finishes the same work sooner.
    assert killi.total_cycles < flair.total_cycles
    # Killi's training overhead is far smaller than the MBIST stall.
    training_overhead = killi.execution_cycles - flair.execution_cycles
    assert training_overhead < flair.stall_cycles

    saved = 1 - killi.total_cycles / flair.total_cycles
    print(f"\n4 LV transitions ({out['workload']}): "
          f"killi={killi.total_cycles} flair+mbist={flair.total_cycles} "
          f"(killi saves {saved:.1%})")
