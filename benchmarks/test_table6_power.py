"""Table 6: normalized L2 power at 0.625 VDD / 1GHz.

Uses the measured extra memory traffic from the Figure 4/5 matrix as
the traffic term of the power model.
"""

import pytest

from repro.harness.experiments import table6_power

PAPER_TABLE6 = {
    "dected": 43.7,
    "msecc": 55.3,
    "flair": 42.6,
    "killi_1:256": 40.3,
    "killi_1:128": 40.7,
    "killi_1:64": 41.1,
    "killi_1:32": 41.7,
    "killi_1:16": 42.4,
}


def test_table6(benchmark, perf_matrix):
    table = benchmark.pedantic(
        table6_power, args=(perf_matrix,), rounds=3, iterations=1
    )
    for scheme, expected in PAPER_TABLE6.items():
        assert table[scheme] == pytest.approx(expected, abs=2.5), scheme

    # Ordering: Killi cheapest, MS-ECC most expensive.
    assert table["killi_1:256"] < table["flair"] < table["dected"] < table["msecc"]
    # Abstract headline: ~59.3% L2 power reduction.
    assert 100 - table["killi_1:256"] > 55

    print("\nTable 6 (ours vs paper):")
    for scheme, value in table.items():
        print(f"  {scheme}: {value:.1f}%  (paper {PAPER_TABLE6[scheme]})")
