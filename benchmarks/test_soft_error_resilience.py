"""Soft-error resilience: Killi vs FLAIR's steady state (Section 2.3).

"FLAIR may not be able to detect a multi-bit soft-error on a line with
a LV fault because of its exclusive reliance on SECDED ECC" — this
campaign injects multi-bit-capable soft-error bursts into both schemes
at the same (exaggerated) rate and counts silent data corruptions.
Killi's independent segmented parity converts almost every such event
into a detected refetch; SECDED alone lets a measurable fraction
through as SDCs or miscorrections.
"""

import os

from repro.harness.experiments import soft_error_campaign


def _accesses() -> int:
    return int(os.environ.get("KILLI_BENCH_ACCESSES", "6000")) * 8


def test_soft_error_campaign(benchmark):
    out = benchmark.pedantic(
        soft_error_campaign,
        kwargs=dict(rate_per_access=0.05, accesses=_accesses()),
        rounds=1, iterations=1,
    )
    killi = out["killi"]
    flair = out["flair"]

    # The headline: Killi's SDC count is (much) lower.
    assert killi["sdc"] < flair["sdc"]
    assert killi["sdc"] <= max(1, flair["sdc"] // 10)
    # Killi detects (and refetches) what FLAIR miscorrects or misses.
    assert killi["detected"] > flair["detected"]
    # Both see comparable raw event counts (same injector settings).
    killi_events = killi["sdc"] + killi["detected"] + killi["corrected"]
    flair_events = flair["sdc"] + flair["detected"] + flair["corrected"]
    assert killi_events > 0 and flair_events > 0

    print("\nsoft-error campaign (rate 0.05/access):")
    for label in ("killi", "flair"):
        row = out[label]
        print(f"  {label}: SDC={row['sdc']} detected={row['detected']} "
              f"corrected={row['corrected']}")
