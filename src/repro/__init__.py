"""Killi: runtime fault classification for low-voltage caches without MBIST.

A full reproduction of the HPCA 2019 paper by Ganapathy et al. (AMD
Research).  The package is organised as:

- :mod:`repro.utils` — bit vectors, deterministic RNG streams, tables.
- :mod:`repro.ecc` — parity, SECDED, BCH (DECTED/TECQED/6EC7ED), OLSC.
- :mod:`repro.faults` — 14nm-FinFET-calibrated LV fault model and maps.
- :mod:`repro.cache` — set-associative cache substrate.
- :mod:`repro.gpu` — trace-driven GPU memory-hierarchy timing model.
- :mod:`repro.traces` — synthetic GPGPU workload trace generators.
- :mod:`repro.core` — the Killi mechanism (DFH FSM, ECC cache, controller).
- :mod:`repro.baselines` — SECDED / DECTED / FLAIR / MS-ECC schemes.
- :mod:`repro.analysis` — closed-form coverage, area and power models.
- :mod:`repro.harness` — experiment runners for every paper table/figure.
"""

__version__ = "1.0.0"


def __getattr__(name):
    """Convenience re-exports of the headline API.

    Lazy so that ``import repro`` stays cheap; the canonical homes are
    the subpackages.
    """
    from importlib import import_module

    homes = {
        "KilliScheme": "repro.core",
        "KilliConfig": "repro.core",
        "FaultMap": "repro.faults",
        "CellFaultModel": "repro.faults",
        "CacheGeometry": "repro.cache",
        "WriteThroughCache": "repro.cache",
        "GpuSimulator": "repro.gpu",
        "GpuConfig": "repro.gpu",
    }
    if name in homes:
        return getattr(import_module(homes[name]), name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
