"""Batched L1 pre-filter.

An L1 is private to its CU, unprotected (nominal voltage) and fully
deterministic: its state after access *k* depends only on its own
stream's first *k* accesses.  So instead of interleaving L1 calls with
L2 calls access by access, the engine runs each CU's entire L1 stream
through one tight pass here and keeps only the *L2-bound residue* —
stores (write-through) and read misses — typically a small fraction of
the stream.

The pass works on the canonical filter state exported by
:meth:`repro.gpu.hierarchy.SimpleL1.export_filter_state` (per-slot
line numbers and distinct integer ages), so it is substrate-agnostic
and bit-identical to the per-access path: same LRU victim (unique
minimum age), same hit/miss stream, same ``CacheStats`` counters.

The pass is a pure function of (initial L1 state, stream).  Campaign
cells share streams (trace memoization) but always start from a
*virgin* L1, so :func:`run_l1_stream_memo` caches the residue mask,
the stat deltas and the final filter state on the stream itself and
replays them for every later cell — the filter then costs one state
import instead of one Python iteration per access.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import METRICS

__all__ = ["run_l1_stream", "run_l1_stream_memo", "l1_is_virgin"]

_STAT_FIELDS = (
    "reads",
    "read_hits",
    "read_misses",
    "evictions",
    "fills",
    "writes",
    "write_hits",
    "write_misses",
)

# Virgin LRU patterns per (n_sets, associativity) — what a fresh SoA
# substrate holds before any touch.
_VIRGIN_LRU: dict = {}


def run_l1_stream(l1, addrs, is_store, line_nos=None):
    """Run one CU's whole access stream through its L1.

    Parameters
    ----------
    l1:
        The CU's :class:`~repro.gpu.hierarchy.SimpleL1`; its tag/LRU
        state and stats are advanced exactly as per-access calls would.
    addrs / is_store:
        The stream as aligned Python lists.
    line_nos:
        Optional pre-divided line numbers (``addr // line_bytes``),
        aligned with ``addrs``; the caller can derive them in one
        vectorized pass.

    Returns
    -------
    list[bool]
        ``l2_bound[i]`` — True where access *i* continues to the L2
        (every store, plus every read miss).
    """
    geometry = l1.geometry
    n_sets = geometry.n_sets
    assoc = geometry.associativity
    line_bytes = geometry.line_bytes
    index, slot_line, age, clock = l1.export_filter_state()
    index_get = index.get

    if line_nos is None:
        line_nos = [addr // line_bytes for addr in addrs]
    l2_bound = []
    append = l2_bound.append
    reads = read_hits = evictions = fills = 0
    writes = write_hits = 0

    for line_no, store in zip(line_nos, is_store):
        way = index_get(line_no)
        if store:
            writes += 1
            if way is not None:
                write_hits += 1
                set_index = line_no % n_sets
                age[set_index * assoc + way] = clock[set_index]
                clock[set_index] += 1
            append(True)
        else:
            reads += 1
            set_index = line_no % n_sets
            base = set_index * assoc
            if way is not None:
                read_hits += 1
                age[base + way] = clock[set_index]
                append(False)
            else:
                # Miss: evict the unique minimum-age (LRU) way, fill.
                row = age[base : base + assoc]
                victim = row.index(min(row))
                old = slot_line[base + victim]
                if old >= 0:
                    evictions += 1
                    del index[old]
                slot_line[base + victim] = line_no
                index[line_no] = victim
                fills += 1
                age[base + victim] = clock[set_index]
                append(True)
            clock[set_index] += 1

    l1.import_filter_state((index, slot_line, age, clock))
    stats = l1.stats
    stats.reads += reads
    stats.read_hits += read_hits
    stats.read_misses += reads - read_hits
    stats.evictions += evictions
    stats.fills += fills
    stats.writes += writes
    stats.write_hits += write_hits
    stats.write_misses += writes - write_hits
    # Memory-traffic counters, matching the per-access path exactly:
    # the write-through L1 posts every store (memory_writes) and every
    # read miss fetches (memory_reads) — the differential oracle diffs
    # these along with the stats.
    l1.memory_reads += reads - read_hits
    l1.memory_writes += writes
    return l2_bound


def l1_is_virgin(l1) -> bool:
    """True when ``l1`` provably holds its post-construction state.

    Conservative: any counted access, any valid line, or any LRU state
    off the initial pattern returns False and the caller re-simulates.
    """
    stats = l1.stats
    if stats.reads or stats.writes or stats.fills or stats.evictions:
        return False
    if getattr(l1.tags, "_n_valid", None) != 0:
        return False
    geometry = l1.geometry
    n_sets, assoc = geometry.n_sets, geometry.associativity
    if l1.substrate == "soa":
        key = (n_sets, assoc)
        pattern = _VIRGIN_LRU.get(key)
        if pattern is None:
            pattern = (list(range(0, -assoc, -1)) * n_sets, [1] * n_sets)
            _VIRGIN_LRU[key] = pattern
        return l1.lru.age == pattern[0] and l1.lru._clock == pattern[1]
    order0 = list(range(assoc))
    return all(list(row) == order0 for row in l1.lru._order)


def run_l1_stream_memo(l1, stream, addrs, is_store, line_nos=None):
    """:func:`run_l1_stream`, memoized on the stream for virgin L1s.

    Returns the L2-bound positions as an int64 numpy array (the
    ``flatnonzero`` of ``run_l1_stream``'s mask).  When ``l1`` is
    virgin and the stream has already been filtered through an
    identically-shaped virgin L1, the cached residue positions, stat
    deltas and final filter state are replayed instead — pure-function
    reuse, bit-identical by construction.  Non-virgin L1s (mid-sequence
    kernels, hand-mutated caches) always take the simulation path.
    """
    geometry = l1.geometry
    geo_key = (geometry.n_sets, geometry.associativity, geometry.line_bytes)
    virgin = l1_is_virgin(l1)
    cached = stream._l1_filter_cache
    if virgin and cached is not None and cached[0] == geo_key:
        _, keep, stat_deltas, (index, slot_line, age, clock) = cached
        l1.import_filter_state((dict(index), slot_line, age, clock))
        stats = l1.stats
        for name, delta in zip(_STAT_FIELDS, stat_deltas):
            setattr(stats, name, getattr(stats, name) + delta)
        # Memory traffic is derivable from the stat deltas under the
        # L1's write-through / no-write-allocate protocol: one posted
        # write per store, one fetch per read miss.
        l1.memory_reads += stat_deltas[_STAT_FIELDS.index("read_misses")]
        l1.memory_writes += stat_deltas[_STAT_FIELDS.index("writes")]
        METRICS.incr("l1filter.memo_hits")
        return keep
    l2_bound = run_l1_stream(l1, addrs, is_store, line_nos)
    keep = np.flatnonzero(np.asarray(l2_bound, dtype=bool))
    if virgin:
        stats = l1.stats
        stat_deltas = tuple(getattr(stats, name) for name in _STAT_FIELDS)
        index, slot_line, age, clock = l1.export_filter_state()
        stream._l1_filter_cache = (
            geo_key,
            keep,
            stat_deltas,
            (index, slot_line, age, clock),
        )
        METRICS.incr("l1filter.memo_misses")
    return keep
