"""Batched L1 pre-filter.

An L1 is private to its CU, unprotected (nominal voltage) and fully
deterministic: its state after access *k* depends only on its own
stream's first *k* accesses.  So instead of interleaving L1 calls with
L2 calls access by access, the engine runs each CU's entire L1 stream
through one tight pass here and keeps only the *L2-bound residue* —
stores (write-through) and read misses — typically a small fraction of
the stream.

The pass works on the canonical filter state exported by
:meth:`repro.gpu.hierarchy.SimpleL1.export_filter_state` (per-slot
line numbers and distinct integer ages), so it is substrate-agnostic
and bit-identical to the per-access path: same LRU victim (unique
minimum age), same hit/miss stream, same ``CacheStats`` counters.
"""

from __future__ import annotations

__all__ = ["run_l1_stream"]


def run_l1_stream(l1, addrs, is_store, line_nos=None):
    """Run one CU's whole access stream through its L1.

    Parameters
    ----------
    l1:
        The CU's :class:`~repro.gpu.hierarchy.SimpleL1`; its tag/LRU
        state and stats are advanced exactly as per-access calls would.
    addrs / is_store:
        The stream as aligned Python lists.
    line_nos:
        Optional pre-divided line numbers (``addr // line_bytes``),
        aligned with ``addrs``; the caller can derive them in one
        vectorized pass.

    Returns
    -------
    list[bool]
        ``l2_bound[i]`` — True where access *i* continues to the L2
        (every store, plus every read miss).
    """
    geometry = l1.geometry
    n_sets = geometry.n_sets
    assoc = geometry.associativity
    line_bytes = geometry.line_bytes
    index, slot_line, age, clock = l1.export_filter_state()
    index_get = index.get

    if line_nos is None:
        line_nos = [addr // line_bytes for addr in addrs]
    l2_bound = []
    append = l2_bound.append
    reads = read_hits = evictions = fills = 0
    writes = write_hits = 0

    for line_no, store in zip(line_nos, is_store):
        way = index_get(line_no)
        if store:
            writes += 1
            if way is not None:
                write_hits += 1
                set_index = line_no % n_sets
                age[set_index * assoc + way] = clock[set_index]
                clock[set_index] += 1
            append(True)
        else:
            reads += 1
            set_index = line_no % n_sets
            base = set_index * assoc
            if way is not None:
                read_hits += 1
                age[base + way] = clock[set_index]
                append(False)
            else:
                # Miss: evict the unique minimum-age (LRU) way, fill.
                row = age[base : base + assoc]
                victim = row.index(min(row))
                old = slot_line[base + victim]
                if old >= 0:
                    evictions += 1
                    del index[old]
                slot_line[base + victim] = line_no
                index[line_no] = victim
                fills += 1
                age[base + victim] = clock[set_index]
                append(True)
            clock[set_index] += 1

    l1.import_filter_state((index, slot_line, age, clock))
    stats = l1.stats
    stats.reads += reads
    stats.read_hits += read_hits
    stats.read_misses += reads - read_hits
    stats.evictions += evictions
    stats.fills += fills
    stats.writes += writes
    stats.write_hits += write_hits
    stats.write_misses += writes - write_hits
    return l2_bound
