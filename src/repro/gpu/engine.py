"""The trace-driven simulation engine.

Each CU executes its stream in order: ``gap`` compute cycles, then one
memory access whose latency comes from the hierarchy (L1 hit, or L1
miss + L2 access, where the L2 access may itself be a hit, a corrected
hit, an error-induced miss + refetch, or a plain miss).  CU streams
are interleaved round-robin so the shared L2 sees realistically mixed
traffic.  The kernel's execution time is the slowest CU's cycle count
— the metric normalised in the paper's Figure 4 — and L2 MPKI over
total instructions is Figure 5's metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.protection import ProtectionScheme
from repro.cache.stats import CacheStats
from repro.cache.wtcache import WriteThroughCache
from repro.gpu.config import GpuConfig
from repro.gpu.hierarchy import SimpleL1
from repro.traces.base import Trace

__all__ = ["KernelResult", "GpuSimulator"]


@dataclass
class KernelResult:
    """Outcome of simulating one kernel (one trace)."""

    workload: str
    cycles: int
    """Kernel execution time: the slowest CU's cycle count."""

    instructions: int
    """Total instructions across CUs (compute gaps + memory ops)."""

    l2_stats: CacheStats
    l1_stats: list = field(default_factory=list)
    per_cu_cycles: list = field(default_factory=list)

    @property
    def l2_mpki(self) -> float:
        """L2 misses per kilo-instruction (paper Figure 5)."""
        return self.l2_stats.mpki(self.instructions)

    @property
    def ipc(self) -> float:
        """Aggregate instructions per (kernel) cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0


class GpuSimulator:
    """8-CU GPU with private L1s and a shared protected L2.

    Parameters
    ----------
    config:
        GPU shape and latencies (Table 3 defaults).
    l2_scheme:
        Protection scheme for the L2 (Killi, a baseline, or the
        fault-free :class:`~repro.cache.UnprotectedScheme`).
    """

    def __init__(self, config: GpuConfig | None = None, l2_scheme: ProtectionScheme | None = None):
        self.config = config if config is not None else GpuConfig()
        self.l2 = WriteThroughCache(
            self.config.l2, l2_scheme, self.config.l2_latencies
        )
        self.l1s = [
            SimpleL1(self.config.l1_geometry()) for _ in range(self.config.n_cus)
        ]

    @staticmethod
    def _bank_delay(bank_usage: dict, bank: int, penalty: int) -> int:
        """Queueing delay for the n-th same-bank access in a round."""
        queued = bank_usage.get(bank, 0)
        bank_usage[bank] = queued + 1
        return queued * penalty

    def run(self, trace: Trace) -> KernelResult:
        """Simulate one kernel and return its metrics."""
        n_cus = self.config.n_cus
        if len(trace.streams) != n_cus:
            raise ValueError(
                f"trace has {len(trace.streams)} CU streams, GPU has {n_cus}"
            )
        l1_hit_latency = self.config.l1_hit_latency
        l2 = self.l2
        cycles = [0] * n_cus
        streams = []
        for stream in trace.streams:
            streams.append(
                (
                    [int(a) for a in stream.addrs],
                    [bool(s) for s in stream.is_store],
                    [int(g) for g in stream.gaps],
                )
            )
        lengths = [len(s[0]) for s in streams]
        position = [0] * n_cus
        remaining = sum(lengths)
        l1s = self.l1s
        model_banks = self.config.model_bank_conflicts
        bank_penalty = self.config.bank_conflict_penalty
        geometry = self.config.l2

        while remaining:
            bank_usage: dict = {} if model_banks else None
            for cu in range(n_cus):
                i = position[cu]
                if i >= lengths[cu]:
                    continue
                addrs, stores, gaps = streams[cu]
                addr = addrs[i]
                cycles[cu] += gaps[i]
                if stores[i]:
                    l1s[cu].write(addr)
                    if model_banks:
                        cycles[cu] += self._bank_delay(
                            bank_usage, geometry.bank_of(addr), bank_penalty
                        )
                    cycles[cu] += l2.write(addr)
                else:
                    if l1s[cu].read(addr):
                        cycles[cu] += l1_hit_latency
                    else:
                        if model_banks:
                            cycles[cu] += self._bank_delay(
                                bank_usage, geometry.bank_of(addr), bank_penalty
                            )
                        cycles[cu] += l1_hit_latency + l2.read(addr)
                position[cu] = i + 1
                remaining -= 1

        return KernelResult(
            workload=trace.name,
            cycles=max(cycles) if cycles else 0,
            instructions=trace.instructions,
            l2_stats=l2.stats,
            l1_stats=[l1.stats for l1 in l1s],
            per_cu_cycles=list(cycles),
        )

    def run_kernels(self, traces) -> list:
        """Run a sequence of kernels back to back.

        Cache contents, statistics and — crucially — Killi's DFH
        training state persist across kernels: "the process of
        training the DFH bits happens once per reset cycle and not on
        context switches" (paper footnote 6).  Each returned
        :class:`KernelResult` carries the *cumulative* L2 stats (they
        are one shared object); per-kernel cycle counts are the
        difference of interest, and the paper's metric is their sum.
        """
        return [self.run(trace) for trace in traces]
