"""The trace-driven simulation engine.

Each CU executes its stream in order: ``gap`` compute cycles, then one
memory access whose latency comes from the hierarchy (L1 hit, or L1
miss + L2 access, where the L2 access may itself be a hit, a corrected
hit, an error-induced miss + refetch, or a plain miss).  CU streams
are interleaved round-robin so the shared L2 sees realistically mixed
traffic.  The kernel's execution time is the slowest CU's cycle count
— the metric normalised in the paper's Figure 4 — and L2 MPKI over
total instructions is Figure 5's metric.

Three interchangeable inner loops implement the model:

- ``engine="vectorized"`` (default): the round-robin interleave and
  per-CU gap totals are computed once with numpy, leaving a single
  flat pass over the merged access sequence.
- ``engine="batched"``: additionally partitions the L2-bound residue
  by L2 set and replays every *scheme-inert* set through the batched
  set kernel (:func:`~repro.cache.soa.replay_clean_set`) — no
  per-access Python call at all; sets with scheme-relevant lines
  (faulty, disabled, ECC-cache-resident, DFH-transitioning) fall back
  to the exact per-access path in original global order.  Bank
  conflicts and the stats deltas are applied in bulk.
- ``engine="scalar"``: the original per-round Python loop, kept as
  the reference implementation.

All engines produce bit-identical results — cycles, per-CU cycles and
every :class:`~repro.cache.stats.CacheStats` counter — which the test
suite pins across workloads and schemes.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cache.core import WriteThroughCache
from repro.cache.hooks import ProtectionScheme, batched_surface
from repro.cache.soa import export_set_state, replay_clean_set, resolve_substrate
from repro.cache.stats import CacheStats
from repro.gpu.config import GpuConfig
from repro.gpu.hierarchy import SimpleL1
from repro.gpu.l1filter import run_l1_stream_memo
from repro.metrics import METRICS
from repro.scenario.registries import ENGINE_REGISTRY
from repro.traces.base import Trace

__all__ = ["ENGINES", "KernelResult", "GpuSimulator"]

#: The built-in inner-loop implementations (registry may hold more).
ENGINES = ("vectorized", "scalar", "batched")


def _resolve_engine(engine: str):
    """The registered inner loop for ``engine`` (``(sim, trace) -> cycles``).

    Engines are an open axis: built-ins register at the bottom of this
    module, third-party loops via ``ENGINE_REGISTRY.register``.  The
    historical ``ValueError`` is preserved for unknown names.
    """
    try:
        return ENGINE_REGISTRY.resolve(engine)
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {tuple(ENGINE_REGISTRY.names())}"
        ) from None


@dataclass
class KernelResult:
    """Outcome of simulating one kernel (one trace).

    ``l2_stats`` / ``l1_stats`` are *per-kernel* snapshots: the deltas
    accumulated while this kernel ran.  They are plain copies — later
    kernels on the same simulator never mutate them.  The running
    totals (cache state persists across kernels) are available as
    ``l2_stats_cumulative`` / ``l1_stats_cumulative``.
    """

    workload: str
    cycles: int
    """Kernel execution time: the slowest CU's cycle count."""

    instructions: int
    """Total instructions across CUs (compute gaps + memory ops)."""

    l2_stats: CacheStats
    l1_stats: list = field(default_factory=list)
    per_cu_cycles: list = field(default_factory=list)
    l2_stats_cumulative: CacheStats | None = None
    l1_stats_cumulative: list = field(default_factory=list)

    @property
    def l2_mpki(self) -> float:
        """L2 misses per kilo-instruction (paper Figure 5)."""
        return self.l2_stats.mpki(self.instructions)

    @property
    def ipc(self) -> float:
        """Aggregate instructions per (kernel) cycle."""
        return self.instructions / self.cycles if self.cycles > 0 else 0.0


def _scheme_observables(scheme) -> dict:
    """Scheme-side state visible to the harness, duck-typed.

    Every field the journal / :class:`~repro.harness.runner.CellResult`
    can surface for a scheme is captured when present: the bulk tiers
    must leave all of them bit-identical to the scalar reference.
    ``transitions``'s tuple keys are flattened to ``"old->new"``
    strings so the snapshot stays canonically JSON-serialisable.
    """
    out: dict = {"type": type(scheme).__name__}
    if hasattr(scheme, "dfh"):
        out["dfh"] = [int(v) for v in scheme.dfh]
    if hasattr(scheme, "dfh_histogram"):
        out["dfh_histogram"] = scheme.dfh_histogram()
    if hasattr(scheme, "transitions"):
        out["transitions"] = {
            f"{old}->{new}": int(count)
            for (old, new), count in scheme.transitions.items()
        }
    if hasattr(scheme, "disabled_fraction"):
        out["disabled_fraction"] = scheme.disabled_fraction()
    for name in ("sdc_events", "hits_served"):
        if hasattr(scheme, name):
            out[name] = int(getattr(scheme, name))
    ecc = getattr(scheme, "ecc", None)
    if ecc is not None:
        out["ecc"] = {
            "accesses": int(ecc.accesses),
            "allocations": int(ecc.allocations),
            "evictions": int(ecc.evictions),
            "occupancy": int(ecc.occupancy),
        }
    errors = getattr(scheme, "errors", None)
    rng = getattr(errors, "rng", None)
    if rng is not None:
        # The stream *position*: equal final states across engines
        # imply equal draw counts — the cheap global form of the
        # RNG-conservation invariant.
        out["rng_state"] = repr(rng.bit_generator.state)
    return out


class GpuSimulator:
    """8-CU GPU with private L1s and a shared protected L2.

    Parameters
    ----------
    config:
        GPU shape and latencies (Table 3 defaults).
    l2_scheme:
        Protection scheme for the L2 (Killi, a baseline, or the
        fault-free :class:`~repro.cache.UnprotectedScheme`).
    engine:
        Default inner loop: ``"vectorized"`` (numpy-flattened fast
        path) or ``"scalar"`` (reference implementation).
    substrate:
        Tag/LRU backing for both cache levels: ``"soa"`` (flat numpy
        arrays, fast) or ``"object"`` (per-line objects, the pinned
        reference); None = session default.  Orthogonal to ``engine``
        — all four combinations are bit-identical.
    """

    def __init__(
        self,
        config: GpuConfig | None = None,
        l2_scheme: ProtectionScheme | None = None,
        engine: str = "vectorized",
        substrate: str | None = None,
    ):
        _resolve_engine(engine)
        self.config = config if config is not None else GpuConfig()
        self.engine = engine
        self.substrate = resolve_substrate(substrate)
        self.l2 = WriteThroughCache(
            self.config.l2,
            l2_scheme,
            self.config.l2_latencies,
            substrate=self.substrate,
        )
        self.l1s = [
            SimpleL1(self.config.l1_geometry(), substrate=self.substrate)
            for _ in range(self.config.n_cus)
        ]

    # -- canonical observable state ----------------------------------------

    def state_snapshot(self) -> dict:
        """Canonical observable state of the whole simulator.

        Combines the L2 and per-CU L1 transaction-layer snapshots
        (:meth:`~repro.cache.core.CacheModel.state_snapshot`) with the
        scheme-side observables the harness reports — DFH state,
        transition counts, ECC-cache counters, SDC events and the
        shared RNG stream position.  This is the state the
        differential executor (:mod:`repro.testing.differential`)
        diffs across engine × substrate combinations; the engine and
        substrate names themselves are deliberately excluded.
        """
        return {
            "l2": self.l2.state_snapshot(),
            "l1s": [l1.state_snapshot() for l1 in self.l1s],
            "scheme": _scheme_observables(self.l2.scheme),
        }

    def state_digest(self) -> str:
        """SHA-256 over the canonical JSON form of :meth:`state_snapshot`."""
        blob = json.dumps(self.state_snapshot(), sort_keys=True, default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @staticmethod
    def _bank_delay(bank_usage: dict, bank: int, penalty: int) -> int:
        """Queueing delay for the n-th same-bank access in a round."""
        queued = bank_usage.get(bank, 0)
        bank_usage[bank] = queued + 1
        return queued * penalty

    def run(self, trace: Trace, engine: str | None = None) -> KernelResult:
        """Simulate one kernel and return its metrics.

        ``engine`` overrides the simulator's default inner loop for
        this kernel only; both loops are bit-equivalent.
        """
        engine = engine if engine is not None else self.engine
        inner_loop = _resolve_engine(engine)
        if len(trace.streams) != self.config.n_cus:
            raise ValueError(
                f"trace has {len(trace.streams)} CU streams, "
                f"GPU has {self.config.n_cus}"
            )
        l2_before = self.l2.stats.copy()
        l1_before = [l1.stats.copy() for l1 in self.l1s]

        telemetry = METRICS.enabled
        if telemetry:
            kernel_started = time.perf_counter()
        cycles = inner_loop(self, trace)
        if telemetry:
            METRICS.observe(
                f"engine.{engine}.kernel", time.perf_counter() - kernel_started
            )
            METRICS.incr("engine.kernels")

        l2_after = self.l2.stats.copy()
        l1_after = [l1.stats.copy() for l1 in self.l1s]
        return KernelResult(
            workload=trace.name,
            cycles=max(cycles) if cycles else 0,
            instructions=trace.instructions,
            l2_stats=l2_after.delta(l2_before),
            l1_stats=[a.delta(b) for a, b in zip(l1_after, l1_before)],
            per_cu_cycles=list(cycles),
            l2_stats_cumulative=l2_after,
            l1_stats_cumulative=l1_after,
        )

    # -- scalar reference loop ---------------------------------------------

    def _run_scalar(self, trace: Trace) -> list:
        """Original per-round loop; the reference implementation."""
        n_cus = self.config.n_cus
        l1_hit_latency = self.config.l1_hit_latency
        l2 = self.l2
        cycles = [0] * n_cus
        # Normalised once on the stream and cached there (identical
        # values to the per-run [int(a) for a in ...] this loop used to
        # rebuild).
        streams = [stream.scalar_columns() for stream in trace.streams]
        lengths = [len(s[0]) for s in streams]
        position = [0] * n_cus
        remaining = sum(lengths)
        l1s = self.l1s
        model_banks = self.config.model_bank_conflicts
        bank_penalty = self.config.bank_conflict_penalty
        geometry = self.config.l2

        while remaining:
            bank_usage: dict = {} if model_banks else None
            for cu in range(n_cus):
                i = position[cu]
                if i >= lengths[cu]:
                    continue
                addrs, stores, gaps = streams[cu]
                addr = addrs[i]
                cycles[cu] += gaps[i]
                if stores[i]:
                    l1s[cu].write(addr)
                    if model_banks:
                        cycles[cu] += self._bank_delay(
                            bank_usage, geometry.bank_of(addr), bank_penalty
                        )
                    cycles[cu] += l2.write(addr)
                else:
                    if l1s[cu].read(addr):
                        cycles[cu] += l1_hit_latency
                    else:
                        if model_banks:
                            cycles[cu] += self._bank_delay(
                                bank_usage, geometry.bank_of(addr), bank_penalty
                            )
                        cycles[cu] += l1_hit_latency + l2.read(addr)
                position[cu] = i + 1
                remaining -= 1
        return cycles

    # -- vectorized fast path ----------------------------------------------

    def _flatten_round_robin(self, trace: Trace):
        """Merge CU streams into one round-robin-ordered flat sequence.

        Returns ``(addrs, stores, cus, rounds, gap_totals)`` where the
        first four are aligned Python lists in exactly the order the
        scalar loop visits accesses (round-major, CU-minor), and
        ``gap_totals[cu]`` is that CU's summed compute-gap cycles.
        """
        addr_parts, store_parts, pos_parts, cu_parts, gap_totals = [], [], [], [], []
        for cu, stream in enumerate(trace.streams):
            n = len(stream.addrs)
            addr_parts.append(np.asarray(stream.addrs, dtype=np.int64))
            store_parts.append(np.asarray(stream.is_store, dtype=bool))
            pos_parts.append(np.arange(n, dtype=np.int64))
            cu_parts.append(np.full(n, cu, dtype=np.int64))
            gap_totals.append(int(np.sum(np.asarray(stream.gaps, dtype=np.int64))))
        if not addr_parts or sum(len(p) for p in addr_parts) == 0:
            return [], [], [], [], gap_totals
        addrs = np.concatenate(addr_parts)
        stores = np.concatenate(store_parts)
        pos = np.concatenate(pos_parts)
        cus = np.concatenate(cu_parts)
        # Round-major, CU-minor: the scalar loop's visit order.
        order = np.lexsort((cus, pos))
        return (
            addrs[order].tolist(),
            stores[order].tolist(),
            cus[order].tolist(),
            pos[order].tolist(),
            gap_totals,
        )

    def _l1_filter_residue(self, trace: Trace):
        """Stage 1, shared by the vectorized and batched engines.

        Simulates each CU's entire (private, deterministic) L1 stream
        in one pass (:func:`~repro.gpu.l1filter.run_l1_stream`), which
        also yields the CU's base latency in closed form: summed
        compute gaps plus ``l1_hit_latency`` per load (every load pays
        it, hit or miss).  Returns ``(base, residue)`` where ``base``
        is the per-CU base latency and ``residue`` is None (no L2-bound
        access) or the merged L2-bound stream — stores and L1 read
        misses — as aligned int64/bool arrays ``(addrs, stores, cus,
        rounds)`` sorted round-major/CU-minor, i.e. in exactly the
        order the scalar loop reaches the L2.
        """
        l1_hit_latency = self.config.l1_hit_latency
        addr_parts, store_parts, pos_parts, cu_parts = [], [], [], []
        base = []
        for cu, stream in enumerate(trace.streams):
            addr_np, store_np, gap_total = stream.array_columns()
            addrs, stores, _ = stream.scalar_columns()
            line_nos = (
                addr_np // self.l1s[cu].geometry.line_bytes
            ).tolist()
            keep = run_l1_stream_memo(
                self.l1s[cu], stream, addrs, stores, line_nos
            )
            n_loads = len(stores) - int(np.count_nonzero(store_np))
            base.append(gap_total + l1_hit_latency * n_loads)
            addr_parts.append(addr_np[keep])
            store_parts.append(store_np[keep])
            pos_parts.append(keep.astype(np.int64))
            cu_parts.append(np.full(len(keep), cu, dtype=np.int64))
        if not addr_parts or not sum(len(p) for p in addr_parts):
            return base, None
        addrs_arr = np.concatenate(addr_parts)
        stores_arr = np.concatenate(store_parts)
        pos = np.concatenate(pos_parts)
        cus = np.concatenate(cu_parts)
        # Round-major, CU-minor: the scalar loop's visit order.
        order = np.lexsort((cus, pos))
        return base, (addrs_arr[order], stores_arr[order], cus[order], pos[order])

    def _run_vectorized(self, trace: Trace) -> list:
        """Batched L1 pre-filter + flat residue loop over the L2.

        Stage 1 is :meth:`_l1_filter_residue`.  Stage 2 replays the
        L2-bound residue in the scalar loop's visit order; rounds
        consisting purely of L1 hits never touch the bank-usage map in
        either loop, so bank-conflict accounting matches bit for bit.
        """
        n_cus = self.config.n_cus

        telemetry = METRICS.enabled
        if telemetry:
            phase_started = time.perf_counter()
        base, residue = self._l1_filter_residue(trace)
        if telemetry:
            now = time.perf_counter()
            METRICS.observe("engine.vectorized.l1_filter", now - phase_started)
            phase_started = now

        latency = [0] * n_cus
        if residue is not None:
            addrs_arr, stores_arr, cus, pos = residue
            r_addrs = addrs_arr.tolist()
            r_stores = stores_arr.tolist()
            r_cus = cus.tolist()
            r_rounds = pos.tolist()

            l2_read = self.l2.read
            l2_write = self.l2.write
            model_banks = self.config.model_bank_conflicts
            bank_penalty = self.config.bank_conflict_penalty
            # bank_of(addr) == (addr // line_bytes) % banks: banks is a
            # power of two dividing n_sets, so the set-index modulo in
            # CacheGeometry.bank_of drops out.
            line_bytes = self.config.l2.line_bytes
            n_banks = self.config.l2.banks
            bank_usage: dict = {}
            bank_get = bank_usage.get
            current_round = -1

            for addr, is_store, cu, rnd in zip(
                r_addrs, r_stores, r_cus, r_rounds
            ):
                if model_banks:
                    if rnd != current_round:
                        bank_usage.clear()
                        current_round = rnd
                    bank = (addr // line_bytes) % n_banks
                    queued = bank_get(bank, 0)
                    bank_usage[bank] = queued + 1
                    latency[cu] += queued * bank_penalty
                if is_store:
                    latency[cu] += l2_write(addr)
                else:
                    latency[cu] += l2_read(addr)
        if telemetry:
            METRICS.observe(
                "engine.vectorized.l2_replay", time.perf_counter() - phase_started
            )
        return [base[cu] + latency[cu] for cu in range(n_cus)]

    # -- batched set-partitioned fast path -----------------------------------

    #: A set that fails its inertness probe is re-probed after this many
    #: of its *own* accesses have run per-access; the interval doubles
    #: per failed probe up to the MAX.  Probing only decides *when* a
    #: set's tail starts batching — results are schedule-independent —
    #: so both values are pure performance knobs, exposed for tests.
    BATCH_PROBE_INTERVAL = 4
    BATCH_PROBE_INTERVAL_MAX = 16

    def _run_batched(self, trace: Trace) -> list:
        """Set-partitioned batched replay of the L2-bound residue.

        Stage 1 is the shared L1 pre-filter.  Stage 2 computes
        bank-conflict delays for the whole residue in one vectorized
        pass (queue rank = ordinal within the (round, bank) group of
        the ordered residue — identical to the per-round ``bank_usage``
        dict in either reference loop, and independent of which path
        replays the access).  Stage 3 partitions the residue by L2 set:

        - A set the cache hands a *replay profile* for
          (:meth:`~repro.cache.core.CacheModel.set_replay_profile`)
          is simulated by :func:`~repro.cache.soa.replay_clean_set` —
          plain set-associative LRU over the set's subsequence, O(1)
          per access, no scheme or stats dispatch.  The profile may
          mark per-way CORRECTED hits (MBIST oracles' faulty-but-
          correctable lines) and carry a guard that aborts the replay
          on the rare events that must run in global order (shared-RNG
          write hits, unmasking fills); an un-aborted replay consumes
          the set's *entire remaining* subsequence at once, and
          tag/LRU state plus the aggregate stat deltas are applied in
          bulk afterwards
          (:meth:`~repro.cache.core.CacheModel.commit_set_replays`).
        - All other accesses run through ``l2.read`` / ``l2.write`` in
          original global order — preserving the RNG draw sequence and
          the ECC-cache interleave across sets, which is what keeps
          cycles, stats and DFH state bit-identical to the reference.

        Each set is probed on its first access and re-probed with
        per-set exponential backoff while it stays dirty, so sets that
        *become* inert mid-kernel — e.g. Killi sets finishing DFH
        warmup — still batch their tails shortly after converging.
        """
        n_cus = self.config.n_cus
        telemetry = METRICS.enabled
        if telemetry:
            phase_started = time.perf_counter()
        base, residue = self._l1_filter_residue(trace)
        if telemetry:
            now = time.perf_counter()
            METRICS.observe("engine.batched.l1_filter", now - phase_started)
            phase_started = now
        if residue is None:
            return base

        r_addrs, r_stores, r_cus, r_rounds = residue
        n = len(r_addrs)
        l2 = self.l2
        geometry = self.config.l2
        n_sets = geometry.n_sets
        line_nos = r_addrs // geometry.line_bytes

        # Stage 2: bank-conflict delays, state-free and exact.
        model_banks = self.config.model_bank_conflicts
        if model_banks:
            # bank_of(addr) == line_no % banks: banks is a power of two
            # dividing n_sets, so the set-index modulo drops out.
            n_banks = geometry.banks
            key = r_rounds * np.int64(n_banks) + line_nos % n_banks
            by_key = np.argsort(key, kind="stable")
            ordinal = np.arange(n, dtype=np.int64)
            new_group = np.empty(n, dtype=bool)
            new_group[0] = True
            sorted_key = key[by_key]
            np.not_equal(sorted_key[1:], sorted_key[:-1], out=new_group[1:])
            group_start = np.where(new_group, ordinal, 0)
            np.maximum.accumulate(group_start, out=group_start)
            delay = np.empty(n, dtype=np.int64)
            delay[by_key] = (ordinal - group_start) * self.config.bank_conflict_penalty

        lat = np.zeros(n, dtype=np.int64)  # batched accesses only
        latency_py = [0] * n_cus  # fallback-path accumulation
        stores_list = r_stores.tolist()
        addrs_list = r_addrs.tolist()
        cus_list = r_cus.tolist()
        clean_done: set = set()
        miss_all: list = []
        pending: list = []  # deferred (set, way_lines, resident, touch_order)
        n_fallback = 0
        l2_read = l2.read
        l2_write = l2.write

        # One gate for all bulk replay: the transaction layer decides
        # whether the L2's scalar semantics are batchable at all
        # (write-back / write-allocate protocols and subclassed access
        # paths refuse), and hands back the scheme's batch interpreter
        # when one exists.
        surface = batched_surface(l2)
        interp = surface.interpreter if surface is not None else None
        guard_aborts = 0
        interp_done = False
        if interp is not None:
            # Stage 3': cluster interpretation.  The scheme's shared-
            # structure contention couples L2 sets only within ECC-set
            # clusters, so the stream partitions exactly by cluster;
            # each cluster's subsequence is simulated in original order
            # with full scheme semantics and committed in bulk (see
            # :mod:`repro.core.killi_replay`).  The only events the
            # interpreter cannot simulate are shared-RNG write hits:
            # each aborts its cluster after committing the exact
            # prefix, and a min-heap over the *global* positions of
            # pending aborts replays them through the real per-access
            # path in ascending stream order.  Simulation itself never
            # draws RNG and clusters are state-disjoint, so the heap
            # order is the only order in which RNG is consumed — the
            # same order the scalar engine consumes it.
            l2_set_idx = line_nos % n_sets
            cluster_idx = l2_set_idx % interp.ecc_n_sets
            c_order = np.argsort(cluster_idx, kind="stable")
            uniq_c, c_starts = np.unique(
                cluster_idx[c_order], return_index=True
            )
            c_bounds = np.append(c_starts[1:], n)
            lines_list = line_nos.tolist()
            sets_list = l2_set_idx.tolist()
            lat_list = [0] * n
            cluster_groups: dict = {}
            heap = []
            for c, a, b in zip(
                uniq_c.tolist(), c_starts.tolist(), c_bounds.tolist()
            ):
                idxs = c_order[a:b].tolist()
                cluster_groups[c] = idxs
                k = interp.run(
                    c, idxs, 0, lines_list, stores_list, lat_list, sets_list
                )
                if k is not None:
                    heap.append((idxs[k], c, k))
            heapq.heapify(heap)
            while heap:
                gi, c, k = heapq.heappop(heap)
                lat_list[gi] = l2_write(addrs_list[gi])
                n_fallback += 1
                guard_aborts += 1
                idxs = cluster_groups[c]
                k = interp.run(
                    c, idxs, k + 1, lines_list, stores_list, lat_list,
                    sets_list,
                )
                if k is not None:
                    heapq.heappush(heap, (idxs[k], c, k))
            lat = np.asarray(lat_list, dtype=np.int64)
            interp_done = True
        elif surface is not None:
            set_idx = line_nos % n_sets
            # Stage 3: set partition.  Stable grouping keeps each set's
            # subsequence in original (round-major/CU-minor) order.
            set_order = np.argsort(set_idx, kind="stable")
            uniq_sets, starts = np.unique(set_idx[set_order], return_index=True)
            bounds = np.append(starts[1:], n)
            groups = {
                int(s): set_order[a:b]
                for s, a, b in zip(uniq_sets, starts, bounds)
            }
            lines_list = line_nos.tolist()
            sets_list = set_idx.tolist()
            lat_tag = l2._lat_tag
            lat_groups: dict = {}  # hit latency -> per-set index arrays
            bulk_hits: dict = {}  # replay info -> batched read hits
            agg = [0, 0, 0, 0, 0]  # reads, read_hits, writes, write_hits, evs
            seen: dict = {}  # set -> accesses already run per-access
            probe_left: dict = {}  # set -> own accesses until next probe
            probe_iv: dict = {}  # set -> current backed-off interval
            replay_profile = l2.set_replay_profile
            tags, lru = l2.tags, l2.lru
            iv0 = self.BATCH_PROBE_INTERVAL
            iv_max = self.BATCH_PROBE_INTERVAL_MAX
            corrected_all: list = []

            def consume_tail(s, start, prof):
                """Replay set ``s``'s remaining subsequence in batch.

                Returns None on success.  On a guard abort, returns the
                offset into the tail of the access that cannot replay —
                nothing was committed, and the caller schedules the
                per-access path to consume at least through that access
                before re-probing (the replay prefix is exact, so the
                same abort recurs until the event itself has run).
                """
                info, corrected_ways, guard = prof
                idx_np = groups[s][start:]
                way_lines, seed, free_ways = export_set_state(tags, lru, s)
                res = replay_clean_set(
                    seed, free_ways, idx_np.tolist(), lines_list,
                    stores_list, corrected_ways, guard,
                )
                if type(res) is int:
                    return res
                resident, touch_order, rh, wh, ev, miss_positions, corr = res
                pending.append((s, way_lines, resident, touch_order))
                reads_sub = rh + len(miss_positions)
                agg[0] += reads_sub
                agg[1] += rh
                agg[2] += len(idx_np) - reads_sub
                agg[3] += wh
                agg[4] += ev
                miss_all.extend(miss_positions)
                corrected_all.extend(corr)
                bulk_hits[info] = bulk_hits.get(info, 0) + rh
                hit_lat = l2._lat_hit_corrected if info[0] else l2._lat_hit
                lat_groups.setdefault(hit_lat, []).append(idx_np)
                clean_done.add(s)
                return None

            # Stage 3a: upfront probe.  A set that is already inert
            # batches wholesale and its accesses never enter the loop
            # at all — for statically-inert schemes (baseline, MBIST
            # oracles) this removes the entire per-access iteration,
            # not just the L2 dispatch.  Inertness is monotone, so
            # probing before the first access instead of at it cannot
            # change the replayed state.  A set that fails here keeps
            # ``probe_left == 0`` and is re-probed at its first access,
            # exactly as if the upfront probe had not happened.
            for s in groups:
                prof = replay_profile(s)
                if prof is not None:
                    k = consume_tail(s, 0, prof)
                    if k is not None:
                        # Guard abort before any access ran: the first
                        # k accesses replay, the (k+1)-th cannot — run
                        # all k+1 per-access, then re-probe.
                        guard_aborts += 1
                        probe_left[s] = k + 1

            if len(clean_done) == len(groups):
                loop_idx = ()
            elif clean_done:
                batched_sets = np.zeros(n_sets, dtype=bool)
                batched_sets[np.fromiter(clean_done, dtype=np.int64)] = True
                loop_idx = np.flatnonzero(~batched_sets[set_idx]).tolist()
            else:
                loop_idx = range(n)

            for i in loop_idx:
                s = sets_list[i]
                if s in clean_done:
                    continue
                left = probe_left.get(s, 0)
                if left > 0:
                    probe_left[s] = left - 1
                else:
                    prof = replay_profile(s)
                    if prof is not None:
                        k = consume_tail(s, seen.get(s, 0), prof)
                        if k is None:
                            # Inert from here on: tail fully consumed.
                            continue
                        # Guard abort at tail offset k; this access is
                        # offset 0 and runs below, so k more pass
                        # per-access before the next probe.
                        guard_aborts += 1
                        probe_left[s] = k
                    else:
                        iv = probe_iv.get(s, iv0)
                        probe_left[s] = iv
                        if iv < iv_max:
                            probe_iv[s] = iv * 2
                seen[s] = seen.get(s, 0) + 1
                if stores_list[i]:
                    latency_py[cus_list[i]] += l2_write(addrs_list[i])
                else:
                    latency_py[cus_list[i]] += l2_read(addrs_list[i])
                n_fallback += 1

            if pending:
                # Deferred state write-back, batched stat deltas and
                # scheme bulk hooks all land through the transaction
                # layer's single commit point; only the per-access
                # latency classes stay engine-side.  ``corrected_all``
                # are per-way CORRECTED hits (oracle faulty-but-within-
                # budget lines): +1 cycle over their set's base hit
                # latency, scheme-side effects already covered by the
                # set's uniform ``info``.
                l2.commit_set_replays(
                    pending, agg, len(miss_all), bulk_hits, len(corrected_all)
                )
                for hit_lat, arrs in lat_groups.items():
                    cat = arrs[0] if len(arrs) == 1 else np.concatenate(arrs)
                    lat[cat] = np.where(r_stores[cat], lat_tag, hit_lat)
                if corrected_all:
                    lat[np.asarray(corrected_all, dtype=np.int64)] = (
                        l2._lat_hit_corrected
                    )
                if miss_all:
                    lat[np.asarray(miss_all, dtype=np.int64)] = l2._lat_miss
        else:
            for i in range(n):
                if stores_list[i]:
                    latency_py[cus_list[i]] += l2_write(addrs_list[i])
                else:
                    latency_py[cus_list[i]] += l2_read(addrs_list[i])
            n_fallback = n

        latency_np = np.zeros(n_cus, dtype=np.int64)
        if pending or interp_done:
            np.add.at(latency_np, r_cus, lat)
        if model_banks:
            np.add.at(latency_np, r_cus, delay)
        if telemetry:
            METRICS.observe(
                "engine.batched.l2_replay", time.perf_counter() - phase_started
            )
            METRICS.incr("engine.batched.sets_batched", len(clean_done))
            METRICS.incr("engine.batched.accesses_batched", n - n_fallback)
            METRICS.incr("engine.batched.accesses_fallback", n_fallback)
            scheme_name = type(l2.scheme).__name__
            METRICS.incr(
                f"engine.batched.guard_aborts.{scheme_name}", guard_aborts
            )
            METRICS.incr(
                f"engine.batched.fallback.{scheme_name}", n_fallback
            )
        return [
            base[cu] + latency_py[cu] + int(latency_np[cu]) for cu in range(n_cus)
        ]

    def run_kernels(self, traces) -> list:
        """Run a sequence of kernels back to back.

        Cache contents, statistics and — crucially — Killi's DFH
        training state persist across kernels: "the process of
        training the DFH bits happens once per reset cycle and not on
        context switches" (paper footnote 6).  Each returned
        :class:`KernelResult` carries that kernel's *own* stats delta
        in ``l2_stats``/``l1_stats`` (snapshots — running a later
        kernel never mutates an earlier result) plus the cumulative
        view in ``l2_stats_cumulative``/``l1_stats_cumulative``.
        """
        return [self.run(trace) for trace in traces]


# Built-in inner loops: ``(simulator, trace) -> per-CU cycle list``.
ENGINE_REGISTRY.register("vectorized", GpuSimulator._run_vectorized)
ENGINE_REGISTRY.register("scalar", GpuSimulator._run_scalar)
ENGINE_REGISTRY.register("batched", GpuSimulator._run_batched)
