"""The trace-driven simulation engine.

Each CU executes its stream in order: ``gap`` compute cycles, then one
memory access whose latency comes from the hierarchy (L1 hit, or L1
miss + L2 access, where the L2 access may itself be a hit, a corrected
hit, an error-induced miss + refetch, or a plain miss).  CU streams
are interleaved round-robin so the shared L2 sees realistically mixed
traffic.  The kernel's execution time is the slowest CU's cycle count
— the metric normalised in the paper's Figure 4 — and L2 MPKI over
total instructions is Figure 5's metric.

Two interchangeable inner loops implement the model:

- ``engine="vectorized"`` (default): the round-robin interleave and
  per-CU gap totals are computed once with numpy, leaving a single
  flat pass over the merged access sequence.
- ``engine="scalar"``: the original per-round Python loop, kept as
  the reference implementation.

Both produce bit-identical results — cycles, per-CU cycles and every
:class:`~repro.cache.stats.CacheStats` counter — which the test suite
pins across workloads and schemes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cache.protection import ProtectionScheme
from repro.cache.soa import resolve_substrate
from repro.cache.stats import CacheStats
from repro.cache.wtcache import WriteThroughCache
from repro.gpu.config import GpuConfig
from repro.gpu.hierarchy import SimpleL1
from repro.gpu.l1filter import run_l1_stream
from repro.scenario.registries import ENGINE_REGISTRY
from repro.traces.base import Trace
from repro.utils.metrics import METRICS

__all__ = ["ENGINES", "KernelResult", "GpuSimulator"]

#: The built-in inner-loop implementations (registry may hold more).
ENGINES = ("vectorized", "scalar")


def _resolve_engine(engine: str):
    """The registered inner loop for ``engine`` (``(sim, trace) -> cycles``).

    Engines are an open axis: built-ins register at the bottom of this
    module, third-party loops via ``ENGINE_REGISTRY.register``.  The
    historical ``ValueError`` is preserved for unknown names.
    """
    try:
        return ENGINE_REGISTRY.resolve(engine)
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {tuple(ENGINE_REGISTRY.names())}"
        ) from None


@dataclass
class KernelResult:
    """Outcome of simulating one kernel (one trace).

    ``l2_stats`` / ``l1_stats`` are *per-kernel* snapshots: the deltas
    accumulated while this kernel ran.  They are plain copies — later
    kernels on the same simulator never mutate them.  The running
    totals (cache state persists across kernels) are available as
    ``l2_stats_cumulative`` / ``l1_stats_cumulative``.
    """

    workload: str
    cycles: int
    """Kernel execution time: the slowest CU's cycle count."""

    instructions: int
    """Total instructions across CUs (compute gaps + memory ops)."""

    l2_stats: CacheStats
    l1_stats: list = field(default_factory=list)
    per_cu_cycles: list = field(default_factory=list)
    l2_stats_cumulative: CacheStats | None = None
    l1_stats_cumulative: list = field(default_factory=list)

    @property
    def l2_mpki(self) -> float:
        """L2 misses per kilo-instruction (paper Figure 5)."""
        return self.l2_stats.mpki(self.instructions)

    @property
    def ipc(self) -> float:
        """Aggregate instructions per (kernel) cycle."""
        return self.instructions / self.cycles if self.cycles > 0 else 0.0


class GpuSimulator:
    """8-CU GPU with private L1s and a shared protected L2.

    Parameters
    ----------
    config:
        GPU shape and latencies (Table 3 defaults).
    l2_scheme:
        Protection scheme for the L2 (Killi, a baseline, or the
        fault-free :class:`~repro.cache.UnprotectedScheme`).
    engine:
        Default inner loop: ``"vectorized"`` (numpy-flattened fast
        path) or ``"scalar"`` (reference implementation).
    substrate:
        Tag/LRU backing for both cache levels: ``"soa"`` (flat numpy
        arrays, fast) or ``"object"`` (per-line objects, the pinned
        reference); None = session default.  Orthogonal to ``engine``
        — all four combinations are bit-identical.
    """

    def __init__(
        self,
        config: GpuConfig | None = None,
        l2_scheme: ProtectionScheme | None = None,
        engine: str = "vectorized",
        substrate: str | None = None,
    ):
        _resolve_engine(engine)
        self.config = config if config is not None else GpuConfig()
        self.engine = engine
        self.substrate = resolve_substrate(substrate)
        self.l2 = WriteThroughCache(
            self.config.l2,
            l2_scheme,
            self.config.l2_latencies,
            substrate=self.substrate,
        )
        self.l1s = [
            SimpleL1(self.config.l1_geometry(), substrate=self.substrate)
            for _ in range(self.config.n_cus)
        ]

    @staticmethod
    def _bank_delay(bank_usage: dict, bank: int, penalty: int) -> int:
        """Queueing delay for the n-th same-bank access in a round."""
        queued = bank_usage.get(bank, 0)
        bank_usage[bank] = queued + 1
        return queued * penalty

    def run(self, trace: Trace, engine: str | None = None) -> KernelResult:
        """Simulate one kernel and return its metrics.

        ``engine`` overrides the simulator's default inner loop for
        this kernel only; both loops are bit-equivalent.
        """
        engine = engine if engine is not None else self.engine
        inner_loop = _resolve_engine(engine)
        if len(trace.streams) != self.config.n_cus:
            raise ValueError(
                f"trace has {len(trace.streams)} CU streams, "
                f"GPU has {self.config.n_cus}"
            )
        l2_before = self.l2.stats.copy()
        l1_before = [l1.stats.copy() for l1 in self.l1s]

        telemetry = METRICS.enabled
        if telemetry:
            kernel_started = time.perf_counter()
        cycles = inner_loop(self, trace)
        if telemetry:
            METRICS.observe(
                f"engine.{engine}.kernel", time.perf_counter() - kernel_started
            )
            METRICS.incr("engine.kernels")

        l2_after = self.l2.stats.copy()
        l1_after = [l1.stats.copy() for l1 in self.l1s]
        return KernelResult(
            workload=trace.name,
            cycles=max(cycles) if cycles else 0,
            instructions=trace.instructions,
            l2_stats=l2_after.delta(l2_before),
            l1_stats=[a.delta(b) for a, b in zip(l1_after, l1_before)],
            per_cu_cycles=list(cycles),
            l2_stats_cumulative=l2_after,
            l1_stats_cumulative=l1_after,
        )

    # -- scalar reference loop ---------------------------------------------

    def _run_scalar(self, trace: Trace) -> list:
        """Original per-round loop; the reference implementation."""
        n_cus = self.config.n_cus
        l1_hit_latency = self.config.l1_hit_latency
        l2 = self.l2
        cycles = [0] * n_cus
        streams = []
        for stream in trace.streams:
            streams.append(
                (
                    [int(a) for a in stream.addrs],
                    [bool(s) for s in stream.is_store],
                    [int(g) for g in stream.gaps],
                )
            )
        lengths = [len(s[0]) for s in streams]
        position = [0] * n_cus
        remaining = sum(lengths)
        l1s = self.l1s
        model_banks = self.config.model_bank_conflicts
        bank_penalty = self.config.bank_conflict_penalty
        geometry = self.config.l2

        while remaining:
            bank_usage: dict = {} if model_banks else None
            for cu in range(n_cus):
                i = position[cu]
                if i >= lengths[cu]:
                    continue
                addrs, stores, gaps = streams[cu]
                addr = addrs[i]
                cycles[cu] += gaps[i]
                if stores[i]:
                    l1s[cu].write(addr)
                    if model_banks:
                        cycles[cu] += self._bank_delay(
                            bank_usage, geometry.bank_of(addr), bank_penalty
                        )
                    cycles[cu] += l2.write(addr)
                else:
                    if l1s[cu].read(addr):
                        cycles[cu] += l1_hit_latency
                    else:
                        if model_banks:
                            cycles[cu] += self._bank_delay(
                                bank_usage, geometry.bank_of(addr), bank_penalty
                            )
                        cycles[cu] += l1_hit_latency + l2.read(addr)
                position[cu] = i + 1
                remaining -= 1
        return cycles

    # -- vectorized fast path ----------------------------------------------

    def _flatten_round_robin(self, trace: Trace):
        """Merge CU streams into one round-robin-ordered flat sequence.

        Returns ``(addrs, stores, cus, rounds, gap_totals)`` where the
        first four are aligned Python lists in exactly the order the
        scalar loop visits accesses (round-major, CU-minor), and
        ``gap_totals[cu]`` is that CU's summed compute-gap cycles.
        """
        addr_parts, store_parts, pos_parts, cu_parts, gap_totals = [], [], [], [], []
        for cu, stream in enumerate(trace.streams):
            n = len(stream.addrs)
            addr_parts.append(np.asarray(stream.addrs, dtype=np.int64))
            store_parts.append(np.asarray(stream.is_store, dtype=bool))
            pos_parts.append(np.arange(n, dtype=np.int64))
            cu_parts.append(np.full(n, cu, dtype=np.int64))
            gap_totals.append(int(np.sum(np.asarray(stream.gaps, dtype=np.int64))))
        if not addr_parts or sum(len(p) for p in addr_parts) == 0:
            return [], [], [], [], gap_totals
        addrs = np.concatenate(addr_parts)
        stores = np.concatenate(store_parts)
        pos = np.concatenate(pos_parts)
        cus = np.concatenate(cu_parts)
        # Round-major, CU-minor: the scalar loop's visit order.
        order = np.lexsort((cus, pos))
        return (
            addrs[order].tolist(),
            stores[order].tolist(),
            cus[order].tolist(),
            pos[order].tolist(),
            gap_totals,
        )

    def _run_vectorized(self, trace: Trace) -> list:
        """Batched L1 pre-filter + flat residue loop over the L2.

        Stage 1 simulates each CU's entire (private, deterministic) L1
        stream in one pass (:func:`~repro.gpu.l1filter.run_l1_stream`),
        which also yields the CU's base latency in closed form: summed
        compute gaps plus ``l1_hit_latency`` per load (every load pays
        it, hit or miss).  Stage 2 replays only the L2-bound residue —
        stores and L1 read misses — merged round-major/CU-minor, i.e.
        in exactly the order the scalar loop reaches the L2; rounds
        consisting purely of L1 hits never touch the bank-usage map in
        either loop, so bank-conflict accounting matches bit for bit.
        """
        n_cus = self.config.n_cus
        l1_hit_latency = self.config.l1_hit_latency

        telemetry = METRICS.enabled
        if telemetry:
            phase_started = time.perf_counter()
        addr_parts, store_parts, pos_parts, cu_parts = [], [], [], []
        base = []
        for cu, stream in enumerate(trace.streams):
            addr_np = np.asarray(stream.addrs, dtype=np.int64)
            store_np = np.asarray(stream.is_store, dtype=bool)
            addrs = addr_np.tolist()
            stores = store_np.tolist()
            line_nos = (
                addr_np // self.l1s[cu].geometry.line_bytes
            ).tolist()
            l2_bound = run_l1_stream(self.l1s[cu], addrs, stores, line_nos)
            n_loads = len(stores) - int(np.count_nonzero(store_np))
            base.append(
                int(np.sum(np.asarray(stream.gaps, dtype=np.int64)))
                + l1_hit_latency * n_loads
            )
            keep = np.flatnonzero(np.asarray(l2_bound, dtype=bool))
            addr_parts.append(addr_np[keep])
            store_parts.append(store_np[keep])
            pos_parts.append(keep.astype(np.int64))
            cu_parts.append(np.full(len(keep), cu, dtype=np.int64))
        if telemetry:
            now = time.perf_counter()
            METRICS.observe("engine.vectorized.l1_filter", now - phase_started)
            phase_started = now

        latency = [0] * n_cus
        if addr_parts and sum(len(p) for p in addr_parts):
            addrs_arr = np.concatenate(addr_parts)
            stores_arr = np.concatenate(store_parts)
            pos = np.concatenate(pos_parts)
            cus = np.concatenate(cu_parts)
            # Round-major, CU-minor: the scalar loop's visit order.
            order = np.lexsort((cus, pos))
            r_addrs = addrs_arr[order].tolist()
            r_stores = stores_arr[order].tolist()
            r_cus = cus[order].tolist()
            r_rounds = pos[order].tolist()

            l2_read = self.l2.read
            l2_write = self.l2.write
            model_banks = self.config.model_bank_conflicts
            bank_penalty = self.config.bank_conflict_penalty
            # bank_of(addr) == (addr // line_bytes) % banks: banks is a
            # power of two dividing n_sets, so the set-index modulo in
            # CacheGeometry.bank_of drops out.
            line_bytes = self.config.l2.line_bytes
            n_banks = self.config.l2.banks
            bank_usage: dict = {}
            bank_get = bank_usage.get
            current_round = -1

            for addr, is_store, cu, rnd in zip(
                r_addrs, r_stores, r_cus, r_rounds
            ):
                if model_banks:
                    if rnd != current_round:
                        bank_usage.clear()
                        current_round = rnd
                    bank = (addr // line_bytes) % n_banks
                    queued = bank_get(bank, 0)
                    bank_usage[bank] = queued + 1
                    latency[cu] += queued * bank_penalty
                if is_store:
                    latency[cu] += l2_write(addr)
                else:
                    latency[cu] += l2_read(addr)
        if telemetry:
            METRICS.observe(
                "engine.vectorized.l2_replay", time.perf_counter() - phase_started
            )
        return [base[cu] + latency[cu] for cu in range(n_cus)]

    def run_kernels(self, traces) -> list:
        """Run a sequence of kernels back to back.

        Cache contents, statistics and — crucially — Killi's DFH
        training state persist across kernels: "the process of
        training the DFH bits happens once per reset cycle and not on
        context switches" (paper footnote 6).  Each returned
        :class:`KernelResult` carries that kernel's *own* stats delta
        in ``l2_stats``/``l1_stats`` (snapshots — running a later
        kernel never mutates an earlier result) plus the cumulative
        view in ``l2_stats_cumulative``/``l1_stats_cumulative``.
        """
        return [self.run(trace) for trace in traces]


# Built-in inner loops: ``(simulator, trace) -> per-CU cycle list``.
ENGINE_REGISTRY.register("vectorized", GpuSimulator._run_vectorized)
ENGINE_REGISTRY.register("scalar", GpuSimulator._run_scalar)
