"""Trace-driven GPU memory-hierarchy model.

Substitutes for the paper's gem5 GCN3 setup (see DESIGN.md).  The
model is an 8-CU GPU (Table 3): each CU issues an in-order stream of
loads/stores interleaved with compute cycles; a private write-through
L1 per CU; a shared, banked, write-through L2 protected by a pluggable
scheme (Killi or a baseline); and a fixed-latency memory.

Killi's performance effects are pure memory-system effects — extra L2
misses from disabled lines, ECC-cache contention and error-induced
refetches — so this substrate exercises exactly the paths the paper
measures, at trace-driven speed.
"""

from repro.gpu.config import GpuConfig
from repro.gpu.engine import GpuSimulator, KernelResult
from repro.gpu.hierarchy import SimpleL1
from repro.gpu.l1filter import run_l1_stream

__all__ = ["GpuConfig", "SimpleL1", "GpuSimulator", "KernelResult", "run_l1_stream"]
