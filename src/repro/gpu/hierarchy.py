"""Per-CU L1 cache.

The L1s run at nominal voltage (only the L2 data array is
under-volted in the paper), so they need no protection scheme — just a
fast write-through, no-write-allocate filter in front of the L2.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import LruState
from repro.cache.setassoc import SetAssocCache
from repro.cache.stats import CacheStats

__all__ = ["SimpleL1"]


class SimpleL1:
    """Write-through, no-write-allocate L1 with LRU replacement."""

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self.tags = SetAssocCache(geometry)
        self.lru = LruState(geometry.n_sets, geometry.associativity)
        self.stats = CacheStats()

    def read(self, addr: int) -> bool:
        """Read; returns True on hit.  Misses allocate."""
        self.stats.reads += 1
        set_index = self.geometry.set_of(addr)
        way = self.tags.lookup(addr)
        if way is not None:
            self.stats.read_hits += 1
            self.lru.touch(set_index, way)
            return True
        self.stats.read_misses += 1
        victim = self.lru.recency_order(set_index)[-1]
        if self.tags.line(set_index, victim).valid:
            self.stats.evictions += 1
        self.tags.insert(addr, victim)
        self.stats.fills += 1
        self.lru.touch(set_index, victim)
        return False

    def write(self, addr: int) -> bool:
        """Write-through; updates the copy on hit, never allocates."""
        self.stats.writes += 1
        way = self.tags.lookup(addr)
        if way is not None:
            self.stats.write_hits += 1
            self.lru.touch(self.geometry.set_of(addr), way)
            return True
        self.stats.write_misses += 1
        return False
