"""Per-CU L1 cache.

The L1s run at nominal voltage (only the L2 data array is
under-volted in the paper), so they need no protection scheme — the
L1 is the write-through / no-write-allocate / plain-LRU-fill preset
of the unified :class:`~repro.cache.core.CacheModel`, serving as a
fast filter in front of the L2.

Like the L2, the L1 tag/LRU state runs on either the object substrate
(reference) or the struct-of-arrays substrate (fast path).  Because an
L1 is private, unprotected and deterministic, its entire access stream
can also be simulated in one batched pass — see
:mod:`repro.gpu.l1filter`, which exports the state via
:meth:`SimpleL1.export_filter_state`, runs the pass, and writes the
state back.
"""

from __future__ import annotations

from repro.cache.core import LRU_FILL, CacheModel
from repro.cache.geometry import CacheGeometry

__all__ = ["SimpleL1"]


class SimpleL1(CacheModel):
    """Write-through, no-write-allocate L1 with plain-LRU fill.

    A thin boolean adapter over the transaction layer: ``read`` /
    ``write`` return hit/miss instead of latency (the engine accounts
    L1 latency itself), while the underlying semantics — stats, LRU
    ages, the always-LRU victim convention the batched L1 filter
    replays — are :class:`~repro.cache.core.CacheModel`'s under the
    :data:`~repro.cache.core.LRU_FILL` allocation policy.
    """

    def __init__(self, geometry: CacheGeometry, substrate: str | None = None):
        CacheModel.__init__(
            self, geometry, substrate=substrate, allocation_policy=LRU_FILL
        )

    def read(self, addr: int) -> bool:
        """Read; returns True on hit.  Misses allocate."""
        # The unprotected scheme never converts a hit into an
        # error-induced miss, so the latency class alone separates
        # hit (tag+data+check) from miss (tag+memory).
        return CacheModel.read(self, addr) < self._lat_miss

    def write(self, addr: int) -> bool:
        """Write-through; updates the copy on hit, never allocates."""
        hits = self.stats.write_hits
        CacheModel.write(self, addr)
        return self.stats.write_hits != hits

    # -- batched-filter state interchange ----------------------------------
    #
    # Canonical form shared by both substrates: per-slot line numbers
    # (``-1`` = invalid) and per-slot integer ages (distinct within a
    # set; larger = more recent), both flat lists indexed by
    # ``set * associativity + way``, plus the per-set age clocks and
    # the line-number -> way dict.

    def export_filter_state(self):
        """State tuple ``(index, slot_line, age, clock)`` for the filter."""
        geometry = self.geometry
        n_sets, assoc = geometry.n_sets, geometry.associativity
        if self.substrate == "soa":
            tags, lru = self.tags, self.lru
            slot_line = list(tags._line_at)
            age = list(lru.age)
            clock = list(lru._clock)
            index = dict(tags._index)
            return index, slot_line, age, clock
        slot_line = [-1] * (n_sets * assoc)
        age = [0] * (n_sets * assoc)
        index = {}
        for set_index in range(n_sets):
            base = set_index * assoc
            for way in range(assoc):
                if self.tags.is_valid(set_index, way):
                    line_no = (
                        self.tags.tag_at(set_index, way) * n_sets + set_index
                    )
                    slot_line[base + way] = line_no
                    index[line_no] = way
            # MRU-first order -> descending distinct ages 0, -1, ...
            for pos, way in enumerate(self.lru.recency_order(set_index)):
                age[base + way] = -pos
        clock = [1] * n_sets
        return index, slot_line, age, clock

    def import_filter_state(self, state) -> None:
        """Write a filter state tuple back into the substrate."""
        index, slot_line, age, clock = state
        geometry = self.geometry
        n_sets, assoc = geometry.n_sets, geometry.associativity
        if self.substrate == "soa":
            tags, lru = self.tags, self.lru
            for set_index in range(n_sets):
                base = set_index * assoc
                n_valid = 0
                for way in range(assoc):
                    line_no = slot_line[base + way]
                    tags.valid[set_index, way] = line_no >= 0
                    tags.tag[set_index, way] = (
                        line_no // n_sets if line_no >= 0 else -1
                    )
                    if line_no >= 0:
                        n_valid += 1
                tags.valid_in_set[set_index] = n_valid
            lru.age = list(age)
            tags._index = index
            tags._line_at = list(slot_line)
            tags._n_valid = len(index)
            lru._clock = list(clock)
            return
        tags = self.tags
        for set_index in range(n_sets):
            base = set_index * assoc
            tag_index = {}
            for way in range(assoc):
                line = tags.line(set_index, way)
                line_no = slot_line[base + way]
                line.valid = line_no >= 0
                line.tag = line_no // n_sets if line_no >= 0 else -1
                if line_no >= 0:
                    tag_index[line.tag] = way
            tags._tag_index[set_index] = tag_index
            tags.valid_in_set[set_index] = len(tag_index)
            # Rebuild the MRU-first order from the (distinct) ages.
            order = sorted(range(assoc), key=lambda w: -age[base + w])
            self.lru._order[set_index] = order
        tags._n_valid = len(index)
