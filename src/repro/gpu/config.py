"""GPU hardware configuration (paper Table 3)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.geometry import CacheGeometry
from repro.cache.core import CacheLatencies

__all__ = ["GpuConfig"]


def _default_l2() -> CacheGeometry:
    return CacheGeometry(
        size_bytes=2 * 1024 * 1024, line_bytes=64, associativity=16, banks=16
    )


def _default_l2_latencies() -> CacheLatencies:
    # Table 3: L2 tag 2 cycles, data 2 cycles, SECDED/parity 1 cycle.
    # The ECC cache (1+1 cycles) is hidden under the data access.
    return CacheLatencies(tag=2, data=2, check=1, correction=1, memory=200)


@dataclass(frozen=True)
class GpuConfig:
    """The 8-CU GPU of paper Table 3.

    Attributes
    ----------
    n_cus:
        Number of compute units (8).
    l1_size_bytes / l1_assoc:
        Per-CU L1 (16KB; associativity not specified in the paper,
        modelled as 4-way).
    l1_hit_latency:
        L1 hit cost in cycles.
    l2:
        Shared L2 geometry (2MB, 16-way, 64B lines, 16 banks).
    l2_latencies:
        L2 and memory cycle costs.
    model_bank_conflicts:
        Serialise same-round accesses to the same L2 bank (off by
        default: the paper's results are insensitive to it and the
        archived EXPERIMENTS.md numbers were produced without it).
    bank_conflict_penalty:
        Extra cycles per already-queued same-bank access in a round.
    """

    n_cus: int = 8
    freq_ghz: float = 1.0
    l1_size_bytes: int = 16 * 1024
    l1_assoc: int = 4
    l1_hit_latency: int = 1
    l2: CacheGeometry = field(default_factory=_default_l2)
    l2_latencies: CacheLatencies = field(default_factory=_default_l2_latencies)
    model_bank_conflicts: bool = False
    bank_conflict_penalty: int = 2

    def l1_geometry(self) -> CacheGeometry:
        """Geometry of one CU's L1."""
        return CacheGeometry(
            size_bytes=self.l1_size_bytes,
            line_bytes=self.l2.line_bytes,
            associativity=self.l1_assoc,
        )
