"""Per-line fault statistics (paper Figure 2 and Table 7).

Given a per-cell failure probability, the number of faults in an
``n``-bit line is Binomial(n, p) — LV faults strike independent random
cells.  This module provides the exact binomial quantities the paper's
figures are built on:

- fraction of lines with exactly 0 / exactly 1 / 2-or-more faults
  (Figure 2);
- fraction of lines with at most ``t`` faults — the usable capacity
  under a ``t``-error-correcting scheme (Table 7's "% L2 capacity").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.faults.cell_model import CellFaultModel, FaultMechanism

__all__ = ["LineFaultModel", "binom_pmf", "binom_cdf"]


def binom_pmf(n: int, k: int, p: float) -> float:
    """Exact Binomial(n, p) pmf at k, stable for tiny p."""
    if not 0 <= k <= n:
        return 0.0
    if p == 0.0:
        return 1.0 if k == 0 else 0.0
    if p == 1.0:
        return 1.0 if k == n else 0.0
    log_pmf = (
        math.lgamma(n + 1)
        - math.lgamma(k + 1)
        - math.lgamma(n - k + 1)
        + k * math.log(p)
        + (n - k) * math.log1p(-p)
    )
    return math.exp(log_pmf)


def binom_cdf(n: int, k: int, p: float) -> float:
    """P[Binomial(n, p) <= k]."""
    return min(1.0, sum(binom_pmf(n, i, p) for i in range(0, k + 1)))


@dataclass
class LineFaultModel:
    """Fault-count statistics for lines of ``line_bits`` bits.

    Parameters
    ----------
    cell_model:
        The Pcell(V, f) model.
    line_bits:
        Bits per line that sit in the LV array.  The paper's Figure 2
        uses 64-byte (512-bit) data lines; the analytic coverage model
        of Section 5.3 uses 523 (data + SECDED checkbits).
    freq_ghz:
        Operating frequency (paper experiments: 1GHz).
    mechanism:
        Which failure mechanism to count.
    """

    cell_model: CellFaultModel
    line_bits: int = 512
    freq_ghz: float = 1.0
    mechanism: FaultMechanism = FaultMechanism.COMBINED

    def p_cell(self, voltage: float) -> float:
        """Per-cell failure probability at ``voltage``."""
        return self.cell_model.p_cell(voltage, self.freq_ghz, self.mechanism)

    def p_faults(self, voltage: float, k: int) -> float:
        """P[line has exactly k faults]."""
        return binom_pmf(self.line_bits, k, self.p_cell(voltage))

    def p_at_most(self, voltage: float, t: int) -> float:
        """P[line has at most t faults] — usable capacity under ``t``-EC."""
        return binom_cdf(self.line_bits, t, self.p_cell(voltage))

    def fractions(self, voltage: float) -> dict:
        """Figure 2's three series: fraction of lines with 0 / 1 / >=2 faults."""
        p0 = self.p_faults(voltage, 0)
        p1 = self.p_faults(voltage, 1)
        return {"zero": p0, "one": p1, "two_plus": max(0.0, 1.0 - p0 - p1)}

    def expected_disabled_fraction(self, voltage: float, correctable: int) -> float:
        """Fraction of lines disabled by a scheme correcting ``correctable`` faults."""
        return max(0.0, 1.0 - self.p_at_most(voltage, correctable))
