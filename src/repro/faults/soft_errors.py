"""Transient (soft) error injection.

Soft errors are rare, random, non-persistent bit flips.  Killi's
segmented parity is *interleaved* specifically so that the
spatially-adjacent multi-bit soft-error events observed in silicon
(Maiz et al., IEDM'03 — paper reference [25]) land in distinct parity
segments and are therefore each detected.

The injector models a per-access Bernoulli event; when an event fires
it flips a burst of ``size`` physically-adjacent bits starting at a
uniform position, with the burst-size distribution defaulting to the
heavily-single-bit-skewed shape reported for advanced SRAMs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SoftErrorInjector", "DEFAULT_BURST_PMF"]

#: Burst-size probability mass (size -> probability), single-bit dominant.
DEFAULT_BURST_PMF = {1: 0.90, 2: 0.07, 3: 0.02, 4: 0.01}


class SoftErrorInjector:
    """Per-access soft-error injection with adjacent multi-bit bursts.

    Parameters
    ----------
    rate_per_access:
        Probability that an access to a line experiences a soft-error
        event.  Real rates are astronomically small; experiments that
        exercise soft-error handling crank this up.
    burst_pmf:
        Mapping burst size -> probability (must sum to 1).
    rng:
        Random stream used for event sampling.
    """

    def __init__(
        self,
        rate_per_access: float = 0.0,
        burst_pmf: dict | None = None,
        rng: np.random.Generator | None = None,
    ):
        if not 0.0 <= rate_per_access <= 1.0:
            raise ValueError("rate_per_access must be a probability")
        pmf = dict(burst_pmf) if burst_pmf is not None else dict(DEFAULT_BURST_PMF)
        total = sum(pmf.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"burst pmf must sum to 1 (got {total})")
        if any(size < 1 for size in pmf):
            raise ValueError("burst sizes must be >= 1")
        self.rate_per_access = rate_per_access
        self._sizes = np.array(sorted(pmf), dtype=np.intp)
        self._size_probs = np.array([pmf[s] for s in sorted(pmf)])
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.events_injected = 0
        self.bits_flipped = 0

    def sample_event(self, n_bits: int):
        """Return flipped-bit positions for one access, or None.

        Positions are physically adjacent (a burst) and clipped to the
        line width.
        """
        if self.rate_per_access == 0.0:
            return None
        if self.rng.random() >= self.rate_per_access:
            return None
        size = int(self.rng.choice(self._sizes, p=self._size_probs))
        start = int(self.rng.integers(0, n_bits))
        positions = np.arange(start, min(start + size, n_bits), dtype=np.intp)
        self.events_injected += 1
        self.bits_flipped += len(positions)
        return positions

    def maybe_flip(self, bits: np.ndarray) -> np.ndarray:
        """Apply one sampled event (if any) to ``bits`` in place."""
        positions = self.sample_event(len(bits))
        if positions is not None:
            bits[positions] ^= 1
        return bits

    @staticmethod
    def inject(bits: np.ndarray, positions) -> np.ndarray:
        """Deterministically flip ``positions`` (for directed tests)."""
        out = bits.copy()
        out[np.asarray(positions, dtype=np.intp)] ^= 1
        return out
