"""Persistent stuck-at fault maps over a cache geometry.

LV SRAM failures are *persistent*: for a fixed voltage and frequency
they affect the same cells on every access, and they are *monotonic*
in voltage (a cell failing at V fails at every V' < V).  The paper
leans on both properties — Killi only needs to discover each line's
faults once per voltage.

This module reproduces both properties by construction.  Each faulty
cell is assigned a *failure threshold* ``u`` drawn uniformly from
``(0, p_floor)`` where ``p_floor = Pcell(floor_voltage)``; the cell is
faulty at voltage ``V`` iff ``u < Pcell(V)``.  Because ``Pcell`` is
monotonically decreasing in voltage, fault sets shrink monotonically
as voltage rises, exactly as in the silicon measurements.

A faulty cell is *stuck at* a fixed value (0 or 1, equally likely).
Writing the stuck value into the cell yields a **masked fault** — the
paper's Section 4.3/5.6.2 scenario — with no modelling effort: reading
back simply returns the written data until a later write unmasks it.

The line layout mirrors Killi's LV-resident bits::

    [ data (512) | parity (16) | ECC checkbits (11) ]

Which ranges actually sit in LV SRAM depends on the scheme (Killi
keeps 4 parity bits in the cache and the rest in the ECC cache); the
map exposes region-windowed queries so each scheme models its own
layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.cell_model import CellFaultModel, FaultMechanism
from repro.utils.bitpack import pack_positions

__all__ = ["LineRegion", "FaultMap"]


@dataclass(frozen=True)
class LineRegion:
    """A named bit range within a line's LV layout."""

    name: str
    offset: int
    width: int

    @property
    def stop(self) -> int:
        return self.offset + self.width

    def contains(self, bit: int) -> bool:
        return self.offset <= bit < self.stop


class FaultMap:
    """Sampled persistent fault map for ``n_lines`` lines.

    Parameters
    ----------
    n_lines:
        Number of physical lines covered (e.g. 32768 for a 2MB/64B L2).
    line_bits:
        LV bits per line (539 for data+parity+checkbits).
    cell_model:
        Pcell(V, f) model; defaults to the calibrated paper model.
    freq_ghz:
        Operating frequency.
    floor_voltage:
        Lowest voltage the map supports; faults are pre-sampled at
        ``Pcell(floor_voltage)`` and thinned for higher voltages.
    rng:
        numpy Generator for sampling (deterministic maps come from
        :class:`repro.utils.RngFactory` streams).
    mechanism:
        Failure mechanism to sample (combined by default).
    """

    def __init__(
        self,
        n_lines: int,
        line_bits: int = 539,
        cell_model: CellFaultModel | None = None,
        freq_ghz: float = 1.0,
        floor_voltage: float = 0.575,
        rng: np.random.Generator | None = None,
        mechanism: FaultMechanism = FaultMechanism.COMBINED,
    ):
        if n_lines < 1 or line_bits < 1:
            raise ValueError("n_lines and line_bits must be positive")
        self.n_lines = n_lines
        self.line_bits = line_bits
        self.cell_model = cell_model if cell_model is not None else CellFaultModel()
        self.freq_ghz = freq_ghz
        self.floor_voltage = floor_voltage
        self.mechanism = mechanism
        rng = rng if rng is not None else np.random.default_rng(0)

        self.p_floor = self.cell_model.p_cell(floor_voltage, freq_ghz, mechanism)
        # Enumerate the iid Bernoulli(p_floor) cell field's successes
        # directly: gaps between consecutive faulty cells in such a
        # field are iid Geometric(p_floor), so the faulty cell indices
        # are a cumulative sum of geometric draws — O(#faults) work
        # instead of one random float per cell, and distributionally
        # identical to materialising the whole field.  Storage is
        # CSR-style: positions / thresholds / stuck values concatenated
        # in line order, with per-line offsets.
        n_cells = n_lines * line_bits
        parts = []
        if self.p_floor > 0.0:
            expect = int(n_cells * self.p_floor)
            batch = min(max(1024, expect + (expect >> 2) + 128), 1 << 22)
            last = 0
            while True:
                cells = np.cumsum(rng.geometric(self.p_floor, size=batch))
                cells += last
                if cells[-1] >= n_cells:
                    parts.append(cells[cells <= n_cells])
                    break
                parts.append(cells)
                last = int(cells[-1])
        flat = (
            np.concatenate(parts) - 1
            if parts
            else np.empty(0, dtype=np.int64)
        )
        lines_of = flat // line_bits
        total = flat.size
        self._set_csr(
            (flat % line_bits).astype(np.intp),
            rng.uniform(0.0, self.p_floor, size=total),
            rng.integers(0, 2, size=total, dtype=np.uint8),
            lines_of.astype(np.intp),
            np.bincount(lines_of, minlength=n_lines),
        )

    def _set_csr(
        self,
        positions: np.ndarray,
        thresholds: np.ndarray,
        values: np.ndarray,
        line_of: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        """Install the concatenated fault arrays (line-ordered)."""
        self._positions = positions
        self._thresholds = thresholds
        self._values = values
        self._line_of = line_of
        # Plain-int offsets: the hot scalar lookups (has_faults,
        # line_faults) index this per access.
        self._offsets = [0] * (self.n_lines + 1)
        np.cumsum(counts, out=counts)
        self._offsets[1:] = counts.tolist()
        # voltage -> active-threshold mask over the whole map (one
        # vectorized compare, shared by every line query).
        self._active_vcache: dict = {}
        # voltage -> (offsets, positions, values) of the *active* fault
        # subset, line-ordered — per-line queries are two plain slices.
        self._csr_vcache: dict = {}
        # (line, voltage, n_bits) -> packed uint64 active-fault mask.
        self._packed_cache: dict = {}

    def _active_at(self, voltage: float) -> np.ndarray:
        """Bulk mask: which of the map's faults are active at ``voltage``."""
        mask = self._active_vcache.get(voltage)
        if mask is None:
            self._check_voltage(voltage)
            mask = self._thresholds < self.p_cell(voltage)
            self._active_vcache[voltage] = mask
        return mask

    def _active_csr(self, voltage: float):
        """CSR view (offsets, positions, values) of the active faults."""
        csr = self._csr_vcache.get(voltage)
        if csr is None:
            active = self._active_at(voltage)
            counts = np.bincount(
                self._line_of[active], minlength=self.n_lines
            )
            offsets = [0] * (self.n_lines + 1)
            np.cumsum(counts, out=counts)
            offsets[1:] = counts.tolist()
            csr = (offsets, self._positions[active], self._values[active])
            self._csr_vcache[voltage] = csr
        return csr

    @classmethod
    def from_faults(
        cls,
        n_lines: int,
        faults: dict,
        line_bits: int = 539,
        floor_voltage: float = 0.5,
    ) -> "FaultMap":
        """Build a map with explicit stuck-at faults.

        ``faults`` maps line -> iterable of (position, stuck_value).
        The faults are active at every supported voltage.  Used for
        directed tests and fault-injection studies.
        """
        fault_map = cls(
            n_lines=n_lines,
            line_bits=line_bits,
            floor_voltage=floor_voltage,
            rng=np.random.default_rng(0),
        )
        pos_parts, val_parts, line_parts = [], [], []
        counts = np.zeros(n_lines, dtype=np.int64)
        for line, entries in sorted(
            (int(line), list(entries)) for line, entries in faults.items()
        ):
            if not entries:
                continue
            positions = np.array([p for p, _ in entries], dtype=np.intp)
            order = np.argsort(positions)
            pos_parts.append(positions[order])
            val_parts.append(
                np.array([v for _, v in entries], dtype=np.uint8)[order]
            )
            line_parts.append(np.full(len(entries), line, dtype=np.intp))
            counts[line] = len(entries)
        total = int(counts.sum())
        fault_map._set_csr(
            np.concatenate(pos_parts) if total else np.empty(0, dtype=np.intp),
            np.zeros(total),  # thresholds 0: active everywhere
            np.concatenate(val_parts) if total else np.empty(0, dtype=np.uint8),
            np.concatenate(line_parts) if total else np.empty(0, dtype=np.intp),
            counts,
        )
        return fault_map

    def p_cell(self, voltage: float) -> float:
        """Per-cell failure probability at ``voltage`` for this map."""
        return self.cell_model.p_cell(voltage, self.freq_ghz, self.mechanism)

    def _check_line(self, line: int) -> None:
        if not 0 <= line < self.n_lines:
            raise IndexError(f"line {line} out of range [0, {self.n_lines})")

    def _check_voltage(self, voltage: float) -> None:
        if voltage < self.floor_voltage:
            raise ValueError(
                f"voltage {voltage} below map floor {self.floor_voltage}"
            )

    def has_faults(self, line: int) -> bool:
        """Fast check: any faults at all (at the map's floor voltage)?

        A False here guarantees the line is fault-free at every
        supported voltage (fault sets shrink as voltage rises).
        """
        offsets = self._offsets
        return 0 <= line < self.n_lines and offsets[line] != offsets[line + 1]

    def line_faults(self, line: int, voltage: float):
        """(positions, stuck_values) active in ``line`` at ``voltage``."""
        self._check_line(line)
        offsets, positions, values = self._active_csr(voltage)
        start, stop = offsets[line], offsets[line + 1]
        return positions[start:stop], values[start:stop]

    def packed_line_faults(
        self, line: int, voltage: float, n_bits: int | None = None
    ) -> np.ndarray:
        """Packed uint64 mask of the active faults in ``line`` at ``voltage``.

        The mask covers offsets ``[0, n_bits)`` (``line_bits`` by
        default; positions beyond ``n_bits`` are dropped).  Because the
        active set is a pure function of (line, voltage), masks are
        cached — the per-access packed-bit paths in
        :mod:`repro.core.linestate` reuse them without re-packing.
        """
        if n_bits is None:
            n_bits = self.line_bits
        key = (line, voltage, n_bits)
        cached = self._packed_cache.get(key)
        if cached is not None:
            return cached
        positions, _ = self.line_faults(line, voltage)
        mask = pack_positions(positions[positions < n_bits], n_bits)
        mask.setflags(write=False)
        self._packed_cache[key] = mask
        return mask

    def fault_count(self, line: int, voltage: float, start: int = 0, stop: int | None = None) -> int:
        """Number of active faults in ``line`` within ``[start, stop)``."""
        positions, _ = self.line_faults(line, voltage)
        if stop is None:
            stop = self.line_bits
        return int(np.count_nonzero((positions >= start) & (positions < stop)))

    def fault_counts(
        self, voltage: float, start: int = 0, stop: int | None = None
    ) -> np.ndarray:
        """Per-line active-fault counts within ``[start, stop)``, bulk.

        One vectorized pass over the whole map — the batched equivalent
        of calling :meth:`fault_count` for every line, for consumers
        that characterise the full population up front (the MBIST
        oracle schemes, the coverage sampler).
        """
        self._check_voltage(voltage)
        if stop is None:
            stop = self.line_bits
        window = (
            self._active_at(voltage)
            & (self._positions >= start)
            & (self._positions < stop)
        )
        return np.bincount(self._line_of[window], minlength=self.n_lines)

    def apply(self, line: int, voltage: float, bits: np.ndarray, offset: int = 0) -> np.ndarray:
        """Return ``bits`` as read back through the faulty cells.

        ``bits`` occupies the window ``[offset, offset + len(bits))`` of
        the line's LV layout; each active faulty cell in the window
        reads as its stuck value regardless of what was written.
        """
        self._check_line(line)
        positions, values = self.line_faults(line, voltage)
        window = (positions >= offset) & (positions < offset + len(bits))
        if not window.any():
            return bits
        out = bits.copy()
        out[positions[window] - offset] = values[window]
        return out

    def is_fault_free(self, line: int, voltage: float) -> bool:
        """True iff the line has no active faults at ``voltage``."""
        positions, _ = self.line_faults(line, voltage)
        return len(positions) == 0

    def fault_count_histogram(self, voltage: float, start: int = 0, stop: int | None = None) -> dict:
        """Map fault-count -> number of lines (empirical Figure 2)."""
        self._check_voltage(voltage)
        if stop is None:
            stop = self.line_bits
        window = (
            self._active_at(voltage)
            & (self._positions >= start)
            & (self._positions < stop)
        )
        per_line = np.bincount(
            self._line_of[window], minlength=self.n_lines
        )
        values, counts = np.unique(per_line, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}


_EMPTY_POSITIONS = np.empty(0, dtype=np.intp)
_EMPTY_VALUES = np.empty(0, dtype=np.uint8)
