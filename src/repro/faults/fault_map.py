"""Persistent stuck-at fault maps over a cache geometry.

LV SRAM failures are *persistent*: for a fixed voltage and frequency
they affect the same cells on every access, and they are *monotonic*
in voltage (a cell failing at V fails at every V' < V).  The paper
leans on both properties — Killi only needs to discover each line's
faults once per voltage.

This module reproduces both properties by construction.  Each faulty
cell is assigned a *failure threshold* ``u`` drawn uniformly from
``(0, p_floor)`` where ``p_floor = Pcell(floor_voltage)``; the cell is
faulty at voltage ``V`` iff ``u < Pcell(V)``.  Because ``Pcell`` is
monotonically decreasing in voltage, fault sets shrink monotonically
as voltage rises, exactly as in the silicon measurements.

A faulty cell is *stuck at* a fixed value (0 or 1, equally likely).
Writing the stuck value into the cell yields a **masked fault** — the
paper's Section 4.3/5.6.2 scenario — with no modelling effort: reading
back simply returns the written data until a later write unmasks it.

The line layout mirrors Killi's LV-resident bits::

    [ data (512) | parity (16) | ECC checkbits (11) ]

Which ranges actually sit in LV SRAM depends on the scheme (Killi
keeps 4 parity bits in the cache and the rest in the ECC cache); the
map exposes region-windowed queries so each scheme models its own
layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.cell_model import CellFaultModel, FaultMechanism
from repro.utils.bitpack import pack_positions

__all__ = ["LineRegion", "FaultMap"]


@dataclass(frozen=True)
class LineRegion:
    """A named bit range within a line's LV layout."""

    name: str
    offset: int
    width: int

    @property
    def stop(self) -> int:
        return self.offset + self.width

    def contains(self, bit: int) -> bool:
        return self.offset <= bit < self.stop


class FaultMap:
    """Sampled persistent fault map for ``n_lines`` lines.

    Parameters
    ----------
    n_lines:
        Number of physical lines covered (e.g. 32768 for a 2MB/64B L2).
    line_bits:
        LV bits per line (539 for data+parity+checkbits).
    cell_model:
        Pcell(V, f) model; defaults to the calibrated paper model.
    freq_ghz:
        Operating frequency.
    floor_voltage:
        Lowest voltage the map supports; faults are pre-sampled at
        ``Pcell(floor_voltage)`` and thinned for higher voltages.
    rng:
        numpy Generator for sampling (deterministic maps come from
        :class:`repro.utils.RngFactory` streams).
    mechanism:
        Failure mechanism to sample (combined by default).
    """

    def __init__(
        self,
        n_lines: int,
        line_bits: int = 539,
        cell_model: CellFaultModel | None = None,
        freq_ghz: float = 1.0,
        floor_voltage: float = 0.575,
        rng: np.random.Generator | None = None,
        mechanism: FaultMechanism = FaultMechanism.COMBINED,
    ):
        if n_lines < 1 or line_bits < 1:
            raise ValueError("n_lines and line_bits must be positive")
        self.n_lines = n_lines
        self.line_bits = line_bits
        self.cell_model = cell_model if cell_model is not None else CellFaultModel()
        self.freq_ghz = freq_ghz
        self.floor_voltage = floor_voltage
        self.mechanism = mechanism
        rng = rng if rng is not None else np.random.default_rng(0)

        self.p_floor = self.cell_model.p_cell(floor_voltage, freq_ghz, mechanism)
        counts = rng.binomial(line_bits, self.p_floor, size=n_lines)
        # line -> (positions, thresholds, stuck values); only faulty lines.
        self._faults: dict = {}
        # (line, voltage, n_bits) -> packed uint64 active-fault mask.
        self._packed_cache: dict = {}
        for line in np.nonzero(counts)[0]:
            k = int(counts[line])
            positions = np.sort(rng.choice(line_bits, size=k, replace=False))
            thresholds = rng.uniform(0.0, self.p_floor, size=k)
            values = rng.integers(0, 2, size=k, dtype=np.uint8)
            self._faults[int(line)] = (positions, thresholds, values)

    @classmethod
    def from_faults(
        cls,
        n_lines: int,
        faults: dict,
        line_bits: int = 539,
        floor_voltage: float = 0.5,
    ) -> "FaultMap":
        """Build a map with explicit stuck-at faults.

        ``faults`` maps line -> iterable of (position, stuck_value).
        The faults are active at every supported voltage.  Used for
        directed tests and fault-injection studies.
        """
        import numpy as np  # local alias for clarity

        fault_map = cls(
            n_lines=n_lines,
            line_bits=line_bits,
            floor_voltage=floor_voltage,
            rng=np.random.default_rng(0),
        )
        fault_map._faults = {}
        fault_map._packed_cache = {}
        for line, entries in faults.items():
            entries = list(entries)
            if not entries:
                continue
            positions = np.array([p for p, _ in entries], dtype=np.intp)
            order = np.argsort(positions)
            values = np.array([v for _, v in entries], dtype=np.uint8)[order]
            thresholds = np.zeros(len(entries))  # active everywhere
            fault_map._faults[int(line)] = (positions[order], thresholds, values)
        return fault_map

    def p_cell(self, voltage: float) -> float:
        """Per-cell failure probability at ``voltage`` for this map."""
        return self.cell_model.p_cell(voltage, self.freq_ghz, self.mechanism)

    def _check_line(self, line: int) -> None:
        if not 0 <= line < self.n_lines:
            raise IndexError(f"line {line} out of range [0, {self.n_lines})")

    def _check_voltage(self, voltage: float) -> None:
        if voltage < self.floor_voltage:
            raise ValueError(
                f"voltage {voltage} below map floor {self.floor_voltage}"
            )

    def has_faults(self, line: int) -> bool:
        """Fast check: any faults at all (at the map's floor voltage)?

        A False here guarantees the line is fault-free at every
        supported voltage (fault sets shrink as voltage rises).
        """
        return line in self._faults

    def line_faults(self, line: int, voltage: float):
        """(positions, stuck_values) active in ``line`` at ``voltage``."""
        self._check_line(line)
        self._check_voltage(voltage)
        entry = self._faults.get(line)
        if entry is None:
            return _EMPTY_POSITIONS, _EMPTY_VALUES
        positions, thresholds, values = entry
        active = thresholds < self.p_cell(voltage)
        return positions[active], values[active]

    def packed_line_faults(
        self, line: int, voltage: float, n_bits: int | None = None
    ) -> np.ndarray:
        """Packed uint64 mask of the active faults in ``line`` at ``voltage``.

        The mask covers offsets ``[0, n_bits)`` (``line_bits`` by
        default; positions beyond ``n_bits`` are dropped).  Because the
        active set is a pure function of (line, voltage), masks are
        cached — the per-access packed-bit paths in
        :mod:`repro.core.linestate` reuse them without re-packing.
        """
        if n_bits is None:
            n_bits = self.line_bits
        key = (line, voltage, n_bits)
        cached = self._packed_cache.get(key)
        if cached is not None:
            return cached
        positions, _ = self.line_faults(line, voltage)
        mask = pack_positions(positions[positions < n_bits], n_bits)
        mask.setflags(write=False)
        self._packed_cache[key] = mask
        return mask

    def fault_count(self, line: int, voltage: float, start: int = 0, stop: int | None = None) -> int:
        """Number of active faults in ``line`` within ``[start, stop)``."""
        positions, _ = self.line_faults(line, voltage)
        if stop is None:
            stop = self.line_bits
        return int(np.count_nonzero((positions >= start) & (positions < stop)))

    def apply(self, line: int, voltage: float, bits: np.ndarray, offset: int = 0) -> np.ndarray:
        """Return ``bits`` as read back through the faulty cells.

        ``bits`` occupies the window ``[offset, offset + len(bits))`` of
        the line's LV layout; each active faulty cell in the window
        reads as its stuck value regardless of what was written.
        """
        self._check_line(line)
        positions, values = self.line_faults(line, voltage)
        window = (positions >= offset) & (positions < offset + len(bits))
        if not window.any():
            return bits
        out = bits.copy()
        out[positions[window] - offset] = values[window]
        return out

    def is_fault_free(self, line: int, voltage: float) -> bool:
        """True iff the line has no active faults at ``voltage``."""
        positions, _ = self.line_faults(line, voltage)
        return len(positions) == 0

    def fault_count_histogram(self, voltage: float, start: int = 0, stop: int | None = None) -> dict:
        """Map fault-count -> number of lines (empirical Figure 2)."""
        self._check_voltage(voltage)
        if stop is None:
            stop = self.line_bits
        hist: dict = {}
        faulty_lines = 0
        for line, (positions, thresholds, _) in self._faults.items():
            active = thresholds < self.p_cell(voltage)
            pos = positions[active]
            count = int(np.count_nonzero((pos >= start) & (pos < stop)))
            if count:
                hist[count] = hist.get(count, 0) + 1
                faulty_lines += 1
        if self.n_lines > faulty_lines:
            hist[0] = self.n_lines - faulty_lines
        return hist


_EMPTY_POSITIONS = np.empty(0, dtype=np.intp)
_EMPTY_VALUES = np.empty(0, dtype=np.uint8)
