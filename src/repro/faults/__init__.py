"""Low-voltage SRAM fault substrate.

The paper's design is driven by silicon measurements of 14nm FinFET
SRAM failure probabilities (Ganapathy et al., DAC'17 — paper Figure 1)
and the resulting per-line fault distribution (Figure 2).  Those
measurements are proprietary; this package substitutes an analytic
model calibrated to every anchor the paper publishes:

- failures are negligible above 0.675xVDD and grow exponentially below;
- at 0.625xVDD / 1GHz, >95% of 64B lines have fewer than two faults
  (we calibrate to ~99.9%: Figure 6's claim that every technique —
  including plain SECDED, which only detects 2 — classifies all lines
  correctly at 0.625xVDD requires P[<=2 faults] ~ 1, and the viability
  of the 1:256 ECC-cache ratio requires the one-fault line population
  to be small, ~3% of lines);
- at 0.600xVDD, ~99.8% of lines have <=11 faults (Table 7);
- at 0.575xVDD, ~69.6% of lines have <=11 faults (Table 7);
- failures are monotonic: a cell failing at voltage v fails at every
  v' < v and every frequency f' > f.

Modules:

- :mod:`repro.faults.cell_model` — Pcell(V, f) for the read-disturb and
  writeability mechanisms (Figure 1).
- :mod:`repro.faults.line_model` — binomial per-line fault statistics
  (Figure 2, Table 7 capacity targets).
- :mod:`repro.faults.fault_map` — persistent stuck-at fault maps over a
  cache geometry, monotonic in voltage by construction.
- :mod:`repro.faults.soft_errors` — transient (soft) error injection,
  including spatially-adjacent multi-bit events.
"""

from repro.faults.cell_model import CellFaultModel, FaultMechanism
from repro.faults.fault_map import FaultMap, LineRegion
from repro.faults.line_model import LineFaultModel
from repro.faults.soft_errors import SoftErrorInjector

__all__ = [
    "CellFaultModel",
    "FaultMechanism",
    "LineFaultModel",
    "FaultMap",
    "LineRegion",
    "SoftErrorInjector",
]
