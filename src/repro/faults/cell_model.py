"""SRAM cell failure-probability model (paper Figure 1).

``Pcell(V, f)`` is modelled as piecewise-linear in (V, log10 Pcell)
through a calibrated anchor table, separately for the two mechanisms
the silicon tests measured:

- **writeability** — the cell cannot change state within the wordline
  pulse; the dominant (higher-probability) mechanism at LV;
- **read disturb** — the cell flips state when read.

Frequency dependence: the silicon data spans 400MHz-1GHz with failures
monotonically increasing in frequency; we model a multiplicative
``10^(alpha * (f_GHz - 1))`` factor (alpha > 0), which preserves the
monotonicity the paper relies on.  All paper experiments run at 1GHz,
where the factor is exactly 1.

Voltages throughout are *normalized to nominal VDD* exactly as in the
paper (the foundry data is confidential, so the paper itself only ever
reports normalized voltages).
"""

from __future__ import annotations

import enum
from bisect import bisect_left

import numpy as np

__all__ = ["FaultMechanism", "CellFaultModel", "DEFAULT_ANCHORS"]


class FaultMechanism(enum.Enum):
    """Which silicon failure mechanism a probability refers to."""

    WRITEABILITY = "writeability"
    READ_DISTURB = "read_disturb"
    COMBINED = "combined"


# (normalized voltage, combined Pcell at 1GHz) anchors.  Calibrated so
# that the derived per-line statistics hit the paper's published
# anchors (see package docstring).  The writeability curve is the
# combined curve scaled down so that writeability + read-disturb
# recombine to these values.
DEFAULT_ANCHORS = (
    (0.500, 1.2e-1),
    (0.550, 4.0e-2),
    (0.575, 1.92e-2),
    (0.600, 8.2e-3),
    (0.625, 6.0e-5),
    (0.650, 1.0e-6),
    (0.675, 1.0e-8),
    (0.700, 1.0e-9),
    (1.000, 1.0e-10),
)

#: Read-disturb tracks writeability with the same V-shape at a lower
#: magnitude (Figure 1 shows the two curves roughly parallel).
READ_DISTURB_FACTOR = 0.4

#: Frequency sensitivity: decades of Pcell per GHz.
FREQUENCY_ALPHA = 2.0


class CellFaultModel:
    """Analytic Pcell(V, f) calibrated to the paper's anchors.

    Parameters
    ----------
    anchors:
        Sequence of (normalized_voltage, probability_at_1GHz) pairs for
        the writeability mechanism, strictly increasing in voltage and
        decreasing in probability.
    read_disturb_factor:
        Multiplier mapping the writeability curve to the read-disturb
        curve.
    frequency_alpha:
        Decades of probability change per GHz of frequency change.
    """

    def __init__(
        self,
        anchors=DEFAULT_ANCHORS,
        read_disturb_factor: float = READ_DISTURB_FACTOR,
        frequency_alpha: float = FREQUENCY_ALPHA,
    ):
        anchors = sorted(anchors)
        voltages = [v for v, _ in anchors]
        probs = [p for _, p in anchors]
        if len(anchors) < 2:
            raise ValueError("need at least two anchors")
        if any(p <= 0 or p >= 1 for p in probs):
            raise ValueError("anchor probabilities must lie in (0, 1)")
        if any(probs[i] <= probs[i + 1] for i in range(len(probs) - 1)):
            raise ValueError("Pcell must strictly decrease with voltage")
        self._voltages = voltages
        self._log_probs = [float(np.log10(p)) for p in probs]
        self.read_disturb_factor = read_disturb_factor
        self.frequency_alpha = frequency_alpha

    def _interp_log10(self, voltage: float) -> float:
        """log10 Pcell at 1GHz by piecewise-linear interpolation.

        Slopes are extrapolated beyond the anchor range (clamped to
        probability <= 0.5 at the low end).
        """
        vs, lps = self._voltages, self._log_probs
        if voltage <= vs[0]:
            slope = (lps[1] - lps[0]) / (vs[1] - vs[0])
            return lps[0] + slope * (voltage - vs[0])
        if voltage >= vs[-1]:
            slope = (lps[-1] - lps[-2]) / (vs[-1] - vs[-2])
            return lps[-1] + slope * (voltage - vs[-1])
        i = bisect_left(vs, voltage)
        if vs[i] == voltage:
            return lps[i]
        frac = (voltage - vs[i - 1]) / (vs[i] - vs[i - 1])
        return lps[i - 1] + frac * (lps[i] - lps[i - 1])

    def p_cell(
        self,
        voltage: float,
        freq_ghz: float = 1.0,
        mechanism: FaultMechanism = FaultMechanism.COMBINED,
    ) -> float:
        """Per-cell failure probability at the given operating point.

        ``voltage`` is normalized to nominal VDD.  The combined
        mechanism is ``1 - (1-Pw)(1-Pr)``.
        """
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        if freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        log_p = self._interp_log10(voltage)
        log_p += self.frequency_alpha * (freq_ghz - 1.0)
        p_combined = min(10.0**log_p, 0.5)
        if mechanism is FaultMechanism.COMBINED:
            return p_combined
        # Split the combined curve into its two mechanisms such that
        # 1 - (1-Pw)(1-Pr) == Pcombined with Pr = factor * Pw.  To first
        # order Pw = Pcombined / (1 + factor), exact via the quadratic.
        factor = self.read_disturb_factor
        if factor == 0.0:
            p_write = p_combined
        else:
            # factor*Pw^2 - (1+factor)*Pw + Pcombined == 0
            disc = (1.0 + factor) ** 2 - 4.0 * factor * p_combined
            p_write = ((1.0 + factor) - disc**0.5) / (2.0 * factor)
        if mechanism is FaultMechanism.WRITEABILITY:
            return min(p_write, 0.5)
        return min(p_write * factor, 0.5)

    def curve(self, voltages, freq_ghz: float = 1.0, mechanism=FaultMechanism.COMBINED):
        """Vector of Pcell over an iterable of voltages (Figure 1 series)."""
        return np.array([self.p_cell(v, freq_ghz, mechanism) for v in voltages])
