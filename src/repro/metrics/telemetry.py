"""Lightweight counters + timers for campaign telemetry.

A single process-wide :data:`METRICS` instance collects named counters
and timing observations from the campaign runner, the result-cache
path and the simulation engine.  The design constraint is *near-zero
overhead when disabled*: every mutating call is guarded by one
attribute check, and :meth:`Metrics.timer` returns a shared no-op
context manager instead of allocating one.

Telemetry is disabled by default and switched on either explicitly
(``METRICS.enable()``, the CLI ``--telemetry`` flag) or by setting the
``REPRO_TELEMETRY`` environment variable — the env var is also how
enablement propagates into process-pool workers.  Workers return their
per-cell deltas via :meth:`Metrics.drain`, which the parent folds back
in with :meth:`Metrics.merge`, so a parallel campaign's summary covers
work done in every process.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from repro.utils.tables import format_table

__all__ = ["Metrics", "METRICS", "TELEMETRY_ENV"]

#: Environment switch: any value other than "" / "0" enables telemetry
#: (checked once at import; also how enablement reaches pool workers).
TELEMETRY_ENV = "REPRO_TELEMETRY"


class _NullTimer:
    """Shared no-op context manager returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_TIMER = _NullTimer()


class _Timer:
    """Context manager recording one wall-clock observation."""

    __slots__ = ("_metrics", "_name", "_start")

    def __init__(self, metrics: "Metrics", name: str):
        self._metrics = metrics
        self._name = name

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._metrics.observe(self._name, time.perf_counter() - self._start)
        return False


class Metrics:
    """Named counters and (count, total, max) timing aggregates."""

    __slots__ = ("enabled", "counters", "timers")

    def __init__(self, enabled: Optional[bool] = None):
        if enabled is None:
            enabled = os.environ.get(TELEMETRY_ENV, "") not in ("", "0")
        self.enabled = bool(enabled)
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, List[float]] = {}

    # -- lifecycle -----------------------------------------------------------

    def enable(self, propagate_env: bool = True) -> None:
        """Start recording; optionally mark the environment so pool
        workers (which re-read :data:`TELEMETRY_ENV` on import) record
        too."""
        self.enabled = True
        if propagate_env:
            os.environ[TELEMETRY_ENV] = "1"

    def disable(self, propagate_env: bool = True) -> None:
        self.enabled = False
        if propagate_env:
            os.environ.pop(TELEMETRY_ENV, None)

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()

    # -- recording -----------------------------------------------------------

    def incr(self, name: str, n: int = 1) -> None:
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, seconds: float) -> None:
        if self.enabled:
            stat = self.timers.get(name)
            if stat is None:
                self.timers[name] = [1, seconds, seconds]
            else:
                stat[0] += 1
                stat[1] += seconds
                if seconds > stat[2]:
                    stat[2] = seconds

    def timer(self, name: str):
        """``with METRICS.timer("phase"):`` — no-op object when disabled."""
        return _Timer(self, name) if self.enabled else _NULL_TIMER

    # -- aggregation ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready view of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "timers": {
                name: {
                    "count": int(count),
                    "total_s": round(total, 6),
                    "max_s": round(worst, 6),
                }
                for name, (count, total, worst) in self.timers.items()
            },
        }

    def drain(self) -> dict:
        """Snapshot and reset — a worker's per-cell delta for the parent."""
        snap = self.snapshot()
        self.reset()
        return snap

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`drain`/:meth:`snapshot` payload into this
        instance (used by the campaign runner to aggregate worker
        telemetry).  Merging ignores the enabled flag so late-arriving
        worker deltas are never dropped."""
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + int(value)
        for name, stat in snapshot.get("timers", {}).items():
            count = int(stat["count"])
            total = float(stat["total_s"])
            worst = float(stat["max_s"])
            mine = self.timers.get(name)
            if mine is None:
                self.timers[name] = [count, total, worst]
            else:
                mine[0] += count
                mine[1] += total
                if worst > mine[2]:
                    mine[2] = worst

    # -- presentation --------------------------------------------------------

    def summary_table(self, title: str = "telemetry") -> str:
        """Counters and timers as one aligned ASCII table."""
        rows = []
        for name in sorted(self.counters):
            rows.append((name, self.counters[name], "", "", ""))
        for name in sorted(self.timers):
            count, total, worst = self.timers[name]
            rows.append((
                name,
                int(count),
                f"{total:.3f}",
                f"{total / count:.4f}" if count else "",
                f"{worst:.4f}",
            ))
        if not rows:
            rows.append(("(no events recorded)", "", "", "", ""))
        return format_table(
            ["metric", "count", "total_s", "mean_s", "max_s"],
            rows,
            title=title,
        )


#: The process-wide telemetry sink.
METRICS = Metrics()
