"""Unified metrics namespace.

Two halves, previously split across ``repro.utils.metrics`` (the
process-wide telemetry sink) and ``repro.harness.metrics`` (the
harness-level facade over it):

- :mod:`repro.metrics.telemetry` — the :class:`Metrics` counters +
  timers sink and its process-wide :data:`METRICS` instance.  Off by
  default; enable with ``METRICS.enable()``, the CLI ``--telemetry``
  flag, or the ``REPRO_TELEMETRY`` environment variable.
- :mod:`repro.metrics.derived` — pure derived-metric helpers
  (:func:`geomean`, :func:`speedup`) used by the bench harness.

The old module paths remain as deprecation shims.
"""

from __future__ import annotations

from repro.metrics.derived import geomean, speedup
from repro.metrics.telemetry import METRICS, Metrics, TELEMETRY_ENV

__all__ = [
    "Metrics",
    "METRICS",
    "TELEMETRY_ENV",
    "geomean",
    "speedup",
]
