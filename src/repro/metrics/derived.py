"""Derived-metric helpers shared by the bench harness and reports.

Pure functions over recorded numbers — no state, no telemetry sink.
The process-wide sink lives in :mod:`repro.metrics.telemetry`.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["geomean", "speedup"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    The bench harness summarizes per-cell speedup ratios with a
    geometric mean (the conventional aggregate for ratios: it is
    symmetric in which configuration is the baseline).  Raises
    ``ValueError`` on an empty or non-positive input, which would
    otherwise silently produce a meaningless aggregate.
    """
    total = 0.0
    count = 0
    for value in values:
        if value <= 0.0:
            raise ValueError(f"geomean requires positive values, got {value!r}")
        total += math.log(value)
        count += 1
    if count == 0:
        raise ValueError("geomean of an empty sequence")
    return math.exp(total / count)


def speedup(baseline_seconds: Sequence[float], candidate_seconds: Sequence[float]) -> float:
    """Geomean speedup of *candidate* over *baseline* (>1 = faster).

    Inputs are paired per-cell wall-clock times; the cells must line
    up index-for-index.
    """
    if len(baseline_seconds) != len(candidate_seconds):
        raise ValueError(
            "speedup needs paired samples: "
            f"{len(baseline_seconds)} baseline vs {len(candidate_seconds)} candidate"
        )
    return geomean(
        b / c for b, c in zip(baseline_seconds, candidate_seconds)
    )
