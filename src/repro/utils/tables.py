"""Plain-text table rendering for harness output.

The experiment harness prints every reproduced table/figure as an
aligned ASCII table so the output can be diffed against the paper's
numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _render_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render rows as an aligned ASCII table.

    ``headers`` labels the columns; each row must have the same arity.
    Floats are rendered with 4 significant digits.
    """
    str_rows = [[_render_cell(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row arity does not match header arity")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence) -> str:
    """Render an (x, y) series as a two-column table titled ``name``."""
    return format_table(["x", name], list(zip(xs, ys)))
