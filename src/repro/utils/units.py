"""Storage-size helpers.

The paper reports area overheads in bits, bytes and KB; these helpers
keep the conversions in one place so the area model and the harness
agree on formatting.
"""

from __future__ import annotations

__all__ = ["KIB", "MIB", "bits_to_bytes_count", "bits_to_kib", "format_size_bits"]

KIB = 1024
MIB = 1024 * 1024


def bits_to_bytes_count(bits: int) -> float:
    """Bits → bytes (may be fractional for odd bit counts)."""
    return bits / 8.0


def bits_to_kib(bits: int) -> float:
    """Bits → KiB."""
    return bits / 8.0 / KIB


def format_size_bits(bits: int) -> str:
    """Human-readable rendering of a bit count.

    >>> format_size_bits(41)
    '41b'
    >>> format_size_bits(8 * 1024 * 10)
    '10.00KiB'
    """
    if bits < 8 * KIB:
        return f"{bits}b"
    return f"{bits / 8.0 / KIB:.2f}KiB"
