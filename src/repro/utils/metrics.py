"""Deprecated alias of :mod:`repro.metrics.telemetry`.

The telemetry sink moved to the unified :mod:`repro.metrics`
namespace; this shim keeps ``from repro.utils.metrics import METRICS``
sites working while emitting a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.metrics.telemetry import METRICS, Metrics, TELEMETRY_ENV

__all__ = ["Metrics", "METRICS", "TELEMETRY_ENV"]

warnings.warn(
    "repro.utils.metrics is deprecated; import from repro.metrics instead",
    DeprecationWarning,
    stacklevel=2,
)
