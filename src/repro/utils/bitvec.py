"""Bit-vector helpers backed by numpy arrays.

Throughout the code base a *bit vector* is a one-dimensional
``numpy.ndarray`` with ``dtype=uint8`` whose entries are 0 or 1.  Index 0
is the least-significant bit when converting to and from integers.  The
error-coding substrate (:mod:`repro.ecc`) treats these as vectors over
GF(2); the cache data path treats them as raw line contents.

Using plain arrays (rather than a wrapper class) keeps the hot paths in
the simulator free of Python attribute lookups and lets callers use
ordinary numpy operations (``^`` for GF(2) addition, slicing for
segmentation, ``np.count_nonzero`` for weights).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "zeros",
    "ones",
    "random_bits",
    "bits_from_int",
    "bits_to_int",
    "bits_from_bytes",
    "bits_to_bytes",
    "popcount",
    "parity",
    "flip_bits",
]


def zeros(n: int) -> np.ndarray:
    """Return an all-zero bit vector of length ``n``."""
    return np.zeros(n, dtype=np.uint8)


def ones(n: int) -> np.ndarray:
    """Return an all-one bit vector of length ``n``."""
    return np.ones(n, dtype=np.uint8)


def random_bits(rng: np.random.Generator, n: int) -> np.ndarray:
    """Return ``n`` uniformly random bits drawn from ``rng``."""
    return rng.integers(0, 2, size=n, dtype=np.uint8)


def bits_from_int(value: int, n: int) -> np.ndarray:
    """Convert a non-negative integer to an ``n``-bit vector (LSB first).

    Raises ``ValueError`` if ``value`` does not fit in ``n`` bits.
    """
    if value < 0:
        raise ValueError("bit vectors encode non-negative integers only")
    if value >> n:
        raise ValueError(f"value {value} does not fit in {n} bits")
    out = np.empty(n, dtype=np.uint8)
    for i in range(n):
        out[i] = (value >> i) & 1
    return out


def bits_to_int(bits: np.ndarray) -> int:
    """Convert a bit vector (LSB first) back to a Python integer."""
    value = 0
    for i in np.nonzero(bits)[0]:
        value |= 1 << int(i)
    return value


def bits_from_bytes(data: bytes) -> np.ndarray:
    """Unpack ``bytes`` into a bit vector, LSB-first within each byte."""
    arr = np.frombuffer(data, dtype=np.uint8)
    return np.unpackbits(arr, bitorder="little")


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a bit vector (length divisible by 8) back into ``bytes``."""
    if len(bits) % 8:
        raise ValueError("bit vector length must be a multiple of 8")
    return np.packbits(bits, bitorder="little").tobytes()


def popcount(bits: np.ndarray) -> int:
    """Number of set bits."""
    return int(np.count_nonzero(bits))


def parity(bits: np.ndarray) -> int:
    """Even parity of the vector: 0 if the weight is even, 1 if odd."""
    return int(np.count_nonzero(bits) & 1)


def flip_bits(bits: np.ndarray, positions) -> np.ndarray:
    """Return a copy of ``bits`` with the given positions flipped."""
    out = bits.copy()
    out[np.asarray(positions, dtype=np.intp)] ^= 1
    return out
