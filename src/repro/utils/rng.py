"""Deterministic named random streams.

Every stochastic component of the simulator (fault-map sampling, trace
generation, soft-error injection, replacement tie-breaking) draws from
its own named stream derived from a single experiment seed.  This keeps
experiments reproducible while guaranteeing that, for example, changing
the trace generator does not perturb the fault map.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngFactory"]


class RngFactory:
    """Factory producing independent ``numpy.random.Generator`` streams.

    Streams are derived from a root seed and a stable string name.  The
    same (seed, name) pair always yields the same stream, and distinct
    names yield statistically independent streams via ``SeedSequence``
    spawning keys.

    Example
    -------
    >>> rngs = RngFactory(seed=7)
    >>> faults = rngs.stream("fault-map")
    >>> trace = rngs.stream("trace/xsbench")
    """

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.seed = seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the deterministic stream identified by ``name``."""
        # crc32 gives a stable 32-bit key per name across runs/platforms.
        key = zlib.crc32(name.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
        return np.random.default_rng(seq)

    def child(self, name: str) -> "RngFactory":
        """Return a factory whose streams are namespaced under ``name``."""
        key = zlib.crc32(name.encode("utf-8"))
        return _ChildRngFactory(self.seed, (key,))


class _ChildRngFactory(RngFactory):
    """Internal: RngFactory carrying a spawn-key prefix."""

    def __init__(self, seed: int, prefix: tuple):
        super().__init__(seed)
        self._prefix = prefix

    def stream(self, name: str) -> np.random.Generator:
        key = zlib.crc32(name.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=self._prefix + (key,))
        return np.random.default_rng(seq)

    def child(self, name: str) -> "RngFactory":
        key = zlib.crc32(name.encode("utf-8"))
        return _ChildRngFactory(self.seed, self._prefix + (key,))
