"""Packed-bit (uint64 word) representations of sparse bit sets.

The batched classification kernels (:mod:`repro.kernels`) and the
packed per-line error tracker (:mod:`repro.core.linestate`) represent a
set of bit offsets as a row of ``uint64`` words — offset ``o`` lives in
word ``o >> 6``, bit ``o & 63``.  Membership tests, intersections and
parities then become word-wide AND/XOR plus popcounts, which numpy
evaluates across whole matrices at once.

All helpers operate on either a single row (shape ``(words,)``) or a
matrix of rows (shape ``(n, words)``).
"""

from __future__ import annotations

import sys

import numpy as np

__all__ = [
    "n_words",
    "pack_positions",
    "pack_positions_matrix",
    "pack_bit_matrix",
    "unpack_positions",
    "popcount64",
    "mask_from_bool",
]

_LITTLE_ENDIAN = sys.byteorder == "little"

_ONE = np.uint64(1)
_SIX = np.uint64(6)
_SIXTY_THREE = np.uint64(63)


def n_words(n_bits: int) -> int:
    """Number of uint64 words needed to hold ``n_bits`` bit offsets."""
    if n_bits < 0:
        raise ValueError("n_bits must be non-negative")
    return (n_bits + 63) >> 6


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def popcount64(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint64 array."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _BYTE_POPCOUNT = np.unpackbits(
        np.arange(256, dtype=np.uint8)[:, None], axis=1
    ).sum(axis=1, dtype=np.uint8)

    def popcount64(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint64 array (byte-LUT fallback)."""
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        counts = _BYTE_POPCOUNT[as_bytes].reshape(*words.shape, 8)
        return counts.sum(axis=-1, dtype=np.uint64)


def pack_positions(positions, n_bits: int) -> np.ndarray:
    """Pack an iterable of bit offsets into one uint64 row.

    Offsets appearing multiple times are idempotent (set semantics).
    """
    row = np.zeros(n_words(n_bits), dtype=np.uint64)
    positions = np.asarray(positions, dtype=np.int64).ravel()
    if positions.size == 0:
        return row
    if positions.min() < 0 or positions.max() >= n_bits:
        raise IndexError(f"positions outside [0, {n_bits})")
    unsigned = positions.astype(np.uint64)
    np.bitwise_or.at(row, unsigned >> _SIX, _ONE << (unsigned & _SIXTY_THREE))
    return row


def pack_positions_matrix(
    offsets: np.ndarray, valid: np.ndarray, n_bits: int
) -> np.ndarray:
    """Pack per-row offset lists into a ``(n, words)`` uint64 matrix.

    ``offsets`` has shape ``(n, k_max)``; ``valid`` is a same-shape
    boolean mask selecting which entries are real (rows may hold fewer
    than ``k_max`` offsets).  Invalid entries are ignored; their values
    need not be in range.
    """
    offsets = np.asarray(offsets)
    valid = np.asarray(valid, dtype=bool)
    if offsets.shape != valid.shape or offsets.ndim != 2:
        raise ValueError("offsets and valid must share a (n, k) shape")
    n, k_max = offsets.shape
    packed = np.zeros((n, n_words(n_bits)), dtype=np.uint64)
    rows_base = np.arange(n)
    # One vectorized scatter per offset column: within a column each
    # row contributes at most one bit, so the |= has no write races.
    for j in range(k_max):
        rows = rows_base[valid[:, j]]
        if rows.size == 0:
            continue
        column = offsets[rows, j].astype(np.uint64)
        packed[rows, column >> _SIX] |= _ONE << (column & _SIXTY_THREE)
    return packed


def pack_bit_matrix(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(n, n_bits)`` 0/1 matrix into ``(n, words)`` uint64 rows."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 2:
        raise ValueError("expected a (n, n_bits) matrix")
    n, m = bits.shape
    words = n_words(m)
    if _LITTLE_ENDIAN:
        as_bytes = np.packbits(bits, axis=1, bitorder="little")
        padded = np.zeros((n, words * 8), dtype=np.uint8)
        padded[:, : as_bytes.shape[1]] = as_bytes
        return padded.view(np.uint64)
    packed = np.zeros((n, words), dtype=np.uint64)  # pragma: no cover
    for offset in range(m):  # pragma: no cover
        column = bits[:, offset].astype(np.uint64)
        packed[:, offset >> 6] |= column << np.uint64(offset & 63)
    return packed  # pragma: no cover


def unpack_positions(row: np.ndarray) -> np.ndarray:
    """Bit offsets set in a packed row, in increasing order."""
    row = np.ascontiguousarray(row, dtype=np.uint64)
    if _LITTLE_ENDIAN:
        bits = np.unpackbits(row.view(np.uint8), bitorder="little")
        return np.nonzero(bits)[0]
    positions = []  # pragma: no cover
    for word_index, word in enumerate(row):  # pragma: no cover
        word = int(word)
        while word:
            low = word & -word
            positions.append((word_index << 6) + low.bit_length() - 1)
            word ^= low
    return np.asarray(positions, dtype=np.intp)  # pragma: no cover


def mask_from_bool(member: np.ndarray) -> np.ndarray:
    """Pack a boolean membership vector of length ``n_bits`` into a row."""
    member = np.asarray(member, dtype=bool)
    return pack_positions(np.nonzero(member)[0], len(member))
