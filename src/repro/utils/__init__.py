"""Shared low-level utilities for the Killi reproduction.

This package hosts the substrate shared by every other subsystem:

- :mod:`repro.utils.bitvec` — bit vectors on top of ``numpy`` used by the
  error-coding substrate and the bit-accurate cache data path.
- :mod:`repro.utils.rng` — deterministic, named random streams so that
  fault maps, traces and soft-error injection are independently seeded
  and reproducible.
- :mod:`repro.utils.units` — storage-size helpers (bits/bytes/KiB).
- :mod:`repro.utils.tables` — plain-text table rendering for the
  experiment harness output.
"""

from repro.utils.bitvec import (
    bits_from_bytes,
    bits_from_int,
    bits_to_bytes,
    bits_to_int,
    parity,
    popcount,
    random_bits,
    zeros,
)
from repro.utils.rng import RngFactory
from repro.utils.tables import format_table
from repro.utils.units import bits_to_kib, format_size_bits

__all__ = [
    "bits_from_bytes",
    "bits_from_int",
    "bits_to_bytes",
    "bits_to_int",
    "parity",
    "popcount",
    "random_bits",
    "zeros",
    "RngFactory",
    "format_table",
    "bits_to_kib",
    "format_size_bits",
]
