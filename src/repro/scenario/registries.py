"""The four experiment-axis registries and their entry conventions.

Every pluggable component of a scenario resolves through one of these
string-keyed registries (:class:`~repro.scenario.registry.Registry`):

===============  =====================================================
registry         entry convention
===============  =====================================================
SCHEME_REGISTRY  :class:`SchemeFactory` — builds a protection scheme
                 from a :class:`SchemeBuildContext`
WORKLOAD_REGISTRY
                 a :class:`~repro.traces.generators.WorkloadSpec`, or
                 a callable ``(name, accesses_per_cu, n_cus, rng) ->
                 Trace``
ENGINE_REGISTRY  a callable ``(simulator, trace) -> per-CU cycles``
                 (the inner loop of ``GpuSimulator.run``)
SUBSTRATE_REGISTRY
                 a :class:`SubstrateSpec` — tag-store / LRU factories
===============  =====================================================

Built-in entries self-register from the module that owns them
(``repro.baselines`` registers the baseline schemes, ``repro.core``'s
Killi family registers via :mod:`repro.scenario.schemes`,
``repro.traces.workloads`` the ten workloads, ``repro.gpu.engine`` the
two inner loops, ``repro.cache.soa`` the two substrates).  The lazy
loaders below import those modules on first use, so third-party code
can ``SCHEME_REGISTRY.register(...)`` its own entries without touching
any harness module — exactly the extension point the registries exist
for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.scenario.registry import Registry

__all__ = [
    "SCHEME_REGISTRY",
    "WORKLOAD_REGISTRY",
    "ENGINE_REGISTRY",
    "SUBSTRATE_REGISTRY",
    "SchemeBuildContext",
    "SchemeFactory",
    "SubstrateSpec",
]


def _load_schemes() -> None:
    import repro.baselines  # noqa: F401  (registers baseline/dected/flair/msecc)
    import repro.scenario.schemes  # noqa: F401  (registers the killi family)


def _load_workloads() -> None:
    import repro.traces.workloads  # noqa: F401


def _load_engines() -> None:
    import repro.gpu.engine  # noqa: F401


def _load_substrates() -> None:
    import repro.cache.soa  # noqa: F401


SCHEME_REGISTRY = Registry("scheme", loader=_load_schemes)
WORKLOAD_REGISTRY = Registry("workload", loader=_load_workloads)
ENGINE_REGISTRY = Registry("engine", loader=_load_engines)
SUBSTRATE_REGISTRY = Registry("substrate", loader=_load_substrates)


# -- scheme entries -----------------------------------------------------------


@dataclass
class SchemeBuildContext:
    """Everything a scheme factory may consult when constructing.

    ``overrides`` holds :class:`~repro.core.KilliConfig` field
    overrides (ablation switches) and ``write_back`` selects the
    write-back Killi variant; factories that support neither call
    :meth:`require_plain`.
    """

    gpu_config: Any
    fault_map: Any
    voltage: float
    rngs: Any
    overrides: Dict[str, Any] = field(default_factory=dict)
    write_back: bool = False

    @property
    def geometry(self):
        """The protected cache's geometry (the shared L2)."""
        return self.gpu_config.l2

    def require_plain(self, name: str) -> None:
        """Reject Killi-only options for schemes that don't take them."""
        if self.overrides or self.write_back:
            raise ValueError(
                f"scheme_config/write_back only apply to Killi schemes, got {name!r}"
            )


class SchemeFactory:
    """A registered constructor for one experiment-axis scheme name.

    The name grammar is parsed exactly once — by the registry lookup
    that produced this factory — so ``params`` already carries the
    decoded parameters (e.g. ``{"ecc_ratio": 64, "code": None}`` for
    ``killi_1:64``) and ``scheme_class`` the class the name maps to.
    """

    def __init__(
        self,
        name: str,
        *,
        kind: str,
        scheme_class: type,
        builder: Callable[["SchemeFactory", SchemeBuildContext], Any],
        params: Optional[Dict[str, Any]] = None,
        accepts_overrides: bool = False,
        validate_options: Optional[Callable] = None,
    ):
        self.name = name
        self.kind = kind
        self.scheme_class = scheme_class
        self.params = dict(params or {})
        self.accepts_overrides = accepts_overrides
        self._builder = builder
        self._validate_options = validate_options

    def build(self, ctx: SchemeBuildContext):
        """Construct the protection scheme."""
        return self._builder(self, ctx)

    def check_options(self, overrides: Optional[dict], write_back: bool) -> None:
        """Validate Killi-only options without constructing anything."""
        if self._validate_options is not None:
            self._validate_options(self, dict(overrides or {}), write_back)
        elif (overrides or write_back) and not self.accepts_overrides:
            raise ValueError(
                f"scheme_config/write_back only apply to Killi schemes, "
                f"got {self.name!r}"
            )

    def describe(self) -> dict:
        """Resolution summary (class + decoded constructor parameters)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "class": self.scheme_class,
            "params": dict(self.params),
            "accepts_overrides": self.accepts_overrides,
        }

    def __repr__(self) -> str:
        return (
            f"SchemeFactory({self.name!r}, kind={self.kind!r}, "
            f"class={self.scheme_class.__name__}, params={self.params})"
        )


# -- substrate entries --------------------------------------------------------


@dataclass(frozen=True)
class SubstrateSpec:
    """Tag-store and LRU factories for one cache substrate."""

    name: str
    tag_store: Callable  # (geometry) -> tag store
    lru: Callable  # (geometry) -> LRU state
    description: str = ""
    reference: bool = False
    """True for the pinned reference implementation of the unified
    :class:`repro.cache.core.CacheModel` — the substrate equivalence
    suites compare every other substrate against this one."""
