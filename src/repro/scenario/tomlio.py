"""Minimal TOML read/write for scenario files.

Scenario configs serialise to a deliberately small TOML subset —
nested tables, bare keys, and scalar/array values — so that:

- :func:`dumps` can emit it without any third-party writer
  dependency, and
- :func:`loads` can fall back to a tiny subset parser on interpreters
  without :mod:`tomllib` (Python < 3.11; the repo supports 3.9+ and
  must not grow dependencies).

On 3.11+ the stdlib parser is used, so hand-written scenario files may
use the full language there; files *emitted by this module* (and the
committed ``examples/scenarios/*.toml``) stick to the subset and parse
identically under both readers.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

try:  # Python 3.11+
    import tomllib as _tomllib
except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
    _tomllib = None

__all__ = ["loads", "dumps", "TomlError"]


class TomlError(ValueError):
    """Malformed TOML (raised by both the stdlib and fallback readers)."""


# -- writing ------------------------------------------------------------------


def _format_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        # TOML floats need a decimal point or exponent.
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    if isinstance(value, str):
        return json.dumps(value)  # valid TOML basic string
    raise TypeError(f"cannot serialise {type(value).__name__} to TOML: {value!r}")


def _format_value(value: Any) -> str:
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_scalar(v) for v in value) + "]"
    return _format_scalar(value)


def dumps(data: Dict[str, Any], *, header: Optional[str] = None) -> str:
    """Serialise a nested dict to TOML (scalar keys first, then tables).

    ``None`` values are skipped — absence is how optional knobs (e.g.
    ``engine.substrate``) encode "use the session default".
    """
    lines: List[str] = []
    if header:
        lines.extend(f"# {line}".rstrip() for line in header.splitlines())
        lines.append("")
    _emit_table(data, (), lines)
    return "\n".join(lines).rstrip("\n") + "\n"


def _emit_table(data: Dict[str, Any], prefix: Tuple[str, ...], lines: List[str]) -> None:
    scalars = [(k, v) for k, v in data.items() if v is not None and not isinstance(v, dict)]
    tables = [(k, v) for k, v in data.items() if isinstance(v, dict)]
    if prefix and (scalars or not tables):
        lines.append(f"[{'.'.join(prefix)}]")
    for key, value in scalars:
        if not _BARE_KEY(key):
            raise TypeError(f"key {key!r} is not a bare TOML key")
        lines.append(f"{key} = {_format_value(value)}")
    if scalars or not prefix:
        lines.append("")
    for key, value in tables:
        if not _BARE_KEY(key):
            raise TypeError(f"key {key!r} is not a bare TOML key")
        _emit_table(value, prefix + (key,), lines)


def _BARE_KEY(key: str) -> bool:
    return bool(key) and all(c.isalnum() or c in "-_" for c in key)


# -- reading ------------------------------------------------------------------


def loads(text: str) -> Dict[str, Any]:
    """Parse TOML text into a nested dict."""
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise TomlError(str(exc)) from None
    return _loads_subset(text)


def _loads_subset(text: str) -> Dict[str, Any]:  # pragma: no cover - 3.9/3.10 path
    """Parse the emitted subset: ``[a.b]`` headers + ``key = value``.

    Values are scalars or single-line arrays, whose TOML syntax for
    strings/ints/floats/bools coincides with JSON — so a JSON parse of
    the right-hand side is exact for the subset.
    """
    root: Dict[str, Any] = {}
    current = root
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            path = [part.strip() for part in line[1:-1].split(".")]
            if not all(_BARE_KEY(part) for part in path):
                raise TomlError(f"line {lineno}: unsupported table header {line!r}")
            current = root
            for part in path:
                current = current.setdefault(part, {})
                if not isinstance(current, dict):
                    raise TomlError(f"line {lineno}: {part!r} is not a table")
            continue
        key, sep, value = line.partition("=")
        key = key.strip()
        if not sep or not _BARE_KEY(key):
            raise TomlError(f"line {lineno}: cannot parse {raw!r}")
        try:
            current[key] = json.loads(value.strip())
        except ValueError:
            raise TomlError(f"line {lineno}: unsupported value {value.strip()!r}") from None
    return root


def _strip_comment(line: str) -> str:  # pragma: no cover - 3.9/3.10 path
    out, in_string = [], False
    for char in line:
        if char == '"':
            in_string = not in_string
        if char == "#" and not in_string:
            break
        out.append(char)
    return "".join(out)
