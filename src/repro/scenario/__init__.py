"""Declarative scenario layer: the one path every experiment flows through.

- :mod:`repro.scenario.config` — the frozen, versioned
  :class:`ScenarioConfig` dataclass tree (gpu + scheme + workload +
  fault + engine sections) with TOML/JSON serialisation, schema-version
  checks and canonical fingerprinting;
- :mod:`repro.scenario.registry` / ``registries`` — string-keyed
  plugin registries for protection schemes, workload generators,
  engines and substrates (built-ins self-register from the modules
  that own them; third-party code registers without touching the
  harness);
- :mod:`repro.scenario.schemes` — the Killi scheme family and the
  registry-backed ``make_scheme`` / ``scheme_names``;
- :mod:`repro.scenario.runfile` — committed ``.toml`` scenario files:
  load / validate / expand / run through the parallel runner
  (``killi-experiment scenario run|list|validate`` on the CLI).

This ``__init__`` is import-light on purpose: only the registries are
loaded eagerly (they are the self-registration target for every other
layer), while the config/schemes/runfile symbols resolve lazily via
PEP 562 so that ``repro.baselines`` & friends can register during
their own import without cycles.
"""

from repro.scenario.registries import (
    ENGINE_REGISTRY,
    SCHEME_REGISTRY,
    SUBSTRATE_REGISTRY,
    WORKLOAD_REGISTRY,
    SchemeBuildContext,
    SchemeFactory,
    SubstrateSpec,
)
from repro.scenario.registry import Registry

__all__ = [
    "Registry",
    "SCHEME_REGISTRY",
    "WORKLOAD_REGISTRY",
    "ENGINE_REGISTRY",
    "SUBSTRATE_REGISTRY",
    "SchemeBuildContext",
    "SchemeFactory",
    "SubstrateSpec",
    # lazy (PEP 562):
    "SCHEMA_VERSION",
    "ScenarioConfig",
    "GpuSection",
    "SchemeSection",
    "WorkloadSection",
    "FaultSection",
    "EngineSection",
    "cell_scenario",
    "as_scenario",
    "KILLI_RATIOS",
    "LV_VOLTAGE",
    "make_scheme",
    "scheme_names",
    "resolve_scheme",
    "Scenario",
    "ScenarioMatrix",
    "load_scenario",
    "run_scenario",
    "scenario_fingerprint",
]

_LAZY = {
    "SCHEMA_VERSION": "repro.scenario.config",
    "ScenarioConfig": "repro.scenario.config",
    "GpuSection": "repro.scenario.config",
    "SchemeSection": "repro.scenario.config",
    "WorkloadSection": "repro.scenario.config",
    "FaultSection": "repro.scenario.config",
    "EngineSection": "repro.scenario.config",
    "cell_scenario": "repro.scenario.config",
    "as_scenario": "repro.scenario.config",
    "KILLI_RATIOS": "repro.scenario.schemes",
    "LV_VOLTAGE": "repro.scenario.schemes",
    "make_scheme": "repro.scenario.schemes",
    "scheme_names": "repro.scenario.schemes",
    "resolve_scheme": "repro.scenario.schemes",
    "Scenario": "repro.scenario.runfile",
    "ScenarioMatrix": "repro.scenario.runfile",
    "load_scenario": "repro.scenario.runfile",
    "run_scenario": "repro.scenario.runfile",
    "scenario_fingerprint": "repro.scenario.runfile",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.scenario' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
