"""The Killi scheme family + the experiment-axis scheme factory.

The scheme axis of every experiment resolves through
:data:`~repro.scenario.registries.SCHEME_REGISTRY`:

- the four MBIST-based names (``baseline``, ``dected``, ``flair``,
  ``msecc``) self-register from :mod:`repro.baselines`;
- this module registers the parameterised **Killi family** —
  ``killi_1:<ratio>`` (SECDED ECC cache) and
  ``killi+<code>_1:<ratio>`` (strong ECC-cache code, e.g.
  ``killi+olsc-t11_1:8`` for Section 5.5) — whose name grammar is
  parsed exactly once, here, by the registered family parser;
- third-party schemes register their own names without touching any
  harness module.

:func:`make_scheme` and :func:`scheme_names` are the historical
harness entry points, reimplemented on top of the registry (and
re-exported unchanged from :mod:`repro.harness.runner`).  Malformed
names of any shape raise ``KeyError`` naming the offending string —
``killi_1:abc`` no longer leaks a bare ``ValueError`` from ``int()``.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Iterable, List, Optional

from repro.core import KilliConfig, KilliScheme, KilliWriteBackScheme
from repro.core.strong import KilliStrongScheme
from repro.ecc.registry import CODE_REGISTRY
from repro.scenario.registries import (
    SCHEME_REGISTRY,
    SchemeBuildContext,
    SchemeFactory,
)

__all__ = [
    "KILLI_RATIOS",
    "LV_VOLTAGE",
    "STRONG_CODES",
    "STRONG_RATIOS",
    "make_scheme",
    "scheme_names",
    "resolve_scheme",
]

#: Killi ECC-cache ratios the paper sweeps (Figures 4/5, Table 6).
KILLI_RATIOS = (256, 128, 64, 32, 16)

#: Operating point of all fixed-voltage performance experiments (Table 3).
LV_VOLTAGE = 0.625

#: Strong ECC-cache codes with published Killi variants (Tables 4/7,
#: Section 5.5); any code in :data:`repro.ecc.registry.CODE_REGISTRY`
#: is accepted by the name grammar.
STRONG_CODES = ("dected", "tecqed", "6ec7ed", "olsc-t4", "olsc-t8", "olsc-t11")

#: ECC-cache ratios of the published strong-code variants (Section 5.5
#: sizes Killi 1:8 at 0.600 VDD and 1:2 at 0.575 VDD).
STRONG_RATIOS = (8, 2)

_KILLI_FIELDS = {f.name for f in fields(KilliConfig)}


# -- the Killi family ---------------------------------------------------------


def _build_killi(factory: SchemeFactory, ctx: SchemeBuildContext):
    ratio = factory.params["ecc_ratio"]
    code = factory.params["code"]
    config = KilliConfig(ecc_ratio=ratio, **ctx.overrides)
    rng = ctx.rngs.stream(f"killi-mask/{ratio}")
    if ctx.write_back:
        if code is not None:
            raise ValueError("write-back strong-code Killi is not modelled")
        return KilliWriteBackScheme(
            ctx.geometry, ctx.fault_map, ctx.voltage, config, rng=rng
        )
    if code is not None:
        return KilliStrongScheme(
            ctx.geometry, ctx.fault_map, ctx.voltage, config, rng=rng, code=code
        )
    return KilliScheme(ctx.geometry, ctx.fault_map, ctx.voltage, config, rng=rng)


def _check_killi_options(factory: SchemeFactory, overrides: dict, write_back: bool):
    unknown = sorted(set(overrides) - (_KILLI_FIELDS - {"ecc_ratio"}))
    if unknown:
        raise ValueError(
            f"unknown KilliConfig override(s) {unknown} for {factory.name!r}; "
            f"known: {sorted(_KILLI_FIELDS - {'ecc_ratio'})}"
        )
    if write_back and factory.params["code"] is not None:
        raise ValueError("write-back strong-code Killi is not modelled")


def _parse_killi(name: str) -> Optional[SchemeFactory]:
    """Family parser: decode ``killi[_1:<r>]`` / ``killi+<code>_1:<r>``.

    Returns ``None`` for names outside the family; raises
    ``KeyError(name)`` for malformed in-family names (the one
    consistent error type for every bad scheme name).
    """
    if not name.startswith("killi"):
        return None
    malformed = KeyError(f"unknown scheme {name!r}")
    code: Optional[str] = None
    if name.startswith("killi+"):
        head, sep, tail = name.partition("_1:")
        code = head[len("killi+"):]
        if not sep or not code or code not in CODE_REGISTRY:
            raise malformed
    elif name.startswith("killi_1:"):
        tail = name[len("killi_1:"):]
    else:
        raise malformed
    try:
        ratio = int(tail)
    except ValueError:
        raise malformed from None
    return SchemeFactory(
        name,
        kind="killi",
        scheme_class=KilliStrongScheme if code is not None else KilliScheme,
        params={"ecc_ratio": ratio, "code": code},
        accepts_overrides=True,
        builder=_build_killi,
        validate_options=_check_killi_options,
    )


def _enumerate_killi() -> Iterable[str]:
    """Canonical family instances for ``SCHEME_REGISTRY.names()``.

    Covers the Figure 4/5 SECDED sweep and the Section 5.5 / Table 4
    strong-code variants, so CLI ``--schemes`` filtering can name them.
    """
    for ratio in KILLI_RATIOS:
        yield f"killi_1:{ratio}"
    for code in STRONG_CODES:
        for ratio in STRONG_RATIOS:
            yield f"killi+{code}_1:{ratio}"


SCHEME_REGISTRY.register_family(
    _parse_killi, enumerate=_enumerate_killi, label="killi"
)


# -- historical entry points, now registry-backed ----------------------------


def resolve_scheme(name: str) -> SchemeFactory:
    """The registered factory for ``name`` (KeyError on unknown names)."""
    return SCHEME_REGISTRY.resolve(name)


def make_scheme(
    name: str,
    gpu_config,
    fault_map,
    voltage: float,
    rngs,
    scheme_config: Optional[dict] = None,
    write_back: bool = False,
):
    """Build a protection scheme by its experiment-axis name.

    Recognised names: everything in ``SCHEME_REGISTRY`` — the four
    baselines, the Killi family, and any third-party registration.
    ``scheme_config`` overrides :class:`~repro.core.KilliConfig`
    fields (ablation switches); ``write_back`` swaps in the
    write-back Killi variant.  Both only apply to Killi schemes.
    """
    factory = SCHEME_REGISTRY.resolve(name)
    ctx = SchemeBuildContext(
        gpu_config=gpu_config,
        fault_map=fault_map,
        voltage=voltage,
        rngs=rngs,
        overrides=dict(scheme_config or {}),
        write_back=write_back,
    )
    return factory.build(ctx)


def scheme_names(
    ratios: Iterable[int] = KILLI_RATIOS,
    strong_codes: Iterable[str] = (),
    strong_ratio: int = 8,
) -> List[str]:
    """The Figure 4/5 scheme axis, baseline first.

    ``strong_codes`` appends the ``killi+<code>_1:<strong_ratio>``
    strong-code variants (Section 5.5) — e.g.
    ``scheme_names(strong_codes=("olsc-t11",))``.  The full registry
    enumeration is ``SCHEME_REGISTRY.names()``.
    """
    return (
        ["baseline", "dected", "flair", "msecc"]
        + [f"killi_1:{r}" for r in ratios]
        + [f"killi+{code}_1:{strong_ratio}" for code in strong_codes]
    )
