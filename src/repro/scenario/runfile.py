"""File-driven experiment runs.

A *scenario file* is a committed ``.toml`` (or ``.json``) document
describing a self-contained, fingerprintable unit of work: a base
:class:`~repro.scenario.config.ScenarioConfig` plus an optional
``[matrix]`` table whose axes (workloads × schemes × voltages × seeds)
expand into the cross-product of cells.  Example::

    schema_version = 1
    name = "fig4-slice"
    description = "Two workloads of the Figure 4/5 matrix"

    [matrix]
    workloads = ["nekbone", "fft"]
    schemes = ["baseline", "killi_1:64"]

    [workload]
    accesses_per_cu = 2000

    [fault]
    voltage = 0.625
    seed = 42

Every cell flows through the same parallel runner and on-disk result
cache as the per-figure harness runners (`repro.harness.runner`), so a
scenario run and the equivalent hand-wired campaign are bit-identical
— the CI ``scenario-roundtrip`` job asserts exactly that.  The
scenario fingerprint (order-independent hash of the expanded cells'
fingerprints) names the unit of work, e.g. for sharding it to a
remote worker or stamping a benchmark JSON.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.scenario import tomlio
from repro.scenario.config import (
    SCHEMA_VERSION,
    FaultSection,
    ScenarioConfig,
)

__all__ = [
    "ScenarioMatrix",
    "Scenario",
    "load_scenario",
    "scenario_fingerprint",
    "run_scenario",
]


@dataclass(frozen=True)
class ScenarioMatrix:
    """Cross-product axes; an empty axis means "use the base value"."""

    workloads: Tuple[str, ...] = ()
    schemes: Tuple[str, ...] = ()
    voltages: Tuple[float, ...] = ()
    seeds: Tuple[int, ...] = ()

    def __post_init__(self):
        for axis in ("workloads", "schemes", "voltages", "seeds"):
            object.__setattr__(self, axis, tuple(getattr(self, axis)))

    @classmethod
    def from_dict(cls, data: dict, source: str) -> "ScenarioMatrix":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"{source}: unknown key(s) {unknown} in [matrix]; "
                f"known: {sorted(known)}"
            )
        return cls(**data)

    def to_dict(self) -> dict:
        return {
            f.name: list(getattr(self, f.name))
            for f in dataclasses.fields(self)
            if getattr(self, f.name)
        }


@dataclass(frozen=True)
class Scenario:
    """A named, file-backed experiment: base config + matrix axes."""

    name: str
    base: ScenarioConfig = field(default_factory=ScenarioConfig)
    description: str = ""
    matrix: ScenarioMatrix = field(default_factory=ScenarioMatrix)
    source: str = ""

    # -- serialisation ------------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict, source: str = "<dict>") -> "Scenario":
        if not isinstance(data, dict):
            raise ValueError(f"{source}: expected a table at top level")
        data = dict(data)
        name = data.pop("name", None)
        if not name or not isinstance(name, str):
            raise ValueError(f"{source}: scenario files require a 'name' string")
        description = data.pop("description", "")
        matrix = ScenarioMatrix.from_dict(data.pop("matrix", {}), source)
        base = ScenarioConfig.from_dict(data, source=source)
        return cls(
            name=name,
            base=base,
            description=description,
            matrix=matrix,
            source=source,
        )

    def to_dict(self) -> dict:
        out: Dict[str, Any] = {"schema_version": SCHEMA_VERSION, "name": self.name}
        if self.description:
            out["description"] = self.description
        matrix = self.matrix.to_dict()
        if matrix:
            out["matrix"] = matrix
        base = self.base.to_dict()
        base.pop("schema_version", None)
        out.update(base)
        return out

    def to_toml(self, header: Optional[str] = None) -> str:
        return tomlio.dumps(self.to_dict(), header=header)

    # -- expansion ----------------------------------------------------------

    def expand(self) -> List[ScenarioConfig]:
        """The cell cross-product, workload-major (the Figure 4/5 order)."""
        base = self.base
        workloads = self.matrix.workloads or (base.workload.name,)
        schemes = self.matrix.schemes or (base.scheme.name,)
        voltages = self.matrix.voltages or (base.fault.voltage,)
        seeds = self.matrix.seeds or (base.fault.seed,)
        cells = []
        for workload in workloads:
            for scheme in schemes:
                for voltage in voltages:
                    for seed in seeds:
                        cells.append(
                            dataclasses.replace(
                                base,
                                workload=dataclasses.replace(
                                    base.workload, name=workload
                                ),
                                scheme=dataclasses.replace(base.scheme, name=scheme),
                                fault=FaultSection(voltage=voltage, seed=seed),
                            )
                        )
        return cells

    def validate(self) -> List[ScenarioConfig]:
        """Expand and validate every cell; returns the validated cells."""
        cells = self.expand()
        for cell in cells:
            cell.validate()
        return cells

    def fingerprint(self) -> str:
        """Order-independent hash over the expanded cells' fingerprints."""
        return scenario_fingerprint(self.expand())


def scenario_fingerprint(cells: Iterable[ScenarioConfig]) -> str:
    """Canonical fingerprint of a set of cells (matrix-order-independent)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "cells": sorted(cell.fingerprint() for cell in cells),
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- file I/O -----------------------------------------------------------------


def load_scenario(path: str) -> Scenario:
    """Load a ``.toml`` / ``.json`` scenario file."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    source = os.fspath(path)
    if source.endswith(".json"):
        data = json.loads(text)
    else:
        data = tomlio.loads(text)
    return Scenario.from_dict(data, source=source)


# -- execution ----------------------------------------------------------------


def run_scenario(
    scenario: Scenario,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress=None,
    retries: int = 0,
    timeout: Optional[float] = None,
    journal=None,
    resume=None,
) -> dict:
    """Execute a scenario through the parallel runner + result cache.

    Returns a JSON-ready summary: scenario identity, fingerprint, and
    one record per cell (full :class:`~repro.harness.runner.CellResult`
    payload including the cell fingerprint).  ``retries``, ``timeout``,
    ``journal`` and ``resume`` are the campaign-hardening knobs of
    :func:`~repro.harness.runner.run_cells`; cells that fail all their
    attempts surface as :class:`~repro.harness.runner.CampaignError`
    after the rest of the scenario has completed.
    """
    from repro.harness.runner import run_cells

    cells = scenario.validate()
    results = run_cells(
        cells,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        retries=retries,
        timeout=timeout,
        journal=journal,
        resume=resume,
    )
    return {
        "scenario": scenario.name,
        "description": scenario.description,
        "source": scenario.source,
        "schema_version": SCHEMA_VERSION,
        "fingerprint": scenario.fingerprint(),
        "cells": [result.to_dict() for result in results],
    }
