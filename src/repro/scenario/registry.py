"""Generic string-keyed plugin registry.

One :class:`Registry` instance per pluggable axis of an experiment
(protection schemes, workload generators, engines, substrates — see
:mod:`repro.scenario.registries`).  The pattern follows
:mod:`repro.ecc.registry`'s name -> factory dict, with two additions
the experiment axes need:

- **Families.**  Some axes have parameterised name grammars
  (``killi_1:<ratio>``, ``killi+<code>_1:<ratio>``) that cannot be
  enumerated as exact keys.  A family registers a *parser*: given a
  name, it returns an entry (the name is one of mine), ``None`` (not
  mine — try the next family), or raises :class:`KeyError` (mine, but
  malformed).  An optional enumerator contributes canonical instances
  to :meth:`names`.
- **Lazy loading.**  Entries self-register from the module that owns
  them (baselines register baseline schemes, ``repro.traces`` its
  workloads, ...).  A registry created with a ``loader`` imports those
  modules on first resolution, so merely importing
  ``repro.scenario`` stays cheap and free of import cycles.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

__all__ = ["Registry"]

_MISSING = object()


class Registry:
    """An ordered name -> entry mapping with parser families.

    Parameters
    ----------
    kind:
        Human-readable axis name used in error messages
        (``"scheme"``, ``"workload"``, ...).
    loader:
        Zero-argument callable importing the modules that register
        this axis's built-in entries.  Invoked once, lazily, before
        the first :meth:`resolve` / :meth:`names`.
    """

    def __init__(self, kind: str, loader: Optional[Callable[[], None]] = None):
        self.kind = kind
        self._exact: dict = {}
        self._families: list = []
        self._loader = loader
        self._loaded = loader is None

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            # Flip the flag first: the loader imports modules whose
            # top-level registration calls land back here.
            self._loaded = True
            self._loader()

    # -- registration -------------------------------------------------------

    def register(self, name: str, entry: Any = _MISSING):
        """Register ``entry`` under ``name`` (or use as a decorator).

        Duplicate names are an error: two plugins fighting over one
        name is always a bug.  Use :meth:`unregister` first to
        replace an entry deliberately.
        """
        if entry is _MISSING:

            def decorator(obj):
                self.register(name, obj)
                return obj

            return decorator
        if name in self._exact:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._exact[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove an exact entry (KeyError if absent)."""
        try:
            del self._exact[name]
        except KeyError:
            raise KeyError(f"{self.kind} {name!r} is not registered") from None

    def register_family(
        self,
        parser: Callable[[str], Any],
        enumerate: Optional[Callable[[], Iterable[str]]] = None,
        label: Optional[str] = None,
    ):
        """Register a parameterised name family.

        ``parser(name)`` returns an entry, ``None`` (name not in this
        family), or raises ``KeyError`` (in this family, malformed).
        ``enumerate()`` yields canonical instances for :meth:`names`.
        """
        self._families.append(
            (label or getattr(parser, "__name__", "family"), parser, enumerate)
        )
        return parser

    # -- resolution ---------------------------------------------------------

    def resolve(self, name: str) -> Any:
        """Entry for ``name``; raises ``KeyError`` with the offending name."""
        self._ensure_loaded()
        try:
            return self._exact[name]
        except KeyError:
            pass
        for _, parser, _ in self._families:
            entry = parser(name)
            if entry is not None:
                return entry
        raise KeyError(f"unknown {self.kind} {name!r}; known: {self.names()}")

    def names(self) -> List[str]:
        """Exact names (registration order) + canonical family instances."""
        self._ensure_loaded()
        out = list(self._exact)
        seen = set(out)
        for _, _, enumerator in self._families:
            if enumerator is None:
                continue
            for name in enumerator():
                if name not in seen:
                    seen.add(name)
                    out.append(name)
        return out

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
            return True
        except KeyError:
            return False

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(self.names())

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self._exact)} exact, {len(self._families)} families)"
