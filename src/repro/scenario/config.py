"""The declarative scenario schema.

A :class:`ScenarioConfig` is the single typed, serialisable
description of one experiment cell — the unit every campaign in the
harness is made of.  It is a frozen dataclass tree with one section
per concern:

========== ==================================================
section    knobs
========== ==================================================
gpu        machine shape (CUs, L1, L2 geometry, bank model)
scheme     protection-scheme name + Killi config overrides
workload   workload-generator name + trace length
fault      operating voltage + experiment seed
engine     inner loop + tag/LRU substrate (never change results)
========== ==================================================

Scenarios serialise to/from TOML and JSON with schema-version checks,
and produce a **canonical fingerprint** that keys the on-disk result
cache.  The fingerprint is computed from a canonical payload in which

- dict-valued knobs are sorted (``scheme.config`` insertion order
  never matters),
- the ``engine`` section is excluded entirely (all engine × substrate
  combinations are pinned bit-identical), and
- sections still equal to their defaults are elided (adding a new
  default-valued knob in a future schema does not invalidate existing
  cache entries).

For a default-``gpu`` scenario the payload is byte-identical to the
one the legacy :class:`~repro.harness.runner.CellSpec` hashed, so
pre-existing result caches stay warm; ``CellSpec`` itself survives as
a thin compatibility shim whose ``fingerprint()`` delegates here.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

from repro.scenario import tomlio

__all__ = [
    "SCHEMA_VERSION",
    "GpuSection",
    "SchemeSection",
    "WorkloadSection",
    "FaultSection",
    "EngineSection",
    "ScenarioConfig",
    "cell_scenario",
    "as_scenario",
]

#: Scenario schema version.  Bump on any change to the canonical
#: payload or the section layout; readers reject newer versions.
SCHEMA_VERSION = 1


# -- sections -----------------------------------------------------------------


@dataclass(frozen=True)
class GpuSection:
    """Machine shape (paper Table 3 defaults)."""

    n_cus: int = 8
    freq_ghz: float = 1.0
    l1_size_bytes: int = 16 * 1024
    l1_assoc: int = 4
    l1_hit_latency: int = 1
    l2_size_bytes: int = 2 * 1024 * 1024
    l2_line_bytes: int = 64
    l2_associativity: int = 16
    l2_banks: int = 16
    model_bank_conflicts: bool = False
    bank_conflict_penalty: int = 2

    def to_gpu_config(self):
        """Materialise as a :class:`~repro.gpu.GpuConfig`."""
        from repro.cache.geometry import CacheGeometry
        from repro.gpu.config import GpuConfig

        return GpuConfig(
            n_cus=self.n_cus,
            freq_ghz=self.freq_ghz,
            l1_size_bytes=self.l1_size_bytes,
            l1_assoc=self.l1_assoc,
            l1_hit_latency=self.l1_hit_latency,
            l2=CacheGeometry(
                size_bytes=self.l2_size_bytes,
                line_bytes=self.l2_line_bytes,
                associativity=self.l2_associativity,
                banks=self.l2_banks,
            ),
            model_bank_conflicts=self.model_bank_conflicts,
            bank_conflict_penalty=self.bank_conflict_penalty,
        )


@dataclass(frozen=True)
class SchemeSection:
    """Protection scheme by experiment-axis name.

    ``config`` holds :class:`~repro.core.KilliConfig` field overrides
    (ablation switches) as sorted ``(field, value)`` pairs — pass a
    plain dict, it is normalised on construction (this is the
    canonicalisation :class:`~repro.harness.runner.CellSpec` used to
    hand-roll).  ``write_back`` swaps in the write-back Killi variant.
    """

    name: str = "baseline"
    config: Tuple[Tuple[str, Any], ...] = ()
    write_back: bool = False

    def __post_init__(self):
        if isinstance(self.config, dict):
            object.__setattr__(self, "config", tuple(sorted(self.config.items())))
        else:
            object.__setattr__(
                self, "config", tuple(tuple(pair) for pair in self.config)
            )

    @property
    def overrides(self) -> Dict[str, Any]:
        return dict(self.config)


@dataclass(frozen=True)
class WorkloadSection:
    """Workload-generator name + trace length."""

    name: str = "nekbone"
    accesses_per_cu: int = 30000


@dataclass(frozen=True)
class FaultSection:
    """Operating point: voltage (drives the fault map) + seed."""

    voltage: float = 0.625
    seed: int = 42


@dataclass(frozen=True)
class EngineSection:
    """Execution backend.  Excluded from fingerprints: all engine ×
    substrate combinations are pinned bit-identical."""

    engine: str = "vectorized"
    substrate: Optional[str] = None


_SECTION_TYPES = {
    "gpu": GpuSection,
    "scheme": SchemeSection,
    "workload": WorkloadSection,
    "fault": FaultSection,
    "engine": EngineSection,
}


def _section_from_dict(cls, data: dict, section: str, source: str):
    if not isinstance(data, dict):
        raise ValueError(f"{source}: [{section}] must be a table, got {data!r}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"{source}: unknown key(s) {unknown} in [{section}]; "
            f"known: {sorted(known)}"
        )
    return cls(**data)


def _section_to_dict(section_obj) -> dict:
    out = {}
    for f in fields(section_obj):
        value = getattr(section_obj, f.name)
        if value is None:
            continue
        if f.name == "config":
            value = dict(value)
        out[f.name] = value
    return out


# -- the scenario -------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioConfig:
    """One fully-specified experiment cell (see module docstring)."""

    scheme: SchemeSection = field(default_factory=SchemeSection)
    workload: WorkloadSection = field(default_factory=WorkloadSection)
    fault: FaultSection = field(default_factory=FaultSection)
    gpu: GpuSection = field(default_factory=GpuSection)
    engine: EngineSection = field(default_factory=EngineSection)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self):
        for name, cls in _SECTION_TYPES.items():
            value = getattr(self, name)
            if isinstance(value, dict):
                object.__setattr__(
                    self, name, _section_from_dict(cls, value, name, "ScenarioConfig")
                )
            elif not isinstance(value, cls):
                raise TypeError(
                    f"ScenarioConfig.{name} must be a {cls.__name__} or dict, "
                    f"got {type(value).__name__}"
                )
        if self.schema_version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported scenario schema_version {self.schema_version!r} "
                f"(this build supports {SCHEMA_VERSION})"
            )

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        """Nested plain dict (TOML/JSON-ready; ``None`` values elided)."""
        out: Dict[str, Any] = {"schema_version": self.schema_version}
        for name in _SECTION_TYPES:
            out[name] = _section_to_dict(getattr(self, name))
        return out

    @classmethod
    def from_dict(cls, data: dict, source: str = "scenario") -> "ScenarioConfig":
        if not isinstance(data, dict):
            raise ValueError(f"{source}: expected a table, got {data!r}")
        data = dict(data)
        version = data.pop("schema_version", SCHEMA_VERSION)
        if not isinstance(version, int) or version > SCHEMA_VERSION or version < 1:
            raise ValueError(
                f"{source}: unsupported schema_version {version!r} "
                f"(this build supports {SCHEMA_VERSION})"
            )
        unknown = sorted(set(data) - set(_SECTION_TYPES))
        if unknown:
            raise ValueError(
                f"{source}: unknown section(s) {unknown}; "
                f"known: {sorted(_SECTION_TYPES)}"
            )
        sections = {
            name: _section_from_dict(section_cls, data[name], name, source)
            for name, section_cls in _SECTION_TYPES.items()
            if name in data
        }
        return cls(schema_version=SCHEMA_VERSION, **sections)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str, source: str = "scenario") -> "ScenarioConfig":
        return cls.from_dict(json.loads(text), source=source)

    def to_toml(self, header: Optional[str] = None) -> str:
        return tomlio.dumps(self.to_dict(), header=header)

    @classmethod
    def from_toml(cls, text: str, source: str = "scenario") -> "ScenarioConfig":
        return cls.from_dict(tomlio.loads(text), source=source)

    # -- canonical fingerprint ---------------------------------------------

    def canonical_payload(self) -> dict:
        """The fingerprinted payload (see module docstring for rules)."""
        payload: Dict[str, Any] = {
            "schema": self.schema_version,
            "workload": self.workload.name,
            "scheme": self.scheme.name,
            "voltage": self.fault.voltage,
            "seed": self.fault.seed,
            "accesses_per_cu": self.workload.accesses_per_cu,
            "scheme_config": [list(pair) for pair in self.scheme.config],
            "write_back": self.scheme.write_back,
        }
        default_gpu = GpuSection()
        if self.gpu != default_gpu:
            payload["gpu"] = {
                f.name: getattr(self.gpu, f.name)
                for f in fields(GpuSection)
                if getattr(self.gpu, f.name) != getattr(default_gpu, f.name)
            }
        return payload

    def fingerprint(self) -> str:
        """Stable content key for the on-disk result cache."""
        blob = json.dumps(self.canonical_payload(), sort_keys=True, default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- validation ---------------------------------------------------------

    def validate(self) -> "ScenarioConfig":
        """Resolve every plugin name and sanity-check scalar knobs.

        Raises ``KeyError`` for unknown registry names and
        ``ValueError`` for invalid values; returns ``self`` so calls
        chain.
        """
        from repro.scenario.registries import (
            ENGINE_REGISTRY,
            SCHEME_REGISTRY,
            SUBSTRATE_REGISTRY,
            WORKLOAD_REGISTRY,
        )

        factory = SCHEME_REGISTRY.resolve(self.scheme.name)
        factory.check_options(self.scheme.overrides, self.scheme.write_back)
        WORKLOAD_REGISTRY.resolve(self.workload.name)
        ENGINE_REGISTRY.resolve(self.engine.engine)
        if self.engine.substrate is not None:
            SUBSTRATE_REGISTRY.resolve(self.engine.substrate)
        if self.workload.accesses_per_cu <= 0:
            raise ValueError("workload.accesses_per_cu must be positive")
        if self.fault.seed < 0:
            raise ValueError("fault.seed must be non-negative")
        if not 0.0 < self.fault.voltage <= 1.5:
            raise ValueError(
                f"fault.voltage {self.fault.voltage} outside the modelled "
                "normalized-VDD range (0, 1.5]"
            )
        return self

    # -- CellSpec compatibility --------------------------------------------

    def to_cell_spec(self):
        """Project onto the legacy :class:`~repro.harness.runner.CellSpec`.

        Only default-``gpu`` scenarios are expressible; everything else
        must run through the scenario path directly.
        """
        if self.gpu != GpuSection():
            raise ValueError(
                "a scenario with a non-default [gpu] section cannot be "
                "expressed as a legacy CellSpec; run it as a scenario"
            )
        from repro.harness.runner import CellSpec

        return CellSpec(
            workload=self.workload.name,
            scheme=self.scheme.name,
            voltage=self.fault.voltage,
            seed=self.fault.seed,
            accesses_per_cu=self.workload.accesses_per_cu,
            scheme_config=self.scheme.config,
            write_back=self.scheme.write_back,
            engine=self.engine.engine,
            substrate=self.engine.substrate,
        )

    @classmethod
    def from_cell_spec(cls, spec) -> "ScenarioConfig":
        return cls(
            scheme=SchemeSection(
                name=spec.scheme,
                config=spec.scheme_config,
                write_back=spec.write_back,
            ),
            workload=WorkloadSection(
                name=spec.workload, accesses_per_cu=spec.accesses_per_cu
            ),
            fault=FaultSection(voltage=spec.voltage, seed=spec.seed),
            engine=EngineSection(engine=spec.engine, substrate=spec.substrate),
        )

    def replace(self, **sections) -> "ScenarioConfig":
        """``dataclasses.replace`` shorthand (sections may be dicts)."""
        return dataclasses.replace(self, **sections)


# -- convenience constructors -------------------------------------------------


def cell_scenario(
    workload: str,
    scheme: str,
    *,
    voltage: float = 0.625,
    seed: int = 42,
    accesses_per_cu: int = 30000,
    scheme_config=(),
    write_back: bool = False,
    engine: str = "vectorized",
    substrate: Optional[str] = None,
    gpu: Optional[GpuSection] = None,
) -> ScenarioConfig:
    """Build a single-cell scenario from flat (workload, scheme, ...) knobs.

    This is the construction path the per-figure harness runners use;
    it mirrors the old ``CellSpec(...)`` call shape one-for-one.
    """
    return ScenarioConfig(
        scheme=SchemeSection(name=scheme, config=scheme_config, write_back=write_back),
        workload=WorkloadSection(name=workload, accesses_per_cu=accesses_per_cu),
        fault=FaultSection(voltage=voltage, seed=seed),
        gpu=gpu if gpu is not None else GpuSection(),
        engine=EngineSection(engine=engine, substrate=substrate),
    )


def as_scenario(spec) -> ScenarioConfig:
    """Normalise a ``ScenarioConfig`` or legacy ``CellSpec`` to a scenario."""
    if isinstance(spec, ScenarioConfig):
        return spec
    to_scenario = getattr(spec, "to_scenario", None)
    if to_scenario is not None:
        return to_scenario()
    raise TypeError(
        f"expected a ScenarioConfig or CellSpec, got {type(spec).__name__}"
    )
