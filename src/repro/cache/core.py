"""The unified cache transaction layer.

One parameterized :class:`CacheModel` implements the scalar access
semantics every tier of the simulator compiles against: the paper's
write-through GPU L2 (:class:`WriteThroughCache`), the Section 5.6.1
write-back extension (:class:`WriteBackCache`) and the per-CU L1
filter caches (:class:`repro.gpu.hierarchy.SimpleL1`) are all presets
of the same class, differing only in their
:class:`WritePolicy`/:class:`AllocationPolicy` strategy objects.

Latency accounting follows Table 3: a hit pays tag + data + check
latency; ECC-cache accesses are hidden under the data access; a miss
additionally pays the memory latency.  Error-induced misses (Table 2's
"signal error-induced cache miss; trigger new load request") pay the
hit latency for the failed attempt plus a full miss.

The tag store and LRU state run on one of two substrates with the same
contract: ``"object"`` (per-line ``CacheLineState`` + recency lists,
the pinned reference — :mod:`repro.cache.object_store`) or ``"soa"``
(flat numpy arrays + integer-age LRU, the fast path).  Read hits
additionally go through an epoch cache: once the scheme declares a
line's hit behaviour stable
(:meth:`~repro.cache.hooks.ProtectionScheme.hit_replay_info`), the
outcome is memoized per (set, way) and replayed without scheme
dispatch until a cache-visible event clears the line's stamp or a
scheme event bumps the global epoch.

Formal access protocol: an access is an :class:`AccessTransaction`
(address + direction), :meth:`CacheModel.execute` resolves it to a
latency in cycles, and the scheme-visible classification of a hit is
an :class:`~repro.cache.hooks.AccessOutcome`.  The scalar engine is a
thin interpreter of this layer; the vectorized and batched tiers
derive their preconditions from :attr:`CacheModel.semantics_batchable`
/ :meth:`CacheModel.set_replay_profile` and push their bulk effects
back through :meth:`CacheModel.commit_set_replays` — they never
re-state the semantics themselves.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry
from repro.cache.hooks import AccessOutcome, ProtectionScheme
from repro.cache.soa import (
    SoaLruState,
    SoaTagStore,
    bulk_apply_set_replays,
    resolve_substrate,
    substrate_spec,
)
from repro.cache.stats import CacheStats
from repro.testing.invariants import check_set_invariants, invariants_enabled

__all__ = [
    "CacheLatencies",
    "WritePolicy",
    "AllocationPolicy",
    "WRITE_THROUGH",
    "WRITE_BACK",
    "NO_WRITE_ALLOCATE",
    "WRITE_ALLOCATE",
    "LRU_FILL",
    "AccessTransaction",
    "CacheModel",
    "WriteThroughCache",
    "WriteBackCache",
]


@dataclass(frozen=True)
class CacheLatencies:
    """Access latencies in cycles (paper Table 3 values as defaults)."""

    tag: int = 2
    data: int = 2
    check: int = 1
    """SECDED / parity check latency; ECC-cache access is hidden."""
    correction: int = 1
    """Extra cycles when a correction is applied before data return."""
    memory: int = 200
    """Main-memory access latency (not in Table 3; modelled)."""

    @property
    def hit(self) -> int:
        return self.tag + self.data + self.check

    @property
    def miss(self) -> int:
        return self.tag + self.memory


@dataclass(frozen=True)
class WritePolicy:
    """What a store does to the memory system.

    ``write_back=False`` (write-through): every store is posted to
    memory; a hit additionally updates the cached copy, and the
    requester stalls only for the tag check.  ``write_back=True``:
    dirty data lives only in the cache until eviction — a store hit
    marks the line dirty (``on_dirty`` fires on the clean->dirty
    transition) and pays tag + data.
    """

    name: str
    write_back: bool


@dataclass(frozen=True)
class AllocationPolicy:
    """Who gets a line on a fill, and whether stores allocate.

    ``write_allocate`` — a store miss fetches the line and modifies it
    in place (write-back caches) instead of bypassing the cache.
    ``prefer_invalid`` — victim selection prefers invalid ways (with
    the scheme's fill-priority ranking) before falling back to LRU;
    False means plain LRU fill: the LRU way is always the victim,
    valid or not.  The L1 filter caches use the latter, and the
    batched L1 kernel (:mod:`repro.gpu.l1filter`) replays exactly that
    min-age convention — the two must never diverge.
    """

    name: str
    write_allocate: bool
    prefer_invalid: bool = True


WRITE_THROUGH = WritePolicy("write-through", write_back=False)
WRITE_BACK = WritePolicy("write-back", write_back=True)

NO_WRITE_ALLOCATE = AllocationPolicy("no-write-allocate", write_allocate=False)
WRITE_ALLOCATE = AllocationPolicy("write-allocate", write_allocate=True)
LRU_FILL = AllocationPolicy(
    "lru-fill", write_allocate=False, prefer_invalid=False
)


@dataclass(frozen=True)
class AccessTransaction:
    """One memory access presented to the transaction layer."""

    addr: int
    is_store: bool = False

    @classmethod
    def load(cls, addr: int) -> "AccessTransaction":
        return cls(addr, False)

    @classmethod
    def store(cls, addr: int) -> "AccessTransaction":
        return cls(addr, True)


#: Methods that together *are* the scalar access protocol.  A subclass
#: that overrides any of them has semantics the bulk tiers were never
#: validated against, so ``semantics_batchable`` turns False and every
#: engine falls back to per-access calls for it.
_ACCESS_PROTOCOL = (
    "read",
    "write",
    "_miss",
    "_allocate",
    "_choose_victim",
    "_memoize",
    "set_replay_info",
    "set_replay_profile",
    "apply_set_replay",
    "apply_set_replays",
    "commit_set_replays",
)

_PROTOCOL_BY_CLASS: dict = {}


def _access_protocol_unchanged(cls) -> bool:
    """True when ``cls`` inherits the full access protocol unchanged."""
    cached = _PROTOCOL_BY_CLASS.get(cls)
    if cached is None:
        cached = all(
            getattr(cls, name) is getattr(CacheModel, name)
            for name in _ACCESS_PROTOCOL
        )
        _PROTOCOL_BY_CLASS[cls] = cached
    return cached


class CacheModel:
    """A set-associative protected cache, parameterized by policy.

    Parameters
    ----------
    geometry:
        Shape of the cache.
    scheme:
        Protection scheme consulted on every access.
    latencies:
        Cycle costs per access type.
    substrate:
        ``"object"`` or ``"soa"`` tag/LRU backing (None = session
        default, see :func:`repro.cache.soa.default_substrate`).
    write_policy / allocation_policy:
        The strategy objects; defaults reproduce the paper's L2
        (write-through / no-write-allocate).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        scheme: ProtectionScheme | None = None,
        latencies: CacheLatencies | None = None,
        substrate: str | None = None,
        *,
        write_policy: WritePolicy | None = None,
        allocation_policy: AllocationPolicy | None = None,
    ):
        self.geometry = geometry
        self.scheme = scheme if scheme is not None else ProtectionScheme()
        self.latencies = latencies if latencies is not None else CacheLatencies()
        self.write_policy = write_policy if write_policy is not None else WRITE_THROUGH
        self.allocation_policy = (
            allocation_policy if allocation_policy is not None else NO_WRITE_ALLOCATE
        )
        self.substrate = resolve_substrate(substrate)
        spec = substrate_spec(self.substrate)
        self.tags = spec.tag_store(geometry)
        self.lru = spec.lru(geometry)
        self.stats = CacheStats()
        self.memory_reads = 0
        self.memory_writes = 0
        # Policy flags, flattened for the hot path.
        self._write_back = self.write_policy.write_back
        self._write_allocate = self.allocation_policy.write_allocate
        self._prefer_invalid = self.allocation_policy.prefer_invalid
        # Epoch-cached hit path: per-line stamp + replay tuple.  A
        # stamp equal to the current epoch *sum* (global epoch + the
        # line's set epoch) means the memoized info is valid;
        # cache-visible per-line events reset the stamp to -1,
        # set-local scheme events (a DFH transition) bump that set's
        # epoch, and global scheme events (resets, external error
        # injection) bump the global epoch, invalidating every stamp
        # at once.  Both counters are monotone nondecreasing, so the
        # sum strictly increases on any relevant bump and a stale
        # stamp can never read as valid again.
        self._assoc = geometry.associativity
        self._n_sets = geometry.n_sets
        self._line_bytes = geometry.line_bytes
        # Flat cycle counts (the CacheLatencies properties re-derive
        # their sums on every access otherwise).
        self._lat_hit = self.latencies.hit
        self._lat_hit_corrected = self.latencies.hit + self.latencies.correction
        self._lat_miss = self.latencies.miss
        self._lat_tag = self.latencies.tag
        # Store latency seen by the requester: tag check only when the
        # write is posted through, tag + data when it lands in place.
        self._lat_write_hit = (
            self.latencies.tag + self.latencies.data
            if self._write_back
            else self._lat_tag
        )
        self.epoch = 0
        self._set_epoch = [0] * geometry.n_sets
        n_lines = geometry.n_sets * geometry.associativity
        self._hit_stamp = [-1] * n_lines
        self._hit_info = [None] * n_lines
        self.scheme.attach(self)
        # Skip the per-way usability call unless this scheme instance
        # can actually filter (type-level override check by default;
        # config-gated filters like FLAIR's training window refine it).
        self._scheme_filters_ways = self.scheme.filters_ways()
        # Skip priority ranking of invalid candidates unless the scheme
        # actually ranks (a default scheme returns all-zero priorities,
        # under which "first max" is just the first candidate).
        self._scheme_prioritizes = (
            type(self.scheme).fill_priority is not ProtectionScheme.fill_priority
            or type(self.scheme).fill_priorities
            is not ProtectionScheme.fill_priorities
        )
        self._all_ways = list(range(geometry.associativity))
        self._way_attempts = range(geometry.associativity)
        # The bulk tiers' precondition, decided once: scalar semantics
        # are replayable in batch only for the write-through /
        # no-write-allocate / invalid-preferring protocol they were
        # validated against, and only when no subclass rewrote any part
        # of the access protocol.
        self.semantics_batchable = (
            not self._write_back
            and not self._write_allocate
            and self._prefer_invalid
            and _access_protocol_unchanged(type(self))
        )
        # Armed runtime invariants (REPRO_CHECK_INVARIANTS): every
        # access re-checks its set's structural invariants after it
        # resolves, and the bulk commit point re-checks each replayed
        # set.  Arming wraps the bound access methods per instance, so
        # the disarmed hot path carries no extra branch at all.
        self._check_invariants = invariants_enabled()
        if self._check_invariants:
            self._arm_invariants()

    def _arm_invariants(self) -> None:
        """Shadow ``read``/``write`` with invariant-checking wrappers.

        Instance-attribute shadowing keeps the class-level access
        protocol untouched (``semantics_batchable`` still sees the
        pristine methods) while every caller — :meth:`execute`, the
        engines' cached ``l2.read``/``l2.write`` bound methods, the
        L1 adapters — resolves to the checked wrapper.
        """
        inner_read = self.read
        inner_write = self.write
        line_bytes = self._line_bytes
        n_sets = self._n_sets

        def checked_read(addr: int):
            result = inner_read(addr)
            check_set_invariants(self, (addr // line_bytes) % n_sets)
            return result

        def checked_write(addr: int):
            result = inner_write(addr)
            check_set_invariants(self, (addr // line_bytes) % n_sets)
            return result

        self.read = checked_read
        self.write = checked_write

    def bump_epoch(self) -> None:
        """Invalidate every memoized hit (scheme-side state changed)."""
        self.epoch += 1

    def bump_set_epoch(self, set_index: int) -> None:
        """Invalidate one set's memoized hits (set-local scheme event).

        A DFH transition changes only its own line's classification;
        lines outside the set keep their memoized outcomes, so a busy
        kernel no longer re-dispatches every memoized hit in the L2
        each time a single line somewhere retrains.
        """
        self._set_epoch[set_index] += 1

    # -- public access API ------------------------------------------------

    def execute(self, txn: AccessTransaction) -> int:
        """Resolve one transaction; returns the latency in cycles.

        The formal entry point of the transaction layer.  The scalar
        engine's inner loop calls :meth:`read` / :meth:`write` directly
        — same semantics, no per-access transaction allocation — so
        the reference stays an honest baseline for the bulk tiers.
        """
        if txn.is_store:
            return self.write(txn.addr)
        return self.read(txn.addr)

    def read(self, addr: int) -> int:
        """Read access; returns the latency in cycles.

        Write-back caches route dirty-line hits through
        :meth:`_read_dirty_hit` first: a detected-uncorrectable error
        there is a DUE (the only copy was modified), and dirty hits
        never consult the epoch cache — a stamp cannot be valid on a
        dirty line (every path that dirties a line clears it, and the
        dirty path does not memoize), so the full dispatch always runs.
        """
        if self._write_back:
            way = self.tags.lookup(addr)
            if way is not None:
                set_index = (addr // self._line_bytes) % self._n_sets
                if self.tags.is_dirty(set_index, way):
                    return self._read_dirty_hit(addr, set_index, way)
        self.stats.reads += 1
        way = self.tags.lookup(addr)
        if way is not None:
            set_index = (addr // self._line_bytes) % self._n_sets
            idx = set_index * self._assoc + way
            if self._hit_stamp[idx] == self.epoch + self._set_epoch[set_index]:
                # Memoized steady-state hit: skip scheme dispatch.
                info = self._hit_info[idx]
                self.stats.read_hits += 1
                self.lru.touch(set_index, way)
                self.scheme.apply_replay(info)
                if info[0]:
                    self.stats.corrected_reads += 1
                    return self._lat_hit_corrected
                return self._lat_hit
            outcome = self.scheme.on_read_hit(set_index, way)
            if outcome is AccessOutcome.CLEAN:
                self.stats.read_hits += 1
                self.lru.touch(set_index, way)
                self._memoize(idx, set_index, way)
                return self._lat_hit
            if outcome is AccessOutcome.CORRECTED:
                self.stats.read_hits += 1
                self.stats.corrected_reads += 1
                self.lru.touch(set_index, way)
                self._memoize(idx, set_index, way)
                return self._lat_hit_corrected
            # Error-induced miss: drop the copy and refetch.
            self._hit_stamp[idx] = -1
            self.stats.error_induced_misses += 1
            if outcome is AccessOutcome.DISABLE_MISS:
                self.tags.disable(set_index, way)
            else:
                self.tags.invalidate(set_index, way)
            self.lru.demote(set_index, way)
            return self._lat_hit + self._miss(addr)
        return self._miss(addr)

    def _read_dirty_hit(self, addr: int, set_index: int, way: int) -> int:
        """Read hit on a dirty line (write-back only).

        Peek at the outcome path: a detected-uncorrectable error here
        loses modified data — the stats record it as a DUE.
        """
        self.stats.reads += 1
        outcome = self.scheme.on_read_hit(set_index, way)
        if outcome is AccessOutcome.CLEAN:
            self.stats.read_hits += 1
            self.lru.touch(set_index, way)
            return self._lat_hit
        if outcome is AccessOutcome.CORRECTED:
            self.stats.read_hits += 1
            self.stats.corrected_reads += 1
            self.lru.touch(set_index, way)
            return self._lat_hit_corrected
        # Data loss: the only copy was modified and is now gone.
        self._hit_stamp[set_index * self._assoc + way] = -1
        self.stats.error_induced_misses += 1
        self.stats.bump("due_on_dirty")
        if outcome is AccessOutcome.DISABLE_MISS:
            self.tags.disable(set_index, way)
        else:
            self.tags.invalidate(set_index, way)
        self.lru.demote(set_index, way)
        return self._lat_hit + self._miss(addr)

    def _memoize(self, idx: int, set_index: int, way: int) -> None:
        """Record the line's replay tuple if the scheme declares it stable.

        Queried *after* ``on_read_hit`` returned (and the epoch sum is
        read afterwards too), so transitions made during the call —
        e.g. Killi's INITIAL -> STABLE_0 fast-clean promotion, which
        bumps the set's epoch — can never leave a stale-valid entry.
        """
        info = self.scheme.hit_replay_info(set_index, way)
        if info is not None:
            self._hit_info[idx] = info
            self._hit_stamp[idx] = self.epoch + self._set_epoch[set_index]

    def write(self, addr: int) -> int:
        """Write access; returns the latency in cycles.

        Write-through / no-write-allocate: the store is posted to
        memory regardless; a hit also updates the cached copy (and its
        protection metadata), and the requester stalls only for the
        tag check.  Write-back / write-allocate: a hit marks the line
        dirty (``on_dirty`` on the clean->dirty transition); a miss
        fetches the line and modifies it in place, bypassing straight
        to memory only when no way may receive the fill.
        """
        self.stats.writes += 1
        if not self._write_back:
            self.memory_writes += 1
        way = self.tags.lookup(addr)
        if way is not None:
            set_index = (addr // self._line_bytes) % self._n_sets
            self.stats.write_hits += 1
            # The overwrite re-rolls the line's stored contents.
            self._hit_stamp[set_index * self._assoc + way] = -1
            self.scheme.on_write_hit(set_index, way)
            if self._write_back and not self.tags.is_dirty(set_index, way):
                self.tags.set_dirty(set_index, way, True)
                self.scheme.on_dirty(set_index, way)
            self.lru.touch(set_index, way)
            return self._lat_write_hit
        self.stats.write_misses += 1
        if not self._write_allocate:
            # Posted write: the store itself does not stall the
            # requester beyond the tag check.
            return self._lat_tag
        # Write-allocate: fetch the line, then modify it.
        self.memory_reads += 1
        set_index = (addr // self._line_bytes) % self._n_sets
        way = self._allocate(addr)
        if way is None:
            # Nowhere to put it: the store goes straight to memory.
            self.stats.bypasses += 1
            self.memory_writes += 1
            return self._lat_miss
        self._hit_stamp[set_index * self._assoc + way] = -1
        self.scheme.on_write_hit(set_index, way)
        self.tags.set_dirty(set_index, way, True)
        self.scheme.on_dirty(set_index, way)
        return self._lat_miss

    # -- batched set replay ------------------------------------------------

    def set_replay_info(self, set_index: int):
        """Per-hit replay tuple if the set may be replayed in batch.

        Combines the cache-level conditions (batchable scalar
        semantics, no disabled ways — their presence changes victim
        selection — and no way filtering) with the scheme's own
        set-inertness probe
        (:meth:`~repro.cache.hooks.ProtectionScheme.set_replay_info`).
        None forces the per-access path for the set.
        """
        if not self.semantics_batchable:
            return None
        if self.tags.disabled_in_set[set_index]:
            return None
        if self._scheme_filters_ways:
            return None
        return self.scheme.set_replay_info(set_index)

    def set_replay_profile(self, set_index: int):
        """Batched-replay profile for the set, or None (per-access path).

        The generalised probe the batched engine uses: disabled ways
        no longer force a fallback — they are guaranteed invalid
        (``disable`` invalidates first) and ``export_set_state``
        excludes them from the fill order, which reproduces
        ``_choose_victim``'s enabled-candidates path exactly.  Only
        non-batchable scalar semantics, a *fully* disabled set (every
        fill bypasses) and way-filtering schemes still refuse at the
        cache level; everything else is the scheme's call
        (:meth:`~repro.cache.hooks.ProtectionScheme.set_replay_profile`).
        """
        if not self.semantics_batchable:
            return None
        if self._scheme_filters_ways:
            return None
        if self.tags.disabled_in_set[set_index] >= self._assoc:
            return None
        return self.scheme.set_replay_profile(set_index)

    def apply_set_replay(self, set_index: int, way_lines, resident, touch_order):
        """Write one replayed set's final state back into the substrate.

        ``way_lines`` is the pre-replay state from
        :func:`~repro.cache.soa.export_set_state`, ``resident`` /
        ``touch_order`` the kernel's results.  Ways whose line changed
        go through ``tags.insert`` (which maintains the lookup index
        and validity counters on either substrate); touched ways replay
        through ``lru.touch`` in final-recency order, reproducing the
        exact age ordering the per-access path would leave.  Every
        memoized hit stamp of the set is conservatively cleared —
        over-invalidation only costs a re-memoization, never a
        behaviour change.
        """
        tags = self.tags
        line_bytes = self._line_bytes
        for line, way in resident.items():
            if way_lines[way] != line:
                tags.insert(line * line_bytes, way)
        lru = self.lru
        for way in touch_order:
            lru.touch(set_index, way)
        base = set_index * self._assoc
        stamp = self._hit_stamp
        for way in range(self._assoc):
            stamp[base + way] = -1

    def apply_set_replays(self, pending) -> None:
        """Write many replayed sets back at once (deferred application).

        ``pending`` holds ``(set_index, way_lines, resident,
        touch_order)`` tuples.  Deferral is sound because a replayed
        set's remaining accesses were all consumed by its replay and no
        other set reads its tag/LRU state: an inert set holds no
        ECC-cache entries, so cross-set ECC evictions can never reach
        into it mid-kernel.  On the SoA substrate the numpy columns are
        written in one fancy-indexed pass; the object substrate applies
        per set.
        """
        if isinstance(self.tags, SoaTagStore) and isinstance(self.lru, SoaLruState):
            bulk_apply_set_replays(self.tags, self.lru, pending)
            assoc = self._assoc
            stamp = self._hit_stamp
            blank = [-1] * assoc
            for set_index, _, _, _ in pending:
                base = set_index * assoc
                stamp[base : base + assoc] = blank
        else:
            for set_index, way_lines, resident, touch_order in pending:
                self.apply_set_replay(set_index, way_lines, resident, touch_order)

    def commit_set_replays(
        self, pending, agg, n_misses: int, bulk_hits, n_corrected: int = 0
    ) -> None:
        """Commit a batch of replayed sets: state, stats and hooks.

        The single bulk-commit point of the transaction layer.
        ``pending`` is the deferred state write-back
        (:meth:`apply_set_replays`); ``agg`` the aggregate ``(reads,
        read_hits, writes, write_hits, evictions)`` counted by the
        replay kernels; ``n_misses`` the read-miss count (every
        batched miss fills — sets where a fill could bypass never
        batch); ``bulk_hits`` maps each replay-info tuple to its
        batched read-hit count, applied through the scheme's
        :meth:`~repro.cache.hooks.ProtectionScheme.apply_replay_bulk`;
        ``n_corrected`` counts per-way CORRECTED hits refining a CLEAN
        ``info`` (their scheme-side effects already followed ``info``
        — only the cache stat differs; the caller owns their latency
        class).  Memory traffic follows the write-through protocol:
        one memory read per miss, one posted memory write per store.
        """
        self.apply_set_replays(pending)
        st = self.stats
        agg_reads, agg_read_hits, agg_writes, agg_write_hits, agg_evs = agg
        st.reads += agg_reads
        st.read_hits += agg_read_hits
        st.read_misses += n_misses
        st.fills += n_misses
        st.evictions += agg_evs
        st.writes += agg_writes
        st.write_hits += agg_write_hits
        st.write_misses += agg_writes - agg_write_hits
        self.memory_reads += n_misses
        self.memory_writes += agg_writes
        scheme = self.scheme
        for info, hits in bulk_hits.items():
            if info[0]:
                st.corrected_reads += hits
            scheme.apply_replay_bulk(info, hits)
        st.corrected_reads += n_corrected
        if self._check_invariants:
            for set_index, _, _, _ in pending:
                check_set_invariants(self, set_index)

    # -- canonical observable state ----------------------------------------

    def state_snapshot(self) -> dict:
        """Canonical, substrate-independent observable state.

        Captures everything the access semantics can depend on or
        produce: the stats counters, memory traffic, and — per set —
        the resident line / disabled / dirty flags of every way plus
        the LRU recency order (MRU first; both substrates induce
        identical orders by contract).  Under ``prefer_invalid`` fill
        (the L2 policy) the order is restricted to *valid* ways: an
        invalid way's recency is never read there — invalid victims
        are chosen by way index / fill priority, and ``lru_way`` is
        only consulted on a full set — so it is dead state the
        batched interpreter legitimately skips ``demote`` updates on.
        Plain-LRU fill (``prefer_invalid=False``, the L1 policy) reads
        every way's age, so the full order is recorded.  Sets still in
        their construction state are elided, so the snapshot of a
        lightly used 2 MB cache stays small and digests of equal-state
        caches match regardless of how much of the geometry was
        touched.

        Deliberately *excluded*: the epoch-cache memo state
        (``_hit_stamp`` / ``_hit_info`` and the epoch counters) — it
        is engine- and schedule-dependent by design and can never
        change an access outcome, only whether scheme dispatch is
        skipped.
        """
        tags = self.tags
        lru = self.lru
        n_sets = self._n_sets
        assoc = self._assoc
        prefer_invalid = self._prefer_invalid
        initial_order = [] if prefer_invalid else list(range(assoc))
        sets = []
        for set_index in range(n_sets):
            ways = []
            occupied = False
            for way in range(assoc):
                if tags.is_valid(set_index, way):
                    line = tags.tag_at(set_index, way) * n_sets + set_index
                else:
                    line = -1
                disabled = 1 if tags.is_disabled(set_index, way) else 0
                dirty = 1 if tags.is_dirty(set_index, way) else 0
                ways.append([line, disabled, dirty])
                if line >= 0 or disabled or dirty:
                    occupied = True
            order = list(lru.recency_order(set_index))
            if prefer_invalid:
                order = [way for way in order if ways[way][0] >= 0]
            if occupied or order != initial_order:
                sets.append([set_index, ways, order])
        return {
            "geometry": [n_sets, assoc, self._line_bytes],
            "policy": [self.write_policy.name, self.allocation_policy.name],
            "stats": self.stats.as_dict(),
            "memory_reads": self.memory_reads,
            "memory_writes": self.memory_writes,
            "sets": sets,
        }

    def state_digest(self) -> str:
        """SHA-256 over the canonical JSON form of :meth:`state_snapshot`."""
        blob = json.dumps(self.state_snapshot(), sort_keys=True, default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def invalidate_line(self, set_index: int, way: int, reason: str = "") -> None:
        """Invalidate a valid line from outside the access path.

        Used by Killi when an ECC-cache eviction leaves an L2 line
        unprotected (paper Section 4.3).
        """
        tags = self.tags
        if not tags.is_valid(set_index, way):
            return
        if tags.is_dirty(set_index, way):
            self.memory_writes += 1  # write-back before dropping
        tags.invalidate(set_index, way)
        self._hit_stamp[set_index * self._assoc + way] = -1
        self.lru.demote(set_index, way)
        self.stats.invalidations += 1
        if reason == "ecc_evict":
            self.stats.ecc_evict_invalidations += 1
        self.scheme.on_invalidated(set_index, way)

    def reset(self) -> None:
        """Voltage change / reboot: flush everything, re-enable lines."""
        for set_index in range(self.geometry.n_sets):
            for way in range(self.geometry.associativity):
                self.tags.invalidate(set_index, way)
        self.tags.enable_all()
        self.bump_epoch()
        self.scheme.on_reset()

    # -- miss path ---------------------------------------------------------

    def _miss(self, addr: int) -> int:
        self.stats.read_misses += 1
        self.memory_reads += 1
        if self._allocate(addr) is None:
            self.stats.bypasses += 1
        return self._lat_miss

    def _allocate(self, addr: int) -> int | None:
        """Install ``addr`` into its set; returns the way or None (bypass).

        Eviction-time training may *disable* the chosen victim (Killi
        discovers a multi-bit fault in the evicted contents), in which
        case another victim is chosen.
        """
        set_index = (addr // self._line_bytes) % self._n_sets
        tags = self.tags
        for _ in self._way_attempts:
            victim, has_data = self._choose_victim(set_index)
            if victim is None:
                # Every way disabled (or unusable): no allocation.
                return None
            if has_data:
                self.stats.evictions += 1
                if tags.is_dirty(set_index, victim):
                    self.memory_writes += 1  # write-back of modified data
                self.scheme.on_evict(set_index, victim)
                if tags.is_disabled(set_index, victim):
                    continue
                tags.invalidate(set_index, victim)
            tags.insert(addr, victim)
            self._hit_stamp[set_index * self._assoc + victim] = -1
            self.stats.fills += 1
            self.scheme.on_fill(set_index, victim)
            self.lru.touch(set_index, victim)
            return victim
        return None

    def _choose_victim(self, set_index: int) -> tuple:
        """Victim selection with the scheme's priorities.

        1. Only enabled, scheme-usable ways are candidates.
        2. Invalid candidates are preferred, ordered by the scheme's
           fill priority (Killi: b'01 > b'00 > b'10).
        3. Otherwise the LRU valid candidate is evicted.

        Plain-LRU fill (``prefer_invalid=False``, the L1 policy) skips
        all of that: the LRU way is always the victim, valid or not —
        an O(associativity) age scan, no candidate list materialized.
        Note the two policies pick *different physical ways* on a cold
        set (plain LRU starts at way w-1, first-invalid at way 0), so
        the knob is behavioural, not just a fast path.

        Returns ``(way, has_data)`` where ``has_data`` tells the caller
        whether the chosen way holds a valid line (eviction required);
        ``(None, False)`` when no way may receive the fill.
        """
        tags = self.tags
        if not self._prefer_invalid:
            way = self.lru.lru_way(set_index)
            return way, tags.is_valid(set_index, way)
        if tags.disabled_in_set[set_index] == 0 and not self._scheme_filters_ways:
            # Fast path: every way is a candidate.  Full set -> plain
            # LRU; some way invalid + uniform priorities -> the first
            # invalid way, no candidate list materialized.
            if tags.valid_in_set[set_index] == self._assoc:
                return self.lru.lru_way(set_index), True
            if not self._scheme_prioritizes or self.scheme.fill_priority_is_uniform(
                set_index
            ):
                return tags.first_invalid(set_index), False
            candidates = self._all_ways
        else:
            candidates = tags.enabled_ways(set_index)
            if self._scheme_filters_ways:
                candidates = [
                    way
                    for way in candidates
                    if self.scheme.is_line_usable(set_index, way)
                ]
            if not candidates:
                return None, False
        invalid = tags.invalid_among(set_index, candidates)
        if invalid:
            if not self._scheme_prioritizes or self.scheme.fill_priority_is_uniform(
                set_index
            ):
                # Equal priorities: first max == first candidate.
                return invalid[0], False
            prios = self.scheme.fill_priorities(set_index, invalid)
            # max() with first-max tie-break, matching
            # max(invalid, key=fill_priority).
            return invalid[max(range(len(invalid)), key=prios.__getitem__)], False
        if len(candidates) == self._assoc:
            return self.lru.lru_way(set_index), True
        return self.lru.lru_choice(set_index, candidates), True


class WriteThroughCache(CacheModel):
    """The paper's GPU L2: write-through / no-write-allocate preset.

    Writes always go to memory, so detected-uncorrectable read errors
    can always be repaired by refetching.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        scheme: ProtectionScheme | None = None,
        latencies: CacheLatencies | None = None,
        substrate: str | None = None,
    ):
        CacheModel.__init__(
            self,
            geometry,
            scheme,
            latencies,
            substrate,
            write_policy=WRITE_THROUGH,
            allocation_policy=NO_WRITE_ALLOCATE,
        )


class WriteBackCache(WriteThroughCache):
    """Write-back / write-allocate preset (paper Section 5.6.1).

    Stores allocate and dirty data lives only in the cache until
    eviction.  This changes the reliability calculus fundamentally: a
    detected-uncorrectable error on a *dirty* line cannot be repaired
    by refetching — it is a detected uncorrectable error (DUE, i.e.
    data loss), which the stats record (``due_on_dirty``).

    The model signals dirtiness to the scheme through the ``on_dirty``
    hook so Killi's write-back variant can upgrade the line's
    protection (SECDED for dirty b'00 lines, DECTED-in-the-freed-
    parity-bits for dirty b'10 lines — the paper's proposal).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        scheme: ProtectionScheme | None = None,
        latencies: CacheLatencies | None = None,
        substrate: str | None = None,
    ):
        CacheModel.__init__(
            self,
            geometry,
            scheme,
            latencies,
            substrate,
            write_policy=WRITE_BACK,
            allocation_policy=WRITE_ALLOCATE,
        )
