"""Address mapping for a banked set-associative cache."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheGeometry"]


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of a set-associative cache and its address mapping.

    The paper's GPU L2 (Table 3) is ``CacheGeometry(size_bytes=2*2**20,
    line_bytes=64, associativity=16, banks=16)`` — 2048 sets, 32768
    lines.

    Addresses are byte addresses; the set index is taken from the bits
    directly above the line offset, and the bank from the low bits of
    the set index (line interleaving across banks).
    """

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 16
    banks: int = 1

    def __post_init__(self):
        if not _is_pow2(self.line_bytes):
            raise ValueError("line_bytes must be a power of two")
        if not _is_pow2(self.banks):
            raise ValueError("banks must be a power of two")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("size must be divisible by line_bytes * associativity")
        if not _is_pow2(self.n_sets):
            raise ValueError("number of sets must be a power of two")
        if self.banks > self.n_sets:
            raise ValueError("more banks than sets")

    @property
    def n_lines(self) -> int:
        """Total number of physical lines."""
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.n_lines // self.associativity

    @property
    def line_bits(self) -> int:
        """Data bits per line."""
        return self.line_bytes * 8

    def line_address(self, addr: int) -> int:
        """Address with the intra-line offset stripped."""
        return addr & ~(self.line_bytes - 1)

    def set_of(self, addr: int) -> int:
        """Set index of a byte address."""
        return (addr // self.line_bytes) % self.n_sets

    def tag_of(self, addr: int) -> int:
        """Tag of a byte address."""
        return addr // self.line_bytes // self.n_sets

    def bank_of(self, addr: int) -> int:
        """Bank servicing a byte address (line-interleaved)."""
        return self.set_of(addr) % self.banks

    def line_id(self, set_index: int, way: int) -> int:
        """Stable physical line id for (set, way) — fault maps key on this."""
        if not 0 <= set_index < self.n_sets:
            raise IndexError(f"set {set_index} out of range")
        if not 0 <= way < self.associativity:
            raise IndexError(f"way {way} out of range")
        return set_index * self.associativity + way

    def addr_of(self, tag: int, set_index: int) -> int:
        """Reconstruct a line-aligned byte address from (tag, set)."""
        return (tag * self.n_sets + set_index) * self.line_bytes
