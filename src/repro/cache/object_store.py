"""Set-associative tag store (object substrate).

Holds validity, tags and per-line disable flags; the unified cache
model (:mod:`repro.cache.core`) layers the access protocol and the
protection scheme on top.  This is the pinned reference substrate —
it survives purely so the fast paths have a ground truth to be
cross-checked against; :class:`repro.cache.soa.SoaTagStore` is the
struct-of-arrays fast path with the identical contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry

__all__ = ["CacheLineState", "SetAssocCache"]


@dataclass
class CacheLineState:
    """Tag-array state of one physical line."""

    valid: bool = False
    tag: int = -1
    disabled: bool = False
    dirty: bool = False
    """Modified data (write-back mode only; always False write-through)."""


class SetAssocCache:
    """Tag store for a set-associative cache.

    Purely structural: lookup, insert, invalidate.  Replacement and
    protection policy live in the caller.  ``count_valid`` and
    ``count_disabled`` are counter-maintained (updated incrementally
    on insert/invalidate/disable/enable/enable_all); in debug builds
    each call cross-checks the counter against a full scan.
    """

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self._lines = [
            [CacheLineState() for _ in range(geometry.associativity)]
            for _ in range(geometry.n_sets)
        ]
        # Per-set tag -> way index for O(1) lookups.
        self._tag_index = [dict() for _ in range(geometry.n_sets)]
        self._n_valid = 0
        self._n_disabled = 0
        # Per-set occupancy counters: the victim-selection fast paths
        # (full set -> plain LRU; no disables -> all ways eligible)
        # check these instead of scanning the ways.
        self.valid_in_set = [0] * geometry.n_sets
        self.disabled_in_set = [0] * geometry.n_sets

    def line(self, set_index: int, way: int) -> CacheLineState:
        """The tag-array state of (set, way)."""
        return self._lines[set_index][way]

    def lookup(self, addr: int) -> int | None:
        """Way holding ``addr``, or None on miss.

        Disabled ways never hit (a disabled line holds no valid data).
        """
        set_index = self.geometry.set_of(addr)
        tag = self.geometry.tag_of(addr)
        return self._tag_index[set_index].get(tag)

    def insert(self, addr: int, way: int) -> None:
        """Fill (set_of(addr), way) with ``addr``'s tag."""
        set_index = self.geometry.set_of(addr)
        line = self._lines[set_index][way]
        if line.disabled:
            raise ValueError("cannot fill a disabled line")
        index = self._tag_index[set_index]
        if line.valid:
            index.pop(line.tag, None)
        else:
            self._n_valid += 1
            self.valid_in_set[set_index] += 1
        line.valid = True
        line.dirty = False
        line.tag = self.geometry.tag_of(addr)
        index[line.tag] = way

    def invalidate(self, set_index: int, way: int) -> None:
        """Drop the line's contents (tag state only)."""
        line = self._lines[set_index][way]
        if line.valid:
            self._tag_index[set_index].pop(line.tag, None)
            self._n_valid -= 1
            self.valid_in_set[set_index] -= 1
        line.valid = False
        line.dirty = False
        line.tag = -1

    def disable(self, set_index: int, way: int) -> None:
        """Permanently (until reset) disable a way."""
        self.invalidate(set_index, way)
        line = self._lines[set_index][way]
        if not line.disabled:
            line.disabled = True
            self._n_disabled += 1
            self.disabled_in_set[set_index] += 1

    def enable(self, set_index: int, way: int) -> None:
        """Clear one way's disable flag (scrubber reclaim)."""
        line = self._lines[set_index][way]
        if line.disabled:
            line.disabled = False
            self._n_disabled -= 1
            self.disabled_in_set[set_index] -= 1

    def enable_all(self) -> None:
        """Clear every disable flag (models a voltage change / DFH reset)."""
        for set_lines in self._lines:
            for line in set_lines:
                line.disabled = False
        self._n_disabled = 0
        self.disabled_in_set = [0] * self.geometry.n_sets

    # -- scalar accessors (substrate-generic hot path) ---------------------

    def is_valid(self, set_index: int, way: int) -> bool:
        return self._lines[set_index][way].valid

    def is_disabled(self, set_index: int, way: int) -> bool:
        return self._lines[set_index][way].disabled

    def is_dirty(self, set_index: int, way: int) -> bool:
        return self._lines[set_index][way].dirty

    def set_dirty(self, set_index: int, way: int, value: bool = True) -> None:
        self._lines[set_index][way].dirty = value

    def tag_at(self, set_index: int, way: int) -> int:
        return self._lines[set_index][way].tag

    # -- victim-selection primitives ---------------------------------------

    def enabled_ways(self, set_index: int) -> list:
        """Non-disabled ways of a set, ascending."""
        return [
            way
            for way, line in enumerate(self._lines[set_index])
            if not line.disabled
        ]

    def invalid_among(self, set_index: int, ways) -> list:
        """The subset of ``ways`` that is invalid, in the given order."""
        lines = self._lines[set_index]
        return [way for way in ways if not lines[way].valid]

    def first_invalid(self, set_index: int) -> int | None:
        """Lowest-index invalid way of a set, or None if all valid.

        Equivalent to ``invalid_among(set_index, all_ways)[0]`` — the
        victim the uniform-fill-priority fast path picks.
        """
        for way, line in enumerate(self._lines[set_index]):
            if not line.valid:
                return way
        return None

    def ways_of_set(self, set_index: int):
        """All line states of a set (list indexed by way)."""
        return self._lines[set_index]

    # -- counters (maintained incrementally; scans assert in debug) --------

    def count_disabled(self) -> int:
        """Number of disabled lines cache-wide (O(1), counter-maintained)."""
        if __debug__:
            scanned = sum(
                1
                for set_lines in self._lines
                for line in set_lines
                if line.disabled
            )
            assert scanned == self._n_disabled, (
                f"disabled counter {self._n_disabled} != scan {scanned}"
            )
            assert sum(self.disabled_in_set) == self._n_disabled
        return self._n_disabled

    def count_valid(self) -> int:
        """Number of valid lines cache-wide (O(1), counter-maintained)."""
        if __debug__:
            scanned = sum(
                1
                for set_lines in self._lines
                for line in set_lines
                if line.valid
            )
            assert scanned == self._n_valid, (
                f"valid counter {self._n_valid} != scan {scanned}"
            )
            assert sum(self.valid_in_set) == self._n_valid
        return self._n_valid
