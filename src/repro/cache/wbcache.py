"""Write-back protected cache (paper Section 5.6.1 extension).

Same structure as the write-through cache, but stores allocate and
dirty data lives only in the cache until eviction.  This changes the
reliability calculus fundamentally: a detected-uncorrectable error on
a *dirty* line cannot be repaired by refetching — it is a detected
uncorrectable error (DUE, i.e. data loss), which the stats record.

The cache signals dirtiness to the scheme through the ``on_dirty``
hook so Killi's write-back variant can upgrade the line's protection
(SECDED for dirty b'00 lines, DECTED-in-the-freed-parity-bits for
dirty b'10 lines — the paper's proposal).
"""

from __future__ import annotations

from repro.cache.protection import AccessOutcome
from repro.cache.wtcache import WriteThroughCache

__all__ = ["WriteBackCache"]


class WriteBackCache(WriteThroughCache):
    """Write-back, write-allocate protected cache."""

    def write(self, addr: int) -> int:
        """Write access; allocates on miss, marks the line dirty."""
        self.stats.writes += 1
        lat = self.latencies
        set_index = self.geometry.set_of(addr)
        tags = self.tags
        way = tags.lookup(addr)
        if way is not None:
            self.stats.write_hits += 1
            self._hit_stamp[set_index * self._assoc + way] = -1
            self.scheme.on_write_hit(set_index, way)
            if not tags.is_dirty(set_index, way):
                tags.set_dirty(set_index, way, True)
                self.scheme.on_dirty(set_index, way)
            self.lru.touch(set_index, way)
            return lat.tag + lat.data

        # Write-allocate: fetch the line, then modify it.
        self.stats.write_misses += 1
        self.memory_reads += 1
        way = self._allocate(addr)
        if way is None:
            # Nowhere to put it: the store goes straight to memory.
            self.stats.bypasses += 1
            self.memory_writes += 1
            return lat.miss
        self._hit_stamp[set_index * self._assoc + way] = -1
        self.scheme.on_write_hit(set_index, way)
        tags.set_dirty(set_index, way, True)
        self.scheme.on_dirty(set_index, way)
        return lat.miss

    def read(self, addr: int) -> int:
        """Read access; uncorrectable errors on dirty lines are DUEs.

        Dirty-line hits never consult the epoch cache: a stamp cannot
        be valid here (every path that dirties a line clears it, and
        this path does not memoize), so the full dispatch always runs.
        """
        set_index = self.geometry.set_of(addr)
        way = self.tags.lookup(addr)
        if way is not None and self.tags.is_dirty(set_index, way):
            # Peek at the outcome path: a detected-uncorrectable error
            # here loses modified data.
            self.stats.reads += 1
            outcome = self.scheme.on_read_hit(set_index, way)
            lat = self.latencies
            if outcome is AccessOutcome.CLEAN:
                self.stats.read_hits += 1
                self.lru.touch(set_index, way)
                return lat.hit
            if outcome is AccessOutcome.CORRECTED:
                self.stats.read_hits += 1
                self.stats.corrected_reads += 1
                self.lru.touch(set_index, way)
                return lat.hit + lat.correction
            # Data loss: the only copy was modified and is now gone.
            self._hit_stamp[set_index * self._assoc + way] = -1
            self.stats.error_induced_misses += 1
            self.stats.bump("due_on_dirty")
            if outcome is AccessOutcome.DISABLE_MISS:
                self.tags.disable(set_index, way)
            else:
                self.tags.invalidate(set_index, way)
            self.lru.demote(set_index, way)
            return lat.hit + self._miss(addr)
        return super().read(addr)
