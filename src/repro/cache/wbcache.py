"""Compatibility shim — the access semantics live in :mod:`repro.cache.core`.

:class:`~repro.cache.core.WriteBackCache` is the write-back /
write-allocate preset of the unified
:class:`~repro.cache.core.CacheModel` (paper Section 5.6.1); this
module survives only so existing ``from repro.cache.wbcache import
...`` sites keep working.
"""

from repro.cache.core import WriteBackCache

__all__ = ["WriteBackCache"]
