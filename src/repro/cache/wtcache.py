"""Write-through protected cache.

Implements the access protocol of the paper's GPU L2: write-through /
no-write-allocate (writes always go to memory; detected-uncorrectable
read errors can therefore always be repaired by refetching), with a
protection scheme consulted on every fill, hit and eviction.

Latency accounting follows Table 3: a hit pays tag + data + check
latency; ECC-cache accesses are hidden under the data access; a miss
additionally pays the memory latency.  Error-induced misses (Table 2's
"signal error-induced cache miss; trigger new load request") pay the
hit latency for the failed attempt plus a full miss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry
from repro.cache.protection import AccessOutcome, ProtectionScheme
from repro.cache.replacement import LruState
from repro.cache.setassoc import SetAssocCache
from repro.cache.stats import CacheStats

__all__ = ["CacheLatencies", "WriteThroughCache"]


@dataclass(frozen=True)
class CacheLatencies:
    """Access latencies in cycles (paper Table 3 values as defaults)."""

    tag: int = 2
    data: int = 2
    check: int = 1
    """SECDED / parity check latency; ECC-cache access is hidden."""
    correction: int = 1
    """Extra cycles when a correction is applied before data return."""
    memory: int = 200
    """Main-memory access latency (not in Table 3; modelled)."""

    @property
    def hit(self) -> int:
        return self.tag + self.data + self.check

    @property
    def miss(self) -> int:
        return self.tag + self.memory


class WriteThroughCache:
    """A set-associative, write-through, no-write-allocate cache.

    Parameters
    ----------
    geometry:
        Shape of the cache.
    scheme:
        Protection scheme consulted on every access.
    latencies:
        Cycle costs per access type.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        scheme: ProtectionScheme | None = None,
        latencies: CacheLatencies | None = None,
    ):
        self.geometry = geometry
        self.scheme = scheme if scheme is not None else ProtectionScheme()
        self.latencies = latencies if latencies is not None else CacheLatencies()
        self.tags = SetAssocCache(geometry)
        self.lru = LruState(geometry.n_sets, geometry.associativity)
        self.stats = CacheStats()
        self.memory_reads = 0
        self.memory_writes = 0
        self.scheme.attach(self)
        # Skip the per-way usability call unless the scheme overrides it.
        self._scheme_filters_ways = (
            type(self.scheme).is_line_usable is not ProtectionScheme.is_line_usable
        )

    # -- public access API ------------------------------------------------

    def read(self, addr: int) -> int:
        """Read access; returns the latency in cycles."""
        self.stats.reads += 1
        lat = self.latencies
        set_index = self.geometry.set_of(addr)
        way = self.tags.lookup(addr)
        if way is not None:
            outcome = self.scheme.on_read_hit(set_index, way)
            if outcome is AccessOutcome.CLEAN:
                self.stats.read_hits += 1
                self.lru.touch(set_index, way)
                return lat.hit
            if outcome is AccessOutcome.CORRECTED:
                self.stats.read_hits += 1
                self.stats.corrected_reads += 1
                self.lru.touch(set_index, way)
                return lat.hit + lat.correction
            # Error-induced miss: drop the copy and refetch.
            self.stats.error_induced_misses += 1
            if outcome is AccessOutcome.DISABLE_MISS:
                self.tags.disable(set_index, way)
            else:
                self.tags.invalidate(set_index, way)
            self.lru.demote(set_index, way)
            return lat.hit + self._miss(addr)
        return self._miss(addr)

    def write(self, addr: int) -> int:
        """Write access (write-through, no allocate); returns latency.

        The store is posted to memory regardless; a hit also updates
        the cached copy (and its protection metadata).
        """
        self.stats.writes += 1
        self.memory_writes += 1
        set_index = self.geometry.set_of(addr)
        way = self.tags.lookup(addr)
        if way is not None:
            self.stats.write_hits += 1
            self.scheme.on_write_hit(set_index, way)
            self.lru.touch(set_index, way)
        else:
            self.stats.write_misses += 1
        # Posted write: the store itself does not stall the requester
        # beyond the tag check.
        return self.latencies.tag

    def invalidate_line(self, set_index: int, way: int, reason: str = "") -> None:
        """Invalidate a valid line from outside the access path.

        Used by Killi when an ECC-cache eviction leaves an L2 line
        unprotected (paper Section 4.3).
        """
        line = self.tags.line(set_index, way)
        if not line.valid:
            return
        if line.dirty:
            self.memory_writes += 1  # write-back before dropping
        self.tags.invalidate(set_index, way)
        self.lru.demote(set_index, way)
        self.stats.invalidations += 1
        if reason == "ecc_evict":
            self.stats.ecc_evict_invalidations += 1
        self.scheme.on_invalidated(set_index, way)

    def reset(self) -> None:
        """Voltage change / reboot: flush everything, re-enable lines."""
        for set_index in range(self.geometry.n_sets):
            for way in range(self.geometry.associativity):
                self.tags.invalidate(set_index, way)
        self.tags.enable_all()
        self.scheme.on_reset()

    # -- miss path ---------------------------------------------------------

    def _miss(self, addr: int) -> int:
        self.stats.read_misses += 1
        self.memory_reads += 1
        if self._allocate(addr) is None:
            self.stats.bypasses += 1
        return self.latencies.miss

    def _allocate(self, addr: int) -> int | None:
        """Install ``addr`` into its set; returns the way or None (bypass).

        Eviction-time training may *disable* the chosen victim (Killi
        discovers a multi-bit fault in the evicted contents), in which
        case another victim is chosen.
        """
        set_index = self.geometry.set_of(addr)
        for _ in range(self.geometry.associativity):
            victim = self._choose_victim(set_index)
            if victim is None:
                # Every way disabled (or unusable): no allocation.
                return None
            line = self.tags.line(set_index, victim)
            if line.valid:
                self.stats.evictions += 1
                if line.dirty:
                    self.memory_writes += 1  # write-back of modified data
                self.scheme.on_evict(set_index, victim)
                if line.disabled:
                    continue
                self.tags.invalidate(set_index, victim)
            self.tags.insert(addr, victim)
            self.stats.fills += 1
            self.scheme.on_fill(set_index, victim)
            self.lru.touch(set_index, victim)
            return victim
        return None

    def _choose_victim(self, set_index: int) -> int | None:
        """Victim selection with the scheme's priorities.

        1. Only enabled, scheme-usable ways are candidates.
        2. Invalid candidates are preferred, ordered by the scheme's
           fill priority (Killi: b'01 > b'00 > b'10).
        3. Otherwise the LRU valid candidate is evicted.
        """
        lines = self.tags.ways_of_set(set_index)
        if self._scheme_filters_ways:
            candidates = [
                way
                for way, line in enumerate(lines)
                if not line.disabled and self.scheme.is_line_usable(set_index, way)
            ]
        else:
            candidates = [
                way for way, line in enumerate(lines) if not line.disabled
            ]
        if not candidates:
            return None
        invalid = [way for way in candidates if not lines[way].valid]
        if invalid:
            return max(
                invalid, key=lambda way: self.scheme.fill_priority(set_index, way)
            )
        return self.lru.lru_choice(set_index, set(candidates))
