"""Compatibility shim — the access semantics live in :mod:`repro.cache.core`.

:class:`~repro.cache.core.WriteThroughCache` is the write-through /
no-write-allocate preset of the unified
:class:`~repro.cache.core.CacheModel`; this module survives only so
existing ``from repro.cache.wtcache import ...`` sites keep working.
"""

from repro.cache.core import CacheLatencies, WriteThroughCache

__all__ = ["CacheLatencies", "WriteThroughCache"]
