"""Struct-of-arrays cache substrate.

The object substrate (:mod:`repro.cache.object_store` +
:class:`~repro.cache.replacement.LruState`) keeps one
``CacheLineState`` dataclass per physical line behind per-set tag
dicts and per-set recency lists.  That is the pinned reference
implementation; this module is the fast path: the same tag-store
contract on flat numpy arrays —

- :class:`SoaTagStore` — valid/tag/disabled/dirty as ``(n_sets,
  associativity)`` arrays plus a single line-number -> way dict for
  O(1) lookups (one integer divide per access instead of a set/tag
  split against a per-set dict);
- :class:`~repro.cache.replacement.SoaLruState` (re-exported here) —
  integer-age LRU, order-equivalent to the list-based
  :class:`~repro.cache.replacement.LruState` under the shared
  :class:`~repro.cache.replacement.ReplacementPolicy` interface.

Both substrates are interchangeable behind any
:class:`~repro.cache.core.CacheModel` — the L2 presets and
:class:`~repro.gpu.hierarchy.SimpleL1` alike (``substrate="object"``
/ ``"soa"``); the test suite pins them bit-identical across schemes,
workloads and reset/disable semantics.  The default substrate is
``soa`` and can be overridden with the ``REPRO_SUBSTRATE`` environment
variable (the CI runs the tier-1 suite under both).
"""

from __future__ import annotations

import os

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import SoaLruState
from repro.scenario.registries import SUBSTRATE_REGISTRY, SubstrateSpec

__all__ = [
    "SUBSTRATES",
    "default_substrate",
    "resolve_substrate",
    "substrate_spec",
    "SoaLineView",
    "SoaTagStore",
    "SoaLruState",
    "export_set_state",
    "replay_clean_set",
    "bulk_apply_set_replays",
]

#: The built-in substrate names (registry may hold more).
SUBSTRATES = ("object", "soa")


def default_substrate() -> str:
    """The session default: ``REPRO_SUBSTRATE`` env var or ``"soa"``."""
    value = os.environ.get("REPRO_SUBSTRATE", "soa")
    if value not in SUBSTRATE_REGISTRY:
        raise ValueError(
            f"REPRO_SUBSTRATE={value!r} is not one of "
            f"{tuple(SUBSTRATE_REGISTRY.names())}"
        )
    return value


def resolve_substrate(substrate: str | None) -> str:
    """Validate an explicit substrate choice, or fall back to the default."""
    if substrate is None:
        return default_substrate()
    if substrate not in SUBSTRATE_REGISTRY:
        raise ValueError(
            f"unknown substrate {substrate!r}; expected one of "
            f"{tuple(SUBSTRATE_REGISTRY.names())}"
        )
    return substrate


def substrate_spec(substrate: str | None) -> SubstrateSpec:
    """The :class:`SubstrateSpec` backing a (possibly default) name."""
    return SUBSTRATE_REGISTRY.resolve(resolve_substrate(substrate))


class SoaLineView:
    """Dataclass-compatible view of one (set, way) in a :class:`SoaTagStore`.

    Quacks like :class:`~repro.cache.object_store.CacheLineState` for
    readers (``valid``/``tag``/``disabled``/``dirty``); the mutable
    flags (``dirty``, ``disabled``) write through to the arrays and
    keep the store's maintained counters in sync.  ``valid``/``tag``
    are read-only — all code paths mutate those via the store API.
    """

    __slots__ = ("_store", "_set", "_way")

    def __init__(self, store: "SoaTagStore", set_index: int, way: int):
        self._store = store
        self._set = set_index
        self._way = way

    @property
    def valid(self) -> bool:
        return bool(self._store.valid[self._set, self._way])

    @property
    def tag(self) -> int:
        return int(self._store.tag[self._set, self._way])

    @property
    def disabled(self) -> bool:
        return bool(self._store.disabled[self._set, self._way])

    @disabled.setter
    def disabled(self, value: bool) -> None:
        store = self._store
        was = bool(store.disabled[self._set, self._way])
        if was != bool(value):
            store.disabled[self._set, self._way] = bool(value)
            delta = 1 if value else -1
            store._n_disabled += delta
            store.disabled_in_set[self._set] += delta

    @property
    def dirty(self) -> bool:
        return bool(self._store.dirty[self._set, self._way])

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._store.dirty[self._set, self._way] = bool(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SoaLineView(set={self._set}, way={self._way}, "
            f"valid={self.valid}, tag={self.tag}, "
            f"disabled={self.disabled}, dirty={self.dirty})"
        )


class SoaTagStore:
    """Tag store for a set-associative cache on flat numpy arrays.

    API-compatible with :class:`~repro.cache.object_store.SetAssocCache`
    (lookup / insert / invalidate / disable / enable / enable_all /
    line / ways_of_set / counters) plus the scalar accessors the
    protected-cache hot path uses (``is_valid`` / ``is_dirty`` /
    ``is_disabled`` / ``tag_at`` / ``set_dirty``).

    The lookup index maps *line numbers* (``addr // line_bytes``) to
    ways: globally unique because each line number belongs to exactly
    one set, and cheaper per access than a per-set (tag -> way) dict
    since it needs a single integer divide.
    """

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        n_sets, assoc = geometry.n_sets, geometry.associativity
        self.valid = np.zeros((n_sets, assoc), dtype=bool)
        self.tag = np.full((n_sets, assoc), -1, dtype=np.int64)
        self.disabled = np.zeros((n_sets, assoc), dtype=bool)
        self.dirty = np.zeros((n_sets, assoc), dtype=bool)
        self._index: dict = {}  # line number -> way
        # Reverse map: resident line number per slot (-1 = invalid),
        # flat list indexed by set * associativity + way.  The hot
        # insert/invalidate/is_valid paths read this instead of doing
        # numpy scalar loads from the arrays.
        self._line_at = [-1] * (n_sets * assoc)
        self._line_bytes = geometry.line_bytes
        self._n_sets = n_sets
        self._assoc = assoc
        self._n_valid = 0
        self._n_disabled = 0
        # Per-set occupancy counters: the victim-selection fast paths
        # (full set -> plain LRU; no disables -> all ways eligible)
        # check these instead of scanning the ways.
        self.valid_in_set = [0] * n_sets
        self.disabled_in_set = [0] * n_sets

    # -- hot-path API ------------------------------------------------------

    def lookup(self, addr: int) -> int | None:
        """Way holding ``addr``, or None on miss (disabled ways never hit)."""
        return self._index.get(addr // self._line_bytes)

    def insert(self, addr: int, way: int) -> None:
        """Fill (set_of(addr), way) with ``addr``'s tag."""
        line_no = addr // self._line_bytes
        set_index = line_no % self._n_sets
        slot = set_index * self._assoc + way
        old = self._line_at[slot]
        if old >= 0:
            self._index.pop(old, None)
        else:
            # Valid lines are never disabled (disable invalidates), so
            # the guard only needs to fire on the invalid branch.
            if self.disabled_in_set[set_index] and self.disabled[set_index, way]:
                raise ValueError("cannot fill a disabled line")
            self._n_valid += 1
            self.valid_in_set[set_index] += 1
            self.valid[set_index, way] = True
        self.dirty[set_index, way] = False
        self.tag[set_index, way] = line_no // self._n_sets
        self._line_at[slot] = line_no
        self._index[line_no] = way

    def invalidate(self, set_index: int, way: int) -> None:
        """Drop the line's contents (tag state only)."""
        slot = set_index * self._assoc + way
        old = self._line_at[slot]
        if old >= 0:
            self._index.pop(old, None)
            self._line_at[slot] = -1
            self._n_valid -= 1
            self.valid_in_set[set_index] -= 1
            self.valid[set_index, way] = False
            self.dirty[set_index, way] = False
            self.tag[set_index, way] = -1

    def disable(self, set_index: int, way: int) -> None:
        """Permanently (until reset) disable a way."""
        self.invalidate(set_index, way)
        if not self.disabled[set_index, way]:
            self.disabled[set_index, way] = True
            self._n_disabled += 1
            self.disabled_in_set[set_index] += 1

    def enable(self, set_index: int, way: int) -> None:
        """Clear one way's disable flag (scrubber reclaim)."""
        if self.disabled[set_index, way]:
            self.disabled[set_index, way] = False
            self._n_disabled -= 1
            self.disabled_in_set[set_index] -= 1

    def enable_all(self) -> None:
        """Clear every disable flag (models a voltage change / DFH reset)."""
        self.disabled[:] = False
        self._n_disabled = 0
        self.disabled_in_set = [0] * self._n_sets

    # -- scalar accessors (hot-path, no view allocation) -------------------

    def is_valid(self, set_index: int, way: int) -> bool:
        return self._line_at[set_index * self._assoc + way] >= 0

    def is_disabled(self, set_index: int, way: int) -> bool:
        return bool(self.disabled[set_index, way])

    def is_dirty(self, set_index: int, way: int) -> bool:
        return bool(self.dirty[set_index, way])

    def set_dirty(self, set_index: int, way: int, value: bool = True) -> None:
        self.dirty[set_index, way] = value

    def tag_at(self, set_index: int, way: int) -> int:
        # -1 // n_sets == -1 for any positive n_sets, so the invalid
        # sentinel passes through unchanged.
        return self._line_at[set_index * self._assoc + way] // self._n_sets

    # -- victim-selection primitives ---------------------------------------

    def enabled_ways(self, set_index: int) -> list:
        """Non-disabled ways of a set, ascending."""
        return np.flatnonzero(~self.disabled[set_index]).tolist()

    def invalid_among(self, set_index: int, ways) -> list:
        """The subset of ``ways`` that is invalid, in the given order."""
        base = set_index * self._assoc
        row = self._line_at[base : base + self._assoc]
        return [way for way in ways if row[way] < 0]

    def first_invalid(self, set_index: int) -> int | None:
        """Lowest-index invalid way of a set, or None if all valid.

        Equivalent to ``invalid_among(set_index, all_ways)[0]`` — the
        victim the uniform-fill-priority fast path picks.
        """
        base = set_index * self._assoc
        line_at = self._line_at
        for way in range(self._assoc):
            if line_at[base + way] < 0:
                return way
        return None

    # -- structural views --------------------------------------------------

    def line(self, set_index: int, way: int) -> SoaLineView:
        """The tag-array state of (set, way)."""
        return SoaLineView(self, set_index, way)

    def ways_of_set(self, set_index: int):
        """All line states of a set (list indexed by way)."""
        return [
            SoaLineView(self, set_index, way)
            for way in range(self.geometry.associativity)
        ]

    # -- counters (maintained incrementally; scans assert in debug) --------

    def count_disabled(self) -> int:
        """Number of disabled lines cache-wide (O(1), counter-maintained)."""
        if __debug__:
            scanned = int(np.count_nonzero(self.disabled))
            assert scanned == self._n_disabled, (
                f"disabled counter {self._n_disabled} != scan {scanned}"
            )
            assert sum(self.disabled_in_set) == self._n_disabled
        return self._n_disabled

    def count_valid(self) -> int:
        """Number of valid lines cache-wide (O(1), counter-maintained)."""
        if __debug__:
            scanned = int(np.count_nonzero(self.valid))
            assert scanned == self._n_valid, (
                f"valid counter {self._n_valid} != scan {scanned}"
            )
            assert sum(self.valid_in_set) == self._n_valid
            assert sum(1 for line in self._line_at if line >= 0) == self._n_valid
        return self._n_valid

    def verify(self) -> None:
        """Full-store consistency check (the ``REPRO_CHECK_INVARIANTS`` scan).

        Cross-checks every redundant representation this store
        maintains: the numpy flag/tag arrays against the flat
        ``_line_at`` reverse map, the lookup ``_index`` against both,
        and the O(1) counters against scans.  Raises
        ``AssertionError`` on the first inconsistency; O(lines), so it
        runs at commit/test granularity, never per access.
        """
        n_sets, assoc = self._n_sets, self._assoc
        scanned_valid = int(np.count_nonzero(self.valid))
        assert scanned_valid == self._n_valid, (
            f"valid counter {self._n_valid} != scan {scanned_valid}"
        )
        scanned_disabled = int(np.count_nonzero(self.disabled))
        assert scanned_disabled == self._n_disabled, (
            f"disabled counter {self._n_disabled} != scan {scanned_disabled}"
        )
        assert len(self._index) == self._n_valid, (
            f"lookup index holds {len(self._index)} lines, "
            f"valid counter says {self._n_valid}"
        )
        assert not np.any(self.valid & self.disabled), (
            "some line is both valid and disabled"
        )
        assert not np.any(self.dirty & ~self.valid), (
            "some invalid line is marked dirty"
        )
        for set_index in range(n_sets):
            base = set_index * assoc
            row = self._line_at[base : base + assoc]
            n_valid_set = sum(1 for line in row if line >= 0)
            assert n_valid_set == self.valid_in_set[set_index], (
                f"set {set_index}: valid_in_set "
                f"{self.valid_in_set[set_index]} != scan {n_valid_set}"
            )
            n_dis_set = int(np.count_nonzero(self.disabled[set_index]))
            assert n_dis_set == self.disabled_in_set[set_index], (
                f"set {set_index}: disabled_in_set "
                f"{self.disabled_in_set[set_index]} != scan {n_dis_set}"
            )
            for way, line in enumerate(row):
                if line >= 0:
                    assert line % n_sets == set_index, (
                        f"line {line} resident in wrong set {set_index}"
                    )
                    assert self._index.get(line) == way, (
                        f"line {line} at set {set_index} way {way} not in "
                        f"(or aliased by) the lookup index"
                    )
                    assert bool(self.valid[set_index, way]), (
                        f"set {set_index} way {way}: _line_at says valid, "
                        "valid array disagrees"
                    )
                    assert int(self.tag[set_index, way]) == line // n_sets, (
                        f"set {set_index} way {way}: tag array "
                        f"{int(self.tag[set_index, way])} != "
                        f"{line // n_sets} from _line_at"
                    )
                else:
                    assert not bool(self.valid[set_index, way]), (
                        f"set {set_index} way {way}: _line_at says invalid, "
                        "valid array disagrees"
                    )


# -- batched set replay kernels ------------------------------------------
#
# The batched engine partitions the L2-bound stream by set and replays
# each *scheme-inert* set's subsequence here instead of one
# ``WriteThroughCache.read``/``write`` call per access.  Clean sets are
# plain set-associative LRU: residency plus recency fully determine
# every hit, miss, fill and eviction, so the replay needs only an
# insertion-ordered dict (oldest entry first == LRU victim) and O(1)
# work per access.  The kernels are substrate-agnostic: state crosses
# through the canonical per-set form exported below and is written back
# through the substrate's own insert/touch, mirroring the L1 filter's
# export/import pattern.


def export_set_state(tags, lru, set_index: int):
    """Canonical replay state of one set: ``(way_lines, seed, free_ways)``.

    ``way_lines[way]`` is the resident line number (-1 invalid),
    ``seed`` the ``(line_no, way)`` pairs of valid ways in LRU -> MRU
    order, ``free_ways`` the invalid *enabled* ways ascending — exactly
    the orders ``first_invalid`` / ``enabled_ways`` + ``lru_way``
    victim selection consumes.  Disabled ways are excluded from
    ``free_ways`` (they may never receive a fill) and are guaranteed
    invalid (``disable`` invalidates first), so they can never appear
    in ``seed`` either.
    """
    assoc = tags.geometry.associativity
    if isinstance(tags, SoaTagStore):
        base = set_index * assoc
        way_lines = tags._line_at[base : base + assoc]
    else:
        n_sets = tags.geometry.n_sets
        way_lines = [
            tags.tag_at(set_index, way) * n_sets + set_index
            if tags.is_valid(set_index, way)
            else -1
            for way in range(assoc)
        ]
    if tags.disabled_in_set[set_index]:
        if isinstance(tags, SoaTagStore):
            disabled_row = tags.disabled[set_index]
            free_ways = [
                way
                for way in range(assoc)
                if way_lines[way] < 0 and not disabled_row[way]
            ]
        else:
            free_ways = [
                way
                for way in range(assoc)
                if way_lines[way] < 0 and not tags.is_disabled(set_index, way)
            ]
    else:
        free_ways = [way for way in range(assoc) if way_lines[way] < 0]
    if isinstance(lru, SoaLruState):
        base = set_index * assoc
        ages = lru.age[base : base + assoc]
        order = sorted(range(assoc), key=ages.__getitem__)
    else:
        order = list(lru.recency_order(set_index))[::-1]
    seed = [(way_lines[way], way) for way in order if way_lines[way] >= 0]
    return way_lines, seed, free_ways


_NO_WAYS: frozenset = frozenset()


def replay_clean_set(
    seed,
    free_ways,
    indices,
    lines,
    stores,
    corrected_ways=None,
    guard=None,
):
    """Exact LRU replay of one scheme-inert set's access subsequence.

    Parameters
    ----------
    seed / free_ways:
        The set's state from :func:`export_set_state`.
    indices:
        The set's positions in the global residue stream, ascending —
        the order the per-access loop would reach them.
    lines / stores:
        Full residue columns (plain lists; indexed by ``indices``).
    corrected_ways:
        Optional collection of ways whose read hits replay as
        CORRECTED (+1 cycle, ``corrected_reads``) instead of CLEAN —
        MBIST-oracle schemes serve faulty-but-correctable lines this
        way.  None means every hit is uniform.
    guard:
        Optional ``(unsafe_ways, fill_ok)`` abort predicate for sets
        containing ways with active LV faults whose *events* are rare
        but not replayable: a write hit on a resident line in an
        unsafe way consumes shared RNG, and a fill into an unsafe way
        stays replayable only while ``fill_ok(way, line_no)`` says the
        deterministic masking coins leave no stored error.  Either
        event aborts the replay.  A 3-tuple ``(unsafe_ways, fill_ok,
        fills_ok)`` additionally supplies a batched
        ``fills_ok(ways, line_nos) -> bool array`` form; unsafe fills
        are then *deferred* — recorded during the replay and checked
        in one vectorized call — which is sound because fills are
        deterministic and everything simulated past the first dirty
        fill is discarded anyway (the abort offset returned is always
        the earliest unreplayable event).

    Returns ``(resident, touch_order, read_hits, write_hits, evictions,
    miss_positions, corrected_positions)`` on success: the final
    line -> way map (insertion-ordered LRU -> MRU), the touched ways
    in final-recency order (replay through ``lru.touch`` to reproduce
    the substrate's ages; untouched ways keep theirs), the stat
    counts, the global positions of the read misses, and the global
    positions of CORRECTED read hits.  On a guard abort it instead
    returns the *offset into* ``indices`` of the aborting access
    (a plain int): nothing has been mutated, and the caller knows the
    per-access path must advance past that access before a re-probe
    can possibly succeed (the replay prefix is exact, so the same
    event recurs at the same access until it has been consumed).

    Semantics matched to the per-access path: reads allocate on miss
    (victim = first invalid enabled way, else LRU among resident),
    writes are no-allocate and only touch recency on a hit.
    """
    resident = {}
    n_ways = 0
    for line, way in seed:
        resident[line] = way
        if way >= n_ways:
            n_ways = way + 1
    for way in free_ways:
        if way >= n_ways:
            n_ways = way + 1
    touched = [False] * n_ways
    free_i = 0
    n_free = len(free_ways)
    read_hits = write_hits = evictions = 0
    miss_positions = []
    miss_append = miss_positions.append
    corrected_positions = []
    corrected_append = corrected_positions.append
    corrected = (
        corrected_ways
        if isinstance(corrected_ways, frozenset)
        else frozenset(corrected_ways)
    ) if corrected_ways is not None else _NO_WAYS
    fills_ok = None
    if guard is not None:
        if len(guard) == 3:
            unsafe, fill_ok, fills_ok = guard
        else:
            unsafe, fill_ok = guard
    else:
        unsafe, fill_ok = _NO_WAYS, None
    # Deferred unsafe fills (batched guard form): (way, line, offset)
    # triples checked in one vectorized call instead of a Python
    # closure call per fill.
    d_ways: list = []
    d_lines: list = []
    d_offsets: list = []

    def first_dirty_fill() -> int:
        """Offset of the earliest deferred fill that would store
        unmasked errors, or -1 if all are clean."""
        if not d_ways:
            return -1
        ok = fills_ok(d_ways, d_lines)
        if ok.all():
            return -1
        return d_offsets[int(np.argmin(ok))]

    get = resident.get
    for k, i in enumerate(indices):
        line = lines[i]
        way = get(line)
        if stores[i]:
            if way is not None:
                if way in unsafe:
                    # Write hit would draw shared RNG: abort — unless
                    # an earlier deferred fill already broke the
                    # replay, in which case that offset wins.
                    dirty = first_dirty_fill() if fills_ok is not None else -1
                    return dirty if 0 <= dirty < k else k
                write_hits += 1
                del resident[line]
                resident[line] = way
                touched[way] = True
        elif way is not None:
            read_hits += 1
            if way in corrected:
                corrected_append(i)
            del resident[line]
            resident[line] = way
            touched[way] = True
        else:
            if free_i < n_free:
                way = free_ways[free_i]
            else:
                victim = next(iter(resident))
                way = resident[victim]
            if way in unsafe:
                if fills_ok is not None:
                    d_ways.append(way)
                    d_lines.append(line)
                    d_offsets.append(k)
                elif not fill_ok(way, line):
                    return k  # fill would store unmasked errors: abort
            miss_append(i)
            if free_i < n_free:
                free_i += 1
            else:
                del resident[victim]
                evictions += 1
            resident[line] = way
            touched[way] = True
    if fills_ok is not None:
        dirty = first_dirty_fill()
        if dirty >= 0:
            return dirty
    touch_order = [way for way in resident.values() if touched[way]]
    return (
        resident,
        touch_order,
        read_hits,
        write_hits,
        evictions,
        miss_positions,
        corrected_positions,
    )


def bulk_apply_set_replays(tags: SoaTagStore, lru: SoaLruState, pending) -> None:
    """Write many replayed sets' final state back in one pass (SoA only).

    ``pending`` holds ``(set_index, way_lines, resident, touch_order)``
    tuples as produced by :func:`export_set_state` /
    :func:`replay_clean_set`.  Equivalent to calling ``tags.insert`` and
    ``lru.touch`` per changed way, but the numpy-array columns (valid /
    tag / dirty flags) are written with one fancy-indexed assignment
    across *all* sets instead of three scalar stores per fill — the
    scalar stores dominate when thousands of sets apply a handful of
    fills each.  The plain-list columns (``_line_at``, ages) and the
    lookup dict are updated inline; per-set LRU clocks advance exactly
    as ``touch`` would have advanced them.
    """
    assoc = tags._assoc
    n_sets = tags._n_sets
    index = tags._index
    line_at = tags._line_at
    valid_in_set = tags.valid_in_set
    age = lru.age
    clock = lru._clock
    upd_slots: list = []
    upd_lines: list = []
    total_new_valid = 0
    for set_index, way_lines, resident, touch_order in pending:
        base = set_index * assoc
        newly_valid = 0
        for line, way in resident.items():
            old = way_lines[way]
            if old == line:
                continue
            if old >= 0:
                index.pop(old, None)
            else:
                newly_valid += 1
            index[line] = way
            slot = base + way
            line_at[slot] = line
            upd_slots.append(slot)
            upd_lines.append(line)
        if newly_valid:
            total_new_valid += newly_valid
            valid_in_set[set_index] += newly_valid
        stamp = clock[set_index]
        for way in touch_order:
            age[base + way] = stamp
            stamp += 1
        clock[set_index] = stamp
    if upd_slots:
        tags._n_valid += total_new_valid
        slots_np = np.asarray(upd_slots, dtype=np.int64)
        tags.valid.ravel()[slots_np] = True
        tags.tag.ravel()[slots_np] = (
            np.asarray(upd_lines, dtype=np.int64) // n_sets
        )
        tags.dirty.ravel()[slots_np] = False


def _object_tag_store(geometry: CacheGeometry):
    from repro.cache.object_store import SetAssocCache

    return SetAssocCache(geometry)


def _object_lru(geometry: CacheGeometry):
    from repro.cache.replacement import LruState

    return LruState(geometry.n_sets, geometry.associativity)


SUBSTRATE_REGISTRY.register(
    "object",
    SubstrateSpec(
        name="object",
        tag_store=_object_tag_store,
        lru=_object_lru,
        description="per-line objects; the pinned reference implementation",
        reference=True,
    ),
)
SUBSTRATE_REGISTRY.register(
    "soa",
    SubstrateSpec(
        name="soa",
        tag_store=SoaTagStore,
        lru=lambda geometry: SoaLruState(geometry.n_sets, geometry.associativity),
        description="flat numpy arrays; the fast path",
    ),
)
