"""Per-set LRU recency tracking.

The replacement *state* (recency order) is kept here; the *victim
choice* lives in :mod:`repro.cache.wtcache`, because Killi's modified
policy (paper Section 4.4) needs scheme knowledge: it prioritises
invalid lines by DFH state (b'01 > b'00 > b'10) and never selects
disabled ways.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["LruState"]


class LruState:
    """LRU recency order for every set of a cache.

    Each set holds a list of ways ordered most-recently-used first.
    """

    def __init__(self, n_sets: int, associativity: int):
        if n_sets < 1 or associativity < 1:
            raise ValueError("n_sets and associativity must be positive")
        self.n_sets = n_sets
        self.associativity = associativity
        self._order: List[List[int]] = [
            list(range(associativity)) for _ in range(n_sets)
        ]

    def touch(self, set_index: int, way: int) -> None:
        """Move ``way`` to the MRU position of its set."""
        order = self._order[set_index]
        order.remove(way)
        order.insert(0, way)

    def demote(self, set_index: int, way: int) -> None:
        """Move ``way`` to the LRU position (used after invalidation)."""
        order = self._order[set_index]
        order.remove(way)
        order.append(way)

    def recency_order(self, set_index: int) -> Sequence[int]:
        """Ways of a set, most-recently-used first (read-only view)."""
        return tuple(self._order[set_index])

    def lru_way(self, set_index: int) -> int:
        """The least-recently-used way of a set (O(1))."""
        return self._order[set_index][-1]

    def lru_choice(self, set_index: int, eligible) -> int | None:
        """Least-recently-used way among ``eligible`` (a container of ways)."""
        for way in reversed(self._order[set_index]):
            if way in eligible:
                return way
        return None
