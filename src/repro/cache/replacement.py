"""Replacement policy state: the shared per-set LRU interface.

Both substrates' recency tracking lives here behind one
:class:`ReplacementPolicy` contract — :class:`LruState` (recency
lists, the object-substrate reference) and :class:`SoaLruState`
(integer ages, the flat fast path; order-equivalent by construction).
The *victim choice* lives in :meth:`repro.cache.core.CacheModel._choose_victim`,
because Killi's modified policy (paper Section 4.4) needs scheme
knowledge: it prioritises invalid lines by DFH state (b'01 > b'00 >
b'10) and never selects disabled ways.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["ReplacementPolicy", "LruState", "SoaLruState"]


class ReplacementPolicy:
    """Per-set recency state every substrate's LRU implements.

    The contract the cache model and the batched kernels rely on:

    - ``touch(set_index, way)`` — move ``way`` to the MRU position;
    - ``demote(set_index, way)`` — move ``way`` to the LRU position
      (after an invalidation);
    - ``recency_order(set_index)`` — the ways MRU-first (read-only);
    - ``lru_way(set_index)`` — the LRU way;
    - ``lru_choice(set_index, eligible)`` — the LRU way among
      ``eligible``, or None when ``eligible`` is empty.

    Implementations must induce *identical* recency orders for
    identical touch/demote histories — the bit-identity contract
    between substrates rests on it.
    """

    def touch(self, set_index: int, way: int) -> None:
        raise NotImplementedError

    def demote(self, set_index: int, way: int) -> None:
        raise NotImplementedError

    def recency_order(self, set_index: int) -> Sequence[int]:
        raise NotImplementedError

    def lru_way(self, set_index: int) -> int:
        raise NotImplementedError

    def lru_choice(self, set_index: int, eligible) -> int | None:
        raise NotImplementedError


class LruState(ReplacementPolicy):
    """LRU recency order for every set of a cache (object substrate).

    Each set holds a list of ways ordered most-recently-used first.
    """

    def __init__(self, n_sets: int, associativity: int):
        if n_sets < 1 or associativity < 1:
            raise ValueError("n_sets and associativity must be positive")
        self.n_sets = n_sets
        self.associativity = associativity
        self._order: List[List[int]] = [
            list(range(associativity)) for _ in range(n_sets)
        ]

    def touch(self, set_index: int, way: int) -> None:
        """Move ``way`` to the MRU position of its set."""
        order = self._order[set_index]
        order.remove(way)
        order.insert(0, way)

    def demote(self, set_index: int, way: int) -> None:
        """Move ``way`` to the LRU position (used after invalidation)."""
        order = self._order[set_index]
        order.remove(way)
        order.append(way)

    def recency_order(self, set_index: int) -> Sequence[int]:
        """Ways of a set, most-recently-used first (read-only view)."""
        return tuple(self._order[set_index])

    def lru_way(self, set_index: int) -> int:
        """The least-recently-used way of a set (O(1))."""
        return self._order[set_index][-1]

    def lru_choice(self, set_index: int, eligible) -> int | None:
        """Least-recently-used way among ``eligible`` (a container of ways)."""
        for way in reversed(self._order[set_index]):
            if way in eligible:
                return way
        return None


class SoaLruState(ReplacementPolicy):
    """Integer-age LRU, order-equivalent to the list-based ``LruState``.

    ``age[set, way]`` holds the last-touch stamp; per-set clocks only
    grow and per-set floors only shrink, so ages within a set are
    always pairwise distinct and "most recently used" is simply the
    descending-age order.  ``touch`` == move-to-front, ``demote`` ==
    move-to-back, and the initial ages ``0, -1, ..., -(w-1)`` replicate
    the list substrate's initial order ``[0, 1, ..., w-1]``.
    """

    def __init__(self, n_sets: int, associativity: int):
        if n_sets < 1 or associativity < 1:
            raise ValueError("n_sets and associativity must be positive")
        self.n_sets = n_sets
        self.associativity = associativity
        # Flat per-slot ages (set * associativity + way), plain list:
        # touch / victim scans are scalar probes over one set's worth
        # of entries, where lists beat numpy views.
        self.age = list(range(0, -associativity, -1)) * n_sets
        self._clock = [1] * n_sets
        self._floor = [-associativity] * n_sets

    def touch(self, set_index: int, way: int) -> None:
        """Move ``way`` to the MRU position of its set."""
        self.age[set_index * self.associativity + way] = self._clock[set_index]
        self._clock[set_index] += 1

    def demote(self, set_index: int, way: int) -> None:
        """Move ``way`` to the LRU position (used after invalidation)."""
        self.age[set_index * self.associativity + way] = self._floor[set_index]
        self._floor[set_index] -= 1

    def recency_order(self, set_index: int):
        """Ways of a set, most-recently-used first (read-only view)."""
        base = set_index * self.associativity
        row = self.age[base : base + self.associativity]
        return tuple(sorted(range(self.associativity), key=lambda w: -row[w]))

    def lru_way(self, set_index: int) -> int:
        """The least-recently-used way of a set (O(associativity))."""
        base = set_index * self.associativity
        row = self.age[base : base + self.associativity]
        return row.index(min(row))

    def lru_choice(self, set_index: int, eligible) -> int | None:
        """Least-recently-used way among ``eligible`` (a container of ways)."""
        base = set_index * self.associativity
        row = self.age
        best = None
        best_age = None
        for way in eligible:
            a = row[base + way]
            if best_age is None or a < best_age:
                best_age = a
                best = way
        return best
