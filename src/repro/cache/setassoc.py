"""Compatibility shim — the object tag store lives in
:mod:`repro.cache.object_store`.

Kept so existing ``from repro.cache.setassoc import ...`` sites keep
working; new code should import from :mod:`repro.cache.object_store`.
"""

from repro.cache.object_store import CacheLineState, SetAssocCache

__all__ = ["CacheLineState", "SetAssocCache"]
