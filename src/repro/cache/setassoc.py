"""Set-associative tag store.

Holds validity, tags and per-line disable flags; the protected cache
(:mod:`repro.cache.wtcache`) layers the access protocol and the
protection scheme on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry

__all__ = ["CacheLineState", "SetAssocCache"]


@dataclass
class CacheLineState:
    """Tag-array state of one physical line."""

    valid: bool = False
    tag: int = -1
    disabled: bool = False
    dirty: bool = False
    """Modified data (write-back mode only; always False write-through)."""


class SetAssocCache:
    """Tag store for a set-associative cache.

    Purely structural: lookup, insert, invalidate.  Replacement and
    protection policy live in the caller.
    """

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self._lines = [
            [CacheLineState() for _ in range(geometry.associativity)]
            for _ in range(geometry.n_sets)
        ]
        # Per-set tag -> way index for O(1) lookups.
        self._tag_index = [dict() for _ in range(geometry.n_sets)]

    def line(self, set_index: int, way: int) -> CacheLineState:
        """The tag-array state of (set, way)."""
        return self._lines[set_index][way]

    def lookup(self, addr: int) -> int | None:
        """Way holding ``addr``, or None on miss.

        Disabled ways never hit (a disabled line holds no valid data).
        """
        set_index = self.geometry.set_of(addr)
        tag = self.geometry.tag_of(addr)
        return self._tag_index[set_index].get(tag)

    def insert(self, addr: int, way: int) -> None:
        """Fill (set_of(addr), way) with ``addr``'s tag."""
        set_index = self.geometry.set_of(addr)
        line = self._lines[set_index][way]
        if line.disabled:
            raise ValueError("cannot fill a disabled line")
        index = self._tag_index[set_index]
        if line.valid:
            index.pop(line.tag, None)
        line.valid = True
        line.dirty = False
        line.tag = self.geometry.tag_of(addr)
        index[line.tag] = way

    def invalidate(self, set_index: int, way: int) -> None:
        """Drop the line's contents (tag state only)."""
        line = self._lines[set_index][way]
        if line.valid:
            self._tag_index[set_index].pop(line.tag, None)
        line.valid = False
        line.dirty = False
        line.tag = -1

    def disable(self, set_index: int, way: int) -> None:
        """Permanently (until reset) disable a way."""
        line = self._lines[set_index][way]
        if line.valid:
            self._tag_index[set_index].pop(line.tag, None)
        line.valid = False
        line.dirty = False
        line.tag = -1
        line.disabled = True

    def enable_all(self) -> None:
        """Clear every disable flag (models a voltage change / DFH reset)."""
        for set_lines in self._lines:
            for line in set_lines:
                line.disabled = False

    def ways_of_set(self, set_index: int):
        """All line states of a set (list indexed by way)."""
        return self._lines[set_index]

    def count_disabled(self) -> int:
        """Number of disabled lines cache-wide."""
        return sum(
            1 for set_lines in self._lines for line in set_lines if line.disabled
        )

    def count_valid(self) -> int:
        """Number of valid lines cache-wide."""
        return sum(
            1 for set_lines in self._lines for line in set_lines if line.valid
        )
