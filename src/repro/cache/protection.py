"""Protection-scheme interface.

A *protection scheme* is everything that distinguishes Killi, FLAIR,
DECTED, MS-ECC and the fault-free baseline from the underlying tag
store: what happens on a fill, a hit, an eviction; which victim is
preferred; which lines get disabled.  The write-through cache
(:mod:`repro.cache.wtcache`) calls into the scheme at each of those
points and acts on the returned :class:`AccessOutcome`.
"""

from __future__ import annotations

import enum

__all__ = [
    "AccessOutcome",
    "PURE_CLEAN_HIT",
    "ProtectionScheme",
    "UnprotectedScheme",
]


class AccessOutcome(enum.Enum):
    """What the protection scheme decided about a read hit."""

    CLEAN = "clean"
    """Data is good; serve the hit."""

    CORRECTED = "corrected"
    """Data needed an ECC correction; serve the hit (+1 cycle)."""

    RETRAIN_MISS = "retrain_miss"
    """Detected error invalidates the line and re-enters training
    (Killi Table 2: b'00 with one mismatching segment -> b'01).  The
    access is converted into an error-induced cache miss."""

    DISABLE_MISS = "disable_miss"
    """Detected multi-bit error disables the line (DFH b'11).  The
    access is converted into an error-induced cache miss."""


#: Replay info for a hit that is CLEAN and has no stat side effects.
PURE_CLEAN_HIT = (False, 0, 0)


class ProtectionScheme:
    """Base scheme: no protection, nothing ever fails.

    Subclasses override the hooks they need.  ``attach`` is called once
    by the cache so schemes that manage shared structures (Killi's ECC
    cache) can invalidate lines back through the cache.

    Epoch-cached hit path: a scheme whose ``on_read_hit`` is *pure* for
    a given line (outcome and side effects fixed until a scheme event)
    may return a replay tuple from :meth:`hit_replay_info`; the cache
    memoizes it and replays subsequent hits through
    :meth:`apply_replay` without dispatching ``on_read_hit`` at all.
    Any event that could change a memoized line's hit behaviour must
    either be cache-visible (fill / invalidate / write hit, which clear
    the per-line stamp) or bump the cache's global epoch.
    """

    def __init__(self):
        self.cache = None

    def attach(self, cache) -> None:
        """Called by the owning cache after construction."""
        self.cache = cache

    # -- access hooks (set_index, way identify the physical line) -------

    def on_fill(self, set_index: int, way: int) -> None:
        """New data installed into (set, way)."""

    def on_read_hit(self, set_index: int, way: int) -> AccessOutcome:
        """Data read from (set, way); decide the outcome."""
        return AccessOutcome.CLEAN

    def on_write_hit(self, set_index: int, way: int) -> None:
        """Data overwritten in place (write-through update)."""

    def on_evict(self, set_index: int, way: int) -> None:
        """Valid line evicted (replacement).  Killi trains DFH here."""

    def on_invalidated(self, set_index: int, way: int) -> None:
        """Line invalidated for a non-replacement reason."""

    def on_dirty(self, set_index: int, way: int) -> None:
        """Line transitioned clean -> dirty (write-back caches only)."""

    # -- policy hooks ----------------------------------------------------

    def fill_priority(self, set_index: int, way: int) -> int:
        """Priority for choosing among *invalid* candidate ways.

        Higher wins.  Killi returns 2 for DFH b'01, 1 for b'00, 0 for
        b'10 (paper Section 4.4).
        """
        return 0

    def fill_priorities(self, set_index: int, ways) -> list:
        """``fill_priority`` for each way in ``ways`` (batched).

        Schemes with cheap bulk access to their per-line state (Killi's
        DFH array) override this to avoid a Python call per candidate.
        """
        return [self.fill_priority(set_index, way) for way in ways]

    def fill_priority_is_uniform(self, set_index: int) -> bool:
        """True if every way of ``set_index`` is *guaranteed* to carry
        the same fill priority right now — the caller may then take the
        first invalid candidate without ranking.  Conservative default:
        False (rank every time); Killi overrides with a per-set counter
        of lines that have left the (uniform-priority) initial state.
        """
        return False

    def is_line_usable(self, set_index: int, way: int) -> bool:
        """May (set, way) receive a fill?  (Disabled ways are already
        excluded by the tag store; schemes can exclude more.)"""
        return True

    # -- epoch-cached hit path -------------------------------------------

    def hit_replay_info(self, set_index: int, way: int):
        """Replay tuple ``(corrected, hits_inc, sdc_inc)`` for a read
        hit on (set, way), or None if the hit must go through
        :meth:`on_read_hit`.

        Only valid when the scheme guarantees the hit outcome and its
        stat side effects stay fixed until a stamp-clearing cache event
        or an epoch bump.  The base implementation covers schemes that
        never fail — but only when ``on_read_hit`` is not overridden,
        so unaware subclasses safely opt out.
        """
        if type(self).on_read_hit is not ProtectionScheme.on_read_hit:
            return None
        return PURE_CLEAN_HIT

    def apply_replay(self, info) -> None:
        """Apply the scheme-side stat effects of a memoized hit."""

    def on_reset(self) -> None:
        """Voltage change / reboot: clear learned state (DFH reset)."""


class UnprotectedScheme(ProtectionScheme):
    """The paper's baseline: fault-free cache at nominal VDD."""
