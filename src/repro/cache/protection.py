"""Compatibility shim — the scheme surface lives in :mod:`repro.cache.hooks`.

Kept so existing ``from repro.cache.protection import ...`` sites keep
working; new code should import from :mod:`repro.cache.hooks`.
"""

from repro.cache.hooks import (
    PURE_CLEAN_HIT,
    AccessOutcome,
    ProtectionScheme,
    UnprotectedScheme,
)

__all__ = [
    "AccessOutcome",
    "PURE_CLEAN_HIT",
    "ProtectionScheme",
    "UnprotectedScheme",
]
