"""Protection-scheme interface.

A *protection scheme* is everything that distinguishes Killi, FLAIR,
DECTED, MS-ECC and the fault-free baseline from the underlying tag
store: what happens on a fill, a hit, an eviction; which victim is
preferred; which lines get disabled.  The write-through cache
(:mod:`repro.cache.wtcache`) calls into the scheme at each of those
points and acts on the returned :class:`AccessOutcome`.
"""

from __future__ import annotations

import enum

__all__ = [
    "AccessOutcome",
    "PURE_CLEAN_HIT",
    "ProtectionScheme",
    "UnprotectedScheme",
]


class AccessOutcome(enum.Enum):
    """What the protection scheme decided about a read hit."""

    CLEAN = "clean"
    """Data is good; serve the hit."""

    CORRECTED = "corrected"
    """Data needed an ECC correction; serve the hit (+1 cycle)."""

    RETRAIN_MISS = "retrain_miss"
    """Detected error invalidates the line and re-enters training
    (Killi Table 2: b'00 with one mismatching segment -> b'01).  The
    access is converted into an error-induced cache miss."""

    DISABLE_MISS = "disable_miss"
    """Detected multi-bit error disables the line (DFH b'11).  The
    access is converted into an error-induced cache miss."""


#: Replay info for a hit that is CLEAN and has no stat side effects.
PURE_CLEAN_HIT = (False, 0, 0)


class ProtectionScheme:
    """Base scheme: no protection, nothing ever fails.

    Subclasses override the hooks they need.  ``attach`` is called once
    by the cache so schemes that manage shared structures (Killi's ECC
    cache) can invalidate lines back through the cache.

    Epoch-cached hit path: a scheme whose ``on_read_hit`` is *pure* for
    a given line (outcome and side effects fixed until a scheme event)
    may return a replay tuple from :meth:`hit_replay_info`; the cache
    memoizes it and replays subsequent hits through
    :meth:`apply_replay` without dispatching ``on_read_hit`` at all.
    Any event that could change a memoized line's hit behaviour must
    either be cache-visible (fill / invalidate / write hit, which clear
    the per-line stamp) or bump the cache's global epoch.
    """

    def __init__(self):
        self.cache = None

    def attach(self, cache) -> None:
        """Called by the owning cache after construction."""
        self.cache = cache

    # -- access hooks (set_index, way identify the physical line) -------

    def on_fill(self, set_index: int, way: int) -> None:
        """New data installed into (set, way)."""

    def on_read_hit(self, set_index: int, way: int) -> AccessOutcome:
        """Data read from (set, way); decide the outcome."""
        return AccessOutcome.CLEAN

    def on_write_hit(self, set_index: int, way: int) -> None:
        """Data overwritten in place (write-through update)."""

    def on_evict(self, set_index: int, way: int) -> None:
        """Valid line evicted (replacement).  Killi trains DFH here."""

    def on_invalidated(self, set_index: int, way: int) -> None:
        """Line invalidated for a non-replacement reason."""

    def on_dirty(self, set_index: int, way: int) -> None:
        """Line transitioned clean -> dirty (write-back caches only)."""

    # -- policy hooks ----------------------------------------------------

    def fill_priority(self, set_index: int, way: int) -> int:
        """Priority for choosing among *invalid* candidate ways.

        Higher wins.  Killi returns 2 for DFH b'01, 1 for b'00, 0 for
        b'10 (paper Section 4.4).
        """
        return 0

    def fill_priorities(self, set_index: int, ways) -> list:
        """``fill_priority`` for each way in ``ways`` (batched).

        Schemes with cheap bulk access to their per-line state (Killi's
        DFH array) override this to avoid a Python call per candidate.
        """
        return [self.fill_priority(set_index, way) for way in ways]

    def fill_priority_is_uniform(self, set_index: int) -> bool:
        """True if every way of ``set_index`` is *guaranteed* to carry
        the same fill priority right now — the caller may then take the
        first invalid candidate without ranking.  Conservative default:
        False (rank every time); Killi overrides with a per-set counter
        of lines that have left the (uniform-priority) initial state.
        """
        return False

    def is_line_usable(self, set_index: int, way: int) -> bool:
        """May (set, way) receive a fill?  (Disabled ways are already
        excluded by the tag store; schemes can exclude more.)"""
        return True

    def filters_ways(self) -> bool:
        """May :meth:`is_line_usable` ever return False for *this
        instance*?  The cache skips the per-way usability calls (and
        allows batched set replay) when this is False.  The default is
        the conservative type-level check; schemes whose filtering is
        configuration-gated (FLAIR's optional training window) override
        it so an instance that provably never filters is not penalised
        for the class having the hook.  Must be decided once, at attach
        time: an instance that might start filtering later has to
        return True up front."""
        return type(self).is_line_usable is not ProtectionScheme.is_line_usable

    # -- epoch-cached hit path -------------------------------------------

    def hit_replay_info(self, set_index: int, way: int):
        """Replay tuple ``(corrected, hits_inc, sdc_inc)`` for a read
        hit on (set, way), or None if the hit must go through
        :meth:`on_read_hit`.

        Only valid when the scheme guarantees the hit outcome and its
        stat side effects stay fixed until a stamp-clearing cache event
        or an epoch bump.  The base implementation covers schemes that
        never fail — but only when ``on_read_hit`` is not overridden,
        so unaware subclasses safely opt out.
        """
        if type(self).on_read_hit is not ProtectionScheme.on_read_hit:
            return None
        return PURE_CLEAN_HIT

    def apply_replay(self, info) -> None:
        """Apply the scheme-side stat effects of a memoized hit."""

    # -- batched set replay ----------------------------------------------

    def set_replay_info(self, set_index: int):
        """Replay tuple if the whole set is *scheme-inert*, else None.

        The batched engine partitions the L2-bound stream by set; a set
        it may simulate without per-access scheme dispatch must satisfy,
        for the remainder of the current kernel:

        - every read hit in the set behaves per the returned tuple
          (``(corrected, hits_inc, sdc_inc)``, as ``hit_replay_info``);
        - ``on_fill`` / ``on_write_hit`` / ``on_evict`` on any way of
          the set are pure no-ops (no state, stat, RNG or shared-
          structure effects);
        - victim selection reduces to first-invalid / plain LRU (no
          way filtering, uniform fill priorities);
        - nothing outside the set's own accesses can mutate the set
          (no shared-structure entries pointing at it).

        The guarantee must be *monotone*: once true it stays true until
        the kernel ends (schemes whose clean sets can be re-dirtied by
        their own accesses must return None).  The base implementation
        covers schemes that override none of the behavioural hooks —
        unaware subclasses safely opt out.
        """
        cls = type(self)
        base = ProtectionScheme
        if (
            cls.on_read_hit is not base.on_read_hit
            or cls.on_fill is not base.on_fill
            or cls.on_write_hit is not base.on_write_hit
            or cls.on_evict is not base.on_evict
            or cls.on_invalidated is not base.on_invalidated
            or cls.fill_priority is not base.fill_priority
            or cls.fill_priorities is not base.fill_priorities
            or cls.is_line_usable is not base.is_line_usable
            or cls.hit_replay_info is not base.hit_replay_info
            or cls.apply_replay is not base.apply_replay
        ):
            return None
        return PURE_CLEAN_HIT

    def set_replay_profile(self, set_index: int):
        """Batched-replay profile ``(info, corrected_ways, guard)`` or None.

        The generalisation of :meth:`set_replay_info` the batched
        engine actually consumes:

        - ``info`` — the per-hit replay tuple applied to the set's
          read hits (as ``set_replay_info``);
        - ``corrected_ways`` — None, or the ways whose read hits
          replay as CORRECTED (+1 cycle, ``corrected_reads``) instead
          of ``info[0]``'s latency class.  Lets statically-
          characterised schemes (the MBIST oracles) batch sets that
          *contain* faulty-but-correctable lines;
        - ``guard`` — None, or ``(unsafe_ways, fill_ok)`` — optionally
          ``(unsafe_ways, fill_ok, fills_ok)`` with a batched
          ``fills_ok(ways, lines) -> bool array`` form of ``fill_ok``
          — passed to :func:`repro.cache.soa.replay_clean_set`, which
          aborts the replay on the rare events that cannot be replayed
          out of order (shared-RNG draws, unmasked fills).  With a
          guard the inertness condition need not be monotone in itself
          — the kernel re-checks every event — but everything
          *outside* the guarded events must still be inert for the
          kernel remainder.

        The default wraps :meth:`set_replay_info`: uniform hits, no
        guard, which keeps every existing scheme's behaviour.
        """
        info = self.set_replay_info(set_index)
        if info is None:
            return None
        return (info, None, None)

    def batch_interpreter(self, cache):
        """Scheme-exact batch interpreter for the engine, or None.

        A scheme that can simulate *arbitrary* (non-inert) access
        subsequences ahead of the per-access loop — replicating every
        state, stat and RNG effect bit-exactly — returns an
        interpreter object here (see
        :mod:`repro.core.killi_replay`).  None (the default) keeps the
        probe-based set-replay path as the only batching the engine
        attempts for this scheme.
        """
        return None

    def apply_replay_bulk(self, info, count: int) -> None:
        """Apply ``count`` memoized hits' scheme-side effects at once.

        The safe default loops :meth:`apply_replay`; schemes with
        additive counters override with closed-form updates.  Schemes
        that never override ``apply_replay`` (its base is a no-op)
        skip the loop entirely.
        """
        if type(self).apply_replay is ProtectionScheme.apply_replay:
            return
        for _ in range(count):
            self.apply_replay(info)

    def on_reset(self) -> None:
        """Voltage change / reboot: clear learned state (DFH reset)."""


class UnprotectedScheme(ProtectionScheme):
    """The paper's baseline: fault-free cache at nominal VDD."""
