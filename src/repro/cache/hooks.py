"""The scheme-facing hook surface of the cache transaction layer.

A *protection scheme* is everything that distinguishes Killi, FLAIR,
DECTED, MS-ECC and the fault-free baseline from the underlying tag
store: what happens on a fill, a hit, an eviction; which victim is
preferred; which lines get disabled.  The unified cache model
(:mod:`repro.cache.core`) calls into the scheme at each of those
points and acts on the returned :class:`AccessOutcome`.

This module is the single home of that surface.  Besides the scheme
base class and the outcome enum it carries the pieces every engine
tier consumes instead of re-stating semantics inline:

- :func:`hooks_unchanged` — the type-level "does this scheme override
  any behavioural hook?" probe behind the default set-inertness
  answer and the MBIST oracles' static-batchability check;
- :func:`make_replay_guard` — the abort-before-side-effect guard
  protocol handed to :func:`repro.cache.soa.replay_clean_set`;
- :func:`batched_surface` — the batched engine's single entry point
  for deciding whether a cache's scalar semantics may be replayed in
  bulk at all, replacing per-engine ``type(...)`` checks.
"""

from __future__ import annotations

import enum
from typing import NamedTuple

__all__ = [
    "AccessOutcome",
    "PURE_CLEAN_HIT",
    "BEHAVIOURAL_HOOKS",
    "hooks_unchanged",
    "make_replay_guard",
    "BatchedSurface",
    "batched_surface",
    "ProtectionScheme",
    "UnprotectedScheme",
]


class AccessOutcome(enum.Enum):
    """What the protection scheme decided about a read hit."""

    CLEAN = "clean"
    """Data is good; serve the hit."""

    CORRECTED = "corrected"
    """Data needed an ECC correction; serve the hit (+1 cycle)."""

    RETRAIN_MISS = "retrain_miss"
    """Detected error invalidates the line and re-enters training
    (Killi Table 2: b'00 with one mismatching segment -> b'01).  The
    access is converted into an error-induced cache miss."""

    DISABLE_MISS = "disable_miss"
    """Detected multi-bit error disables the line (DFH b'11).  The
    access is converted into an error-induced cache miss."""


#: Replay info for a hit that is CLEAN and has no stat side effects.
PURE_CLEAN_HIT = (False, 0, 0)


#: The hooks whose overriding makes a scheme behaviourally visible to
#: the access path.  A scheme that inherits *all* of them unchanged is
#: inert: every read hit is a pure CLEAN hit, fills/evictions have no
#: scheme effects, and victim selection is plain first-invalid/LRU.
BEHAVIOURAL_HOOKS = (
    "on_read_hit",
    "on_fill",
    "on_write_hit",
    "on_evict",
    "on_invalidated",
    "fill_priority",
    "fill_priorities",
    "is_line_usable",
    "hit_replay_info",
    "apply_replay",
)


def hooks_unchanged(cls, hooks=BEHAVIOURAL_HOOKS, owners=None) -> bool:
    """True when ``cls`` inherits every named hook from its owner.

    ``owners`` optionally maps hook names to the class expected to own
    the implementation (default: :class:`ProtectionScheme` for all) —
    the MBIST oracles use this to assert "no subclass changed anything
    beyond the hooks *I* implement" before answering static-
    batchability probes.  Purely type-level, so the answer is a
    class-lifetime constant; callers cache it.
    """
    if owners is None:
        for name in hooks:
            if getattr(cls, name) is not getattr(ProtectionScheme, name):
                return False
        return True
    for name in hooks:
        owner = owners.get(name, ProtectionScheme)
        if getattr(cls, name) is not getattr(owner, name):
            return False
    return True


# Class-level cache for the default set-inertness answer; the probe
# runs once per set per kernel, the answer never changes per class.
_INERT_BY_CLASS: dict = {}


def make_replay_guard(unsafe_ways, fill_ok, fills_ok=None):
    """Build the abort-before-side-effect guard for batched set replay.

    The guard protocol consumed by
    :func:`repro.cache.soa.replay_clean_set`:

    - ``unsafe_ways`` — ways whose events may have scheme side effects
      the flat kernel cannot reproduce.  A *write hit* on a resident
      line in an unsafe way always aborts (it would draw shared RNG);
      a *fill* into an unsafe way aborts only if the fill predicate
      says the deterministic masking coins would leave a stored error.
    - ``fill_ok(way, line_no) -> bool`` — per-fill predicate.
    - ``fills_ok(ways, line_nos) -> bool array`` — optional batched
      form; when supplied, unsafe fills are deferred and checked in
      one vectorized call, and the kernel still reports the *earliest*
      unreplayable event.

    On abort nothing has been mutated: the kernel returns the offset
    of the aborting access, the engine runs that access through the
    ordinary per-access path, and a later re-probe resumes past it.
    Returns the plain tuple form the kernel unpacks.
    """
    if fills_ok is not None:
        return (unsafe_ways, fill_ok, fills_ok)
    return (unsafe_ways, fill_ok)


class BatchedSurface(NamedTuple):
    """What the batched engine may use of a cache: see :func:`batched_surface`."""

    cache: object
    """The cache itself; ``set_replay_profile`` / ``apply_set_replays``
    / ``commit_set_replays`` drive the per-set bulk path."""

    interpreter: object
    """A scheme-exact batch interpreter
    (:meth:`ProtectionScheme.batch_interpreter`), or None when only the
    probe-based set-replay path applies."""


def batched_surface(cache):
    """The batched engine's view of ``cache``, or None (fall back).

    None means the cache's scalar semantics are not bulk-replayable —
    a write-back / write-allocate protocol, a plain-LRU fill policy,
    or a subclass that overrode part of the access protocol — and
    every access must run through the ordinary per-access path.  The
    decision belongs to the transaction layer
    (:attr:`repro.cache.core.CacheModel.semantics_batchable`), not to
    the engines: this is the single gate all tiers consult.
    """
    if not getattr(cache, "semantics_batchable", False):
        return None
    return BatchedSurface(cache, cache.scheme.batch_interpreter(cache))


class ProtectionScheme:
    """Base scheme: no protection, nothing ever fails.

    Subclasses override the hooks they need.  ``attach`` is called once
    by the cache so schemes that manage shared structures (Killi's ECC
    cache) can invalidate lines back through the cache.

    Epoch-cached hit path: a scheme whose ``on_read_hit`` is *pure* for
    a given line (outcome and side effects fixed until a scheme event)
    may return a replay tuple from :meth:`hit_replay_info`; the cache
    memoizes it and replays subsequent hits through
    :meth:`apply_replay` without dispatching ``on_read_hit`` at all.
    Any event that could change a memoized line's hit behaviour must
    either be cache-visible (fill / invalidate / write hit, which clear
    the per-line stamp) or bump the cache's global epoch.
    """

    def __init__(self):
        self.cache = None

    def attach(self, cache) -> None:
        """Called by the owning cache after construction."""
        self.cache = cache

    # -- access hooks (set_index, way identify the physical line) -------

    def on_fill(self, set_index: int, way: int) -> None:
        """New data installed into (set, way)."""

    def on_read_hit(self, set_index: int, way: int) -> AccessOutcome:
        """Data read from (set, way); decide the outcome."""
        return AccessOutcome.CLEAN

    def on_write_hit(self, set_index: int, way: int) -> None:
        """Data overwritten in place (write-through update)."""

    def on_evict(self, set_index: int, way: int) -> None:
        """Valid line evicted (replacement).  Killi trains DFH here."""

    def on_invalidated(self, set_index: int, way: int) -> None:
        """Line invalidated for a non-replacement reason."""

    def on_dirty(self, set_index: int, way: int) -> None:
        """Line transitioned clean -> dirty (write-back caches only)."""

    # -- policy hooks ----------------------------------------------------

    def fill_priority(self, set_index: int, way: int) -> int:
        """Priority for choosing among *invalid* candidate ways.

        Higher wins.  Killi returns 2 for DFH b'01, 1 for b'00, 0 for
        b'10 (paper Section 4.4).
        """
        return 0

    def fill_priorities(self, set_index: int, ways) -> list:
        """``fill_priority`` for each way in ``ways`` (batched).

        Schemes with cheap bulk access to their per-line state (Killi's
        DFH array) override this to avoid a Python call per candidate.
        """
        return [self.fill_priority(set_index, way) for way in ways]

    def fill_priority_is_uniform(self, set_index: int) -> bool:
        """True if every way of ``set_index`` is *guaranteed* to carry
        the same fill priority right now — the caller may then take the
        first invalid candidate without ranking.  Conservative default:
        False (rank every time); Killi overrides with a per-set counter
        of lines that have left the (uniform-priority) initial state.
        """
        return False

    def is_line_usable(self, set_index: int, way: int) -> bool:
        """May (set, way) receive a fill?  (Disabled ways are already
        excluded by the tag store; schemes can exclude more.)"""
        return True

    def filters_ways(self) -> bool:
        """May :meth:`is_line_usable` ever return False for *this
        instance*?  The cache skips the per-way usability calls (and
        allows batched set replay) when this is False.  The default is
        the conservative type-level check; schemes whose filtering is
        configuration-gated (FLAIR's optional training window) override
        it so an instance that provably never filters is not penalised
        for the class having the hook.  Must be decided once, at attach
        time: an instance that might start filtering later has to
        return True up front."""
        return type(self).is_line_usable is not ProtectionScheme.is_line_usable

    # -- epoch-cached hit path -------------------------------------------

    def hit_replay_info(self, set_index: int, way: int):
        """Replay tuple ``(corrected, hits_inc, sdc_inc)`` for a read
        hit on (set, way), or None if the hit must go through
        :meth:`on_read_hit`.

        Only valid when the scheme guarantees the hit outcome and its
        stat side effects stay fixed until a stamp-clearing cache event
        or an epoch bump.  The base implementation covers schemes that
        never fail — but only when ``on_read_hit`` is not overridden,
        so unaware subclasses safely opt out.
        """
        if type(self).on_read_hit is not ProtectionScheme.on_read_hit:
            return None
        return PURE_CLEAN_HIT

    def apply_replay(self, info) -> None:
        """Apply the scheme-side stat effects of a memoized hit."""

    # -- batched set replay ----------------------------------------------

    def set_replay_info(self, set_index: int):
        """Replay tuple if the whole set is *scheme-inert*, else None.

        The batched engine partitions the L2-bound stream by set; a set
        it may simulate without per-access scheme dispatch must satisfy,
        for the remainder of the current kernel:

        - every read hit in the set behaves per the returned tuple
          (``(corrected, hits_inc, sdc_inc)``, as ``hit_replay_info``);
        - ``on_fill`` / ``on_write_hit`` / ``on_evict`` on any way of
          the set are pure no-ops (no state, stat, RNG or shared-
          structure effects);
        - victim selection reduces to first-invalid / plain LRU (no
          way filtering, uniform fill priorities);
        - nothing outside the set's own accesses can mutate the set
          (no shared-structure entries pointing at it).

        The guarantee must be *monotone*: once true it stays true until
        the kernel ends (schemes whose clean sets can be re-dirtied by
        their own accesses must return None).  The base implementation
        covers schemes that override none of the behavioural hooks
        (:data:`BEHAVIOURAL_HOOKS`) — unaware subclasses safely opt
        out.
        """
        cls = type(self)
        inert = _INERT_BY_CLASS.get(cls)
        if inert is None:
            inert = hooks_unchanged(cls)
            _INERT_BY_CLASS[cls] = inert
        if not inert:
            return None
        return PURE_CLEAN_HIT

    def set_replay_profile(self, set_index: int):
        """Batched-replay profile ``(info, corrected_ways, guard)`` or None.

        The generalisation of :meth:`set_replay_info` the batched
        engine actually consumes:

        - ``info`` — the per-hit replay tuple applied to the set's
          read hits (as ``set_replay_info``);
        - ``corrected_ways`` — None, or the ways whose read hits
          replay as CORRECTED (+1 cycle, ``corrected_reads``) instead
          of ``info[0]``'s latency class.  Lets statically-
          characterised schemes (the MBIST oracles) batch sets that
          *contain* faulty-but-correctable lines;
        - ``guard`` — None, or a guard built by
          :func:`make_replay_guard`, passed to
          :func:`repro.cache.soa.replay_clean_set`, which aborts the
          replay on the rare events that cannot be replayed out of
          order (shared-RNG draws, unmasked fills).  With a guard the
          inertness condition need not be monotone in itself — the
          kernel re-checks every event — but everything *outside* the
          guarded events must still be inert for the kernel remainder.

        The default wraps :meth:`set_replay_info`: uniform hits, no
        guard, which keeps every existing scheme's behaviour.
        """
        info = self.set_replay_info(set_index)
        if info is None:
            return None
        return (info, None, None)

    def batch_interpreter(self, cache):
        """Scheme-exact batch interpreter for the engine, or None.

        A scheme that can simulate *arbitrary* (non-inert) access
        subsequences ahead of the per-access loop — replicating every
        state, stat and RNG effect bit-exactly — returns an
        interpreter object here (see
        :mod:`repro.core.killi_replay`).  None (the default) keeps the
        probe-based set-replay path as the only batching the engine
        attempts for this scheme.
        """
        return None

    def apply_replay_bulk(self, info, count: int) -> None:
        """Apply ``count`` memoized hits' scheme-side effects at once.

        The safe default loops :meth:`apply_replay`; schemes with
        additive counters override with closed-form updates.  Schemes
        that never override ``apply_replay`` (its base is a no-op)
        skip the loop entirely.
        """
        if type(self).apply_replay is ProtectionScheme.apply_replay:
            return
        for _ in range(count):
            self.apply_replay(info)

    def on_reset(self) -> None:
        """Voltage change / reboot: clear learned state (DFH reset)."""


class UnprotectedScheme(ProtectionScheme):
    """The paper's baseline: fault-free cache at nominal VDD."""
