"""Cache access statistics.

Tracks the quantities the paper's evaluation reports: hits, misses and
therefore MPKI (Figure 5), plus the Killi-specific events — error
induced misses, ECC-cache-contention invalidations, bypasses when a
whole set is disabled — that explain *why* the miss counts move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheStats"]

#: Names of the plain integer counters (every field except ``extra``).
_COUNTER_FIELDS = (
    "reads",
    "writes",
    "read_hits",
    "write_hits",
    "read_misses",
    "write_misses",
    "evictions",
    "fills",
    "bypasses",
    "error_induced_misses",
    "corrected_reads",
    "ecc_evict_invalidations",
    "invalidations",
)


@dataclass
class CacheStats:
    """Counters for one cache instance over one simulation."""

    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    write_hits: int = 0
    read_misses: int = 0
    write_misses: int = 0
    evictions: int = 0
    fills: int = 0
    bypasses: int = 0
    """Reads serviced directly by memory because every way was disabled."""
    error_induced_misses: int = 0
    """Hits converted to misses by a detected-uncorrectable error (Table 2)."""
    corrected_reads: int = 0
    """Hits whose data needed an ECC correction before being returned."""
    ecc_evict_invalidations: int = 0
    """L2 lines invalidated because their ECC-cache entry was evicted."""
    invalidations: int = 0
    extra: dict = field(default_factory=dict)
    """Scheme-specific counters (DFH transition counts, etc.)."""

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        """Read miss rate (write-through caches never allocate on write)."""
        return self.read_misses / self.reads if self.reads else 0.0

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction (Figure 5's metric).

        A zero or negative instruction count yields 0.0, matching
        :attr:`miss_rate` with no reads and ``KernelResult.ipc`` with
        no cycles: an empty denominator means "no work", not an error.
        """
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / instructions

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a scheme-specific counter."""
        self.extra[name] = self.extra.get(name, 0) + amount

    def copy(self) -> "CacheStats":
        """Independent snapshot (the ``extra`` dict is copied too)."""
        out = CacheStats(**{name: getattr(self, name) for name in _COUNTER_FIELDS})
        out.extra = dict(self.extra)
        return out

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counter-wise difference ``self - earlier``.

        Used to report per-kernel statistics when one cache instance
        (and hence one live counter set) persists across kernels.
        """
        out = CacheStats(
            **{
                name: getattr(self, name) - getattr(earlier, name)
                for name in _COUNTER_FIELDS
            }
        )
        for key in set(self.extra) | set(earlier.extra):
            out.extra[key] = self.extra.get(key, 0) - earlier.extra.get(key, 0)
        return out

    def as_dict(self) -> dict:
        """Flat dict of every counter, including the derived totals
        (``accesses``/``hits``/``misses``) so CSV exports are complete."""
        out = {name: getattr(self, name) for name in _COUNTER_FIELDS}
        out["accesses"] = self.accesses
        out["hits"] = self.hits
        out["misses"] = self.misses
        out.update(self.extra)
        return out
