"""Cache access statistics.

Tracks the quantities the paper's evaluation reports: hits, misses and
therefore MPKI (Figure 5), plus the Killi-specific events — error
induced misses, ECC-cache-contention invalidations, bypasses when a
whole set is disabled — that explain *why* the miss counts move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Counters for one cache instance over one simulation."""

    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    write_hits: int = 0
    read_misses: int = 0
    write_misses: int = 0
    evictions: int = 0
    fills: int = 0
    bypasses: int = 0
    """Reads serviced directly by memory because every way was disabled."""
    error_induced_misses: int = 0
    """Hits converted to misses by a detected-uncorrectable error (Table 2)."""
    corrected_reads: int = 0
    """Hits whose data needed an ECC correction before being returned."""
    ecc_evict_invalidations: int = 0
    """L2 lines invalidated because their ECC-cache entry was evicted."""
    invalidations: int = 0
    extra: dict = field(default_factory=dict)
    """Scheme-specific counters (DFH transition counts, etc.)."""

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        """Read miss rate (write-through caches never allocate on write)."""
        return self.read_misses / self.reads if self.reads else 0.0

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction (Figure 5's metric)."""
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return 1000.0 * self.misses / instructions

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a scheme-specific counter."""
        self.extra[name] = self.extra.get(name, 0) + amount

    def as_dict(self) -> dict:
        """Flat dict of all counters (for harness CSV output)."""
        out = {
            "reads": self.reads,
            "writes": self.writes,
            "read_hits": self.read_hits,
            "write_hits": self.write_hits,
            "read_misses": self.read_misses,
            "write_misses": self.write_misses,
            "evictions": self.evictions,
            "fills": self.fills,
            "bypasses": self.bypasses,
            "error_induced_misses": self.error_induced_misses,
            "corrected_reads": self.corrected_reads,
            "ecc_evict_invalidations": self.ecc_evict_invalidations,
            "invalidations": self.invalidations,
        }
        out.update(self.extra)
        return out
