"""Set-associative cache substrate.

Provides the machinery every protection scheme plugs into, layered as
transaction core -> hooks -> substrates (see ``docs/architecture.md``):

- :mod:`repro.cache.geometry` — address mapping for a banked
  set-associative cache (the paper's 2MB / 16-way / 64B-line / 16-bank
  GPU L2 and the small 4-way ECC cache both instantiate this).
- :mod:`repro.cache.stats` — hit/miss/error accounting, MPKI.
- :mod:`repro.cache.core` — the unified transaction layer: one
  parameterized :class:`CacheModel` (write-policy + allocation-policy
  strategy objects) whose presets are the write-through L2, the
  write-back extension and the L1 filter caches; the single scalar
  implementation of the access semantics.
- :mod:`repro.cache.hooks` — the scheme-facing surface (outcomes,
  hook base class, replay guards, the batched-engine gate).
- :mod:`repro.cache.replacement` — the shared
  :class:`ReplacementPolicy` interface with both substrates' LRU
  states.
- :mod:`repro.cache.object_store` — the object tag store (pinned
  reference substrate).
- :mod:`repro.cache.soa` — the struct-of-arrays tag substrate and the
  batched set-replay kernels (flat numpy arrays, bit-identical fast
  path).
"""

from repro.cache.core import (
    AccessTransaction,
    AllocationPolicy,
    CacheLatencies,
    CacheModel,
    LRU_FILL,
    NO_WRITE_ALLOCATE,
    WRITE_ALLOCATE,
    WRITE_BACK,
    WRITE_THROUGH,
    WriteBackCache,
    WritePolicy,
    WriteThroughCache,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.hooks import (
    AccessOutcome,
    BatchedSurface,
    ProtectionScheme,
    UnprotectedScheme,
    batched_surface,
    hooks_unchanged,
    make_replay_guard,
)
from repro.cache.object_store import CacheLineState, SetAssocCache
from repro.cache.replacement import LruState, ReplacementPolicy, SoaLruState
from repro.cache.soa import (
    SUBSTRATES,
    SoaTagStore,
    default_substrate,
    resolve_substrate,
)
from repro.cache.stats import CacheStats

__all__ = [
    "CacheGeometry",
    "CacheStats",
    "ReplacementPolicy",
    "LruState",
    "CacheLineState",
    "SetAssocCache",
    "SUBSTRATES",
    "SoaTagStore",
    "SoaLruState",
    "default_substrate",
    "resolve_substrate",
    "AccessOutcome",
    "ProtectionScheme",
    "UnprotectedScheme",
    "BatchedSurface",
    "batched_surface",
    "hooks_unchanged",
    "make_replay_guard",
    "CacheLatencies",
    "CacheModel",
    "AccessTransaction",
    "WritePolicy",
    "AllocationPolicy",
    "WRITE_THROUGH",
    "WRITE_BACK",
    "NO_WRITE_ALLOCATE",
    "WRITE_ALLOCATE",
    "LRU_FILL",
    "WriteThroughCache",
    "WriteBackCache",
]
