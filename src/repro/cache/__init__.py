"""Set-associative cache substrate.

Provides the machinery every protection scheme plugs into:

- :mod:`repro.cache.geometry` — address mapping for a banked
  set-associative cache (the paper's 2MB / 16-way / 64B-line / 16-bank
  GPU L2 and the small 4-way ECC cache both instantiate this).
- :mod:`repro.cache.stats` — hit/miss/error accounting, MPKI.
- :mod:`repro.cache.replacement` — per-set LRU state with the
  DFH-priority victim selection hook Killi's modified policy needs.
- :mod:`repro.cache.setassoc` — the tag store (object substrate).
- :mod:`repro.cache.soa` — the struct-of-arrays tag/LRU substrate
  (flat numpy arrays, bit-identical fast path).
- :mod:`repro.cache.protection` — the scheme interface + outcomes.
- :mod:`repro.cache.wtcache` — the write-through protected cache that
  drives a scheme (Killi or a baseline) on every access.
"""

from repro.cache.geometry import CacheGeometry
from repro.cache.protection import AccessOutcome, ProtectionScheme, UnprotectedScheme
from repro.cache.replacement import LruState
from repro.cache.setassoc import CacheLineState, SetAssocCache
from repro.cache.soa import (
    SUBSTRATES,
    SoaLruState,
    SoaTagStore,
    default_substrate,
    resolve_substrate,
)
from repro.cache.stats import CacheStats
from repro.cache.wbcache import WriteBackCache
from repro.cache.wtcache import CacheLatencies, WriteThroughCache

__all__ = [
    "CacheGeometry",
    "CacheStats",
    "LruState",
    "CacheLineState",
    "SetAssocCache",
    "SUBSTRATES",
    "SoaTagStore",
    "SoaLruState",
    "default_substrate",
    "resolve_substrate",
    "AccessOutcome",
    "ProtectionScheme",
    "UnprotectedScheme",
    "CacheLatencies",
    "WriteThroughCache",
    "WriteBackCache",
]
