"""Extended-Hamming SECDED code (paper Sections 4.1 and 5.3).

Single Error Correction, Double Error Detection via a Hamming code plus
one overall (global) parity bit.  For Killi's 512-bit cache line this
yields 10 Hamming checkbits + 1 global parity = 11 checkbits and a
523-bit codeword — exactly the paper's "11 ECC checkbits protect
523 bits (512 data + 11 checkbits)".

The decoder exposes the two signals the Killi DFH state machine keys
on independently (paper Table 2):

- **syndrome** — zero / non-zero (``DecodeResult.syndrome_zero``);
- **global parity** — match / mismatch (``DecodeResult.global_parity_ok``).

Classification of (syndrome, parity):

=========  ========  =====================================================
syndrome   parity    meaning
=========  ========  =====================================================
zero       match     clean codeword
zero       mismatch  the global parity bit itself flipped (corrected)
non-zero   mismatch  odd number of errors; decoded as a single-bit error
non-zero   match     even number of errors ≥ 2; detected, uncorrectable
=========  ========  =====================================================
"""

from __future__ import annotations

import numpy as np

from repro.ecc.base import BlockCode, DecodeResult, DecodeStatus
from repro.utils.bitpack import n_words, pack_positions, popcount64

__all__ = ["SecDedCode", "secded_checkbits"]


def secded_checkbits(k: int) -> int:
    """Checkbits needed for SECDED over ``k`` data bits (incl. global parity).

    >>> secded_checkbits(512)
    11
    >>> secded_checkbits(64)
    8
    """
    r = 1
    while (1 << r) < k + r + 1:
        r += 1
    return r + 1


class SecDedCode(BlockCode):
    """Systematic extended-Hamming SECDED code for ``k`` data bits.

    Codeword layout: ``[data (k) | hamming checkbits (r) | global parity (1)]``.
    The Hamming code covers the first ``k + r`` bits; the global parity
    bit covers the whole codeword, so errors in checkbits (which also
    sit in LV SRAM) are handled identically to data-bit errors.
    """

    def __init__(self, k: int = 512):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.r = secded_checkbits(k) - 1
        self.n = k + self.r + 1

        # Column code for each of the first k + r codeword positions.
        # Checkbit j uses the unit column 1 << j; data bits take the
        # non-power-of-two values in increasing order.
        data_codes = []
        value = 3
        while len(data_codes) < k:
            if value & (value - 1):  # skip powers of two (checkbit columns)
                data_codes.append(value)
            value += 1
        check_codes = [1 << j for j in range(self.r)]
        self._codes = np.array(data_codes + check_codes, dtype=np.int64)
        self._position_of_code = {int(c): i for i, c in enumerate(self._codes)}
        self._slice_masks: np.ndarray | None = None

    def encode(self, data: np.ndarray) -> np.ndarray:
        self._check_data_length(data)
        word = np.zeros(self.n, dtype=np.uint8)
        word[: self.k] = data
        data_positions = np.nonzero(word[: self.k])[0]
        syndrome = int(np.bitwise_xor.reduce(self._codes[data_positions], initial=0))
        for j in range(self.r):
            word[self.k + j] = (syndrome >> j) & 1
        word[self.n - 1] = np.count_nonzero(word[: self.n - 1]) & 1
        return word

    # -- batched packed-bit kernels ------------------------------------------

    @property
    def column_codes(self) -> np.ndarray:
        """Column code per codeword position 0..n-2 (global parity has none)."""
        return self._codes

    def syndrome_slice_masks(self) -> np.ndarray:
        """Per-syndrome-bit packed membership masks over codeword positions.

        Row ``j`` is a ``uint64``-packed mask of the codeword positions
        whose column code has bit ``j`` set; syndrome bit ``j`` of an
        error vector is then the parity of ``popcount(error & mask_j)``.
        The global parity position (``n - 1``) belongs to no mask.
        Shape ``(r, ceil(n / 64))``; computed once and cached.
        """
        if self._slice_masks is None:
            masks = np.zeros((self.r, n_words(self.n)), dtype=np.uint64)
            for j in range(self.r):
                members = np.nonzero((self._codes >> j) & 1)[0]
                masks[j] = pack_positions(members, self.n)
            self._slice_masks = masks
        return self._slice_masks

    def syndromes_of_error_matrix(self, packed_errors: np.ndarray) -> np.ndarray:
        """Syndromes of many error vectors at once.

        ``packed_errors`` is a ``(n_patterns, ceil(n / 64))`` uint64
        matrix of packed codeword-position error vectors (see
        :mod:`repro.utils.bitpack`).  Returns the int64 syndrome of each
        row — the batched equivalent of
        :meth:`syndrome_of_error_positions`, evaluated bit-sliced:
        one AND + popcount pass per syndrome bit, no per-pattern work.
        """
        packed_errors = np.atleast_2d(np.asarray(packed_errors, dtype=np.uint64))
        masks = self.syndrome_slice_masks()
        if packed_errors.shape[1] != masks.shape[1]:
            raise ValueError(
                f"expected {masks.shape[1]} words per row, "
                f"got {packed_errors.shape[1]}"
            )
        overlap = popcount64(packed_errors[:, None, :] & masks[None, :, :])
        odd = overlap.sum(axis=2, dtype=np.uint64) & np.uint64(1)
        weights = (np.int64(1) << np.arange(self.r, dtype=np.int64))[None, :]
        return (odd.astype(np.int64) * weights).sum(axis=1)

    def parity_flips_of_error_matrix(self, packed_errors: np.ndarray) -> np.ndarray:
        """Whether each error vector flips the overall (global) parity.

        True where the packed row has odd weight over all ``n``
        codeword positions — the batched complement of
        ``DecodeResult.global_parity_ok``.
        """
        packed_errors = np.atleast_2d(np.asarray(packed_errors, dtype=np.uint64))
        weight = popcount64(packed_errors).sum(axis=1, dtype=np.uint64)
        return (weight & np.uint64(1)).astype(bool)

    def syndrome_of_error_positions(self, positions) -> int:
        """Syndrome produced by flipping the given codeword positions.

        Because the code is linear, the syndrome of ``codeword + e``
        equals the syndrome of ``e`` alone; the simulator exploits this
        to classify faulty lines from their sparse error vectors
        without materialising 523-bit words.  The global parity
        position (``n - 1``) contributes nothing to the syndrome.
        """
        syndrome = 0
        for pos in positions:
            if not 0 <= pos < self.n:
                raise IndexError(f"position {pos} out of codeword range")
            if pos < self.n - 1:
                syndrome ^= int(self._codes[pos])
        return syndrome

    def _syndrome(self, word: np.ndarray) -> int:
        positions = np.nonzero(word[: self.n - 1])[0]
        return int(np.bitwise_xor.reduce(self._codes[positions], initial=0))

    def decode(self, received: np.ndarray) -> DecodeResult:
        self._check_codeword_length(received)
        syndrome = self._syndrome(received)
        parity_ok = (np.count_nonzero(received) & 1) == 0
        syndrome_zero = syndrome == 0

        if syndrome_zero and parity_ok:
            return DecodeResult(
                data=received[: self.k].copy(),
                status=DecodeStatus.CLEAN,
                syndrome_zero=True,
                global_parity_ok=True,
            )

        if syndrome_zero and not parity_ok:
            # Only the global parity bit itself flipped.
            return DecodeResult(
                data=received[: self.k].copy(),
                status=DecodeStatus.CORRECTED,
                corrected_positions=(self.n - 1,),
                syndrome_zero=True,
                global_parity_ok=False,
            )

        if not parity_ok:
            # Odd error count: decode as a single-bit error at the
            # position whose column matches the syndrome.
            position = self._position_of_code.get(syndrome)
            if position is None:
                # Syndrome aliases to an unused column: >= 3 errors.
                return DecodeResult(
                    data=received[: self.k].copy(),
                    status=DecodeStatus.DETECTED,
                    syndrome_zero=False,
                    global_parity_ok=False,
                )
            corrected = received.copy()
            corrected[position] ^= 1
            return DecodeResult(
                data=corrected[: self.k],
                status=DecodeStatus.CORRECTED,
                corrected_positions=(position,),
                syndrome_zero=False,
                global_parity_ok=False,
            )

        # Non-zero syndrome with matching parity: even (>= 2) errors.
        return DecodeResult(
            data=received[: self.k].copy(),
            status=DecodeStatus.DETECTED,
            syndrome_zero=False,
            global_parity_ok=True,
        )
