"""Hsiao SECDED code (odd-weight-column construction).

The industrially preferred SECDED variant: every column of the
parity-check matrix has *odd* weight, which (a) makes single and
double errors separable by the syndrome's weight parity alone — no
separate overall parity bit — and (b) minimises encoder/checker fanout
by preferring low-weight columns (weight 3 before weight 5, ...).

For 512 data bits the code needs 11 checkbits, the same budget as the
extended-Hamming construction in :mod:`repro.ecc.secded`, so Killi's
area accounting is identical whichever SECDED implementation the ECC
cache stores.  Decode classification:

=============  ==========================================
syndrome       meaning
=============  ==========================================
zero           clean
odd weight     single error (at the matching column), or a
               detected >=3-error pattern when no column
               matches
even weight    double error: detected, uncorrectable
=============  ==========================================

``DecodeResult.global_parity_ok`` is mapped to "syndrome weight is
even", preserving the (syndrome, parity) signal semantics Killi's
Table 2 logic expects from a SECDED decoder.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.ecc.base import BlockCode, DecodeResult, DecodeStatus

__all__ = ["HsiaoCode", "hsiao_checkbits"]


def _odd_weight_values(r: int, max_count: int):
    """Odd-weight r-bit column values, lowest weight first."""
    values = []
    weight = 3
    while len(values) < max_count and weight <= r:
        for bits in combinations(range(r), weight):
            values.append(sum(1 << b for b in bits))
            if len(values) >= max_count:
                break
        weight += 2
    return values


def hsiao_checkbits(k: int) -> int:
    """Checkbits of the Hsiao code for ``k`` data bits.

    >>> hsiao_checkbits(512)
    11
    >>> hsiao_checkbits(64)
    8
    """
    r = 2
    while (1 << (r - 1)) < k + r:
        r += 1
    return r


class HsiaoCode(BlockCode):
    """Odd-weight-column SECDED code.

    Codeword layout: ``[data (k) | checkbits (r)]``; checkbit ``j``'s
    column is the unit vector ``1 << j`` (weight 1, odd), data columns
    take distinct weight-3/5/... values.
    """

    def __init__(self, k: int = 512):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.r = hsiao_checkbits(k)
        self.n = k + self.r
        data_codes = _odd_weight_values(self.r, k)
        if len(data_codes) < k:
            raise AssertionError("insufficient odd-weight columns")
        check_codes = [1 << j for j in range(self.r)]
        self._codes = np.array(data_codes + check_codes, dtype=np.int64)
        self._position_of_code = {int(c): i for i, c in enumerate(self._codes)}

    def encode(self, data: np.ndarray) -> np.ndarray:
        self._check_data_length(data)
        word = np.zeros(self.n, dtype=np.uint8)
        word[: self.k] = data
        syndrome = 0
        for code in self._codes[np.nonzero(word[: self.k])[0]]:
            syndrome ^= int(code)
        for j in range(self.r):
            word[self.k + j] = (syndrome >> j) & 1
        return word

    def syndrome_of_error_positions(self, positions) -> int:
        """Syndrome of an error vector (linearity fast path)."""
        syndrome = 0
        for pos in positions:
            if not 0 <= pos < self.n:
                raise IndexError(f"position {pos} out of codeword range")
            syndrome ^= int(self._codes[pos])
        return syndrome

    def decode(self, received: np.ndarray) -> DecodeResult:
        self._check_codeword_length(received)
        syndrome = 0
        for code in self._codes[np.nonzero(received)[0]]:
            syndrome ^= int(code)
        if syndrome == 0:
            return DecodeResult(
                data=received[: self.k].copy(),
                status=DecodeStatus.CLEAN,
                syndrome_zero=True,
                global_parity_ok=True,
            )
        weight_even = bin(syndrome).count("1") % 2 == 0
        if weight_even:
            # Even non-zero syndrome: double error (no odd-column sum
            # of one term can be even).
            return DecodeResult(
                data=received[: self.k].copy(),
                status=DecodeStatus.DETECTED,
                syndrome_zero=False,
                global_parity_ok=True,
            )
        position = self._position_of_code.get(syndrome)
        if position is None:
            # Odd weight but not a column: >= 3 errors.
            return DecodeResult(
                data=received[: self.k].copy(),
                status=DecodeStatus.DETECTED,
                syndrome_zero=False,
                global_parity_ok=False,
            )
        corrected = received.copy()
        corrected[position] ^= 1
        return DecodeResult(
            data=corrected[: self.k],
            status=DecodeStatus.CORRECTED,
            corrected_positions=(position,),
            syndrome_zero=False,
            global_parity_ok=False,
        )
