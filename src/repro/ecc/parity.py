"""Killi's segmented, interleaved parity (paper Section 4.1).

Each 512-bit cache line is logically divided into segments, and one
even-parity bit is generated per segment.  Segments are *interleaved*:
bit ``i`` of the line belongs to segment ``i mod n_segments``.  The
paper interleaves so that spatially-adjacent multi-bit soft errors land
in different segments and are therefore each detected; LV faults are
random so interleaving neither helps nor hurts them.

Two configurations are used by Killi:

- **training** (DFH state b'01): 16 segments of 32 bits each, so the
  16 parity bits together with SECDED classify the fault count;
- **stable** (DFH b'00 / b'10): 4 segments of 128 bits each, so only
  4 parity bits remain resident in the main cache.

The parity bits themselves are stored in LV SRAM and may also fail;
callers model that by flipping bits of the stored parity vector before
calling :meth:`SegmentedParity.mismatches`.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bitpack import (
    n_words,
    pack_bit_matrix,
    pack_positions,
    popcount64,
)

__all__ = ["SegmentedParity"]


class SegmentedParity:
    """Segmented (optionally interleaved) even parity over a bit line.

    Parameters
    ----------
    n_bits:
        Line width in bits (512 for a 64B line).
    n_segments:
        Number of parity segments (16 during Killi training, 4 after).
    interleaved:
        If True (default), bit ``i`` maps to segment ``i % n_segments``;
        if False, the line is split into contiguous chunks.
    """

    def __init__(self, n_bits: int = 512, n_segments: int = 16, interleaved: bool = True):
        if n_bits % n_segments:
            raise ValueError("n_bits must be divisible by n_segments")
        self.n_bits = n_bits
        self.n_segments = n_segments
        self.interleaved = interleaved
        if interleaved:
            self._segment_of = np.arange(n_bits, dtype=np.intp) % n_segments
        else:
            self._segment_of = np.arange(n_bits, dtype=np.intp) // (n_bits // n_segments)
        self._packed_masks: np.ndarray | None = None

    @property
    def segment_width(self) -> int:
        """Data bits per segment (excluding the parity bit itself)."""
        return self.n_bits // self.n_segments

    def segment_of(self, bit_index: int) -> int:
        """Segment that data bit ``bit_index`` belongs to."""
        if not 0 <= bit_index < self.n_bits:
            raise IndexError(f"bit index {bit_index} out of range")
        return int(self._segment_of[bit_index])

    def segment_members(self, segment: int) -> np.ndarray:
        """Data-bit indices belonging to ``segment``."""
        if not 0 <= segment < self.n_segments:
            raise IndexError(f"segment {segment} out of range")
        return np.nonzero(self._segment_of == segment)[0]

    def generate(self, data: np.ndarray) -> np.ndarray:
        """Compute the per-segment even-parity bits for ``data``."""
        if len(data) != self.n_bits:
            raise ValueError(f"expected {self.n_bits} bits, got {len(data)}")
        parities = np.zeros(self.n_segments, dtype=np.uint8)
        np.bitwise_xor.at(parities, self._segment_of, data.astype(np.uint8))
        return parities

    def mismatches(self, data: np.ndarray, stored_parity: np.ndarray) -> np.ndarray:
        """Boolean mask of segments whose stored parity no longer matches.

        ``stored_parity`` is the parity vector as read back from the
        (possibly faulty) array; a flipped parity bit shows up as a
        mismatch in its segment exactly as in hardware.
        """
        if len(stored_parity) != self.n_segments:
            raise ValueError(
                f"expected {self.n_segments} parity bits, got {len(stored_parity)}"
            )
        return (self.generate(data) ^ stored_parity.astype(np.uint8)).astype(bool)

    def mismatch_count(self, data: np.ndarray, stored_parity: np.ndarray) -> int:
        """Number of segments with a parity mismatch (0, 1 or more)."""
        return int(np.count_nonzero(self.mismatches(data, stored_parity)))

    # -- batched packed-bit kernels ------------------------------------------

    def segment_masks(self) -> np.ndarray:
        """Packed membership mask of each segment, shape ``(n_segments, words)``.

        Row ``s`` has bit ``i`` set iff data bit ``i`` belongs to
        segment ``s``; the parity of ``popcount(line & mask_s)`` is the
        segment's even-parity bit.  Computed once and cached.
        """
        if self._packed_masks is None:
            masks = np.zeros(
                (self.n_segments, n_words(self.n_bits)), dtype=np.uint64
            )
            for segment in range(self.n_segments):
                masks[segment] = pack_positions(
                    self.segment_members(segment), self.n_bits
                )
            self._packed_masks = masks
        return self._packed_masks

    def generate_batch(self, data: np.ndarray) -> np.ndarray:
        """Per-segment parity bits for many lines at once.

        ``data`` is ``(n_lines, n_bits)`` 0/1; returns ``(n_lines,
        n_segments)`` uint8 — the batched :meth:`generate`, computed by
        packing each line into uint64 words and taking masked popcount
        parities per segment.
        """
        data = np.atleast_2d(np.asarray(data))
        if data.shape[1] != self.n_bits:
            raise ValueError(f"expected {self.n_bits} bits, got {data.shape[1]}")
        return self.generate_packed(pack_bit_matrix(data))

    def generate_packed(self, packed: np.ndarray) -> np.ndarray:
        """Per-segment parity bits of ``(n, words)`` packed rows."""
        packed = np.atleast_2d(np.asarray(packed, dtype=np.uint64))
        masks = self.segment_masks()
        if packed.shape[1] != masks.shape[1]:
            raise ValueError(
                f"expected {masks.shape[1]} words per row, got {packed.shape[1]}"
            )
        overlap = popcount64(packed[:, None, :] & masks[None, :, :])
        return (overlap.sum(axis=2, dtype=np.uint64) & np.uint64(1)).astype(np.uint8)

    def mismatches_batch(
        self, data: np.ndarray, stored_parity: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`mismatches`: ``(n_lines, n_segments)`` bool."""
        stored_parity = np.atleast_2d(np.asarray(stored_parity, dtype=np.uint8))
        if stored_parity.shape[1] != self.n_segments:
            raise ValueError(
                f"expected {self.n_segments} parity bits, "
                f"got {stored_parity.shape[1]}"
            )
        return (self.generate_batch(data) ^ stored_parity).astype(bool)

    def mismatch_counts(
        self, data: np.ndarray, stored_parity: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`mismatch_count`: mismatching segments per line."""
        return np.count_nonzero(self.mismatches_batch(data, stored_parity), axis=1)
