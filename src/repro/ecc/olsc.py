"""Orthogonal Latin Square codes (OLSC) with majority-logic decoding.

OLSC is the code family behind the MS-ECC baseline (Chishti et al.,
MICRO'09) and behind Killi's low-Vmin variant (paper Section 5.5 /
Table 7).  Its appeal in hardware is one-step majority-logic decoding:
no iterative algebra, just parity trees and a majority gate per bit,
at the cost of many checkbits (``2 t m`` for ``m^2`` data bits).

Construction (``m`` prime): data bits are arranged in an ``m x m``
square (shortened by zero-padding when ``k < m^2``).  Parity *groups*
partition the square:

- group 0: rows; group 1: columns;
- group ``g >= 2``: the lines of slope ``c = g - 1`` of the affine
  plane, i.e. cells with ``(c*i + j) mod m == s`` for ``s in [0, m)``.

Any two checks from distinct groups intersect in exactly one cell, so
every data bit lies in exactly ``2t`` checks that are otherwise
disjoint — the condition for one-step majority decoding of ``t``
errors: a bit is flipped iff more than ``t`` of its ``2t`` checks fail.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.base import BlockCode, DecodeResult, DecodeStatus

__all__ = ["OlscCode", "olsc_checkbits"]


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    for p in range(2, int(n**0.5) + 1):
        if n % p == 0:
            return False
    return True


def olsc_checkbits(k: int, t: int, m: int | None = None) -> int:
    """Checkbits of the OLSC code for ``k`` data bits correcting ``t``.

    >>> olsc_checkbits(512, 11)
    506
    """
    if m is None:
        m = _default_square_side(k)
    return 2 * t * m


def _default_square_side(k: int) -> int:
    """Smallest prime m with m^2 >= k."""
    m = int(np.ceil(np.sqrt(k)))
    while not _is_prime(m):
        m += 1
    return m


class OlscCode(BlockCode):
    """OLSC correcting ``t`` errors in ``k`` data bits.

    Codeword layout: ``[data (k) | checkbits (2 t m)]`` where checkbit
    ``g*m + s`` is the parity of check ``s`` of group ``g``.

    Parameters
    ----------
    k:
        Data bits (512 for a 64B line).
    t:
        Correction capability. Requires ``2t <= m + 1`` so that enough
        mutually orthogonal groups exist.
    m:
        Square side; must be prime and satisfy ``m*m >= k``. Defaults
        to the smallest prime with ``m^2 >= k`` (23 for k=512).
    """

    def __init__(self, k: int, t: int, m: int | None = None):
        if t < 1:
            raise ValueError("t must be >= 1")
        if m is None:
            m = _default_square_side(k)
        if not _is_prime(m):
            raise ValueError(f"square side m={m} must be prime")
        if m * m < k:
            raise ValueError(f"m^2 = {m*m} cannot hold {k} data bits")
        if 2 * t > m + 1:
            raise ValueError(f"at most {(m + 1) // 2} correctable errors for m={m}")
        self.k = k
        self.t = t
        self.m = m
        self.n_groups = 2 * t
        self.n = k + self.n_groups * m

        # checks_of[b] -> array of 2t check indices containing data bit b.
        # members_of[c] -> array of data-bit indices in check c.
        n_checks = self.n_groups * m
        checks_of = np.zeros((k, self.n_groups), dtype=np.intp)
        members: list = [[] for _ in range(n_checks)]
        for b in range(k):
            i, j = divmod(b, m)
            for g in range(self.n_groups):
                if g == 0:
                    s = i
                elif g == 1:
                    s = j
                else:
                    s = ((g - 1) * i + j) % m
                check = g * m + s
                checks_of[b, g] = check
                members[check].append(b)
        self._checks_of = checks_of
        self._members = [np.array(mbrs, dtype=np.intp) for mbrs in members]
        self._n_checks = n_checks

    def _check_values(self, data: np.ndarray) -> np.ndarray:
        """Recompute all check parities from the data bits."""
        values = np.zeros(self._n_checks, dtype=np.uint8)
        flat = data.astype(np.uint8)
        np.bitwise_xor.at(values, self._checks_of.ravel(), np.repeat(flat, self.n_groups))
        return values

    def encode(self, data: np.ndarray) -> np.ndarray:
        self._check_data_length(data)
        word = np.zeros(self.n, dtype=np.uint8)
        word[: self.k] = data
        word[self.k :] = self._check_values(word[: self.k])
        return word

    def decode(self, received: np.ndarray) -> DecodeResult:
        self._check_codeword_length(received)
        data = received[: self.k].copy()
        stored_checks = received[self.k :]
        failing = self._check_values(data) ^ stored_checks
        if not failing.any():
            return DecodeResult(
                data=data,
                status=DecodeStatus.CLEAN,
                syndrome_zero=True,
                global_parity_ok=True,
            )

        # One-step majority logic: flip each data bit with > t of its
        # 2t checks failing.
        fail_counts = failing[self._checks_of].sum(axis=1)
        flips = np.nonzero(fail_counts > self.t)[0]
        corrected = data.copy()
        corrected[flips] ^= 1

        if len(flips) > self.t:
            # More flips than the design capability: the error pattern
            # exceeded t and the majority vote is unreliable.
            return DecodeResult(
                data=data,
                status=DecodeStatus.DETECTED,
                syndrome_zero=False,
                global_parity_ok=False,
            )

        # Residual mismatching checks after data correction are, for
        # error weight <= t, exactly the checks whose own stored parity
        # bit flipped; they are "corrected" by recomputation.
        residual = self._check_values(corrected) ^ stored_checks
        check_positions = tuple(self.k + int(c) for c in np.nonzero(residual)[0])
        positions = tuple(int(b) for b in flips) + check_positions
        if len(positions) > self.t + self.t:  # weight clearly exceeds design
            return DecodeResult(
                data=data,
                status=DecodeStatus.DETECTED,
                syndrome_zero=False,
                global_parity_ok=False,
            )
        return DecodeResult(
            data=corrected,
            status=DecodeStatus.CORRECTED,
            corrected_positions=positions,
            syndrome_zero=False,
            global_parity_ok=False,
        )
