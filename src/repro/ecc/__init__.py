"""Error-coding substrate.

Implements, bit-for-bit, every code the paper relies on:

- :mod:`repro.ecc.parity` — Killi's segmented + interleaved parity
  (16 x 1-bit during training, 4 x 1-bit in stable states).
- :mod:`repro.ecc.secded` — extended-Hamming SECDED; 11 checkbits
  protect a 512-bit line (523-bit codeword, checkbits themselves
  covered), exposing the *syndrome* and *global parity* signals the
  Killi FSM consumes (paper Table 2).
- :mod:`repro.ecc.gf2m` / :mod:`repro.ecc.bch` — GF(2^m) arithmetic and
  a generic shortened binary BCH code with Berlekamp–Massey decoding.
  Instantiated as DECTED (t=2), TECQED (t=3) and 6EC7ED (t=6), each
  extended with an overall parity bit for the extra detection order.
- :mod:`repro.ecc.olsc` — Orthogonal Latin Square codes with one-step
  majority-logic decoding, used by the MS-ECC baseline and by Killi's
  low-Vmin variant (paper Table 7).
- :mod:`repro.ecc.registry` — named constructors plus the checkbit
  counts the area model (paper Tables 4/5/7) is built on.
"""

from repro.ecc.base import BlockCode, DecodeResult, DecodeStatus
from repro.ecc.bch import BchCode, make_6ec7ed, make_dected, make_tecqed
from repro.ecc.hsiao import HsiaoCode
from repro.ecc.olsc import OlscCode
from repro.ecc.parity import SegmentedParity
from repro.ecc.registry import CODE_REGISTRY, checkbits_for, make_code
from repro.ecc.secded import SecDedCode

__all__ = [
    "BlockCode",
    "DecodeResult",
    "DecodeStatus",
    "SegmentedParity",
    "SecDedCode",
    "HsiaoCode",
    "BchCode",
    "make_dected",
    "make_tecqed",
    "make_6ec7ed",
    "OlscCode",
    "CODE_REGISTRY",
    "make_code",
    "checkbits_for",
]
