"""Named code constructors and checkbit accounting.

A single registry keeps the mapping the rest of the repo uses:

- the simulators build codes by name ("secded", "dected", ...);
- the area model (paper Tables 4, 5, 7) asks for checkbit counts
  without constructing a decoder.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.ecc.base import BlockCode
from repro.ecc.bch import BchCode
from repro.ecc.hsiao import HsiaoCode, hsiao_checkbits
from repro.ecc.olsc import OlscCode, olsc_checkbits
from repro.ecc.secded import SecDedCode, secded_checkbits

__all__ = ["CODE_REGISTRY", "make_code", "checkbits_for", "correction_capability"]

#: name -> factory(k) -> BlockCode
CODE_REGISTRY: Dict[str, Callable[[int], BlockCode]] = {
    "secded": lambda k: SecDedCode(k),
    "hsiao": lambda k: HsiaoCode(k),
    "dected": lambda k: BchCode(k=k, t=2, extended=True),
    "tecqed": lambda k: BchCode(k=k, t=3, extended=True),
    "6ec7ed": lambda k: BchCode(k=k, t=6, extended=True),
    "olsc-t4": lambda k: OlscCode(k=k, t=4),
    "olsc-t8": lambda k: OlscCode(k=k, t=8),
    "olsc-t11": lambda k: OlscCode(k=k, t=11),
}

#: Correction capability (bits) per code name.
_CORRECTS = {
    "secded": 1,
    "hsiao": 1,
    "dected": 2,
    "tecqed": 3,
    "6ec7ed": 6,
    "olsc-t4": 4,
    "olsc-t8": 8,
    "olsc-t11": 11,
}

#: Detection capability (bits, guaranteed) per code name.
_DETECTS = {
    "secded": 2,
    "hsiao": 2,
    "dected": 3,
    "tecqed": 4,
    "6ec7ed": 7,
    "olsc-t4": 4,
    "olsc-t8": 8,
    "olsc-t11": 11,
}


def make_code(name: str, k: int = 512) -> BlockCode:
    """Construct the named code for ``k`` data bits."""
    try:
        factory = CODE_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown code {name!r}; known: {sorted(CODE_REGISTRY)}"
        ) from None
    return factory(k)


def checkbits_for(name: str, k: int = 512) -> int:
    """Checkbits of the named code without building a decoder.

    >>> checkbits_for("secded")
    11
    >>> checkbits_for("dected")
    21
    >>> checkbits_for("tecqed")
    31
    >>> checkbits_for("6ec7ed")
    61
    """
    if name == "secded":
        return secded_checkbits(k)
    if name == "hsiao":
        return hsiao_checkbits(k)
    if name in ("dected", "tecqed", "6ec7ed"):
        t = {"dected": 2, "tecqed": 3, "6ec7ed": 6}[name]
        return BchCode(k=k, t=t, extended=True).checkbits
    if name.startswith("olsc-t"):
        return olsc_checkbits(k, int(name[len("olsc-t") :]))
    raise KeyError(f"unknown code {name!r}")


def correction_capability(name: str) -> int:
    """Guaranteed number of correctable bit errors for the named code."""
    return _CORRECTS[name]


def detection_capability(name: str) -> int:
    """Guaranteed number of detectable bit errors for the named code."""
    return _DETECTS[name]
