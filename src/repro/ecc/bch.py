"""Shortened binary BCH codes with optional extended parity.

These provide the stronger-than-SECDED codes the paper evaluates for
Killi's ECC cache (Table 4) and for the DECTED baseline:

- **DECTED**  — t=2 BCH + overall parity: 21 checkbits for 512 data
  bits, matching the paper's "DECTED ECC for 64B data requires only
  21 bits".
- **TECQED**  — t=3 + parity (31 checkbits).
- **6EC7ED**  — t=6 + parity (61 checkbits).

The implementation is a textbook systematic BCH code over GF(2^m):
generator polynomial from the lcm of minimal polynomials of
``alpha^1 .. alpha^(2t-1)``, syndrome computation, Berlekamp–Massey to
find the error-locator polynomial, and Chien search over the shortened
positions.  The optional extended parity bit raises the minimum
distance from 2t+1 to 2t+2, buying one extra order of detection
(correct t, detect t+1).
"""

from __future__ import annotations

import numpy as np

from repro.ecc.base import BlockCode, DecodeResult, DecodeStatus
from repro.ecc.gf2m import GF2m

__all__ = ["BchCode", "make_dected", "make_tecqed", "make_6ec7ed", "bch_checkbits"]


def _choose_field_degree(k: int, t: int) -> int:
    """Smallest m with 2^m - 1 >= k + m*t (room for data + checkbits)."""
    m = 3
    while (1 << m) - 1 < k + m * t:
        m += 1
    return m


def bch_checkbits(k: int, t: int, extended: bool = True) -> int:
    """Number of checkbits of the (possibly extended) BCH code.

    >>> bch_checkbits(512, 2)   # DECTED
    21
    >>> bch_checkbits(512, 3)   # TECQED
    31
    >>> bch_checkbits(512, 6)   # 6EC7ED
    61
    """
    return BchCode(k=k, t=t, extended=extended).checkbits


class BchCode(BlockCode):
    """Systematic shortened binary BCH code correcting ``t`` errors.

    Codeword layout: ``[data (k) | bch parity (deg g) | extended parity (0/1)]``.
    In polynomial terms, bch-parity bit ``i`` is the coefficient of
    ``x^i`` and data bit ``i`` the coefficient of ``x^(deg g + i)``; the
    extended parity bit (if present) sits outside the cyclic code.

    Parameters
    ----------
    k:
        Number of data bits (512 for a 64B cache line).
    t:
        Designed correction capability in bits.
    m:
        Field degree; defaults to the smallest field that fits.
    extended:
        Append an overall parity bit (detect t+1 errors). Default True.
    """

    def __init__(self, k: int, t: int, m: int | None = None, extended: bool = True):
        if t < 1:
            raise ValueError("t must be >= 1")
        self.k = k
        self.t = t
        self.extended = extended
        self.field = GF2m(m if m is not None else _choose_field_degree(k, t))

        # Generator polynomial: lcm of minimal polynomials of odd powers
        # alpha^1, alpha^3, ..., alpha^(2t-1) (even powers share cosets).
        seen_cosets = set()
        gen = np.array([1], dtype=np.uint8)
        for s in range(1, 2 * t, 2):
            coset = tuple(self.field.cyclotomic_coset(s))
            if coset in seen_cosets:
                continue
            seen_cosets.add(coset)
            minimal = np.array(self.field.minimal_polynomial(s), dtype=np.uint8)
            gen = _poly_mul_gf2(gen, minimal)
        self._generator = gen
        self.parity_bits = len(gen) - 1

        if k + self.parity_bits > self.field.order:
            raise ValueError(
                f"k={k}, t={t} does not fit in GF(2^{self.field.m}) "
                f"(need {k + self.parity_bits} <= {self.field.order})"
            )
        self.n = k + self.parity_bits + (1 if extended else 0)
        # Cyclic length actually used by the shortened code.
        self._cyclic_len = k + self.parity_bits

    # -- encoding --------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        self._check_data_length(data)
        p = self.parity_bits
        # Systematic encoding: remainder of data(x) * x^p modulo g(x).
        buf = np.zeros(self._cyclic_len, dtype=np.uint8)
        buf[p:] = data
        for i in range(self._cyclic_len - 1, p - 1, -1):
            if buf[i]:
                buf[i - p : i + 1] ^= self._generator
        remainder = buf[:p]

        word = np.zeros(self.n, dtype=np.uint8)
        word[: self.k] = data
        word[self.k : self.k + p] = remainder
        if self.extended:
            word[self.n - 1] = np.count_nonzero(word[: self.n - 1]) & 1
        return word

    # -- degree mapping ---------------------------------------------------

    def _degree_of_position(self, pos: int) -> int:
        """Polynomial degree of codeword array position ``pos``."""
        if pos < self.k:
            return self.parity_bits + pos
        return pos - self.k

    def _position_of_degree(self, deg: int) -> int:
        """Codeword array position holding the ``x^deg`` coefficient."""
        if deg < self.parity_bits:
            return self.k + deg
        return deg - self.parity_bits

    # -- decoding ---------------------------------------------------------

    def _syndromes(self, word: np.ndarray) -> list:
        """S_i = r(alpha^i) for i = 1..2t, over the cyclic part of the word."""
        gf = self.field
        set_degrees = [
            self._degree_of_position(int(p))
            for p in np.nonzero(word[: self._cyclic_len])[0]
        ]
        syndromes = []
        for i in range(1, 2 * self.t + 1):
            s = 0
            for d in set_degrees:
                s ^= gf.alpha_pow(i * d)
            syndromes.append(s)
        return syndromes

    def _berlekamp_massey(self, syndromes: list) -> list:
        """Error-locator polynomial sigma (coeff list, sigma[0] == 1)."""
        gf = self.field
        sigma = [1]
        prev_sigma = [1]
        l = 0  # current LFSR length
        shift = 1
        prev_discrepancy = 1
        for i, s in enumerate(syndromes):
            # Discrepancy: s + sum_{j=1..l} sigma[j] * S_{i-j}
            d = s
            for j in range(1, l + 1):
                if j < len(sigma) and i - j >= 0:
                    d ^= gf.mul(sigma[j], syndromes[i - j])
            if d == 0:
                shift += 1
                continue
            if 2 * l <= i:
                new_prev = sigma[:]
                coef = gf.div(d, prev_discrepancy)
                sigma = _poly_add_scaled(gf, sigma, prev_sigma, coef, shift)
                l = i + 1 - l
                prev_sigma = new_prev
                prev_discrepancy = d
                shift = 1
            else:
                coef = gf.div(d, prev_discrepancy)
                sigma = _poly_add_scaled(gf, sigma, prev_sigma, coef, shift)
                shift += 1
        return sigma

    def _chien_search(self, sigma: list) -> list | None:
        """Error degrees (positions in polynomial-degree space) or None.

        Returns None when the number of roots in the valid (shortened)
        range does not match the locator degree, i.e. decode failure.
        """
        gf = self.field
        degree = len(sigma) - 1
        while degree > 0 and sigma[degree] == 0:
            degree -= 1
        if degree == 0:
            return []
        error_degrees = []
        for d in range(self._cyclic_len):
            # Error at degree d <=> sigma(alpha^{-d}) == 0.
            x = gf.alpha_pow(-d)
            if gf.poly_eval(sigma[: degree + 1], x) == 0:
                error_degrees.append(d)
                if len(error_degrees) > degree:
                    return None
        if len(error_degrees) != degree:
            return None
        return error_degrees

    def decode(self, received: np.ndarray) -> DecodeResult:
        self._check_codeword_length(received)
        syndromes = self._syndromes(received)
        syndrome_zero = all(s == 0 for s in syndromes)
        if self.extended:
            parity_ok = (np.count_nonzero(received) & 1) == 0
        else:
            parity_ok = syndrome_zero

        if syndrome_zero:
            if not self.extended or parity_ok:
                return DecodeResult(
                    data=received[: self.k].copy(),
                    status=DecodeStatus.CLEAN,
                    syndrome_zero=True,
                    global_parity_ok=parity_ok,
                )
            # Only the extended parity bit flipped.
            return DecodeResult(
                data=received[: self.k].copy(),
                status=DecodeStatus.CORRECTED,
                corrected_positions=(self.n - 1,),
                syndrome_zero=True,
                global_parity_ok=False,
            )

        sigma = self._berlekamp_massey(syndromes)
        error_degrees = self._chien_search(sigma)
        detected = DecodeResult(
            data=received[: self.k].copy(),
            status=DecodeStatus.DETECTED,
            syndrome_zero=False,
            global_parity_ok=parity_ok,
        )
        if error_degrees is None or len(error_degrees) > self.t:
            return detected

        # Parity consistency.  A mismatch between the overall parity
        # and the number of cyclic corrections means one extra error
        # beyond what the cyclic decoder saw.  For e < t corrections it
        # is uniquely the extended parity bit itself (total <= t:
        # correct it); for e == t the pattern is ambiguous with t+1
        # cyclic errors aliasing, so only detection is guaranteed.
        positions = tuple(self._position_of_degree(d) for d in error_degrees)
        e = len(error_degrees)
        if self.extended and (e & 1) == (1 if parity_ok else 0):
            if e == self.t:
                return detected
            positions = positions + (self.n - 1,)

        corrected = received.copy()
        for pos in positions:
            corrected[pos] ^= 1
        # Safety recheck: corrected word must be a codeword.
        if not all(s == 0 for s in self._syndromes(corrected)):
            return detected
        return DecodeResult(
            data=corrected[: self.k],
            status=DecodeStatus.CORRECTED,
            corrected_positions=positions,
            syndrome_zero=False,
            global_parity_ok=parity_ok,
        )


def _poly_mul_gf2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Product of two GF(2) polynomials given as coefficient arrays."""
    out = np.zeros(len(a) + len(b) - 1, dtype=np.uint8)
    for i, coef in enumerate(a):
        if coef:
            out[i : i + len(b)] ^= b
    return out


def _poly_add_scaled(gf: GF2m, sigma: list, prev: list, coef: int, shift: int) -> list:
    """sigma(x) + coef * x^shift * prev(x) over GF(2^m)."""
    out = list(sigma) + [0] * max(0, shift + len(prev) - len(sigma))
    for j, c in enumerate(prev):
        if c:
            out[j + shift] ^= gf.mul(coef, c)
    while len(out) > 1 and out[-1] == 0:
        out.pop()
    return out


def make_dected(k: int = 512) -> BchCode:
    """DECTED: correct 2, detect 3 (t=2 BCH + extended parity)."""
    return BchCode(k=k, t=2, extended=True)


def make_tecqed(k: int = 512) -> BchCode:
    """TECQED: correct 3, detect 4 (t=3 BCH + extended parity)."""
    return BchCode(k=k, t=3, extended=True)


def make_6ec7ed(k: int = 512) -> BchCode:
    """6EC7ED: correct 6, detect 7 (t=6 BCH + extended parity)."""
    return BchCode(k=k, t=6, extended=True)
