"""Arithmetic in the finite field GF(2^m).

Provides log/antilog-table based multiplication, division and
exponentiation used by the BCH encoder/decoder.  Elements are plain
Python ints in ``[0, 2^m)``; addition is XOR.
"""

from __future__ import annotations

__all__ = ["GF2m", "DEFAULT_PRIMITIVE_POLYS"]

# Primitive polynomials (as bit masks, including the x^m term) for the
# field sizes the codes in this repo use.  E.g. m=10 -> x^10 + x^3 + 1.
DEFAULT_PRIMITIVE_POLYS = {
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
}


class GF2m:
    """The field GF(2^m) with a fixed primitive element alpha.

    Parameters
    ----------
    m:
        Field degree; the field has ``2^m`` elements.
    primitive_poly:
        Bit mask of the primitive polynomial (defaults to a standard
        choice from :data:`DEFAULT_PRIMITIVE_POLYS`).
    """

    def __init__(self, m: int, primitive_poly: int | None = None):
        if m not in DEFAULT_PRIMITIVE_POLYS and primitive_poly is None:
            raise ValueError(f"no default primitive polynomial for m={m}")
        self.m = m
        self.size = 1 << m
        self.order = self.size - 1  # multiplicative group order
        poly = primitive_poly if primitive_poly is not None else DEFAULT_PRIMITIVE_POLYS[m]
        self.primitive_poly = poly

        # Build exp/log tables: exp[i] = alpha^i, log[exp[i]] = i.
        self._exp = [0] * (2 * self.order)
        self._log = [0] * self.size
        x = 1
        for i in range(self.order):
            self._exp[i] = x
            self._log[x] = i
            x <<= 1
            if x & self.size:
                x ^= poly
        if x != 1:
            raise ValueError(f"polynomial {poly:#x} is not primitive for m={m}")
        # Duplicate the table so exp[i + j] never needs an explicit mod.
        for i in range(self.order, 2 * self.order):
            self._exp[i] = self._exp[i - self.order]

    def alpha_pow(self, i: int) -> int:
        """alpha^i (exponent taken modulo the group order)."""
        return self._exp[i % self.order]

    def log(self, x: int) -> int:
        """Discrete log base alpha; raises on 0."""
        if x == 0:
            raise ZeroDivisionError("log of zero in GF(2^m)")
        return self._log[x]

    def mul(self, a: int, b: int) -> int:
        """Field product a * b."""
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def div(self, a: int, b: int) -> int:
        """Field quotient a / b; raises on division by zero."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self._exp[(self._log[a] - self._log[b]) % self.order]

    def inv(self, a: int) -> int:
        """Multiplicative inverse of a."""
        if a == 0:
            raise ZeroDivisionError("inverse of zero in GF(2^m)")
        return self._exp[(self.order - self._log[a]) % self.order]

    def pow(self, a: int, e: int) -> int:
        """a raised to the integer power e."""
        if a == 0:
            if e == 0:
                return 1
            if e < 0:
                raise ZeroDivisionError("0 to a negative power")
            return 0
        return self._exp[(self._log[a] * e) % self.order]

    def poly_eval(self, coeffs, x: int) -> int:
        """Evaluate a polynomial (coeffs[i] is the x^i coefficient) at x."""
        acc = 0
        for c in reversed(coeffs):
            acc = self.mul(acc, x) ^ c
        return acc

    def cyclotomic_coset(self, s: int) -> list:
        """The 2-cyclotomic coset of ``s`` modulo ``2^m - 1``."""
        coset = []
        cur = s % self.order
        while cur not in coset:
            coset.append(cur)
            cur = (cur * 2) % self.order
        return sorted(coset)

    def minimal_polynomial(self, s: int) -> list:
        """Minimal polynomial of alpha^s over GF(2), as a GF(2) coeff list.

        Returned list ``p`` satisfies ``p[i]`` = coefficient of x^i and
        ``p[-1] == 1``.
        """
        coset = self.cyclotomic_coset(s)
        # Multiply out prod_{j in coset} (x - alpha^j) using GF(2^m)
        # coefficients; the result is guaranteed to lie in GF(2).
        poly = [1]
        for j in coset:
            root = self.alpha_pow(j)
            # poly * (x + root)
            new = [0] * (len(poly) + 1)
            for i, c in enumerate(poly):
                new[i + 1] ^= c
                new[i] ^= self.mul(c, root)
            poly = new
        if any(c not in (0, 1) for c in poly):
            raise AssertionError("minimal polynomial has non-binary coefficient")
        return poly
