"""Common interface for block error-correcting codes.

All codes in :mod:`repro.ecc` are *systematic* block codes over GF(2):
``encode`` maps ``k`` data bits to ``n`` codeword bits whose first ``k``
bits are the data verbatim, and ``decode`` maps a (possibly corrupted)
``n``-bit word to a best-effort corrected data word plus a status that
the cache controllers act on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["DecodeStatus", "DecodeResult", "BlockCode"]


class DecodeStatus(enum.Enum):
    """Outcome of a decode attempt, as visible to the cache controller."""

    CLEAN = "clean"
    """Zero syndrome: the word is a valid codeword."""

    CORRECTED = "corrected"
    """Errors were detected and (believed) corrected."""

    DETECTED = "detected"
    """Errors were detected but are beyond the correction capability."""


@dataclass
class DecodeResult:
    """Result of decoding a received word.

    Attributes
    ----------
    data:
        Best-effort corrected data bits (length ``k``).  For
        ``DETECTED`` outcomes this is the received data unchanged.
    status:
        Controller-visible outcome.
    corrected_positions:
        Codeword positions the decoder flipped (empty unless
        ``CORRECTED``).
    syndrome_zero:
        True iff the raw syndrome was zero.  Exposed separately because
        Killi's DFH state machine keys on the syndrome and the global
        parity independently (paper Table 2).
    global_parity_ok:
        For codes that carry an overall parity bit (SECDED and the
        extended BCH codes): True iff the overall parity matched.  For
        codes without one this mirrors ``syndrome_zero``.
    """

    data: np.ndarray
    status: DecodeStatus
    corrected_positions: tuple = field(default_factory=tuple)
    syndrome_zero: bool = True
    global_parity_ok: bool = True

    @property
    def detected_error(self) -> bool:
        """True iff the decoder saw anything wrong at all."""
        return self.status is not DecodeStatus.CLEAN


class BlockCode:
    """Abstract systematic block code.

    Subclasses set ``k`` (data length), ``n`` (codeword length) and
    therefore ``checkbits = n - k``, and implement :meth:`encode` and
    :meth:`decode`.
    """

    k: int
    n: int

    @property
    def checkbits(self) -> int:
        """Number of redundant bits per codeword."""
        return self.n - self.k

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``k`` data bits into an ``n``-bit codeword."""
        raise NotImplementedError

    def decode(self, received: np.ndarray) -> DecodeResult:
        """Decode a received ``n``-bit word."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------

    def _check_data_length(self, data: np.ndarray) -> None:
        if len(data) != self.k:
            raise ValueError(f"expected {self.k} data bits, got {len(data)}")

    def _check_codeword_length(self, word: np.ndarray) -> None:
        if len(word) != self.n:
            raise ValueError(f"expected {self.n} codeword bits, got {len(word)}")
