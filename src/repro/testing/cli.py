"""``repro fuzz`` — the differential fuzzing entry point.

Generates seeded random scenarios, runs each through every engine ×
substrate combination, and exits non-zero on the first divergence —
after shrinking it and writing a commit-ready reproducer ``.toml``
under ``tests/testing/repros/``.

Examples::

    repro fuzz --seed 0 --max-examples 50
    repro fuzz --seed from-date --max-examples 200       # nightly CI
    repro fuzz --seed 0 --max-examples 5 --plant disable-way   # self-test
"""

from __future__ import annotations

import argparse
import sys
from datetime import datetime, timezone

__all__ = ["fuzz_main"]


def _resolve_seed(raw: str) -> int:
    if raw == "from-date":
        # One fresh deterministic seed per UTC day: reruns of a failed
        # nightly reproduce, while coverage still rotates.
        return int(datetime.now(timezone.utc).strftime("%Y%m%d"))
    try:
        return int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--seed must be an integer or 'from-date', got {raw!r}"
        )


def fuzz_main(argv=None) -> int:
    from repro.testing.differential import PLANTS, diff_scenario
    from repro.testing.generator import ScenarioFuzzer
    from repro.testing.shrinker import (
        DEFAULT_REPRO_DIR,
        shrink,
        total_accesses,
        write_reproducer,
    )

    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description=(
            "Differentially fuzz every engine × substrate combination "
            "against the scalar×object reference."
        ),
    )
    parser.add_argument(
        "--seed", type=_resolve_seed, default=0, metavar="N|from-date",
        help="fuzzer seed: an integer, or 'from-date' for one seed per "
             "UTC day (default 0)",
    )
    parser.add_argument(
        "--max-examples", type=int, default=50, metavar="N",
        help="number of scenarios to generate (default 50)",
    )
    parser.add_argument(
        "--start", type=int, default=0, metavar="I",
        help="first example index (resume a partial sweep)",
    )
    parser.add_argument(
        "--max-accesses", type=int, default=400, metavar="N",
        help="accesses-per-CU size bound per scenario (default 400)",
    )
    parser.add_argument(
        "--shrink", dest="shrink", action="store_true", default=True,
        help="shrink a divergence before reporting (default)",
    )
    parser.add_argument(
        "--no-shrink", dest="shrink", action="store_false",
        help="report the raw diverging scenario without shrinking",
    )
    parser.add_argument(
        "--out", default=DEFAULT_REPRO_DIR, metavar="DIR",
        help=f"directory for shrunk reproducers (default {DEFAULT_REPRO_DIR})",
    )
    parser.add_argument(
        "--plant", choices=sorted(PLANTS), default=None,
        help="inject a named deliberate fault into non-reference runs "
             "(oracle self-test; the run is expected to diverge)",
    )
    args = parser.parse_args(argv)
    if args.max_examples < 1:
        parser.error("--max-examples must be positive")

    plant = PLANTS[args.plant] if args.plant else None
    fuzzer = ScenarioFuzzer(seed=args.seed, max_accesses=args.max_accesses)
    print(
        f"fuzz: seed={args.seed} examples="
        f"[{args.start}, {args.start + args.max_examples}) "
        f"max_accesses={args.max_accesses}"
        + (f" plant={args.plant}" if args.plant else "")
    )

    for index in range(args.start, args.start + args.max_examples):
        scenario = fuzzer.scenario(index)
        divergence = diff_scenario(scenario, plant=plant)
        if divergence is None:
            print(
                f"  [{index}] ok  {scenario.fingerprint()[:12]} "
                f"{scenario.workload.name}/{scenario.scheme.name} "
                f"v={scenario.fault.voltage} "
                f"acc={scenario.workload.accesses_per_cu}x{scenario.gpu.n_cus}"
            )
            continue

        print(f"\nDIVERGENCE at example {index}:", file=sys.stderr)
        print(divergence.describe(), file=sys.stderr)

        final = scenario
        if args.shrink:
            def interesting(candidate):
                return diff_scenario(candidate, plant=plant) is not None

            print("shrinking ...", file=sys.stderr)
            final = shrink(scenario, interesting)
            print(
                f"shrunk: {total_accesses(scenario)} -> "
                f"{total_accesses(final)} total accesses "
                f"({final.fingerprint()[:12]})",
                file=sys.stderr,
            )
            shrunk_div = diff_scenario(final, plant=plant)
            if shrunk_div is not None:
                print(shrunk_div.describe(), file=sys.stderr)

        note = f"Found by: repro fuzz --seed {args.seed} (example {index})"
        if args.plant:
            note += f" --plant {args.plant}"
        path, pytest_line = write_reproducer(final, args.out, note=note)
        print(f"reproducer written: {path}", file=sys.stderr)
        print(f"pytest: {pytest_line}", file=sys.stderr)
        return 1

    print(f"fuzz: {args.max_examples} examples, no divergence")
    return 0


if __name__ == "__main__":
    raise SystemExit(fuzz_main())
