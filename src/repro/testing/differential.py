"""The differential executor: the oracle for engine × substrate equivalence.

One scenario, every inner-loop/substrate combination, one canonical
diff.  :func:`run_scenario` mirrors the harness's cell construction
(:func:`~repro.harness.runner.run_cell`) exactly — same fault-map
stream, same trace, same per-cell RNG namespace — but keeps the
simulator so the full observable state can be captured via
:meth:`~repro.gpu.engine.GpuSimulator.state_snapshot`:
cycles, per-CU cycles, every ``CacheStats`` counter of the L2 and all
L1s, tag/LRU/dirty/disabled state, DFH state, transition counts,
ECC-cache counters, memory traffic and the shared RNG stream position.

:func:`diff_scenario` runs the scenario through a reference
combination (scalar engine × object substrate — the pinned reference
implementations) and every other combination, and reports the first
mismatch as a :class:`Divergence`.  An exception raised by a
non-reference combination is *also* a divergence (a crash in one
engine is the strongest possible disagreement).  ``plant`` hooks
inject a deliberate fault into the non-reference runs only — the
self-test that proves the oracle can see.
"""

from __future__ import annotations

import hashlib
import json
import traceback
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.scenario.config import ScenarioConfig, as_scenario

__all__ = [
    "COMBOS",
    "REFERENCE",
    "PLANTS",
    "Observation",
    "Divergence",
    "run_scenario",
    "diff_scenario",
    "snapshot_diff",
    "last_context",
]

#: Every engine × substrate combination the equivalence contract pins.
COMBOS: Tuple[Tuple[str, str], ...] = tuple(
    (engine, substrate)
    for engine in ("scalar", "vectorized", "batched")
    for substrate in ("object", "soa")
)

#: The pinned reference combination: the per-round Python loop over
#: per-line object state.
REFERENCE: Tuple[str, str] = ("scalar", "object")

# Last scenario/combination handed to ``run_scenario`` — surfaced by
# ``tests/conftest.py`` on failure so a crashing fuzz case prints its
# fingerprint, seed and TOML without any bookkeeping in the test.
_LAST: Optional[dict] = None


def last_context() -> Optional[dict]:
    """Fingerprint/seed/TOML of the most recent differential run."""
    return _LAST


@dataclass
class Observation:
    """One combination's full observable outcome for one scenario."""

    engine: str
    substrate: str
    cycles: int
    instructions: int
    per_cu_cycles: List[int]
    snapshot: dict
    digest: str


@dataclass
class Divergence:
    """A combination that disagreed with the reference."""

    scenario: ScenarioConfig
    reference: Tuple[str, str]
    combo: Tuple[str, str]
    paths: List[str] = field(default_factory=list)
    ref_digest: str = ""
    digest: str = ""
    error: str = ""

    def describe(self) -> str:
        engine, substrate = self.combo
        head = (
            f"{engine}×{substrate} diverges from "
            f"{self.reference[0]}×{self.reference[1]} on scenario "
            f"{self.scenario.fingerprint()[:12]} "
            f"(workload={self.scenario.workload.name}, "
            f"scheme={self.scenario.scheme.name}, "
            f"seed={self.scenario.fault.seed})"
        )
        if self.error:
            return f"{head}\n  raised: {self.error}"
        shown = "\n".join(f"  {path}" for path in self.paths[:12])
        more = len(self.paths) - 12
        if more > 0:
            shown += f"\n  ... and {more} more"
        return f"{head}\n{shown}"


def _canonical_digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_scenario(
    scenario,
    engine: Optional[str] = None,
    substrate: Optional[str] = None,
    plant: Optional[Callable] = None,
) -> Observation:
    """Execute one scenario under one combination; keep everything.

    Mirrors :func:`~repro.harness.runner.run_cell`'s construction
    sequence exactly (any drift here would fuzz a different model than
    the harness runs).  ``plant`` is called with the constructed
    :class:`~repro.gpu.engine.GpuSimulator` before the kernel runs —
    the deliberate-fault hook.
    """
    from repro.cache.core import WriteBackCache
    from repro.gpu import GpuSimulator
    from repro.harness.runner import fault_map_for, trace_for
    from repro.scenario.schemes import make_scheme
    from repro.utils.rng import RngFactory

    scenario = as_scenario(scenario)
    engine = engine if engine is not None else scenario.engine.engine
    substrate = substrate if substrate is not None else scenario.engine.substrate
    _set_last_context(scenario, engine, substrate)
    workload = scenario.workload.name
    scheme_name = scenario.scheme.name
    seed = scenario.fault.seed
    gpu_config = scenario.gpu.to_gpu_config()
    fault_map = fault_map_for(gpu_config.l2.n_lines, seed)
    trace = trace_for(
        workload, scenario.workload.accesses_per_cu, gpu_config.n_cus, seed
    )
    rngs = RngFactory(seed).child(f"{workload}/{scheme_name}")
    scheme = make_scheme(
        scheme_name,
        gpu_config,
        fault_map,
        scenario.fault.voltage,
        rngs,
        scheme_config=scenario.scheme.overrides or None,
        write_back=scenario.scheme.write_back,
    )
    simulator = GpuSimulator(gpu_config, scheme, engine=engine, substrate=substrate)
    if scenario.scheme.write_back:
        simulator.l2 = WriteBackCache(
            gpu_config.l2,
            scheme,
            gpu_config.l2_latencies,
            substrate=simulator.substrate,
        )
    if plant is not None:
        plant(simulator)
    result = simulator.run(trace)
    snapshot = simulator.state_snapshot()
    snapshot["cycles"] = result.cycles
    snapshot["instructions"] = result.instructions
    snapshot["per_cu_cycles"] = [int(c) for c in result.per_cu_cycles]
    return Observation(
        engine=engine,
        substrate=substrate,
        cycles=result.cycles,
        instructions=result.instructions,
        per_cu_cycles=[int(c) for c in result.per_cu_cycles],
        snapshot=snapshot,
        digest=_canonical_digest(snapshot),
    )


def diff_scenario(
    scenario,
    combos: Sequence[Tuple[str, str]] = COMBOS,
    reference: Tuple[str, str] = REFERENCE,
    plant: Optional[Callable] = None,
) -> Optional[Divergence]:
    """Run every combination and report the first disagreement, or None.

    The reference combination always runs *unplanted*; ``plant`` fires
    only in the other combinations, so a planted fault is guaranteed
    to surface as a divergence rather than cancelling out.
    """
    scenario = as_scenario(scenario)
    reference = tuple(reference)
    ref = run_scenario(scenario, reference[0], reference[1])
    for engine, substrate in combos:
        if (engine, substrate) == reference and plant is None:
            continue
        try:
            obs = run_scenario(scenario, engine, substrate, plant=plant)
        except Exception:
            return Divergence(
                scenario=scenario,
                reference=reference,
                combo=(engine, substrate),
                ref_digest=ref.digest,
                error=traceback.format_exc(limit=8),
            )
        if obs.digest != ref.digest:
            return Divergence(
                scenario=scenario,
                reference=reference,
                combo=(engine, substrate),
                paths=snapshot_diff(ref.snapshot, obs.snapshot),
                ref_digest=ref.digest,
                digest=obs.digest,
            )
    return None


def snapshot_diff(a, b, path: str = "", limit: int = 64) -> List[str]:
    """Key paths where two snapshots differ (``ref=... got=...``)."""
    out: List[str] = []
    _walk_diff(a, b, path, out, limit)
    return out


def _walk_diff(a, b, path: str, out: List[str], limit: int) -> None:
    if len(out) >= limit:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b), key=str):
            sub = f"{path}/{key}"
            if key not in a:
                out.append(f"{sub}: only in candidate")
            elif key not in b:
                out.append(f"{sub}: only in reference")
            else:
                _walk_diff(a[key], b[key], sub, out, limit)
            if len(out) >= limit:
                return
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out.append(f"{path}: length ref={len(a)} got={len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            _walk_diff(x, y, f"{path}[{i}]", out, limit)
            if len(out) >= limit:
                return
    elif a != b:
        out.append(f"{path}: ref={a!r} got={b!r}")


def _set_last_context(scenario: ScenarioConfig, engine: str, substrate) -> None:
    global _LAST
    _LAST = {
        "fingerprint": scenario.fingerprint(),
        "seed": scenario.fault.seed,
        "workload": scenario.workload.name,
        "scheme": scenario.scheme.name,
        "engine": engine,
        "substrate": substrate,
        "toml": scenario.to_toml(header="last differential scenario"),
    }


# -- deliberate-fault hooks ---------------------------------------------------


def _plant_disable_way(simulator) -> None:
    """Disable way 0 of every L2 set before the kernel runs.

    The cheapest observable perturbation: the first fill into any set
    lands in way 1 instead of way 0, so a single L2 miss anywhere
    diverges the tag snapshot — which is what lets the shrinker take a
    planted case down to a one-access reproducer.
    """
    tags = simulator.l2.tags
    for set_index in range(simulator.l2.geometry.n_sets):
        tags.disable(set_index, 0)


def _plant_drop_write(simulator) -> None:
    """Make L2 write hits skip the scheme's write-hit hook."""
    l2 = simulator.l2
    l2.scheme.on_write_hit = lambda set_index, way: None


#: Named fault-injection hooks for ``repro fuzz --plant`` and the
#: oracle self-tests.
PLANTS = {
    "disable-way": _plant_disable_way,
    "drop-write-hook": _plant_drop_write,
}
