"""Greedy scenario shrinker: from a fuzzed divergence to a tiny reproducer.

Given a scenario on which some predicate holds (normally "the
differential executor sees a divergence"), :func:`shrink` applies
size-reducing transformations — fewer CUs, fewer accesses, a smaller
cache geometry, a simpler scheme — keeping each change only while the
predicate still holds, until a fixpoint.  The result is written out as
a commit-ready ``.toml`` under ``tests/testing/repros/`` by
:func:`write_reproducer`; everything committed there is replayed by
``tests/testing/test_repros.py`` on every CI run (under
``REPRO_CHECK_INVARIANTS=1``), so a shrunk reproducer is a permanent
regression test the moment it lands.
"""

from __future__ import annotations

import os
from typing import Callable, Tuple

from repro.scenario.config import ScenarioConfig, as_scenario

__all__ = [
    "DEFAULT_REPRO_DIR",
    "total_accesses",
    "shrink",
    "write_reproducer",
]

#: Where committed reproducers live, relative to the repo root.
DEFAULT_REPRO_DIR = os.path.join("tests", "testing", "repros")


def total_accesses(scenario: ScenarioConfig) -> int:
    """The scenario's size in total trace accesses."""
    return scenario.gpu.n_cus * scenario.workload.accesses_per_cu


def shrink(
    scenario,
    interesting: Callable[[ScenarioConfig], bool],
    max_rounds: int = 8,
) -> ScenarioConfig:
    """Greedily minimize ``scenario`` while ``interesting`` stays true.

    ``interesting`` must be deterministic; candidates that fail
    validation or make the predicate raise are simply rejected.
    Raises ``ValueError`` if the input scenario is not interesting in
    the first place (nothing to shrink).
    """
    current = as_scenario(scenario)
    if not interesting(current):
        raise ValueError("scenario is not interesting; nothing to shrink")

    def attempt(candidate: ScenarioConfig) -> bool:
        nonlocal current
        try:
            candidate.validate()
            candidate.gpu.to_gpu_config()
            ok = bool(interesting(candidate))
        except Exception:
            return False
        if ok:
            current = candidate
        return ok

    for _ in range(max_rounds):
        before = current
        _shrink_cus(attempt, lambda: current)
        _shrink_accesses(attempt, lambda: current)
        _shrink_geometry(attempt, lambda: current)
        _shrink_knobs(attempt, lambda: current)
        if current == before:
            break
    return current


def _shrink_cus(attempt, current) -> None:
    for n_cus in (1, 2, 4):
        scenario = current()
        if n_cus < scenario.gpu.n_cus:
            candidate = scenario.replace(
                gpu=_replace_gpu(scenario, n_cus=n_cus)
            )
            if attempt(candidate):
                return


def _shrink_accesses(attempt, current) -> None:
    # Halve while interesting, then nibble linearly toward 1.
    while True:
        scenario = current()
        accesses = scenario.workload.accesses_per_cu
        if accesses <= 1:
            return
        half = accesses // 2
        if not attempt(
            scenario.replace(
                workload={
                    "name": scenario.workload.name,
                    "accesses_per_cu": half,
                }
            )
        ):
            break
    for _ in range(8):
        scenario = current()
        accesses = scenario.workload.accesses_per_cu
        if accesses <= 1:
            return
        if not attempt(
            scenario.replace(
                workload={
                    "name": scenario.workload.name,
                    "accesses_per_cu": accesses - 1,
                }
            )
        ):
            return


def _shrink_geometry(attempt, current) -> None:
    # Halve the L2 while it still has at least two sets; banks pin to 1
    # first (a bank count can never exceed the set count).
    while True:
        scenario = current()
        gpu = scenario.gpu
        if gpu.l2_banks != 1 or gpu.model_bank_conflicts:
            if attempt(
                scenario.replace(
                    gpu=_replace_gpu(
                        scenario, l2_banks=1, model_bank_conflicts=False
                    )
                )
            ):
                continue
        n_sets = gpu.l2_size_bytes // (gpu.l2_line_bytes * gpu.l2_associativity)
        if n_sets <= 2:
            break
        if not attempt(
            scenario.replace(
                gpu=_replace_gpu(scenario, l2_size_bytes=gpu.l2_size_bytes // 2)
            )
        ):
            break
    scenario = current()
    if scenario.gpu.l2_associativity > 4:
        gpu = scenario.gpu
        attempt(
            scenario.replace(
                gpu=_replace_gpu(
                    scenario,
                    l2_associativity=4,
                    l2_size_bytes=(
                        gpu.l2_size_bytes * 4 // gpu.l2_associativity
                    ),
                )
            )
        )


def _shrink_knobs(attempt, current) -> None:
    scenario = current()
    if scenario.scheme.name != "baseline" or scenario.scheme.config:
        attempt(
            scenario.replace(
                scheme={
                    "name": "baseline",
                    "write_back": scenario.scheme.write_back,
                }
            )
        )
    scenario = current()
    if scenario.scheme.write_back:
        attempt(
            scenario.replace(
                scheme={
                    "name": scenario.scheme.name,
                    "config": dict(scenario.scheme.config),
                    "write_back": False,
                }
            )
        )


def _replace_gpu(scenario: ScenarioConfig, **overrides):
    from dataclasses import replace

    return replace(scenario.gpu, **overrides)


def write_reproducer(
    scenario: ScenarioConfig,
    out_dir: str = DEFAULT_REPRO_DIR,
    note: str = "",
) -> Tuple[str, str]:
    """Write a shrunk scenario as a committed-ready ``.toml``.

    Returns ``(path, pytest_line)``: the file written (named by the
    scenario fingerprint, so re-shrinking the same divergence is
    idempotent) and the one-line pytest parametrization to cite in the
    commit — the repro is auto-collected by
    ``tests/testing/test_repros.py`` either way.
    """
    os.makedirs(out_dir, exist_ok=True)
    fingerprint = scenario.fingerprint()[:12]
    name = f"repro_{fingerprint}.toml"
    header = (
        "Shrunk divergence reproducer — replayed by "
        "tests/testing/test_repros.py under REPRO_CHECK_INVARIANTS=1."
    )
    if note:
        header += f"\n{note}"
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(scenario.to_toml(header=header))
    pytest_line = (
        f'pytest.param("{name}", id="{fingerprint}")'
        "  # auto-collected by tests/testing/test_repros.py"
    )
    return path, pytest_line


def interesting_divergence(
    combos=None,
    reference=None,
    plant=None,
) -> Callable[[ScenarioConfig], bool]:
    """The standard predicate: ``diff_scenario(...) is not None``."""
    from repro.testing import differential

    kwargs = {}
    if combos is not None:
        kwargs["combos"] = combos
    if reference is not None:
        kwargs["reference"] = reference

    def predicate(scenario: ScenarioConfig) -> bool:
        return (
            differential.diff_scenario(scenario, plant=plant, **kwargs)
            is not None
        )

    return predicate
