"""Seeded, size-bounded scenario fuzzer.

Generates *valid* :class:`~repro.scenario.config.ScenarioConfig`s by
sampling every axis the registries expose — schemes (including Killi
ratios and strong-code variants), workloads, fault densities (via the
operating voltage), experiment seeds, machine shapes — under a hard
size bound, so each fuzzed scenario stays cheap enough to run through
all six engine × substrate combinations.

Generation is *index-stable*: :meth:`ScenarioFuzzer.scenario` derives
example ``i`` from ``(fuzzer seed, i)`` alone, so a failing example
reported as ``--seed S`` example ``i`` regenerates identically no
matter how many examples ran before it.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.scenario.config import (
    FaultSection,
    GpuSection,
    ScenarioConfig,
    SchemeSection,
    WorkloadSection,
)
from repro.scenario.registries import WORKLOAD_REGISTRY

__all__ = ["ScenarioFuzzer"]

#: Scheme pool: the full Figure 4/5 axis plus a strong-code variant.
#: Plain-Killi ratios are over-weighted — they exercise the DFH/ECC
#: machinery the batched interpreter models.
_SCHEMES = (
    "baseline",
    "dected",
    "flair",
    "msecc",
    "killi_1:8",
    "killi_1:8",
    "killi_1:64",
    "killi_1:64",
    "killi_1:256",
    "killi+olsc-t11_1:8",
)

#: Schemes whose write-back variant is a supported configuration
#: (strong-code Killi write-back raises by design).
_WRITE_BACK_OK = ("baseline", "dected", "flair", "msecc") + tuple(
    s for s in _SCHEMES if s.startswith("killi_1:")
)

#: Operating-voltage grid around the paper's LV point (0.625): lower
#: voltages densify the active fault population, the nominal end
#: leaves it empty.  0.575 is the fault-map floor — anything below
#: raises at scheme construction, not at validate().
_VOLTAGES = (0.575, 0.575, 0.6, 0.625, 0.625, 0.65, 0.7)

#: Small machine shapes (l2_size_bytes, l2_associativity).  Small L2s
#: dominate the pool deliberately: more cross-set contention per
#: access, faster differential runs.
_SMALL_L2 = (
    (64 * 1024, 4),
    (64 * 1024, 8),
    (64 * 1024, 16),
    (128 * 1024, 8),
    (128 * 1024, 16),
    (256 * 1024, 16),
)


class ScenarioFuzzer:
    """Random valid scenarios from one integer seed.

    Parameters
    ----------
    seed:
        Root seed; every example is a pure function of ``(seed, index)``.
    max_accesses:
        Upper bound on ``accesses_per_cu`` (the size bound).
    workloads / schemes:
        Optional axis restrictions (default: the built-in pools).
    """

    def __init__(
        self,
        seed: int = 0,
        max_accesses: int = 400,
        workloads: Optional[List[str]] = None,
        schemes: Optional[List[str]] = None,
    ):
        if max_accesses < 1:
            raise ValueError("max_accesses must be positive")
        self.seed = int(seed)
        self.max_accesses = int(max_accesses)
        self.workloads = (
            list(workloads) if workloads is not None else WORKLOAD_REGISTRY.names()
        )
        self.schemes = list(schemes) if schemes is not None else list(_SCHEMES)

    def scenario(self, index: int) -> ScenarioConfig:
        """Example ``index``: deterministic in ``(self.seed, index)``."""
        rng = random.Random(self.seed * 1_000_003 + index)
        for _ in range(32):
            candidate = self._draw(rng)
            try:
                candidate.gpu.to_gpu_config()  # geometry sanity
                return candidate.validate()
            except (ValueError, KeyError):
                continue  # resample: invalid knob combination
        raise RuntimeError(
            f"fuzzer could not produce a valid scenario at index {index} "
            f"(seed {self.seed}); the generator pools are misconfigured"
        )

    def generate(self, n: int, start: int = 0) -> Iterator[ScenarioConfig]:
        """``n`` scenarios starting at example index ``start``."""
        for index in range(start, start + n):
            yield self.scenario(index)

    # -- sampling ----------------------------------------------------------

    def _draw(self, rng: random.Random) -> ScenarioConfig:
        scheme_name = rng.choice(self.schemes)
        write_back = (
            scheme_name in _WRITE_BACK_OK and rng.random() < 0.15
        )
        workload = rng.choice(self.workloads)
        accesses = rng.randint(8, self.max_accesses)
        voltage = rng.choice(_VOLTAGES)
        fault_seed = rng.randrange(100)
        gpu = self._draw_gpu(rng)
        return ScenarioConfig(
            scheme=SchemeSection(name=scheme_name, write_back=write_back),
            workload=WorkloadSection(name=workload, accesses_per_cu=accesses),
            fault=FaultSection(voltage=voltage, seed=fault_seed),
            gpu=gpu,
        )

    def _draw_gpu(self, rng: random.Random) -> GpuSection:
        if rng.random() < 0.25:
            # The paper's Table 3 machine, unchanged.
            return GpuSection()
        size, assoc = rng.choice(_SMALL_L2)
        n_sets = size // (64 * assoc)
        banks = rng.choice([b for b in (1, 2, 4, 8) if b <= n_sets])
        return GpuSection(
            n_cus=rng.choice((1, 2, 4, 8)),
            l2_size_bytes=size,
            l2_associativity=assoc,
            l2_banks=banks,
            model_bank_conflicts=rng.random() < 0.3,
        )
