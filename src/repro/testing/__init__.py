"""repro.testing — the oracle harness: fuzzer, differential executor,
shrinker and invariant layer.

Exports are lazy (PEP 562): :mod:`repro.cache.core` imports the
invariant helpers from here at module-import time, while the
differential executor imports the whole simulator stack — an eager
``from .differential import *`` here would close that cycle.  Only
:mod:`repro.testing.invariants` (stdlib-only, imports nothing from
``repro``) is safe to import eagerly.
"""

from __future__ import annotations

from repro.testing.invariants import (
    INVARIANTS_ENV,
    InvariantError,
    check_cache_invariants,
    check_set_invariants,
    invariants_enabled,
)

__all__ = [
    # invariants (eager)
    "INVARIANTS_ENV",
    "InvariantError",
    "check_cache_invariants",
    "check_set_invariants",
    "invariants_enabled",
    # generator
    "ScenarioFuzzer",
    # differential executor
    "COMBOS",
    "REFERENCE",
    "PLANTS",
    "Observation",
    "Divergence",
    "run_scenario",
    "diff_scenario",
    "snapshot_diff",
    "last_context",
    # shrinker
    "shrink",
    "total_accesses",
    "write_reproducer",
    "DEFAULT_REPRO_DIR",
]

_LAZY = {
    "ScenarioFuzzer": "repro.testing.generator",
    "COMBOS": "repro.testing.differential",
    "REFERENCE": "repro.testing.differential",
    "PLANTS": "repro.testing.differential",
    "Observation": "repro.testing.differential",
    "Divergence": "repro.testing.differential",
    "run_scenario": "repro.testing.differential",
    "diff_scenario": "repro.testing.differential",
    "snapshot_diff": "repro.testing.differential",
    "last_context": "repro.testing.differential",
    "shrink": "repro.testing.shrinker",
    "total_accesses": "repro.testing.shrinker",
    "write_reproducer": "repro.testing.shrinker",
    "DEFAULT_REPRO_DIR": "repro.testing.shrinker",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
