"""Armable runtime invariants for the cache substrates and bulk tiers.

The checks here are the *structural* half of the correctness contract
the differential executor (:mod:`repro.testing.differential`) pins
behaviourally: counters must agree with scans, LRU state must stay a
permutation, the lookup index must never alias, and the batched
interpreter's simulation window must never draw shared RNG.

They are armed by the ``REPRO_CHECK_INVARIANTS`` environment variable
(read once per cache/interpreter construction, like
``REPRO_SUBSTRATE``).  When the flag is off the hot paths carry no
check at all — :meth:`repro.cache.core.CacheModel._arm_invariants`
wraps the access methods per instance only when arming, and the bulk
commit points guard on a single attribute — which the
``fuzz_overhead`` microbench pins to <2% overhead.

This module intentionally imports nothing from the rest of the
package (stdlib only): it sits *below* :mod:`repro.cache.core` in the
import graph so the transaction layer can arm itself without a cycle.
"""

from __future__ import annotations

import os

__all__ = [
    "INVARIANTS_ENV",
    "InvariantError",
    "invariants_enabled",
    "check_set_invariants",
    "check_cache_invariants",
]

#: Environment variable arming the runtime invariant checks.
INVARIANTS_ENV = "REPRO_CHECK_INVARIANTS"

_FALSY = {"", "0", "false", "off", "no"}


def invariants_enabled() -> bool:
    """True when ``REPRO_CHECK_INVARIANTS`` is set to a truthy value.

    Read at cache/interpreter construction time, not per access, so
    flipping the variable mid-process affects only caches built
    afterwards.
    """
    return os.environ.get(INVARIANTS_ENV, "").strip().lower() not in _FALSY


class InvariantError(AssertionError):
    """A structural invariant of the cache state was violated.

    Subclasses ``AssertionError`` so existing ``pytest.raises``-style
    handling and ``assert``-oriented tooling treat it uniformly.
    """


def _fail(message: str) -> None:
    raise InvariantError(f"[{INVARIANTS_ENV}] {message}")


def check_set_invariants(cache, set_index: int) -> None:
    """Check one set's structural invariants on either substrate.

    Validates, through the substrate-agnostic tag-store API only:

    - the maintained ``valid_in_set`` / ``disabled_in_set`` counters
      against a way scan;
    - disabled implies invalid (``disable`` invalidates first);
    - no tag aliasing: every valid way's line number looks up back to
      exactly that way (the lookup index and the tag arrays agree, and
      a line can never be resident twice);
    - the LRU recency order is a permutation of the ways.

    O(associativity) per call (plus an O(log assoc) sort inside
    ``recency_order`` on the SoA substrate) — cheap enough to run per
    access when armed.
    """
    tags = cache.tags
    geometry = cache.geometry
    assoc = geometry.associativity
    n_sets = geometry.n_sets
    line_bytes = geometry.line_bytes
    n_valid = 0
    n_disabled = 0
    for way in range(assoc):
        valid = tags.is_valid(set_index, way)
        disabled = tags.is_disabled(set_index, way)
        if valid and disabled:
            _fail(f"set {set_index} way {way} is both valid and disabled")
        if valid:
            n_valid += 1
            line_no = tags.tag_at(set_index, way) * n_sets + set_index
            hit = tags.lookup(line_no * line_bytes)
            if hit != way:
                _fail(
                    f"tag aliasing: set {set_index} way {way} holds line "
                    f"{line_no} but lookup resolves it to way {hit!r}"
                )
        if disabled:
            n_disabled += 1
    if tags.valid_in_set[set_index] != n_valid:
        _fail(
            f"set {set_index}: valid_in_set counter "
            f"{tags.valid_in_set[set_index]} != scanned {n_valid}"
        )
    if tags.disabled_in_set[set_index] != n_disabled:
        _fail(
            f"set {set_index}: disabled_in_set counter "
            f"{tags.disabled_in_set[set_index]} != scanned {n_disabled}"
        )
    order = list(cache.lru.recency_order(set_index))
    if sorted(order) != list(range(assoc)):
        _fail(
            f"set {set_index}: LRU recency order {order} is not a "
            f"permutation of 0..{assoc - 1}"
        )


def check_cache_invariants(cache) -> None:
    """Check every set of a cache, plus the store-wide counters.

    Used at coarse-grained points (tests, commit boundaries on small
    caches); the per-access armed path uses
    :func:`check_set_invariants` on the touched set only.
    """
    for set_index in range(cache.geometry.n_sets):
        check_set_invariants(cache, set_index)
    tags = cache.tags
    verify = getattr(tags, "verify", None)
    if verify is not None:
        try:
            verify()
        except AssertionError as exc:  # normalise substrate-side failures
            raise InvariantError(f"[{INVARIANTS_ENV}] {exc}") from exc
    n_valid = sum(
        1
        for set_index in range(cache.geometry.n_sets)
        for way in range(cache.geometry.associativity)
        if tags.is_valid(set_index, way)
    )
    if sum(tags.valid_in_set) != n_valid:
        _fail(
            f"cache-wide valid count {sum(tags.valid_in_set)} != "
            f"scanned {n_valid}"
        )
