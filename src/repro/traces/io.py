"""Trace persistence.

Saving a generated trace lets experiments re-run against byte-identical
traffic (and lets users bring their own traces from real tools: any
per-CU ``(addrs, is_store, gaps)`` triple loads into the simulator).

Format: a single ``.npz`` with three arrays per CU plus a name field —
portable, compressed, and loadable without this package.
"""

from __future__ import annotations

import numpy as np

from repro.traces.base import CuStream, Trace

__all__ = ["save_trace", "load_trace"]


def save_trace(trace: Trace, path: str) -> None:
    """Write ``trace`` to ``path`` as a compressed .npz archive."""
    arrays = {"name": np.array(trace.name), "n_cus": np.array(len(trace.streams))}
    for cu, stream in enumerate(trace.streams):
        arrays[f"addrs_{cu}"] = np.asarray(stream.addrs, dtype=np.int64)
        arrays[f"is_store_{cu}"] = np.asarray(stream.is_store, dtype=bool)
        arrays[f"gaps_{cu}"] = np.asarray(stream.gaps, dtype=np.int64)
    np.savez_compressed(path, **arrays)


def load_trace(path: str) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as archive:
        try:
            name = str(archive["name"])
            n_cus = int(archive["n_cus"])
        except KeyError as exc:
            raise ValueError(f"{path} is not a saved trace archive") from exc
        streams = []
        for cu in range(n_cus):
            streams.append(
                CuStream(
                    addrs=archive[f"addrs_{cu}"],
                    is_store=archive[f"is_store_{cu}"],
                    gaps=archive[f"gaps_{cu}"],
                )
            )
    return Trace(name=name, streams=streams)
