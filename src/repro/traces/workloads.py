"""The ten named HPC GPGPU workloads (paper Section 5.1).

The paper names only XSBench and FFT explicitly (its two outliers);
the remaining eight are drawn from the same DOE proxy-app family the
PathForward program (which funded the paper) evaluates.  Parameters
are tuned to reproduce the behaviour classes Figures 4/5 rely on:

- **FFT** — repeated partitioned sweeps over a footprint just under
  the 2MB L2: near-perfect reuse at full capacity, a steep miss cliff
  when capacity is lost.  The paper's most ECC-cache-sensitive app
  (up to 5% slowdown, 35% MPKI delta at 1:256).
- **XSBench** — irregular random lookups over a footprint around the
  L2 capacity with a modest hot set; memory-bound and
  capacity-sensitive (2.4% / 10% in the paper).
- **SNAP, HPGMG** — streaming over footprints well beyond capacity:
  memory-bound (MPKI > 100) but *insensitive* — they miss regardless.
- **LULESH, CoMD, miniFE, Pennant, Nekbone, miniAMR** — compute-bound
  (MPKI < 50) mixes with footprints comfortably inside the L2.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.scenario.registries import WORKLOAD_REGISTRY
from repro.traces.base import Trace
from repro.traces.generators import WorkloadSpec, generate_trace
from repro.metrics import METRICS
from repro.utils.rng import RngFactory

__all__ = [
    "WORKLOADS",
    "register_workload",
    "trace_fingerprint",
    "workload_names",
    "workload_trace",
    "workload_trace_memo",
]

_MB = 1024 * 1024

#: name -> spec, in the figures' display order.  Populated through
#: :func:`register_workload`, which also places each generator in
#: :data:`repro.scenario.registries.WORKLOAD_REGISTRY` — the axis the
#: scenario layer (and any third-party workload plugin) resolves.
WORKLOADS: Dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Register a workload generator under ``spec.name``.

    Third-party workloads call this (or ``WORKLOAD_REGISTRY.register``
    directly with a ``(name, accesses_per_cu, n_cus, rng) -> Trace``
    callable) to become addressable from scenarios and the CLI.
    """
    WORKLOAD_REGISTRY.register(spec.name, spec)
    WORKLOADS[spec.name] = spec
    return spec


_BUILTIN_SPECS = [
        WorkloadSpec(
            name="xsbench",
            footprint_bytes=int(2.4 * _MB),
            sweep_fraction=0.05,
            hot_fraction=0.05,
            hot_weight=0.35,
            store_fraction=0.05,
            mean_gap=2.0,
            description="irregular cross-section lookups; memory-bound, capacity-sensitive",
        ),
        WorkloadSpec(
            name="fft",
            footprint_bytes=int(1.96 * _MB),
            sweep_fraction=0.97,
            hot_fraction=0.02,
            hot_weight=0.5,
            store_fraction=0.3,
            mean_gap=4.0,
            description="butterfly sweeps at the L2 capacity edge; steep miss cliff",
        ),
        WorkloadSpec(
            name="lulesh",
            footprint_bytes=1 * _MB,
            sweep_fraction=0.5,
            hot_fraction=0.15,
            hot_weight=0.6,
            store_fraction=0.25,
            mean_gap=15.0,
            description="hydrodynamics stencil; compute-bound",
        ),
        WorkloadSpec(
            name="comd",
            footprint_bytes=int(0.75 * _MB),
            sweep_fraction=0.3,
            hot_fraction=0.2,
            hot_weight=0.7,
            store_fraction=0.2,
            mean_gap=20.0,
            description="molecular dynamics neighbour lists; compute-bound, hot-set heavy",
        ),
        WorkloadSpec(
            name="minife",
            footprint_bytes=int(1.5 * _MB),
            sweep_fraction=0.6,
            hot_fraction=0.1,
            hot_weight=0.5,
            store_fraction=0.15,
            mean_gap=12.0,
            description="implicit finite elements (SpMV); compute-bound",
        ),
        WorkloadSpec(
            name="snap",
            footprint_bytes=6 * _MB,
            sweep_fraction=0.9,
            hot_fraction=0.02,
            hot_weight=0.3,
            store_fraction=0.3,
            mean_gap=3.0,
            description="discrete-ordinates transport sweeps over 3x L2; streaming, memory-bound",
        ),
        WorkloadSpec(
            name="pennant",
            footprint_bytes=int(1.25 * _MB),
            sweep_fraction=0.4,
            hot_fraction=0.1,
            hot_weight=0.55,
            store_fraction=0.2,
            mean_gap=10.0,
            description="unstructured mesh hydro; compute-bound",
        ),
        WorkloadSpec(
            name="hpgmg",
            footprint_bytes=5 * _MB,
            sweep_fraction=0.8,
            hot_fraction=0.05,
            hot_weight=0.4,
            store_fraction=0.3,
            mean_gap=4.0,
            description="multigrid level sweeps beyond L2; memory-bound",
        ),
        WorkloadSpec(
            name="nekbone",
            footprint_bytes=int(0.5 * _MB),
            sweep_fraction=0.4,
            hot_fraction=0.25,
            hot_weight=0.75,
            store_fraction=0.15,
            mean_gap=18.0,
            description="spectral-element CG; compute-bound, small working set",
        ),
        WorkloadSpec(
            name="miniamr",
            footprint_bytes=2 * _MB,
            sweep_fraction=0.55,
            hot_fraction=0.08,
            hot_weight=0.45,
            store_fraction=0.25,
            mean_gap=8.0,
            description="adaptive mesh refinement blocks around L2 capacity",
        ),
    ]

for _spec in _BUILTIN_SPECS:
    register_workload(_spec)
del _spec


def workload_names() -> List[str]:
    """All registered workload names, built-ins first in display order."""
    return WORKLOAD_REGISTRY.names()


def workload_trace(
    name: str,
    accesses_per_cu: int,
    n_cus: int = 8,
    rng: np.random.Generator | None = None,
) -> Trace:
    """Generate the named workload's trace."""
    try:
        entry = WORKLOAD_REGISTRY.resolve(name)
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {workload_names()}") from None
    if isinstance(entry, WorkloadSpec):
        return generate_trace(entry, accesses_per_cu, n_cus=n_cus, rng=rng)
    return entry(name, accesses_per_cu, n_cus, rng)


# -- fingerprint-keyed trace memoization -------------------------------------

#: fingerprint -> Trace, insertion-ordered (oldest evicted first).
_TRACE_MEMO: Dict[tuple, Trace] = {}
_TRACE_MEMO_MAX = 64


def trace_fingerprint(
    name: str, accesses_per_cu: int, n_cus: int, seed: int
) -> tuple:
    """Content key of a deterministic workload trace.

    Captures everything the generated trace is a pure function of: the
    shape arguments, the seed (the RNG stream is derived from it), and
    the *generative identity* of whatever is currently registered under
    ``name`` — the spec's full parameter tuple for built-in/declarative
    workloads, the function's module-qualified name for plugin
    generators.  Re-registering a workload with different parameters
    therefore changes the fingerprint, so stale traces can never be
    served.
    """
    try:
        entry = WORKLOAD_REGISTRY.resolve(name)
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {workload_names()}"
        ) from None
    if isinstance(entry, WorkloadSpec):
        identity: tuple = ("spec",) + tuple(
            getattr(entry, field) for field in entry.__dataclass_fields__
        )
    else:
        identity = (
            "callable",
            getattr(entry, "__module__", ""),
            getattr(entry, "__qualname__", repr(entry)),
        )
    return (name, identity, accesses_per_cu, n_cus, seed)


def workload_trace_memo(
    name: str, accesses_per_cu: int, n_cus: int = 8, seed: int = 42
) -> Trace:
    """Memoized :func:`workload_trace` with the canonical RNG stream.

    Every scheme cell of a campaign replays the same (workload, seed)
    trace; generating it once per fingerprint (rather than once per
    cell) removes the dominant setup cost of wide sweeps.  The RNG is
    derived exactly as the serial runners always derived it —
    ``RngFactory(seed).stream(f"trace/{name}")`` — so memoized and
    freshly generated traces are bit-identical.  Traces are treated as
    read-only by every engine (columns are copied into flat arrays).
    """
    key = trace_fingerprint(name, accesses_per_cu, n_cus, seed)
    trace = _TRACE_MEMO.get(key)
    if trace is not None:
        METRICS.incr("traces.memo_hits")
        return trace
    METRICS.incr("traces.memo_misses")
    trace = workload_trace(
        name,
        accesses_per_cu,
        n_cus=n_cus,
        rng=RngFactory(seed).stream(f"trace/{name}"),
    )
    if len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
        del _TRACE_MEMO[next(iter(_TRACE_MEMO))]
    _TRACE_MEMO[key] = trace
    return trace
