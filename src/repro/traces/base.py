"""Trace containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["CuStream", "Trace"]


@dataclass
class CuStream:
    """One CU's in-order memory stream.

    Streams are read-only once built (the engines never mutate them),
    so the normalised access columns both inner-loop families need —
    plain-int/bool Python lists for the scalar loops, int64/bool numpy
    arrays plus the summed compute gap for the vectorized stages — are
    built once on first use and cached on the stream.  Every engine
    then reads the *same* normalised values instead of re-deriving
    them per ``run``, which pins the conversions bit-identical by
    construction.  The L1 pre-filter additionally memoizes its pure
    outputs here (``_l1_filter_cache``, managed by
    :mod:`repro.gpu.l1filter`): campaign cells replaying the same
    stream through a fresh L1 reuse the filtered residue instead of
    re-simulating it.

    Attributes
    ----------
    addrs:
        Byte addresses (int64), one per memory operation.
    is_store:
        True for stores.
    gaps:
        Compute cycles (and, one-for-one, non-memory instructions)
        executed before each memory operation.
    """

    addrs: np.ndarray
    is_store: np.ndarray
    gaps: np.ndarray
    _scalar_cols: Optional[Tuple[list, list, list]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _array_cols: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )
    _l1_filter_cache: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self):
        if not (len(self.addrs) == len(self.is_store) == len(self.gaps)):
            raise ValueError("stream arrays must have equal length")

    def __len__(self) -> int:
        return len(self.addrs)

    @property
    def instructions(self) -> int:
        """Instructions this stream represents: gaps + memory ops."""
        return int(np.sum(self.gaps)) + len(self.addrs)

    def scalar_columns(self) -> Tuple[list, list, list]:
        """``(addrs, is_store, gaps)`` as plain Python lists, cached.

        Exactly the per-access normalisation the scalar loop used to
        rebuild on every run (``int``/``bool`` per element).
        """
        cols = self._scalar_cols
        if cols is None:
            cols = (
                [int(a) for a in self.addrs],
                [bool(s) for s in self.is_store],
                [int(g) for g in self.gaps],
            )
            self._scalar_cols = cols
        return cols

    def array_columns(self):
        """``(addrs int64, is_store bool, gap_total int)``, cached.

        The vectorized/batched stages' canonical view: numpy columns
        plus the closed-form summed compute gap.
        """
        cols = self._array_cols
        if cols is None:
            addr_np = np.asarray(self.addrs, dtype=np.int64)
            store_np = np.asarray(self.is_store, dtype=bool)
            cols = (
                addr_np,
                store_np,
                int(np.sum(np.asarray(self.gaps, dtype=np.int64))),
            )
            self._array_cols = cols
        return cols


@dataclass
class Trace:
    """A kernel's traffic: one stream per CU."""

    name: str
    streams: List[CuStream]

    @property
    def total_accesses(self) -> int:
        return sum(len(s) for s in self.streams)

    @property
    def instructions(self) -> int:
        return sum(s.instructions for s in self.streams)
