"""Trace containers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["CuStream", "Trace"]


@dataclass
class CuStream:
    """One CU's in-order memory stream.

    Attributes
    ----------
    addrs:
        Byte addresses (int64), one per memory operation.
    is_store:
        True for stores.
    gaps:
        Compute cycles (and, one-for-one, non-memory instructions)
        executed before each memory operation.
    """

    addrs: np.ndarray
    is_store: np.ndarray
    gaps: np.ndarray

    def __post_init__(self):
        if not (len(self.addrs) == len(self.is_store) == len(self.gaps)):
            raise ValueError("stream arrays must have equal length")

    def __len__(self) -> int:
        return len(self.addrs)

    @property
    def instructions(self) -> int:
        """Instructions this stream represents: gaps + memory ops."""
        return int(np.sum(self.gaps)) + len(self.addrs)


@dataclass
class Trace:
    """A kernel's traffic: one stream per CU."""

    name: str
    streams: List[CuStream]

    @property
    def total_accesses(self) -> int:
        return sum(len(s) for s in self.streams)

    @property
    def instructions(self) -> int:
        return sum(s.instructions for s in self.streams)
