"""Parameterised synthetic GPGPU trace generation.

A workload is described by a small set of cache-behaviour parameters
(footprint, sweep/random mix, hot-set locality, store fraction,
compute intensity) and compiled into per-CU address streams:

- **sweep** accesses stream sequentially through the (shared)
  footprint, each CU starting at its own offset — the GPU idiom of
  partitioned grid sweeps.  A footprint just under the L2 capacity
  makes repeated sweeps hit ~100% in steady state but *extremely*
  sensitive to lost capacity (the FFT behaviour in the paper); a
  footprint well above capacity streams and misses regardless (SNAP).
- **random** accesses draw from a hot-set/cold-set mixture over the
  footprint, modelling irregular lookups (XSBench's cross-section
  tables).
- **gaps** (compute cycles between memory ops) set the compute- vs
  memory-bound character and, one-for-one, the non-memory instruction
  count used for MPKI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.base import CuStream, Trace

__all__ = ["WorkloadSpec", "generate_trace"]

_LINE = 64  # address alignment granule


@dataclass(frozen=True)
class WorkloadSpec:
    """Cache-behaviour description of one synthetic workload.

    Parameters
    ----------
    name:
        Workload name (matches the paper's Figure 4/5 x-axis).
    footprint_bytes:
        Total shared data footprint.
    sweep_fraction:
        Fraction of accesses that stream sequentially.
    hot_fraction:
        Fraction of the footprint forming the hot set.
    hot_weight:
        Probability a random access targets the hot set.
    store_fraction:
        Fraction of accesses that are stores.
    mean_gap:
        Mean compute cycles (= non-memory instructions) between memory
        operations; low values make the workload memory-bound.
    description:
        One-line behaviour summary.
    """

    name: str
    footprint_bytes: int
    sweep_fraction: float = 0.5
    hot_fraction: float = 0.1
    hot_weight: float = 0.5
    store_fraction: float = 0.15
    mean_gap: float = 10.0
    description: str = ""

    def __post_init__(self):
        if self.footprint_bytes < _LINE:
            raise ValueError("footprint must hold at least one line")
        for field_name in ("sweep_fraction", "hot_fraction", "hot_weight", "store_fraction"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1]")
        if self.mean_gap < 0:
            raise ValueError("mean_gap must be non-negative")


def generate_trace(
    spec: WorkloadSpec,
    accesses_per_cu: int,
    n_cus: int = 8,
    rng: np.random.Generator | None = None,
) -> Trace:
    """Compile a :class:`WorkloadSpec` into a :class:`Trace`.

    Deterministic given the rng state; each CU gets an independent
    stream over the shared footprint.
    """
    if accesses_per_cu < 1:
        raise ValueError("accesses_per_cu must be positive")
    if n_cus < 1:
        raise ValueError("n_cus must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)

    n_lines = max(1, spec.footprint_bytes // _LINE)
    hot_lines = max(1, int(n_lines * spec.hot_fraction))

    streams = []
    for cu in range(n_cus):
        n = accesses_per_cu
        is_sweep = rng.random(n) < spec.sweep_fraction

        # Sweep component: a cursor advancing one line per sweep
        # access, starting at this CU's partition offset.
        start_line = (cu * n_lines) // max(1, n_cus)
        sweep_steps = np.cumsum(is_sweep.astype(np.int64))
        sweep_lines = (start_line + sweep_steps) % n_lines

        # Random component: hot/cold mixture.
        go_hot = rng.random(n) < spec.hot_weight
        hot_addrs = rng.integers(0, hot_lines, size=n, dtype=np.int64)
        cold_addrs = rng.integers(0, n_lines, size=n, dtype=np.int64)
        random_lines = np.where(go_hot, hot_addrs, cold_addrs)

        lines = np.where(is_sweep, sweep_lines, random_lines)
        addrs = lines * _LINE

        is_store = rng.random(n) < spec.store_fraction
        if spec.mean_gap > 0:
            # Geometric gaps with the requested mean.
            gaps = rng.geometric(1.0 / (spec.mean_gap + 1.0), size=n) - 1
        else:
            gaps = np.zeros(n, dtype=np.int64)
        streams.append(
            CuStream(
                addrs=addrs.astype(np.int64),
                is_store=is_store,
                gaps=gaps.astype(np.int64),
            )
        )
    return Trace(name=spec.name, streams=streams)
