"""Synthetic GPGPU workload traces.

The paper evaluates ten proprietary HPC GPGPU binaries on gem5; this
package substitutes parameterised synthetic trace generators (see
DESIGN.md).  Each named workload is a :class:`WorkloadSpec` tuned to
land in the paper's behaviour classes — compute-bound (L2 MPKI < 50)
vs memory-bound (MPKI > 100), capacity-sensitive (XSBench, FFT) vs
insensitive — because Figures 4/5 depend on those classes, not on
application semantics.
"""

from repro.traces.base import CuStream, Trace
from repro.traces.generators import WorkloadSpec, generate_trace
from repro.traces.io import load_trace, save_trace
from repro.traces.workloads import (
    WORKLOADS,
    trace_fingerprint,
    workload_names,
    workload_trace,
    workload_trace_memo,
)

__all__ = [
    "CuStream",
    "Trace",
    "WorkloadSpec",
    "generate_trace",
    "WORKLOADS",
    "workload_names",
    "trace_fingerprint",
    "workload_trace",
    "workload_trace_memo",
    "save_trace",
    "load_trace",
]
