"""Generic MBIST-pre-characterised ECC protection scheme.

Models the whole family of "run MBIST at the LV transition, disable
lines with more faults than the per-line ECC can correct" techniques.
Because the fault population is known exactly (that is what MBIST
buys), enabled lines are always corrected successfully and the only
performance effect is the capacity lost to disabled lines — precisely
how the paper evaluates DECTED, FLAIR and MS-ECC.
"""

from __future__ import annotations

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.hooks import (
    BEHAVIOURAL_HOOKS,
    AccessOutcome,
    ProtectionScheme,
    hooks_unchanged,
)
from repro.core.layout import LineLayout
from repro.faults.fault_map import FaultMap

__all__ = ["OracleEccScheme"]


class OracleEccScheme(ProtectionScheme):
    """MBIST + per-line t-error-correcting ECC.

    Parameters
    ----------
    geometry:
        Protected cache geometry.
    fault_map:
        Persistent fault map (LineLayout coordinates).
    voltage:
        Normalized LV operating point.
    correct_t:
        ECC correction capability per line; lines with more faults are
        disabled up front.
    count_checkbits:
        Whether faults in the checkbit region count toward the
        per-line fault total (True for SECDED/DECTED whose checkbits
        sit in the same LV array; MS-ECC's OLSC checkbits are modelled
        as dedicated storage and excluded).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        fault_map: FaultMap,
        voltage: float,
        correct_t: int,
        count_checkbits: bool = True,
    ):
        super().__init__()
        if correct_t < 0:
            raise ValueError("correct_t must be >= 0")
        self.geometry = geometry
        self.fault_map = fault_map
        self.voltage = voltage
        self.correct_t = correct_t
        self.count_checkbits = count_checkbits
        layout = LineLayout(data_bits=geometry.line_bits)
        self.layout = layout

        counts = fault_map.fault_counts(voltage, 0, layout.data_bits)
        if count_checkbits:
            counts = counts + fault_map.fault_counts(
                voltage, layout.check_offset, layout.total_bits
            )
        self.fault_counts = counts
        # Per-set batched-replay eligibility: line ids are
        # set * assoc + way, so a row-major reshape groups each set's
        # ways.  The fault population is static, so this never changes.
        by_set = counts.reshape(geometry.n_sets, geometry.associativity)
        self._set_has_faults = (by_set > 0).any(axis=1)
        # Ways serving CORRECTED hits: faulty but within the ECC budget
        # (over-budget ways are disabled at attach and never hit).
        self._corrected_ways = [
            frozenset(int(w) for w in np.flatnonzero((row > 0) & (row <= correct_t)))
            if has
            else None
            for row, has in zip(by_set, self._set_has_faults)
        ]
        # May this instance's sets replay through the batched kernel?
        # True only when no subclass changed a hook the kernel would
        # have to re-model: this class owns the hit path, everything
        # else must still be the base no-op.  (FLAIR's training-mode
        # way filtering is gated separately through ``filters_ways``,
        # which blocks the cache-level probe before the scheme is
        # consulted — hence ``is_line_usable`` is not probed here.)
        self._replay_hooks_clean = hooks_unchanged(
            type(self),
            hooks=tuple(h for h in BEHAVIOURAL_HOOKS if h != "is_line_usable"),
            owners={
                "on_read_hit": OracleEccScheme,
                "hit_replay_info": OracleEccScheme,
            },
        )

    def attach(self, cache) -> None:
        super().attach(cache)
        self._disable_overfaulted()

    def _disable_overfaulted(self) -> None:
        """MBIST result: disable every line with more than t faults."""
        geometry = self.geometry
        for line in np.nonzero(self.fault_counts > self.correct_t)[0]:
            set_index, way = divmod(int(line), geometry.associativity)
            self.cache.tags.disable(set_index, way)

    def on_read_hit(self, set_index: int, way: int) -> AccessOutcome:
        line_id = self.geometry.line_id(set_index, way)
        if self.fault_counts[line_id] > 0:
            return AccessOutcome.CORRECTED
        return AccessOutcome.CLEAN

    def hit_replay_info(self, set_index: int, way: int):
        # The fault population is static (that is what MBIST buys), so
        # every hit replays identically — unless a subclass changed the
        # hit path (e.g. the functional SECDED variant), in which case
        # it must opt in on its own.
        if type(self).on_read_hit is not OracleEccScheme.on_read_hit:
            return None
        line_id = self.geometry.line_id(set_index, way)
        return (bool(self.fault_counts[line_id] > 0), 0, 0)

    def set_replay_info(self, set_index: int):
        """Fault-free sets are scheme-inert for the whole run.

        MBIST characterised the (static) fault population up front, so
        a set whose lines all count zero faults behaves exactly like
        the unprotected baseline forever: every hit is CLEAN with no
        stat side effects, fills/write hits/evictions are no-ops, no
        way is disabled or filtered, and no shared structure exists
        that another set's traffic could perturb.  Trivially monotone.

        Subclasses that change any behavioural hook opt out
        conservatively (FLAIR's training-mode way filtering is gated
        separately through :meth:`filters_ways`, which blocks the
        cache-level probe before this one runs).
        """
        if not self._replay_hooks_clean:
            return None
        if self._set_has_faults[set_index]:
            return None
        return (False, 0, 0)

    def set_replay_profile(self, set_index: int):
        """Every set replays: the fault population is fully static.

        Fault-free sets are uniform CLEAN; sets with correctable
        faulty ways serve those ways' hits as CORRECTED
        (``corrected_ways``); over-budget ways were disabled at attach
        (invalid forever, excluded from the fill order by
        ``export_set_state``).  No RNG, no shared structures, no state
        transitions — no guard needed.
        """
        if not self._replay_hooks_clean:
            return None
        return ((False, 0, 0), self._corrected_ways[set_index], None)

    def on_reset(self) -> None:
        # The cache just re-enabled every way; MBIST runs again for the
        # (unchanged) operating point and disables the same lines.
        self._disable_overfaulted()

    def disabled_fraction(self) -> float:
        """Fraction of lines the MBIST pass disabled."""
        return float(np.count_nonzero(self.fault_counts > self.correct_t)) / len(
            self.fault_counts
        )
