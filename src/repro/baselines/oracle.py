"""Generic MBIST-pre-characterised ECC protection scheme.

Models the whole family of "run MBIST at the LV transition, disable
lines with more faults than the per-line ECC can correct" techniques.
Because the fault population is known exactly (that is what MBIST
buys), enabled lines are always corrected successfully and the only
performance effect is the capacity lost to disabled lines — precisely
how the paper evaluates DECTED, FLAIR and MS-ECC.
"""

from __future__ import annotations

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.protection import AccessOutcome, ProtectionScheme
from repro.core.layout import LineLayout
from repro.faults.fault_map import FaultMap

__all__ = ["OracleEccScheme"]


class OracleEccScheme(ProtectionScheme):
    """MBIST + per-line t-error-correcting ECC.

    Parameters
    ----------
    geometry:
        Protected cache geometry.
    fault_map:
        Persistent fault map (LineLayout coordinates).
    voltage:
        Normalized LV operating point.
    correct_t:
        ECC correction capability per line; lines with more faults are
        disabled up front.
    count_checkbits:
        Whether faults in the checkbit region count toward the
        per-line fault total (True for SECDED/DECTED whose checkbits
        sit in the same LV array; MS-ECC's OLSC checkbits are modelled
        as dedicated storage and excluded).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        fault_map: FaultMap,
        voltage: float,
        correct_t: int,
        count_checkbits: bool = True,
    ):
        super().__init__()
        if correct_t < 0:
            raise ValueError("correct_t must be >= 0")
        self.geometry = geometry
        self.fault_map = fault_map
        self.voltage = voltage
        self.correct_t = correct_t
        self.count_checkbits = count_checkbits
        layout = LineLayout(data_bits=geometry.line_bits)
        self.layout = layout

        counts = np.zeros(geometry.n_lines, dtype=np.int32)
        for line in range(geometry.n_lines):
            count = fault_map.fault_count(line, voltage, 0, layout.data_bits)
            if count_checkbits:
                count += fault_map.fault_count(
                    line, voltage, layout.check_offset, layout.total_bits
                )
            counts[line] = count
        self.fault_counts = counts

    def attach(self, cache) -> None:
        super().attach(cache)
        self._disable_overfaulted()

    def _disable_overfaulted(self) -> None:
        """MBIST result: disable every line with more than t faults."""
        geometry = self.geometry
        for line in np.nonzero(self.fault_counts > self.correct_t)[0]:
            set_index, way = divmod(int(line), geometry.associativity)
            self.cache.tags.disable(set_index, way)

    def on_read_hit(self, set_index: int, way: int) -> AccessOutcome:
        line_id = self.geometry.line_id(set_index, way)
        if self.fault_counts[line_id] > 0:
            return AccessOutcome.CORRECTED
        return AccessOutcome.CLEAN

    def hit_replay_info(self, set_index: int, way: int):
        # The fault population is static (that is what MBIST buys), so
        # every hit replays identically — unless a subclass changed the
        # hit path (e.g. the functional SECDED variant), in which case
        # it must opt in on its own.
        if type(self).on_read_hit is not OracleEccScheme.on_read_hit:
            return None
        line_id = self.geometry.line_id(set_index, way)
        return (bool(self.fault_counts[line_id] > 0), 0, 0)

    def on_reset(self) -> None:
        # The cache just re-enabled every way; MBIST runs again for the
        # (unchanged) operating point and disables the same lines.
        self._disable_overfaulted()

    def disabled_fraction(self) -> float:
        """Fraction of lines the MBIST pass disabled."""
        return float(np.count_nonzero(self.fault_counts > self.correct_t)) / len(
            self.fault_counts
        )
