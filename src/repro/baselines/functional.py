"""Functional (error-vector-driven) per-line SECDED scheme.

The oracle baselines in :mod:`repro.baselines.oracle` model the
*performance* of MBIST-based schemes and assume corrections always
succeed — fine for Figures 4/5, where soft errors play no role.  This
module adds a *functional* per-line SECDED scheme that runs the same
sparse error-vector machinery as Killi, so soft-error injection
campaigns can compare the two on reliability:

- FLAIR after training protects each enabled line with SECDED only.
  A line already carrying one LV fault that takes a 2-bit soft error
  holds 3 codeword errors: SECDED miscorrects or misses some of those
  patterns — the paper's Section 2.3 criticism ("FLAIR may not be able
  to detect a multi-bit soft-error on a line with a LV fault").
- Killi's 16/4-bit segmented parity operates *independently* of
  SECDED, so the same patterns are usually caught.

The scheme classifies each read from the line's current error vector
using real SECDED column-code syndromes (so aliasing behaves exactly
as in hardware).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.oracle import OracleEccScheme
from repro.cache.geometry import CacheGeometry
from repro.cache.hooks import AccessOutcome
from repro.core.layout import LineLayout
from repro.core.linestate import LineErrorModel
from repro.faults.fault_map import FaultMap
from repro.faults.soft_errors import SoftErrorInjector

__all__ = ["FunctionalSecDedLineScheme"]


class FunctionalSecDedLineScheme(OracleEccScheme):
    """MBIST + per-line SECDED with a real error-vector data path.

    Lines with 2+ LV faults are disabled up front (the MBIST part);
    enabled lines are then protected by SECDED *alone* — no segmented
    parity — which is what distinguishes FLAIR's steady state from
    Killi.  Soft errors are injected per read hit.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        fault_map: FaultMap,
        voltage: float,
        rng: np.random.Generator | None = None,
        soft_injector: SoftErrorInjector | None = None,
    ):
        super().__init__(geometry, fault_map, voltage, correct_t=1)
        self.layout = LineLayout(data_bits=geometry.line_bits)
        self.errors = LineErrorModel(
            fault_map,
            voltage,
            rng if rng is not None else np.random.default_rng(0),
            layout=self.layout,
        )
        self.soft_injector = soft_injector
        self.sdc_events = 0
        self.due_events = 0

    def on_fill(self, set_index: int, way: int) -> None:
        line_id = self.geometry.line_id(set_index, way)
        tag = self.cache.tags.tag_at(set_index, way)
        self.errors.on_fill(line_id, salt=tag)

    def on_write_hit(self, set_index: int, way: int) -> None:
        line_id = self.geometry.line_id(set_index, way)
        self.errors.on_write_hit(line_id)

    def on_evict(self, set_index: int, way: int) -> None:
        self.errors.clear(self.geometry.line_id(set_index, way))

    def on_invalidated(self, set_index: int, way: int) -> None:
        self.errors.clear(self.geometry.line_id(set_index, way))

    def on_read_hit(self, set_index: int, way: int) -> AccessOutcome:
        line_id = self.geometry.line_id(set_index, way)
        if self.soft_injector is not None:
            offsets = self.soft_injector.sample_event(self.layout.total_bits)
            if offsets is not None:
                # SECDED-only lines carry no parity bits; re-map parity
                # region hits onto data bits (the array is 523 bits).
                offsets = [
                    int(o) if not self.layout.is_parity(int(o))
                    else int(o) % self.layout.data_bits
                    for o in offsets
                ]
                self.errors.add_soft_error(line_id, offsets)
        if not self.errors.is_dirty(line_id):
            return AccessOutcome.CLEAN

        # SECDED-only view of the error vector.
        signals = self.errors.signals(line_id, 4, use_ecc=True)
        # (segmented parity does not exist here: ignore sp_mismatches.)
        if signals.syndrome_zero and signals.global_parity_ok:
            # Either truly clean or an undetectable (aliased) pattern.
            if self.errors.has_data_errors(line_id):
                self.sdc_events += 1
            return AccessOutcome.CLEAN
        if not signals.syndrome_zero and not signals.global_parity_ok:
            # Decoded as a single-bit error; heavier vectors miscorrect.
            if not self.errors.correction_is_sound(line_id):
                self.sdc_events += 1
            return AccessOutcome.CORRECTED
        # Detected-uncorrectable: refetch (write-through protects us).
        self.due_events += 1
        self.errors.clear(line_id)
        return AccessOutcome.RETRAIN_MISS
