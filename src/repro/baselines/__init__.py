"""Baseline LV protection schemes the paper compares against.

All of these rely on an *MBIST pre-characterisation* step: before the
simulation starts, every line's true fault count is known and lines
beyond the scheme's correction capability are disabled.  The paper
grants its baselines exactly the same oracle ("we assume a
pre-characterization phase (MBIST) where each line ... is flagged
either as enabled or disabled" and the reported runtimes exclude that
phase) — Killi is the only scheme that must learn at runtime.

- :class:`OracleEccScheme` — generic "MBIST + t-error-correcting ECC
  per line" scheme.
- :class:`SecDedLineScheme` — SECDED per line (correct 1, disable 2+).
- :class:`DectedScheme` — DECTED per line (correct 2, disable 3+).
- :class:`FlairScheme` — FLAIR (Qureshi & Chishti, DSN'13): SECDED per
  line with lines >1 fault disabled; optionally models the online
  DMR+MBIST training phases that sacrifice cache capacity.
- :class:`MsEccScheme` — MS-ECC (Chishti et al., MICRO'09): OLSC-class
  protection correcting up to 11 errors per 64B line.
- the fault-free baseline is :class:`repro.cache.UnprotectedScheme`.
"""

from repro.baselines.functional import FunctionalSecDedLineScheme
from repro.baselines.oracle import OracleEccScheme
from repro.baselines.schemes import (
    DectedScheme,
    FlairScheme,
    MsEccScheme,
    SecDedLineScheme,
)

__all__ = [
    "OracleEccScheme",
    "SecDedLineScheme",
    "DectedScheme",
    "FlairScheme",
    "MsEccScheme",
    "FunctionalSecDedLineScheme",
]
