"""Named baseline schemes: SECDED-per-line, DECTED, FLAIR, MS-ECC."""

from __future__ import annotations

from repro.baselines.oracle import OracleEccScheme
from repro.cache.geometry import CacheGeometry
from repro.faults.fault_map import FaultMap

__all__ = ["SecDedLineScheme", "DectedScheme", "FlairScheme", "MsEccScheme"]


class SecDedLineScheme(OracleEccScheme):
    """SECDED ECC per L2 line: correct 1 fault, disable 2+.

    The per-line-area reference point for the paper's Tables 4/5.
    """

    def __init__(self, geometry: CacheGeometry, fault_map: FaultMap, voltage: float):
        super().__init__(geometry, fault_map, voltage, correct_t=1)


class DectedScheme(OracleEccScheme):
    """DECTED ECC per L2 line: correct 2 faults, disable 3+ (paper 5.2)."""

    def __init__(self, geometry: CacheGeometry, fault_map: FaultMap, voltage: float):
        super().__init__(geometry, fault_map, voltage, correct_t=2)


class MsEccScheme(OracleEccScheme):
    """MS-ECC (Chishti et al.): OLSC correcting up to 11 errors per 64B line.

    The checkbits live in dedicated storage (the source of MS-ECC's
    38.6% area overhead), so only data-region faults count against the
    correction budget.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        fault_map: FaultMap,
        voltage: float,
        correct_t: int = 11,
    ):
        super().__init__(
            geometry, fault_map, voltage, correct_t=correct_t, count_checkbits=False
        )


def _register_axis_schemes() -> None:
    """Self-register the experiment-axis baseline names.

    The scheme registry's lazy loader imports this module, so
    ``baseline`` / ``dected`` / ``flair`` / ``msecc`` resolve through
    :data:`repro.scenario.registries.SCHEME_REGISTRY` without the
    harness hardcoding them anywhere.
    """
    from repro.cache.hooks import UnprotectedScheme
    from repro.scenario.registries import SCHEME_REGISTRY, SchemeFactory

    def _build_baseline(factory, ctx):
        ctx.require_plain(factory.name)
        return UnprotectedScheme()

    def _build_oracle(factory, ctx):
        ctx.require_plain(factory.name)
        return factory.scheme_class(ctx.geometry, ctx.fault_map, ctx.voltage)

    SCHEME_REGISTRY.register(
        "baseline",
        SchemeFactory(
            "baseline",
            kind="baseline",
            scheme_class=UnprotectedScheme,
            builder=_build_baseline,
        ),
    )
    for name, cls in (
        ("dected", DectedScheme),
        ("flair", FlairScheme),
        ("msecc", MsEccScheme),
    ):
        SCHEME_REGISTRY.register(
            name,
            SchemeFactory(name, kind="oracle", scheme_class=cls, builder=_build_oracle),
        )


class FlairScheme(OracleEccScheme):
    """FLAIR (Qureshi & Chishti, DSN'13).

    Steady state: SECDED per line, lines with 2+ faults disabled —
    identical to :class:`SecDedLineScheme`, which is exactly how the
    paper simulates it ("we skip training for the simulations with
    FLAIR and pre-train their DFH bits").

    Optionally, ``model_training=True`` reproduces the capacity cost
    FLAIR's online characterisation would add: during the first
    ``training_accesses`` L2 accesses two of the 16 ways are under
    MBIST and the rest run in DMR, leaving 7/16 of the capacity usable
    (paper Section 5.3's discussion).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        fault_map: FaultMap,
        voltage: float,
        model_training: bool = False,
        training_accesses: int = 0,
    ):
        super().__init__(geometry, fault_map, voltage, correct_t=1)
        self.model_training = model_training
        self.training_accesses = training_accesses
        # 2 ways under test; remaining 14 ways halved by DMR -> 7 usable.
        self._usable_ways_during_training = max(
            1, (geometry.associativity - 2) // 2
        )

    def _in_training(self) -> bool:
        return (
            self.model_training
            and self.cache is not None
            and self.cache.stats.accesses < self.training_accesses
        )

    def is_line_usable(self, set_index: int, way: int) -> bool:
        if self._in_training():
            return way < self._usable_ways_during_training
        return True

    def filters_ways(self) -> bool:
        # Only the optional training window ever filters; the default
        # (pre-trained DFH, as the paper simulates FLAIR) never does.
        return self.model_training


_register_axis_schemes()
