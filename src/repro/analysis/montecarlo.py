"""Monte-Carlo validation of the classification-coverage model.

Section 5.3's closed-form coverage rests on combinatorics over fault
patterns; this module estimates the same quantity empirically, by
sampling fault patterns at a voltage and pushing each through the
*real* signal machinery (segmented parity membership + SECDED column
codes).  The test suite checks the two agree, which both validates the
closed form and exercises the signal path on millions of patterns.

Two implementations share the class:

- :meth:`CoverageSampler.estimate` — the default, fully vectorized
  path: fault-offset sets for all draws are sampled by a batched
  Floyd partial-permutation kernel (no per-draw ``rng.choice``), and
  segment parities, SECDED syndromes and the Table-2 decision logic
  are evaluated as packed-bit array expressions via
  :class:`repro.kernels.LineSignalKernel`;
- :meth:`CoverageSampler.estimate_scalar` — the original one-pattern-
  at-a-time loop, kept as the pinned reference.  ``estimate(...,
  scalar_draws=True)`` replays the scalar draw order through the
  batched classifier and is bit-identical to the scalar path for the
  same seed; the default sampler is statistically identical (same
  conditional distribution over fault patterns).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.layout import LineLayout
from repro.ecc.secded import SecDedCode
from repro.faults.cell_model import CellFaultModel, FaultMechanism
from repro.faults.line_model import binom_pmf
from repro.kernels.classify import LineSignalKernel
from repro.utils.bitpack import n_words

__all__ = ["CoverageSampler", "CoverageEstimate"]

#: Parity segments used while training (DFH b'01).
_TRAINING_SEGMENTS = 16


@dataclass
class CoverageEstimate:
    """Result of a Monte-Carlo coverage run.

    ``draws`` counts every sampled fault pattern (all conditioned on
    >= 2 faults somewhere in the LV line); ``patterns`` counts the
    subset with >= 2 *codeword* faults — the hazardous patterns that
    were actually classified.  Rates are relative to ``patterns``.
    """

    patterns: int
    """Classified patterns (>= 2 codeword faults)."""

    misclassified: int
    """Patterns whose signals look like 0 or 1 faults (missed)."""

    draws: int
    """Total patterns drawn, including parity-bit-only ones."""

    @property
    def samples(self) -> int:
        """Alias of :attr:`patterns` (the pre-rename field name)."""
        return self.patterns

    @property
    def coverage(self) -> float:
        """Fraction of classified patterns handled correctly."""
        if self.patterns == 0:
            return 1.0
        return 1.0 - self.misclassified / self.patterns

    @property
    def failure_rate(self) -> float:
        return self.misclassified / self.patterns if self.patterns else 0.0


class CoverageSampler:
    """Samples fault patterns and classifies them like Killi's training.

    A pattern is *misclassified* when the line has >= 2 codeword
    faults but the training signals (16-segment parity over 33-bit
    segments, SECDED syndrome + global parity) are consistent with 0
    or 1 faults — i.e. Killi would enable a line it should disable.
    """

    def __init__(self, cell_model: CellFaultModel | None = None, freq_ghz: float = 1.0):
        self.cell_model = cell_model if cell_model is not None else CellFaultModel()
        self.freq_ghz = freq_ghz
        self.layout = LineLayout()
        self._secded = SecDedCode(self.layout.data_bits)
        self._kernel = LineSignalKernel(self.layout, self._secded)

    # -- scalar reference ---------------------------------------------------

    def _classify_ok(self, offsets: np.ndarray) -> bool:
        """Does the signal triple reveal the multi-bit pattern?

        Mirrors Table 2's b'01 row outcomes: a pattern is *caught*
        unless it classifies as clean (-> b'00) or as a single
        correctable error (-> b'10).  Scalar reference for the batched
        :meth:`_classify_matrix`.
        """
        layout = self.layout
        segment_flips: dict = {}
        codeword = []
        for offset in offsets:
            offset = int(offset)
            if layout.is_data(offset):
                segment_flips[offset % 16] = segment_flips.get(offset % 16, 0) + 1
                codeword.append(offset)
            elif layout.is_parity(offset):
                index = layout.parity_index(offset)
                segment_flips[index] = segment_flips.get(index, 0) + 1
            else:
                codeword.append(layout.codeword_position(offset))
        sp = sum(1 for count in segment_flips.values() if count & 1)
        syndrome_zero = self._secded.syndrome_of_error_positions(codeword) == 0
        parity_ok = (len(codeword) & 1) == 0

        if sp >= 2:
            return True  # disabled: caught
        if sp == 0 and syndrome_zero and parity_ok:
            return False  # looks clean -> b'00: missed
        if not syndrome_zero and not parity_ok:
            return False  # looks like one error -> b'10: missed
        if sp == 0 and syndrome_zero and not parity_ok:
            return False  # looks like a parity-checkbit error: missed
        if sp == 1 and syndrome_zero and parity_ok:
            return False  # looks like a stuck parity bit: missed
        return True  # inconsistent signals -> disabled: caught

    def estimate_scalar(
        self,
        voltage: float,
        samples: int = 100_000,
        rng: np.random.Generator | None = None,
    ) -> CoverageEstimate:
        """One-pattern-at-a-time reference implementation of :meth:`estimate`.

        Kept verbatim as the pinned scalar path: ``estimate(...,
        scalar_draws=True)`` must reproduce its counts bit-for-bit.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        counts = self._sample_fault_counts(rng, voltage, samples)
        misclassified = 0
        produced = 0
        for count in counts:
            offsets = rng.choice(self.layout.total_bits, size=int(count), replace=False)
            codeword_faults = sum(
                1
                for offset in offsets
                if not self.layout.is_parity(int(offset))
            )
            if codeword_faults < 2:
                continue  # parity-bit-only patterns are not the hazard
            produced += 1
            if not self._classify_ok(offsets):
                misclassified += 1
        return CoverageEstimate(
            patterns=produced, misclassified=misclassified, draws=samples
        )

    # -- vectorized path ----------------------------------------------------

    def _sample_fault_counts(
        self, rng: np.random.Generator, voltage: float, samples: int
    ) -> np.ndarray:
        """Per-draw fault counts, conditioned on >= 2 faults per line."""
        p = self.cell_model.p_cell(voltage, self.freq_ghz, FaultMechanism.COMBINED)
        n_bits = self.layout.codeword_bits + 16  # data+check (+ parity bits)
        return _sample_binomial_at_least_two(rng, n_bits, p, samples)

    def _sample_offsets(
        self, rng: np.random.Generator, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fault-offset sets for every draw, without per-draw ``choice``.

        Vectorized Robert Floyd partial-permutation sampling: to draw a
        ``c``-subset of ``[0, N)``, iterate ``i`` over the last ``c``
        values; pick ``t`` uniform on ``[0, i]`` and insert ``t``, or
        ``i`` if ``t`` is already a member.  The membership test and
        insertion are packed-bit operations, so one loop over the
        *maximum* count covers every draw simultaneously (rows whose
        count is smaller simply start at a later ``i``).  Returns the
        ``(n, k_max)`` offsets matrix and its validity mask.
        """
        total = self.layout.total_bits
        n = len(counts)
        k_max = int(counts.max()) if n else 0
        offsets = np.zeros((n, k_max), dtype=np.int64)
        valid = np.arange(k_max)[None, :] < counts[:, None]
        if n == 0:
            return offsets, valid
        members = np.zeros((n, n_words(total)), dtype=np.uint64)
        rows = np.arange(n)
        one = np.uint64(1)
        for i in range(total - k_max, total):
            active = rows[counts >= total - i]
            draws = rng.integers(0, i + 1, size=len(active))
            bit = one << (draws.astype(np.uint64) & np.uint64(63))
            occupied = (members[active, draws >> 6] & bit) != 0
            chosen = np.where(occupied, i, draws)
            members[active, chosen >> 6] |= one << (
                chosen.astype(np.uint64) & np.uint64(63)
            )
            offsets[active, i - total + counts[active]] = chosen
        return offsets, valid

    def _offsets_from_scalar_draws(
        self, rng: np.random.Generator, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Offset sets drawn exactly like :meth:`estimate_scalar` draws them."""
        total = self.layout.total_bits
        k_max = int(counts.max()) if len(counts) else 0
        offsets = np.zeros((len(counts), k_max), dtype=np.int64)
        valid = np.arange(k_max)[None, :] < counts[:, None]
        for i, count in enumerate(counts):
            offsets[i, : int(count)] = rng.choice(
                total, size=int(count), replace=False
            )
        return offsets, valid

    def _classify_batch(
        self, offsets: np.ndarray, valid: np.ndarray
    ) -> tuple[int, int]:
        """(classified patterns, misclassified patterns) of an offset batch.

        Array-expression form of :meth:`_classify_ok` plus the >= 2
        codeword-fault filter of the estimate loop.
        """
        kernel = self._kernel
        hazardous = kernel.codeword_weights_from_offsets(offsets, valid) >= 2
        offsets = offsets[hazardous]
        valid = valid[hazardous]
        if offsets.shape[0] == 0:
            return 0, 0
        sp, syndrome_zero, parity_ok, _ = kernel.signals_from_offsets(
            offsets, valid, _TRAINING_SEGMENTS, use_ecc=True
        )
        # Table 2 b'01 rows: missed iff the signals are consistent with
        # a clean line, a single correctable error, or a lone flipped
        # parity/checkbit — exactly the False branches of _classify_ok.
        missed = (sp < 2) & (
            (syndrome_zero & parity_ok)
            | (~syndrome_zero & ~parity_ok)
            | ((sp == 0) & syndrome_zero & ~parity_ok)
        )
        return int(offsets.shape[0]), int(np.count_nonzero(missed))

    def estimate(
        self,
        voltage: float,
        samples: int = 100_000,
        rng: np.random.Generator | None = None,
        *,
        scalar_draws: bool = False,
        chunk: int = 16384,
    ) -> CoverageEstimate:
        """Sample ``samples`` multi-fault lines and measure coverage.

        Sampling is conditioned on >= 2 codeword faults (single-fault
        and clean lines are always classified correctly by
        construction), so the returned failure rate is
        ``P[misclassified | >= 2 faults]``; the unconditional Figure 6
        failure probability is that times ``P[>= 2 faults]``.

        With ``scalar_draws=True`` the fault offsets are drawn in the
        exact order :meth:`estimate_scalar` draws them (one
        ``rng.choice`` per pattern), making the result bit-identical
        to the scalar reference for the same seed; the default batched
        sampler draws uniform subsets in one vectorized pass instead.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        counts = self._sample_fault_counts(rng, voltage, samples)
        produced = 0
        misclassified = 0
        for start in range(0, samples, chunk):
            counts_chunk = counts[start : start + chunk]
            if scalar_draws:
                offsets, valid = self._offsets_from_scalar_draws(rng, counts_chunk)
            else:
                offsets, valid = self._sample_offsets(rng, counts_chunk)
            classified, missed = self._classify_batch(offsets, valid)
            produced += classified
            misclassified += missed
        return CoverageEstimate(
            patterns=produced, misclassified=misclassified, draws=samples
        )


def _sample_binomial_at_least_two(
    rng: np.random.Generator, n: int, p: float, size: int
) -> np.ndarray:
    """Binomial(n, p) samples conditioned on the value being >= 2."""
    # Truncated pmf over a generous support.
    support = np.arange(2, min(n, 60) + 1)
    weights = np.array([binom_pmf(n, int(k), p) for k in support])
    total = weights.sum()
    if total <= 0:
        raise ValueError("fault probability too small to condition on >= 2")
    return rng.choice(support, size=size, p=weights / total)
