"""Monte-Carlo validation of the classification-coverage model.

Section 5.3's closed-form coverage rests on combinatorics over fault
patterns; this module estimates the same quantity empirically, by
sampling fault patterns at a voltage and pushing each through the
*real* signal machinery (segmented parity membership + SECDED column
codes).  The test suite checks the two agree, which both validates the
closed form and exercises the signal path on millions of patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.layout import LineLayout
from repro.ecc.secded import SecDedCode
from repro.faults.cell_model import CellFaultModel, FaultMechanism

__all__ = ["CoverageSampler", "CoverageEstimate"]


@dataclass
class CoverageEstimate:
    """Result of a Monte-Carlo coverage run."""

    samples: int
    misclassified: int
    faulty_lines: int

    @property
    def coverage(self) -> float:
        """Fraction of lines classified correctly."""
        if self.samples == 0:
            return 1.0
        return 1.0 - self.misclassified / self.samples

    @property
    def failure_rate(self) -> float:
        return self.misclassified / self.samples if self.samples else 0.0


class CoverageSampler:
    """Samples fault patterns and classifies them like Killi's training.

    A pattern is *misclassified* when the line has >= 2 codeword
    faults but the training signals (16-segment parity over 33-bit
    segments, SECDED syndrome + global parity) are consistent with 0
    or 1 faults — i.e. Killi would enable a line it should disable.
    """

    def __init__(self, cell_model: CellFaultModel | None = None, freq_ghz: float = 1.0):
        self.cell_model = cell_model if cell_model is not None else CellFaultModel()
        self.freq_ghz = freq_ghz
        self.layout = LineLayout()
        self._secded = SecDedCode(self.layout.data_bits)

    def _classify_ok(self, offsets: np.ndarray) -> bool:
        """Does the signal triple reveal the multi-bit pattern?

        Mirrors Table 2's b'01 row outcomes: a pattern is *caught*
        unless it classifies as clean (-> b'00) or as a single
        correctable error (-> b'10).
        """
        layout = self.layout
        segment_flips: dict = {}
        codeword = []
        for offset in offsets:
            offset = int(offset)
            if layout.is_data(offset):
                segment_flips[offset % 16] = segment_flips.get(offset % 16, 0) + 1
                codeword.append(offset)
            elif layout.is_parity(offset):
                index = layout.parity_index(offset)
                segment_flips[index] = segment_flips.get(index, 0) + 1
            else:
                codeword.append(layout.codeword_position(offset))
        sp = sum(1 for count in segment_flips.values() if count & 1)
        syndrome_zero = self._secded.syndrome_of_error_positions(codeword) == 0
        parity_ok = (len(codeword) & 1) == 0

        if sp >= 2:
            return True  # disabled: caught
        if sp == 0 and syndrome_zero and parity_ok:
            return False  # looks clean -> b'00: missed
        if not syndrome_zero and not parity_ok:
            return False  # looks like one error -> b'10: missed
        if sp == 0 and syndrome_zero and not parity_ok:
            return False  # looks like a parity-checkbit error: missed
        if sp == 1 and syndrome_zero and parity_ok:
            return False  # looks like a stuck parity bit: missed
        return True  # inconsistent signals -> disabled: caught

    def estimate(
        self,
        voltage: float,
        samples: int = 100_000,
        rng: np.random.Generator | None = None,
    ) -> CoverageEstimate:
        """Sample ``samples`` multi-fault lines and measure coverage.

        Sampling is conditioned on >= 2 codeword faults (single-fault
        and clean lines are always classified correctly by
        construction), so the returned failure rate is
        ``P[misclassified | >= 2 faults]``; the unconditional Figure 6
        failure probability is that times ``P[>= 2 faults]``.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        p = self.cell_model.p_cell(voltage, self.freq_ghz, FaultMechanism.COMBINED)
        n_bits = self.layout.codeword_bits + 16  # data+check (+ parity bits)

        misclassified = 0
        produced = 0
        # Draw fault counts conditioned on >= 2 (rejection on a
        # binomial would waste almost all draws at realistic p).
        counts = _sample_binomial_at_least_two(rng, n_bits, p, samples)
        for count in counts:
            offsets = rng.choice(self.layout.total_bits, size=int(count), replace=False)
            codeword_faults = sum(
                1
                for offset in offsets
                if not self.layout.is_parity(int(offset))
            )
            if codeword_faults < 2:
                continue  # parity-bit-only patterns are not the hazard
            produced += 1
            if not self._classify_ok(offsets):
                misclassified += 1
        return CoverageEstimate(
            samples=produced, misclassified=misclassified, faulty_lines=samples
        )


def _sample_binomial_at_least_two(
    rng: np.random.Generator, n: int, p: float, size: int
) -> np.ndarray:
    """Binomial(n, p) samples conditioned on the value being >= 2."""
    from repro.faults.line_model import binom_pmf

    # Truncated pmf over a generous support.
    support = np.arange(2, min(n, 60) + 1)
    weights = np.array([binom_pmf(n, int(k), p) for k in support])
    total = weights.sum()
    if total <= 0:
        raise ValueError("fault probability too small to condition on >= 2")
    return rng.choice(support, size=size, p=weights / total)
