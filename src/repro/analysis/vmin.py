"""Vmin determination per protection scheme.

The paper's headline is a Vmin: "the minimum reliable VDD can be
reduced to 62.5% of nominal".  Operationally, a scheme's Vmin is the
lowest voltage at which it still delivers (a) enough usable capacity —
lines within its correction budget — and (b) trustworthy fault
classification.  This module scans voltage for each scheme and reports
where each criterion breaks.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.coverage import CoverageModel
from repro.faults.cell_model import CellFaultModel
from repro.faults.line_model import LineFaultModel

__all__ = ["VminAnalyzer"]


class VminAnalyzer:
    """Scans voltage for the capacity/coverage break-even per scheme.

    Parameters
    ----------
    cell_model:
        Pcell(V, f) source.
    capacity_target:
        Minimum fraction of lines that must remain usable.
    coverage_target:
        Minimum fraction of lines that must be classified correctly
        (only meaningful for the no-MBIST schemes; MBIST-based schemes
        get their fault map for free).
    """

    #: (correction budget t, needs runtime classification) per scheme.
    SCHEMES = {
        "secded": (1, True),
        "flair": (1, False),  # MBIST supplies the fault map
        "dected": (2, True),
        "msecc": (11, True),
        "killi": (1, True),
        "killi+olsc": (11, True),
    }

    def __init__(
        self,
        cell_model: CellFaultModel | None = None,
        capacity_target: float = 0.99,
        coverage_target: float = 0.99,
    ):
        self.cell_model = cell_model if cell_model is not None else CellFaultModel()
        self.capacity_target = capacity_target
        self.coverage_target = coverage_target
        self.lines = LineFaultModel(self.cell_model, line_bits=523)
        self.coverage = CoverageModel(cell_model=self.cell_model)

    def _coverage_of(self, scheme: str, voltage: float) -> float:
        if scheme in ("killi", "killi+olsc"):
            return self.coverage.killi_coverage(voltage)
        if scheme == "flair":
            return 1.0  # MBIST oracle
        t_detect = {"secded": 2, "dected": 3, "msecc": 11}[scheme]
        n_bits = {"secded": 523, "dected": 533, "msecc": 512}[scheme]
        return self.coverage.detection_coverage(voltage, t_detect, n_bits)

    def meets_targets(self, scheme: str, voltage: float) -> bool:
        """Does ``scheme`` satisfy both targets at ``voltage``?"""
        if scheme not in self.SCHEMES:
            raise KeyError(f"unknown scheme {scheme!r}")
        correct_t, _ = self.SCHEMES[scheme]
        if self.lines.p_at_most(voltage, correct_t) < self.capacity_target:
            return False
        return self._coverage_of(scheme, voltage) >= self.coverage_target

    def vmin(self, scheme: str, lo: float = 0.5, hi: float = 0.8, step: float = 0.005) -> float:
        """Lowest scanned voltage meeting both targets (NaN if none)."""
        voltages = np.arange(lo, hi + step / 2, step)
        passing = [v for v in voltages if self.meets_targets(scheme, float(v))]
        if not passing:
            return float("nan")
        # Targets are not perfectly monotone (Killi coverage dips);
        # Vmin is the lowest voltage from which every higher scanned
        # voltage also passes.
        passing_set = {round(float(v), 6) for v in passing}
        vmin = None
        for v in reversed(voltages):
            if round(float(v), 6) in passing_set:
                vmin = float(v)
            else:
                break
        return vmin if vmin is not None else float("nan")

    def table(self) -> Dict[str, float]:
        """Vmin for every scheme (the headline comparison)."""
        return {scheme: self.vmin(scheme) for scheme in self.SCHEMES}
