"""Normalized L2 power model (paper Table 6).

The paper reports L2 (data + tag) power at 0.625xVDD as a percentage
of the fault-free L2 at nominal VDD.  The dominant term is the voltage
scaling of the data array; the technique-to-technique differences come
from (a) the extra storage each scheme adds (checkbits leak and
toggle), (b) the per-access check/decode energy (a 4-bit parity check
for most Killi accesses vs a full SECDED or OLSC decode per access for
per-line schemes), and (c) extra memory traffic from lost capacity /
contention.

The model (all terms in percentage points of the baseline)::

    P_norm(%) = 100 * w_dyn  * V^2
              + 100 * w_leak * V^leak_exp * (1 + storage_frac)
              + 100 * w_dyn  * V^2 * e_code
              + ecc_cache_coeff * entry_frac
              + mem_coeff * extra_memory_frac

Checkbit storage burdens the leakage term (extra cells leak whether or
not they toggle); the per-access check/decode energy scales the
dynamic term.  ``w_dyn``, ``w_leak``, ``leak_exp`` and the two linear
coefficients are calibrated once against Table 6 (see EXPERIMENTS.md);
everything a scheme controls (storage fraction, code energy, entry
fraction, extra misses) comes from the area model and the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PowerModel", "CODE_ENERGY"]

#: Per-access check/decode energy as a fraction of a line access.
CODE_ENERGY = {
    "none": 0.0,
    "parity4": 0.02,
    "parity16": 0.04,
    "secded": 0.12,
    "dected": 0.20,
    "olsc": 0.38,
}


@dataclass(frozen=True)
class PowerModel:
    """Calibrated normalized-power model.

    Parameters (all dimensionless) are calibrated to Table 6; see the
    module docstring for the functional form.
    """

    w_dyn: float = 0.5
    w_leak: float = 0.5
    leak_exp: float = 2.0
    ecc_cache_coeff: float = 36.0
    mem_coeff: float = 8.0

    def normalized_power(
        self,
        voltage: float,
        storage_frac: float = 0.0,
        code_energy: float = 0.0,
        entry_frac: float = 0.0,
        extra_memory_frac: float = 0.0,
    ) -> float:
        """Normalized L2 power in percent of the nominal-VDD baseline.

        Parameters
        ----------
        voltage:
            Normalized operating voltage of the L2 data array.
        storage_frac:
            Scheme storage overhead as a fraction of the L2
            (:meth:`repro.analysis.area.AreaModel.percent_of_l2`/100).
        code_energy:
            Per-access check energy fraction (:data:`CODE_ENERGY`).
        entry_frac:
            ECC-cache entries / L2 lines (Killi only) — captures the
            ECC cache's own dynamic/leakage cost.
        extra_memory_frac:
            Additional memory accesses over the baseline, as a
            fraction of baseline accesses.
        """
        if voltage <= 0:
            raise ValueError("voltage must be positive")
        dyn = 100.0 * self.w_dyn * voltage**2
        leak = 100.0 * self.w_leak * voltage**self.leak_exp * (1.0 + storage_frac)
        power = dyn + leak
        power += dyn * code_energy
        power += self.ecc_cache_coeff * entry_frac
        power += self.mem_coeff * extra_memory_frac
        return power

    # -- per-scheme convenience (Table 6 inputs) -------------------------------

    def scheme_power(
        self,
        scheme: str,
        voltage: float = 0.625,
        ecc_ratio: int | None = None,
        storage_frac: float | None = None,
        extra_memory_frac: float = 0.0,
    ) -> float:
        """Normalized power of a named scheme with its natural inputs."""
        from repro.analysis.area import AreaModel

        area = AreaModel()
        if scheme == "killi":
            if ecc_ratio is None:
                raise ValueError("killi power needs an ecc_ratio")
            frac = (
                storage_frac
                if storage_frac is not None
                else area.percent_of_l2("killi", ecc_ratio) / 100.0
            )
            return self.normalized_power(
                voltage,
                storage_frac=frac,
                code_energy=CODE_ENERGY["parity4"],
                entry_frac=1.0 / ecc_ratio,
                extra_memory_frac=extra_memory_frac,
            )
        code_energy = {
            "dected": CODE_ENERGY["dected"],
            "msecc": CODE_ENERGY["olsc"],
            "flair": CODE_ENERGY["secded"],
            "secded": CODE_ENERGY["secded"],
        }[scheme]
        frac = (
            storage_frac
            if storage_frac is not None
            else area.percent_of_l2(scheme if scheme != "flair" else "secded") / 100.0
        )
        return self.normalized_power(
            voltage,
            storage_frac=frac,
            code_energy=code_energy,
            extra_memory_frac=extra_memory_frac,
        )
