"""Calibration-sensitivity analysis.

The 0.625xVDD cell failure probability had to be *inferred* from the
paper's published anchors (the silicon data is NDA'd; see
DESIGN.md §2 and the faults package docs).  This module quantifies how
the reproduction's headline results move if that calibration is off by
a factor: it scales Pcell by a multiplier, rebuilds the fault map, and
re-runs the Killi performance experiment.

The honest claim this enables: the paper's *shape* (Killi ≈ baseline
at 1:16, a few percent worst-case at 1:256, ordering of the schemes)
is robust across an order of magnitude of calibration error; only the
absolute penalty scales.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.cache.hooks import UnprotectedScheme
from repro.core import KilliConfig, KilliScheme
from repro.faults.cell_model import DEFAULT_ANCHORS, CellFaultModel
from repro.faults.fault_map import FaultMap
from repro.gpu import GpuConfig, GpuSimulator
from repro.traces import workload_trace
from repro.utils.rng import RngFactory

__all__ = ["scaled_cell_model", "pcell_sensitivity"]


def scaled_cell_model(multiplier: float) -> CellFaultModel:
    """The default calibration with every anchor probability scaled.

    Probabilities are clipped into (0, 0.4] to stay valid.
    """
    if multiplier <= 0:
        raise ValueError("multiplier must be positive")
    scaled = [
        (voltage, min(0.4, max(1e-15, probability * multiplier)))
        for voltage, probability in sorted(DEFAULT_ANCHORS)
    ]
    # Clipping can flatten the low-voltage end; restore the strict
    # monotonicity the model requires (a 1% ladder is far below any
    # effect the sweep measures).
    anchors = []
    ceiling = 0.49
    for voltage, probability in scaled:  # ascending voltage
        probability = min(probability, ceiling / 1.01)
        anchors.append((voltage, probability))
        ceiling = probability
    return CellFaultModel(anchors=tuple(anchors))


def pcell_sensitivity(
    multipliers: Iterable[float] = (0.3, 1.0, 3.0, 10.0),
    ecc_ratios: Iterable[int] = (256, 16),
    workload: str = "fft",
    accesses_per_cu: int = 6000,
    voltage: float = 0.625,
    seed: int = 42,
) -> Dict[float, Dict]:
    """Killi's normalized time under scaled fault-rate calibrations.

    Returns ``{multiplier: {"killi_1:<r>": normalized_time, ...,
    "one_fault_lines": fraction}}``.
    """
    rngs = RngFactory(seed)
    gpu_config = GpuConfig()
    trace = workload_trace(
        workload, accesses_per_cu, n_cus=gpu_config.n_cus,
        rng=rngs.stream(f"trace/{workload}"),
    )
    baseline = GpuSimulator(gpu_config, UnprotectedScheme()).run(trace)

    out: Dict[float, Dict] = {}
    for multiplier in multipliers:
        cell_model = scaled_cell_model(multiplier)
        fault_map = FaultMap(
            n_lines=gpu_config.l2.n_lines,
            cell_model=cell_model,
            rng=rngs.stream(f"fault-map/{multiplier}"),
        )
        row: Dict = {
            "p_cell": cell_model.p_cell(voltage),
        }
        histogram = fault_map.fault_count_histogram(voltage)
        row["one_fault_lines"] = histogram.get(1, 0) / fault_map.n_lines
        row["multi_fault_lines"] = (
            sum(count for k, count in histogram.items() if k >= 2)
            / fault_map.n_lines
        )
        for ratio in ecc_ratios:
            scheme = KilliScheme(
                gpu_config.l2, fault_map, voltage,
                KilliConfig(ecc_ratio=ratio),
                rng=rngs.stream(f"mask/{multiplier}/{ratio}"),
            )
            result = GpuSimulator(gpu_config, scheme).run(trace)
            row[f"killi_1:{ratio}"] = result.cycles / baseline.cycles
        out[multiplier] = row
    return out
