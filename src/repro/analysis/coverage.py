"""Fault-classification coverage (paper Section 5.3, Figure 6).

Killi only needs to know whether a line has 0, 1, or >=2 faults.  The
danger is a multi-bit fault pattern that *looks* like 0 or 1 faults to
both detectors.  Per the paper:

- SECDED is assumed to fail for every pattern of 3+ errors in its
  523-bit codeword;
- segmented parity (16 interleaved segments of 33 bits: 32 data + the
  parity bit itself) fails when at most one segment has an odd error
  count — every other erroneous segment hiding an even count;
- the two fail independently, so
  ``P_fail(Killi) = P_fail(SECDED) * P_fail(Seg.Parity)``.

Both the paper's published formula (with its binomial approximation)
and an exact multinomial evaluation are provided; the test suite
checks they agree closely in the region of interest.

Comparison curves (same "no MBIST" footing as Figure 6):

- SECDED alone detects <=2 errors; DECTED <=3; MS-ECC (OLSC) <=11;
- FLAIR's training-time DMR misses a fault only when both copies are
  corrupted identically.

Also included: the Section 5.6.2 same-segment masked-fault SDC
probability (the paper's "0.003% of lines" scenario).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.faults.cell_model import CellFaultModel, FaultMechanism
from repro.faults.line_model import binom_cdf, binom_pmf

__all__ = ["CoverageModel"]


def _segment_probs(p: float, segment_bits: int):
    """(P_zero, P_odd>=1, P_odd>=3, P_even>=2) for one segment."""
    p_zero = binom_pmf(segment_bits, 0, p)
    p_odd = sum(
        binom_pmf(segment_bits, i, p) for i in range(1, segment_bits + 1, 2)
    )
    p_odd3 = sum(
        binom_pmf(segment_bits, i, p) for i in range(3, segment_bits + 1, 2)
    )
    p_even2 = sum(
        binom_pmf(segment_bits, i, p) for i in range(2, segment_bits + 1, 2)
    )
    return p_zero, p_odd, p_odd3, p_even2


@dataclass
class CoverageModel:
    """Closed-form classification coverage at an operating point.

    Parameters
    ----------
    cell_model:
        Pcell(V, f) source.
    n_segments / segment_bits:
        Killi's training parity layout (16 segments x 33 bits; the
        parity bit itself can fail, hence 33).
    codeword_bits:
        SECDED codeword (523 = 512 data + 11 checkbits, all failable).
    freq_ghz:
        Operating frequency.
    """

    cell_model: CellFaultModel = None
    n_segments: int = 16
    segment_bits: int = 33
    codeword_bits: int = 523
    freq_ghz: float = 1.0

    def __post_init__(self):
        if self.cell_model is None:
            self.cell_model = CellFaultModel()

    def p_cell(self, voltage: float) -> float:
        return self.cell_model.p_cell(
            voltage, self.freq_ghz, FaultMechanism.COMBINED
        )

    # -- Killi ----------------------------------------------------------------

    def p_fail_secded(self, voltage: float) -> float:
        """P[>=3 errors in the 523-bit codeword] (paper's assumption)."""
        return 1.0 - binom_cdf(self.codeword_bits, 2, self.p_cell(voltage))

    def p_fail_seg_parity_paper(self, voltage: float) -> float:
        """The paper's published formula, verbatim.

        ``P = P^15_0 * P_segOdd(>=3)
             + sum_{i=0}^{15} P^{16-i}_Even * P^i_0``
        with ``P^n_X = C(16, n) P_X^n (1 - P_X)^{16-n}``.
        """
        p = self.p_cell(voltage)
        n = self.n_segments
        p_zero, _, p_odd3, p_even2 = _segment_probs(p, self.segment_bits)

        def binom_term(prob: float, count: int) -> float:
            return (
                math.comb(n, count)
                * prob**count
                * (1.0 - prob) ** (n - count)
            )

        total = binom_term(p_zero, n - 1) * p_odd3
        for i in range(0, n):
            total += binom_term(p_even2, n - i) * binom_term(p_zero, i)
        return min(1.0, total)

    def p_fail_seg_parity_exact(self, voltage: float) -> float:
        """Exact multinomial version of the parity-failure probability.

        Segments are iid with categories (zero, odd, even>=2).  Parity
        fails to flag a multi-bit line when at most one segment shows
        an odd count and the pattern is not the benign ones (all-zero,
        or a single segment with exactly one error):

        - one segment odd with >=3 errors, all others zero;
        - one segment odd (any count), >=1 segment even, rest zero;
        - >=1 segment even, all others zero.
        """
        p = self.p_cell(voltage)
        n = self.n_segments
        p_zero, p_odd, p_odd3, p_even2 = _segment_probs(p, self.segment_bits)

        # one odd(>=3) segment, others zero
        total = n * p_odd3 * p_zero ** (n - 1)
        # k >= 1 even segments, others zero
        for k in range(1, n + 1):
            total += math.comb(n, k) * p_even2**k * p_zero ** (n - k)
        # one odd (any), k >= 1 even, rest zero
        for k in range(1, n):
            total += (
                n
                * p_odd
                * math.comb(n - 1, k)
                * p_even2**k
                * p_zero ** (n - 1 - k)
            )
        return min(1.0, total)

    def p_fail_killi(self, voltage: float, exact: bool = False) -> float:
        """P[Killi misclassifies a line] = P_fail_SECDED * P_fail_parity."""
        parity = (
            self.p_fail_seg_parity_exact(voltage)
            if exact
            else self.p_fail_seg_parity_paper(voltage)
        )
        return self.p_fail_secded(voltage) * parity

    def killi_coverage(self, voltage: float, exact: bool = False) -> float:
        """Fraction of lines Killi classifies correctly (Figure 6)."""
        return 1.0 - self.p_fail_killi(voltage, exact=exact)

    # -- comparison techniques ---------------------------------------------------

    def detection_coverage(self, voltage: float, detect_t: int, n_bits: int | None = None) -> float:
        """Coverage of a code that detects up to ``detect_t`` errors."""
        n = n_bits if n_bits is not None else self.codeword_bits
        return binom_cdf(n, detect_t, self.p_cell(voltage))

    def secded_coverage(self, voltage: float) -> float:
        """Plain SECDED: detects up to 2 errors."""
        return self.detection_coverage(voltage, 2)

    def dected_coverage(self, voltage: float) -> float:
        """DECTED: detects up to 3 errors (paper's assumption)."""
        return self.detection_coverage(voltage, 3, n_bits=533)

    def msecc_coverage(self, voltage: float) -> float:
        """MS-ECC (OLSC): detects up to 11 errors in the 64B data."""
        return self.detection_coverage(voltage, 11, n_bits=512)

    def flair_coverage(self, voltage: float) -> float:
        """FLAIR training: DMR + SECDED.

        DMR comparison misses a fault only if the two copies are
        corrupted *identically* at some bit (both stuck, same value):
        per bit probability ``p^2 / 2``.
        """
        p = self.p_cell(voltage)
        p_identical_bit = p * p / 2.0
        p_dmr_fail = 1.0 - (1.0 - p_identical_bit) ** 512
        return 1.0 - p_dmr_fail

    def coverage_table(self, voltages) -> dict:
        """All Figure 6 series over an iterable of voltages."""
        voltages = list(voltages)
        return {
            "voltage": voltages,
            "secded": [self.secded_coverage(v) for v in voltages],
            "dected": [self.dected_coverage(v) for v in voltages],
            "msecc": [self.msecc_coverage(v) for v in voltages],
            "flair": [self.flair_coverage(v) for v in voltages],
            "killi": [self.killi_coverage(v) for v in voltages],
        }

    # -- Section 5.6.2 ----------------------------------------------------------

    def masked_sdc_probability(
        self, voltage: float, stable_segments: int = 4, data_bits: int = 512
    ) -> float:
        """P[line is vulnerable to the same-segment masked-fault SDC].

        The scenario of Section 5.6.2: >=2 faults land in the *same*
        stable parity segment (128 bits) and all are masked at
        classification time, so the line trains to b'00; a later write
        can unmask them and parity (even count, same segment) cannot
        detect the corruption.  Dominated by the 2-fault term:
        ``n_seg * C(seg_bits, 2) * p^2 * (1/2)^2``.
        """
        p = self.p_cell(voltage)
        seg_bits = data_bits // stable_segments
        total = 0.0
        for k in range(2, 7):  # higher terms negligible
            p_k_same_seg = stable_segments * binom_pmf(seg_bits, k, p) * (
                binom_pmf(seg_bits, 0, p) ** (stable_segments - 1)
            )
            total += p_k_same_seg * 0.5**k
        return total
